"""Tests for the shared medium: delivery, collisions, capture, sensing."""

import pytest

from repro.medium.channel import DropReason, Medium, Transmission
from repro.phy.link import LinkBudget
from repro.phy.modulation import LoRaParams, SpreadingFactor
from repro.phy.pathloss import LogDistancePathLoss
from repro.radio.driver import Radio
from repro.sim.kernel import Simulator

from tests.conftest import build_radios


def collect_frames(radio):
    """Attach a list-collector to a radio's receive callback."""
    frames = []
    radio.on_receive = frames.append
    return frames


class TestDelivery:
    def test_in_range_frame_is_delivered(self, sim, medium, params, radio_pair):
        a, b = radio_pair
        frames = collect_frames(b)
        a.transmit(b"hello")
        sim.run(until=1.0)
        assert len(frames) == 1
        assert frames[0].payload == b"hello"
        assert frames[0].crc_ok

    def test_out_of_range_frame_is_silent(self, sim, medium, params):
        a, b = build_radios(sim, medium, [(0.0, 0.0), (500.0, 0.0)], params)
        frames = collect_frames(b)
        a.transmit(b"hello")
        sim.run(until=1.0)
        assert frames == []
        assert medium.outcome_counts()[DropReason.BELOW_SENSITIVITY] == 1

    def test_sender_does_not_hear_itself(self, sim, medium, params, radio_pair):
        a, b = radio_pair
        frames = collect_frames(a)
        a.transmit(b"hello")
        sim.run(until=1.0)
        assert frames == []

    def test_rssi_and_snr_reported(self, sim, medium, params, radio_pair):
        a, b = radio_pair
        frames = collect_frames(b)
        a.transmit(b"x" * 10)
        sim.run(until=1.0)
        frame = frames[0]
        assert -130 < frame.rssi_dbm < 0
        assert frame.snr_db == pytest.approx(frame.rssi_dbm + 117.03, abs=0.1)

    def test_delivery_happens_at_frame_end(self, sim, medium, params, radio_pair):
        from repro.phy.airtime import time_on_air

        a, b = radio_pair
        times = []
        b.on_receive = lambda f: times.append(sim.now)
        a.transmit(b"x" * 20)
        sim.run(until=1.0)
        assert times[0] == pytest.approx(time_on_air(20, params))

    def test_broadcast_reaches_all_listeners(self, sim, medium, params):
        radios = build_radios(
            sim, medium, [(0.0, 0.0), (50.0, 0.0), (0.0, 50.0), (50.0, 50.0)], params
        )
        collectors = [collect_frames(r) for r in radios[1:]]
        radios[0].transmit(b"bcast")
        sim.run(until=1.0)
        assert all(len(c) == 1 for c in collectors)


class TestHalfDuplex:
    def test_receiver_in_standby_misses_frame(self, sim, medium, params):
        a, b = build_radios(sim, medium, [(0.0, 0.0), (50.0, 0.0)], params, listen=False)
        a.start_receive()
        frames = collect_frames(b)  # b stays in STANDBY
        a.transmit(b"hello")
        sim.run(until=1.0)
        assert frames == []
        assert medium.outcome_counts()[DropReason.NOT_LISTENING] == 1

    def test_transmitting_radio_misses_concurrent_frame(self, sim, medium, params, radio_pair):
        a, b = radio_pair
        a_frames = collect_frames(a)
        b_frames = collect_frames(b)
        a.transmit(b"from-a" + bytes(50))
        sim.run(until=0.001)
        b.transmit(b"from-b" + bytes(50))  # b is deaf to a's frame now
        sim.run(until=2.0)
        # b was transmitting during the tail of a's frame -> lost for b.
        assert b_frames == []
        # a resumed RX only after its own tx -> missed b's start -> lost too.
        assert a_frames == []

    def test_late_rx_entry_misses_frame_start(self, sim, medium, params):
        a, b = build_radios(sim, medium, [(0.0, 0.0), (50.0, 0.0)], params, listen=False)
        a.start_receive()
        frames = collect_frames(b)
        a.transmit(b"hello-world")
        sim.run(until=0.01)
        b.start_receive()  # too late: the preamble already passed
        sim.run(until=1.0)
        assert frames == []


class TestCollisions:
    def test_equal_power_same_sf_collision_corrupts_both(self, sim, medium, params):
        # Two senders equidistant from the listener transmit simultaneously.
        a, b, c = build_radios(
            sim, medium, [(0.0, 0.0), (100.0, 0.0), (50.0, 0.0)], params
        )
        frames = collect_frames(c)
        a.transmit(b"from-a" + bytes(20))
        b.transmit(b"from-b" + bytes(20))
        sim.run(until=1.0)
        # Both frames arrive as CRC failures (collision), none clean.
        assert len(frames) == 2
        assert all(not f.crc_ok for f in frames)

    def test_capture_effect_strong_frame_survives(self, sim, medium, params):
        # a is 10 m from c, b is 120 m away: a's frame captures.
        a, b, c = build_radios(
            sim, medium, [(40.0, 0.0), (170.0, 0.0), (50.0, 0.0)], params
        )
        frames = collect_frames(c)
        a.transmit(b"strong" + bytes(20))
        b.transmit(b"weak--" + bytes(20))
        sim.run(until=1.0)
        good = [f for f in frames if f.crc_ok]
        assert len(good) == 1
        assert good[0].payload.startswith(b"strong")

    def test_partial_overlap_still_collides(self, sim, medium, params):
        a, b, c = build_radios(
            sim, medium, [(0.0, 0.0), (100.0, 0.0), (50.0, 0.0)], params
        )
        frames = collect_frames(c)
        a.transmit(b"first" + bytes(40))
        # Start b's frame halfway through a's.
        sim.run(until=0.05)
        b.transmit(b"second" + bytes(40))
        sim.run(until=2.0)
        assert all(not f.crc_ok for f in frames)

    def test_non_overlapping_frames_both_delivered(self, sim, medium, params):
        a, b, c = build_radios(
            sim, medium, [(0.0, 0.0), (100.0, 0.0), (50.0, 0.0)], params
        )
        frames = collect_frames(c)
        a.transmit(b"first" + bytes(10))
        sim.run(until=0.5)
        b.transmit(b"second" + bytes(10))
        sim.run(until=2.0)
        assert len([f for f in frames if f.crc_ok]) == 2

    def test_different_frequency_no_interference(self, sim, medium, params):
        other_freq = params.replace(frequency_mhz=869.5)
        a = Radio(sim, medium, 1, (0.0, 0.0), params)
        b = Radio(sim, medium, 2, (100.0, 0.0), other_freq)
        c = Radio(sim, medium, 3, (50.0, 0.0), params)
        c.start_receive()
        frames = collect_frames(c)
        a.transmit(b"on-868" + bytes(20))
        b.transmit(b"on-869" + bytes(20))
        sim.run(until=1.0)
        good = [f for f in frames if f.crc_ok]
        assert len(good) == 1
        assert good[0].payload.startswith(b"on-868")

    def test_wrong_sf_listener_hears_nothing(self, sim, medium, params):
        sf9 = params.replace(spreading_factor=SpreadingFactor.SF9)
        a = Radio(sim, medium, 1, (0.0, 0.0), params)
        b = Radio(sim, medium, 2, (50.0, 0.0), sf9)
        b.start_receive()
        frames = collect_frames(b)
        a.transmit(b"sf7 frame")
        sim.run(until=1.0)
        assert frames == []
        assert medium.outcome_counts()[DropReason.WRONG_PARAMS] == 1


class TestLossInjection:
    def test_injector_drops_frames(self, sim, params):
        medium = Medium(
            sim,
            LinkBudget(LogDistancePathLoss()),
            loss_injector=lambda tx, rx_id: True,
        )
        a, b = build_radios(sim, medium, [(0.0, 0.0), (50.0, 0.0)], params)
        frames = collect_frames(b)
        a.transmit(b"doomed")
        sim.run(until=1.0)
        assert frames == []
        assert medium.outcome_counts()[DropReason.INJECTED_LOSS] == 1

    def test_injector_sees_listener_id(self, sim, params):
        seen = []
        medium = Medium(
            sim,
            LinkBudget(LogDistancePathLoss()),
            loss_injector=lambda tx, rx_id: seen.append((tx.sender_id, rx_id)) or False,
        )
        a, b = build_radios(sim, medium, [(0.0, 0.0), (50.0, 0.0)], params)
        a.transmit(b"x")
        sim.run(until=1.0)
        assert seen == [(1, 2)]


class TestSensing:
    def test_channel_busy_during_transmission(self, sim, medium, params, radio_pair):
        a, b = radio_pair
        a.transmit(b"x" * 50)
        sim.run(until=0.01)
        assert medium.channel_busy((50.0, 0.0), params)
        sim.run(until=1.0)
        assert not medium.channel_busy((50.0, 0.0), params)

    def test_channel_quiet_out_of_range(self, sim, medium, params, radio_pair):
        a, b = radio_pair
        a.transmit(b"x" * 50)
        sim.run(until=0.01)
        assert not medium.channel_busy((5000.0, 0.0), params)

    def test_active_count(self, sim, medium, params, radio_pair):
        a, b = radio_pair
        assert medium.active_count() == 0
        a.transmit(b"x" * 50)
        sim.run(until=0.01)
        assert medium.active_count() == 1


class TestAttachment:
    def test_duplicate_node_id_rejected(self, sim, medium, params):
        Radio(sim, medium, 7, (0.0, 0.0), params)
        with pytest.raises(ValueError):
            Radio(sim, medium, 7, (1.0, 0.0), params)

    def test_detached_radio_gets_nothing(self, sim, medium, params, radio_pair):
        a, b = radio_pair
        frames = collect_frames(b)
        medium.detach(b.node_id)
        a.transmit(b"x")
        sim.run(until=1.0)
        assert frames == []

    def test_transmissions_total_counter(self, sim, medium, params, radio_pair):
        a, b = radio_pair
        a.transmit(b"1")
        sim.run(until=1.0)
        b.transmit(b"2")
        sim.run(until=2.0)
        assert medium.transmissions_total == 2


class TestTransmissionRecord:
    def test_overlap_detection(self):
        p = LoRaParams()
        t1 = Transmission(0, 1, (0, 0), p, b"", 0.0, 1.0)
        t2 = Transmission(1, 2, (0, 0), p, b"", 0.5, 1.5)
        t3 = Transmission(2, 3, (0, 0), p, b"", 1.0, 2.0)
        assert t1.overlaps(t2)
        assert not t1.overlaps(t3)  # touching endpoints do not overlap

    def test_airtime_property(self):
        t = Transmission(0, 1, (0, 0), LoRaParams(), b"", 2.0, 3.5)
        assert t.airtime == pytest.approx(1.5)
