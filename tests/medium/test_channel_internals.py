"""Focused tests on medium internals: overlap bookkeeping and pruning."""

import pytest

from repro.medium.channel import DropReason
from repro.phy.airtime import time_on_air

from tests.conftest import build_radios


class TestRecentPruning:
    def test_completed_transmissions_eventually_pruned(self, sim, medium, params):
        a, b = build_radios(sim, medium, [(0.0, 0.0), (50.0, 0.0)], params)
        for i in range(20):
            a.transmit(bytes(10))
            sim.run(until=sim.now + 1.0)
        # The recent list holds only transmissions that could still
        # overlap something — after quiet gaps, at most a couple.
        assert len(medium._recent) <= 2

    def test_back_to_back_chain_overlap_resolution(self, sim, medium, params):
        # Three overlapping transmissions in a chain: t1 overlaps t2,
        # t2 overlaps t3, t1 does not overlap t3.  t2's resolution (after
        # t1 completed) must still see t1 in the recent list.
        a, b, c = build_radios(
            sim, medium, [(0.0, 0.0), (100.0, 0.0), (50.0, 0.0)], params
        )
        toa = time_on_air(40, params)
        a.transmit(bytes(40))
        sim.run(until=toa * 0.6)
        b.transmit(bytes(40))  # overlaps a's tail
        sim.run(until=10.0)
        counts = medium.outcome_counts()
        # Both frames were corrupted at c (pairwise overlap).
        assert counts[DropReason.COLLISION] >= 2

    def test_outcome_histogram_totals(self, sim, medium, params):
        a, b = build_radios(sim, medium, [(0.0, 0.0), (50.0, 0.0)], params)
        a.transmit(bytes(5))
        sim.run(until=5.0)
        counts = medium.outcome_counts()
        # One transmission, one listener -> exactly one outcome recorded.
        assert sum(counts.values()) == 1
        assert counts[DropReason.DELIVERED] == 1


class TestKernelPriorityInterplay:
    def test_reception_resolves_before_same_time_timer(self, sim, medium, params):
        """A protocol timer scheduled for the exact frame-end instant must
        observe the delivered frame (PRIORITY_HIGH on reception)."""
        a, b = build_radios(sim, medium, [(0.0, 0.0), (50.0, 0.0)], params)
        got = []
        b.on_receive = got.append
        airtime = a.transmit(bytes(10))
        observed = []
        sim.schedule_at(airtime, lambda: observed.append(len(got)))
        sim.run(until=1.0)
        assert observed == [1]  # the frame landed before the timer ran
