"""Unit tests for the uniform spatial hash grid."""

import math
import random

import pytest

from repro.medium.spatial import SpatialGrid


class TestMaintenance:
    def test_insert_and_query(self):
        grid = SpatialGrid(100.0)
        grid.insert(1, (10.0, 10.0))
        grid.insert(2, (950.0, 10.0))
        assert len(grid) == 2
        assert 1 in grid and 2 in grid
        assert set(grid.near((0.0, 0.0), 50.0)) == {1}

    def test_insert_replaces_previous_position(self):
        grid = SpatialGrid(100.0)
        grid.insert(1, (10.0, 10.0))
        grid.insert(1, (990.0, 990.0))
        assert len(grid) == 1
        assert grid.near((0.0, 0.0), 50.0) == []
        assert grid.near((1000.0, 1000.0), 50.0) == [1]

    def test_remove(self):
        grid = SpatialGrid(100.0)
        grid.insert(1, (10.0, 10.0))
        grid.remove(1)
        grid.remove(99)  # unknown id: no-op
        assert len(grid) == 0
        assert grid.cell_count == 0

    def test_move_within_cell_keeps_bucket(self):
        grid = SpatialGrid(100.0)
        grid.insert(1, (10.0, 10.0))
        cells_before = grid.cell_count
        grid.move(1, (90.0, 90.0))
        assert grid.cell_count == cells_before
        assert grid.position_of(1) == (90.0, 90.0)

    def test_move_across_boundary_rebuckets(self):
        grid = SpatialGrid(100.0)
        grid.insert(1, (10.0, 10.0))
        grid.move(1, (110.0, 10.0))
        assert grid.near((10.0, 10.0), 10.0) == []
        assert grid.near((110.0, 10.0), 10.0) == [1]
        assert grid.cell_count == 1  # old cell dropped when emptied

    def test_move_unknown_id_inserts(self):
        grid = SpatialGrid(100.0)
        grid.move(7, (50.0, 50.0))
        assert 7 in grid

    def test_clear(self):
        grid = SpatialGrid(100.0)
        for i in range(10):
            grid.insert(i, (i * 30.0, 0.0))
        grid.clear()
        assert len(grid) == 0 and grid.cell_count == 0

    def test_negative_coordinates(self):
        grid = SpatialGrid(100.0)
        grid.insert(1, (-150.0, -150.0))
        assert grid.near((-150.0, -150.0), 10.0) == [1]

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            SpatialGrid(0.0)
        with pytest.raises(ValueError):
            SpatialGrid(-5.0)


class TestNearIsConservativeSuperset:
    """`near()` must return every node within the radius (it may return
    more — callers filter with the exact PHY test)."""

    @pytest.mark.parametrize("cell", [40.0, 120.0, 300.0])
    def test_superset_under_random_churn(self, cell):
        rng = random.Random(cell)
        grid = SpatialGrid(cell)
        points = {}
        for i in range(150):
            points[i] = (rng.uniform(-500, 500), rng.uniform(-500, 500))
            grid.insert(i, points[i])
        # random moves
        for i in rng.sample(sorted(points), 60):
            points[i] = (rng.uniform(-500, 500), rng.uniform(-500, 500))
            grid.move(i, points[i])
        for _ in range(25):
            q = (rng.uniform(-600, 600), rng.uniform(-600, 600))
            radius = rng.uniform(0.0, 400.0)
            got = set(grid.near(q, radius))
            want = {
                i
                for i, p in points.items()
                if math.hypot(p[0] - q[0], p[1] - q[1]) <= radius
            }
            assert want <= got

    def test_negative_radius_is_empty(self):
        grid = SpatialGrid(50.0)
        grid.insert(1, (0.0, 0.0))
        assert grid.near((0.0, 0.0), -1.0) == []

    def test_deterministic_order_for_fixed_history(self):
        def build():
            grid = SpatialGrid(100.0)
            for i in (3, 1, 2):
                grid.insert(i, (float(i), float(i)))
            return grid.near((0.0, 0.0), 90.0)

        assert build() == build()
        # Insertion order within a cell, not id order.
        assert build() == [3, 1, 2]
