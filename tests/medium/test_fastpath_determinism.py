"""The medium's fast paths must be invisible to simulated outcomes.

Reachability culling and link-budget memoization change wall-clock cost
only: for any fixed seed, the trace stream, the drop-reason histogram,
and every node's statistics must be byte-identical with the fast paths
on or off — including under mobility, attach/detach churn, and CAD
self-sensing.
"""

import pytest

from repro.medium.channel import DropReason, Medium
from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.phy.airtime import time_on_air
from repro.phy.link import LinkBudget
from repro.phy.pathloss import LogDistancePathLoss
from repro.topology.placement import grid_positions

from tests.conftest import build_radios

CFG = MesherConfig(hello_period_s=60.0, route_timeout_s=300.0, purge_period_s=30.0)


def _run_network(
    spacing: float,
    seed: int,
    *,
    fast: bool,
    batch: bool = True,
    duration: float = 900.0,
):
    net = MeshNetwork.from_positions(
        grid_positions(3, 3, spacing_m=spacing), config=CFG, seed=seed
    )
    if not fast:
        net.medium.use_reachability = False
        net.medium._link.cache_enabled = False
    if not batch:
        net.medium.use_batch_phy = False
    net.run(for_s=duration)
    events = tuple(
        (e.time, e.node, e.kind, tuple(sorted(e.detail.items())))
        for e in net.trace.events()
    )
    stats = tuple(
        (
            n.address,
            n.radio.frames_sent,
            n.radio.frames_received,
            n.radio.frames_crc_failed,
            tuple(sorted((r.address, r.via, r.metric) for r in n.table)),
        )
        for n in net.nodes
    )
    return events, net.medium.outcome_counts(), stats


class TestFastSlowEquivalence:
    @pytest.mark.parametrize("spacing", [80.0, 200.0])
    @pytest.mark.parametrize("seed", [3, 17])
    def test_trace_and_outcomes_identical(self, spacing, seed):
        fast = _run_network(spacing, seed, fast=True)
        slow = _run_network(spacing, seed, fast=False)
        assert fast[0] == slow[0], "trace streams diverged"
        assert fast[1] == slow[1], "drop-reason histograms diverged"
        assert fast[2] == slow[2], "node statistics diverged"

    def test_repeat_run_is_deterministic(self):
        first = _run_network(100.0, 9, fast=True)
        second = _run_network(100.0, 9, fast=True)
        assert first == second


class TestReachabilityInvalidation:
    def _deliveries(self, medium):
        return medium.outcome_counts()[DropReason.DELIVERED]

    def test_move_into_range_is_observed(self, sim, medium, params):
        a, b = build_radios(sim, medium, [(0.0, 0.0), (5000.0, 0.0)], params)
        a.transmit(bytes(10))
        sim.run(until=2.0)
        assert self._deliveries(medium) == 0  # far out of range
        b.move_to((60.0, 0.0))
        a.transmit(bytes(10))
        sim.run(until=4.0)
        assert self._deliveries(medium) == 1  # cached cull must be gone

    def test_move_out_of_range_is_observed(self, sim, medium, params):
        a, b = build_radios(sim, medium, [(0.0, 0.0), (60.0, 0.0)], params)
        a.transmit(bytes(10))
        sim.run(until=2.0)
        assert self._deliveries(medium) == 1
        b.move_to((5000.0, 0.0))
        a.transmit(bytes(10))
        sim.run(until=4.0)
        assert self._deliveries(medium) == 1

    def test_attach_after_cache_warm_is_seen(self, sim, medium, params):
        from repro.radio.driver import Radio

        (a,) = build_radios(sim, medium, [(0.0, 0.0)], params)
        a.transmit(bytes(10))
        sim.run(until=2.0)  # warms the reachable set for a's position
        b = Radio(sim, medium, 2, (70.0, 0.0), params)
        b.start_receive()
        a.transmit(bytes(10))
        sim.run(until=4.0)
        assert self._deliveries(medium) == 1

    def test_detach_after_cache_warm_is_seen(self, sim, medium, params):
        a, b = build_radios(sim, medium, [(0.0, 0.0), (60.0, 0.0)], params)
        a.transmit(bytes(10))
        sim.run(until=2.0)
        assert self._deliveries(medium) == 1
        medium.detach(b.node_id)
        a.transmit(bytes(10))
        sim.run(until=4.0)
        assert self._deliveries(medium) == 1  # nobody left to hear it

    def test_mobility_equivalent_with_and_without_culling(self, sim, params):
        def run(fast: bool):
            local_sim = type(sim)()
            medium = Medium(local_sim, LinkBudget(LogDistancePathLoss()))
            medium.use_reachability = fast
            if not fast:
                medium._link.cache_enabled = False
            a, b = build_radios(
                local_sim, medium, [(0.0, 0.0), (100.0, 0.0)], params
            )
            for step in range(8):
                b.move_to((60.0 + 40.0 * (step % 3), 0.0))
                a.transmit(bytes(12))
                local_sim.run(until=local_sim.now + 2.0)
            return medium.outcome_counts(), a.frames_sent, b.frames_received

        assert run(True) == run(False)


class TestBatchEquivalence:
    """The vectorized batch engine (grid candidates + matrix margins +
    aggregate culled-listener accounting) must be outcome-invisible."""

    @pytest.mark.parametrize("seed", [3, 17, 29])
    @pytest.mark.parametrize("spacing", [80.0, 200.0])
    def test_batch_on_off_identical(self, spacing, seed):
        on = _run_network(spacing, seed, fast=True, batch=True)
        off = _run_network(spacing, seed, fast=True, batch=False)
        assert on[0] == off[0], "trace streams diverged"
        assert on[1] == off[1], "drop-reason histograms diverged"
        assert on[2] == off[2], "node statistics diverged"

    def test_batch_matches_fully_scalar_path(self):
        batch = _run_network(80.0, 7, fast=True, batch=True)
        scalar = _run_network(80.0, 7, fast=False, batch=False)
        assert batch == scalar

    def test_batch_auto_enabled_for_static_models(self):
        net = MeshNetwork.from_positions(grid_positions(2, 2), config=CFG, seed=1)
        assert net.medium.use_batch_phy

    def test_batch_auto_disabled_for_order_sensitive_models(self):
        import random

        shadowed = LogDistancePathLoss(shadowing_sigma_db=3.0, rng=random.Random(5))
        net = MeshNetwork.from_positions(
            grid_positions(2, 2), config=CFG, seed=1, pathloss=shadowed
        )
        assert not net.medium.use_batch_phy
        assert not net.medium.use_reachability

    @pytest.mark.parametrize("seed", [5, 11, 23])
    def test_random_waypoint_mobility_identical(self, seed):
        from repro.topology.mobility import RandomWaypoint

        def run(batch: bool):
            net = MeshNetwork.from_positions(
                grid_positions(3, 4, spacing_m=90.0), config=CFG, seed=seed
            )
            if not batch:
                net.medium.use_batch_phy = False
            walkers = [
                RandomWaypoint(
                    net.sim,
                    net.node(addr),
                    area=(0.0, 0.0, 360.0, 270.0),
                    speed_mps=8.0,
                    pause_s=10.0,
                    step_s=2.0,
                )
                for addr in (net.addresses[0], net.addresses[5])
            ]
            for walker in walkers:
                walker.start()
            net.run(for_s=900.0)
            events = tuple(
                (e.time, e.node, e.kind, tuple(sorted(e.detail.items())))
                for e in net.trace.events()
            )
            stats = tuple(
                (
                    n.address,
                    n.radio.frames_sent,
                    n.radio.frames_received,
                    n.radio.frames_crc_failed,
                    tuple(sorted((r.address, r.via, r.metric) for r in n.table)),
                )
                for n in net.nodes
            )
            legs = tuple(w.legs_completed for w in walkers)
            return events, net.medium.outcome_counts(), stats, legs

        on = run(True)
        off = run(False)
        assert on[0] == off[0], "trace streams diverged under mobility"
        assert on[1:] == off[1:]

    def test_convergence_time_identical(self):
        def converge(batch: bool):
            net = MeshNetwork.from_positions(
                grid_positions(4, 4, spacing_m=100.0), config=CFG, seed=13
            )
            if not batch:
                net.medium.use_batch_phy = False
            return net.run_until_converged(timeout_s=3600.0)

        t_on = converge(True)
        t_off = converge(False)
        assert t_on is not None
        assert t_on == t_off


class TestSelectiveMoveInvalidation:
    """A move must evict only the reachable-cache entries it can affect
    (satellite: the wholesale notify_moved clear lost every PR 2 speedup
    under mobility)."""

    def test_two_node_move_keeps_unrelated_entries(self, sim, params):
        medium = Medium(sim, LinkBudget(LogDistancePathLoss()))
        assert medium.use_batch_phy
        # 48-node cluster near the origin plus a far-away 2-node pair:
        # no entry from the cluster involves the pair or vice versa.
        positions = [(i * 60.0, 0.0) for i in range(48)]
        positions += [(1.0e6, 0.0), (1.0e6 + 50.0, 0.0)]
        radios = build_radios(sim, medium, positions, params)
        for r in radios:
            r.transmit(bytes(8))
            sim.run(until=sim.now + 1.0)
        assert len(medium._reachable_cache) == 50
        cluster_keys = {(pos, id(params)) for pos in positions[:48]}
        radios[-2].move_to((1.0e6, 40.0))
        radios[-1].move_to((1.0e6 + 50.0, 40.0))
        remaining = set(medium._reachable_cache)
        assert cluster_keys <= remaining, "unrelated senders' entries evicted"
        # The movers' own entries (and their neighbour's, which contained
        # them) are gone.
        assert ((1.0e6, 0.0), id(params)) not in remaining
        assert ((1.0e6 + 50.0, 0.0), id(params)) not in remaining

    def test_move_into_cluster_range_invalidates(self, sim, params):
        medium = Medium(sim, LinkBudget(LogDistancePathLoss()))
        a, b = build_radios(sim, medium, [(0.0, 0.0), (1.0e6, 0.0)], params)
        a.transmit(bytes(8))
        sim.run(until=sim.now + 1.0)
        assert ((0.0, 0.0), id(params)) in medium._reachable_cache
        # b moves next to a: a's entry must be evicted even though b was
        # not a member of it (it may now be reachable).
        b.move_to((50.0, 0.0))
        assert ((0.0, 0.0), id(params)) not in medium._reachable_cache

    def test_scalar_path_still_clears_wholesale(self, sim, params):
        medium = Medium(
            sim, LinkBudget(LogDistancePathLoss()), use_batch_phy=False
        )
        a, b = build_radios(sim, medium, [(0.0, 0.0), (60.0, 0.0)], params)
        a.transmit(bytes(8))
        sim.run(until=sim.now + 1.0)
        assert medium._reachable_cache
        b.move_to((70.0, 0.0))
        assert not medium._reachable_cache


class TestCadSelfSensing:
    def test_transmitter_does_not_sense_itself(self, sim, medium, params):
        a, b = build_radios(sim, medium, [(0.0, 0.0), (50.0, 0.0)], params)
        a.transmit(bytes(50))
        sim.run(until=time_on_air(50, params) / 2)  # mid-flight
        # The channel IS busy for a third party at a's position...
        assert medium.channel_busy((0.0, 0.0), params)
        # ...but not for the transmitter itself (a radio cannot CAD-detect
        # its own frame: it is not receiving while it transmits).
        assert not medium.channel_busy(
            (0.0, 0.0), params, exclude_sender=a.node_id
        )
