"""Cache-correctness tests for the memoized link budget.

The memo must be an invisible optimisation: cached and uncached budgets
agree bit-for-bit, and every documented invalidation trigger (movement,
attribute edits, model resets, params changes) really drops stale
entries.
"""

import math

import pytest

from repro.phy.link import (
    LinkBudget,
    NOISE_FIGURE_DB,
    noise_floor_dbm,
    sensitivity_dbm,
    snr_floor_db,
)
from repro.phy.modulation import Bandwidth, LoRaParams, SpreadingFactor
from repro.phy.pathloss import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    MultiWallPathLoss,
    PathLossModel,
)

A = (0.0, 0.0)
B = (120.0, 35.0)


class TestCachedEqualsUncached:
    def test_same_quality_with_and_without_cache(self):
        params = LoRaParams()
        cached = LinkBudget(LogDistancePathLoss())
        uncached = LinkBudget(LogDistancePathLoss())
        uncached.cache_enabled = False
        for pair in [(A, B), (B, A), (A, (300.0, 0.0)), ((1.0, 1.0), (2.0, 2.0))]:
            q1 = cached.evaluate(*pair, params)
            q2 = uncached.evaluate(*pair, params)
            assert q1 == q2
        # Second pass must hit the memo and still agree.
        for pair in [(A, B), (B, A)]:
            assert cached.evaluate(*pair, params) == uncached.evaluate(*pair, params)

    def test_cache_hit_returns_identical_object(self):
        budget = LinkBudget(LogDistancePathLoss())
        params = LoRaParams()
        assert budget.evaluate(A, B, params) is budget.evaluate(A, B, params)


class TestReciprocalFolding:
    def test_both_directions_share_one_entry(self):
        budget = LinkBudget(LogDistancePathLoss())
        params = LoRaParams()
        forward = budget.evaluate(A, B, params)
        backward = budget.evaluate(B, A, params)
        assert forward is backward  # folded into one memo slot
        assert len(budget._quality_cache) == 1

    def test_asymmetric_gains_disable_folding(self):
        budget = LinkBudget(
            LogDistancePathLoss(), tx_antenna_gain_dbi=3.0, rx_antenna_gain_dbi=0.0
        )
        params = LoRaParams()
        budget.evaluate(A, B, params)
        budget.evaluate(B, A, params)
        assert len(budget._quality_cache) == 2

    def test_custom_model_defaults_to_not_reciprocal(self):
        class Asymmetric(PathLossModel):
            def loss_db(self, tx, rx, frequency_mhz):
                return 60.0 + tx[0]  # depends on direction

        budget = LinkBudget(Asymmetric())
        params = LoRaParams()
        q_ab = budget.evaluate(A, B, params)
        q_ba = budget.evaluate(B, A, params)
        assert q_ab.rssi_dbm != q_ba.rssi_dbm
        assert len(budget._quality_cache) == 2

    def test_builtin_models_declare_reciprocity(self):
        assert FreeSpacePathLoss().reciprocal
        assert LogDistancePathLoss().reciprocal
        assert MultiWallPathLoss([]).reciprocal


class TestInvalidation:
    def test_gain_edit_plus_invalidate_recomputes(self):
        budget = LinkBudget(LogDistancePathLoss())
        params = LoRaParams()
        before = budget.evaluate(A, B, params)
        budget.fixed_loss_db = 10.0
        budget.invalidate()
        after = budget.evaluate(A, B, params)
        assert after.rssi_dbm == pytest.approx(before.rssi_dbm - 10.0)

    def test_invalidate_recomputes_symmetry_flag(self):
        budget = LinkBudget(LogDistancePathLoss())
        params = LoRaParams()
        budget.tx_antenna_gain_dbi = 5.0  # now asymmetric
        budget.invalidate()
        budget.evaluate(A, B, params)
        budget.evaluate(B, A, params)
        assert len(budget._quality_cache) == 2

    def test_distinct_params_objects_get_distinct_entries(self):
        budget = LinkBudget(LogDistancePathLoss())
        p7 = LoRaParams(spreading_factor=SpreadingFactor.SF7)
        p12 = LoRaParams(spreading_factor=SpreadingFactor.SF12)
        q7 = budget.evaluate(A, B, p7)
        q12 = budget.evaluate(A, B, p12)
        # Same geometry, different demodulation floor.
        assert q7.rssi_dbm == q12.rssi_dbm
        assert q7.above_sensitivity != q12.above_sensitivity or q7 == q12
        assert len(budget._quality_cache) == 2

    def test_pathloss_reset_with_invalidate_changes_realisation(self):
        import random

        model = LogDistancePathLoss(shadowing_sigma_db=6.0, rng=random.Random(3))
        budget = LinkBudget(model)
        params = LoRaParams()
        first = budget.evaluate(A, B, params)
        # Without invalidate the memo pins the old draw even after reset.
        model.reset()
        assert budget.evaluate(A, B, params) is first
        budget.invalidate()
        second = budget.evaluate(A, B, params)
        assert second.rssi_dbm != first.rssi_dbm  # fresh shadowing draw

    def test_time_varying_model_disables_cache(self):
        class Fading(PathLossModel):
            def loss_db(self, tx, rx, frequency_mhz):
                return 80.0

            @property
            def time_varying(self):
                return True

        budget = LinkBudget(Fading())
        assert not budget.cache_enabled
        budget.evaluate(A, B, LoRaParams())
        assert budget._quality_cache == {}


class TestPrecomputedFloors:
    """The table-driven floors must agree with the closed-form maths."""

    def test_noise_floor_table_matches_formula(self):
        for bw in Bandwidth:
            expected = -174.0 + 10.0 * math.log10(bw.hz) + NOISE_FIGURE_DB
            assert noise_floor_dbm(bw) == pytest.approx(expected, abs=1e-12)

    def test_non_default_noise_figure_bypasses_table(self):
        got = noise_floor_dbm(Bandwidth.BW125, noise_figure_db=9.0)
        assert got == pytest.approx(-174.0 + 10.0 * math.log10(125_000) + 9.0)

    def test_sensitivity_table_matches_components(self):
        for bw in Bandwidth:
            for sf in SpreadingFactor:
                params = LoRaParams(bandwidth=bw, spreading_factor=sf)
                assert sensitivity_dbm(params) == pytest.approx(
                    noise_floor_dbm(bw) + snr_floor_db(sf), abs=1e-12
                )

    def test_quality_snr_consistent_with_floors(self):
        budget = LinkBudget(LogDistancePathLoss())
        params = LoRaParams()
        q = budget.evaluate(A, B, params)
        assert q.snr_db == pytest.approx(q.rssi_dbm - noise_floor_dbm(params.bandwidth))
        assert q.above_sensitivity == (q.snr_db >= snr_floor_db(params.spreading_factor))
