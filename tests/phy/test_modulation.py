"""Tests for LoRa modulation parameter types."""

import pytest

from repro.phy.modulation import Bandwidth, CodingRate, LoRaParams, SpreadingFactor


class TestSpreadingFactor:
    def test_chips_per_symbol(self):
        assert SpreadingFactor.SF7.chips_per_symbol == 128
        assert SpreadingFactor.SF12.chips_per_symbol == 4096

    def test_all_six_factors_exist(self):
        assert [int(sf) for sf in SpreadingFactor] == [7, 8, 9, 10, 11, 12]


class TestBandwidth:
    def test_hz_and_khz(self):
        assert Bandwidth.BW125.hz == 125_000
        assert Bandwidth.BW125.khz == 125.0
        assert Bandwidth.BW500.hz == 500_000


class TestCodingRate:
    def test_denominator(self):
        assert CodingRate.CR4_5.denominator == 5
        assert CodingRate.CR4_8.denominator == 8

    def test_ratio(self):
        assert CodingRate.CR4_5.ratio == pytest.approx(0.8)
        assert CodingRate.CR4_8.ratio == pytest.approx(0.5)


class TestLoRaParams:
    def test_defaults_match_demo_configuration(self):
        p = LoRaParams()
        assert p.spreading_factor is SpreadingFactor.SF7
        assert p.bandwidth is Bandwidth.BW125
        assert p.coding_rate is CodingRate.CR4_5
        assert p.preamble_symbols == 8
        assert p.explicit_header
        assert p.crc_enabled
        assert p.frequency_mhz == 868.0

    def test_symbol_time_sf7_bw125(self):
        # 128 chips / 125 kHz = 1.024 ms
        assert LoRaParams().symbol_time == pytest.approx(1.024e-3)

    def test_symbol_time_sf12_bw125(self):
        p = LoRaParams(spreading_factor=SpreadingFactor.SF12)
        assert p.symbol_time == pytest.approx(32.768e-3)

    def test_ldro_auto_enabled_for_slow_symbols(self):
        # SF11/SF12 at BW125 have symbol times >= 16 ms -> LDRO mandatory.
        assert LoRaParams(spreading_factor=SpreadingFactor.SF11).ldro_enabled
        assert LoRaParams(spreading_factor=SpreadingFactor.SF12).ldro_enabled
        assert not LoRaParams(spreading_factor=SpreadingFactor.SF10).ldro_enabled

    def test_ldro_explicit_override_wins(self):
        p = LoRaParams(spreading_factor=SpreadingFactor.SF12, low_data_rate=False)
        assert not p.ldro_enabled

    def test_ldro_off_for_sf12_bw500(self):
        p = LoRaParams(spreading_factor=SpreadingFactor.SF12, bandwidth=Bandwidth.BW500)
        assert p.symbol_time == pytest.approx(8.192e-3)
        assert not p.ldro_enabled

    def test_short_preamble_rejected(self):
        with pytest.raises(ValueError):
            LoRaParams(preamble_symbols=4)

    def test_out_of_band_frequency_rejected(self):
        with pytest.raises(ValueError):
            LoRaParams(frequency_mhz=2400.0)

    def test_excessive_tx_power_rejected(self):
        with pytest.raises(ValueError):
            LoRaParams(tx_power_dbm=30.0)

    def test_raw_bitrate_sf7(self):
        # SF7 CR4/5 BW125: 7 * 0.8 * 125000 / 128 = 5468.75 bit/s
        assert LoRaParams().raw_bitrate == pytest.approx(5468.75)

    def test_replace_returns_modified_copy(self):
        base = LoRaParams()
        changed = base.replace(spreading_factor=SpreadingFactor.SF9)
        assert changed.spreading_factor is SpreadingFactor.SF9
        assert base.spreading_factor is SpreadingFactor.SF7

    def test_params_hashable_and_frozen(self):
        p = LoRaParams()
        assert hash(p) == hash(LoRaParams())
        with pytest.raises(AttributeError):
            p.preamble_symbols = 12  # type: ignore[misc]
