"""Tests for the link budget and capture rules."""

import pytest

from repro.phy.link import (
    CAPTURE_THRESHOLD_DB,
    INTER_SF_REJECTION_DB,
    LinkBudget,
    noise_floor_dbm,
    sensitivity_dbm,
    snr_floor_db,
    survives_interference,
)
from repro.phy.modulation import Bandwidth, LoRaParams, SpreadingFactor
from repro.phy.pathloss import FreeSpacePathLoss, LogDistancePathLoss


class TestFloors:
    def test_snr_floor_monotonic_in_sf(self):
        floors = [snr_floor_db(sf) for sf in SpreadingFactor]
        assert all(b < a for a, b in zip(floors, floors[1:]))

    def test_sf7_floor_datasheet_value(self):
        assert snr_floor_db(SpreadingFactor.SF7) == -7.5

    def test_noise_floor_bw125(self):
        # -174 + 10log10(125e3) + 6 = -117.03 dBm
        assert noise_floor_dbm(Bandwidth.BW125) == pytest.approx(-117.03, abs=0.01)

    def test_sensitivity_sf7_bw125(self):
        # Noise floor + SNR floor = -124.5 dBm (datasheet: -124 dBm)
        assert sensitivity_dbm(LoRaParams()) == pytest.approx(-124.5, abs=0.1)

    def test_sensitivity_improves_with_sf(self):
        values = [
            sensitivity_dbm(LoRaParams(spreading_factor=sf)) for sf in SpreadingFactor
        ]
        assert all(b < a for a, b in zip(values, values[1:]))


class TestLinkBudget:
    def test_received_power_includes_gains_and_losses(self):
        budget = LinkBudget(
            FreeSpacePathLoss(), tx_antenna_gain_dbi=2.0, rx_antenna_gain_dbi=3.0, fixed_loss_db=1.0
        )
        base = LinkBudget(FreeSpacePathLoss())
        delta = budget.received_power_dbm((0, 0), (100, 0), LoRaParams()) - base.received_power_dbm(
            (0, 0), (100, 0), LoRaParams()
        )
        assert delta == pytest.approx(4.0)

    def test_default_channel_sf7_range_about_135m(self):
        budget = LinkBudget(LogDistancePathLoss())
        p = LoRaParams()
        assert budget.in_range((0, 0), (130, 0), p)
        assert not budget.in_range((0, 0), (150, 0), p)

    def test_higher_sf_extends_range(self):
        budget = LinkBudget(LogDistancePathLoss())
        sf12 = LoRaParams(spreading_factor=SpreadingFactor.SF12)
        assert budget.in_range((0, 0), (400, 0), sf12)

    def test_evaluate_reports_consistent_fields(self):
        budget = LinkBudget(LogDistancePathLoss())
        q = budget.evaluate((0, 0), (100, 0), LoRaParams())
        assert q.snr_db == pytest.approx(q.rssi_dbm - noise_floor_dbm(Bandwidth.BW125))
        assert q.above_sensitivity == (q.snr_db >= snr_floor_db(SpreadingFactor.SF7))


class TestCapture:
    def test_same_sf_capture_needs_6db(self):
        sf = SpreadingFactor.SF7
        assert survives_interference(-100.0, sf, -106.0, sf)
        assert not survives_interference(-100.0, sf, -105.0, sf)

    def test_same_sf_equal_power_destroys_both(self):
        sf = SpreadingFactor.SF7
        assert not survives_interference(-100.0, sf, -100.0, sf)

    def test_cross_sf_quasi_orthogonal(self):
        # A slightly stronger different-SF interferer does not corrupt.
        assert survives_interference(
            -100.0, SpreadingFactor.SF7, -95.0, SpreadingFactor.SF9
        )

    def test_cross_sf_very_strong_interferer_corrupts(self):
        assert not survives_interference(
            -100.0, SpreadingFactor.SF7, -100.0 + INTER_SF_REJECTION_DB, SpreadingFactor.SF9
        )

    def test_thresholds_are_sane(self):
        assert CAPTURE_THRESHOLD_DB > 0
        assert INTER_SF_REJECTION_DB > CAPTURE_THRESHOLD_DB
