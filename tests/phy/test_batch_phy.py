"""The batch PHY engine must agree with scalar evaluation *exactly*.

Not "within tolerance": the medium swaps the batch engine in for the
scalar loop at runtime, so any last-ulp divergence would change reachable
sets and therefore simulated outcomes.  Both paths route their
transcendentals through the same numpy kernels and associate every other
op identically, so the property below is exact float equality.

Set ``REPRO_REQUIRE_BATCH=1`` (CI does) to turn the numpy-missing skip
into a hard failure — an environment that silently skipped this test
would certify nothing about the engine actually used in the benchmarks.
"""

import math
import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import batch
from repro.phy.fading import BlockFadingPathLoss
from repro.phy.link import LinkBudget
from repro.phy.modulation import Bandwidth, LoRaParams, SpreadingFactor
from repro.phy.pathloss import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    MultiWallPathLoss,
)
from repro.sim.kernel import Simulator


def _require_numpy():
    if batch.HAVE_NUMPY:
        return
    if os.environ.get("REPRO_REQUIRE_BATCH"):
        pytest.fail("REPRO_REQUIRE_BATCH is set but numpy is unavailable")
    pytest.skip("numpy not installed")


def _models():
    return [
        FreeSpacePathLoss(),
        LogDistancePathLoss(),
        LogDistancePathLoss(exponent=3.2, reference_distance_m=10.0, reference_loss_db=60.0),
        MultiWallPathLoss(
            [((50.0, -100.0), (50.0, 100.0)), ((-25.0, 40.0), (200.0, 40.0))],
            wall_loss_db=7.5,
        ),
    ]


positions_strategy = st.lists(
    st.tuples(
        st.floats(min_value=-500.0, max_value=2000.0, allow_nan=False),
        st.floats(min_value=-500.0, max_value=2000.0, allow_nan=False),
    ),
    min_size=1,
    max_size=12,
)

params_strategy = st.builds(
    LoRaParams,
    spreading_factor=st.sampled_from(list(SpreadingFactor)),
    bandwidth=st.sampled_from(list(Bandwidth)),
    frequency_mhz=st.sampled_from([433.0, 868.0, 915.0]),
    tx_power_dbm=st.floats(min_value=2.0, max_value=20.0, allow_nan=False),
)


class TestExactEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(txs=positions_strategy, rxs=positions_strategy, params=params_strategy)
    def test_matrices_equal_scalar_evaluate(self, txs, rxs, params):
        _require_numpy()
        for model in _models():
            budget = LinkBudget(model)
            assert batch.supports_batch(budget)
            m = batch.link_matrices(budget, txs, rxs, params)
            for i, tx in enumerate(txs):
                for j, rx in enumerate(rxs):
                    q = budget.evaluate(tx, rx, params)
                    assert m.rssi_dbm[i, j] == q.rssi_dbm, (model, tx, rx)
                    assert m.snr_db[i, j] == q.snr_db, (model, tx, rx)
                    assert bool(m.above_sensitivity[i, j]) == q.above_sensitivity

    @settings(max_examples=30, deadline=None)
    @given(txs=positions_strategy, rxs=positions_strategy, params=params_strategy)
    def test_antenna_gains_and_fixed_loss(self, txs, rxs, params):
        _require_numpy()
        budget = LinkBudget(
            LogDistancePathLoss(),
            tx_antenna_gain_dbi=2.15,
            rx_antenna_gain_dbi=-1.5,
            fixed_loss_db=0.7,
        )
        m = batch.link_matrices(budget, txs, rxs, params)
        for i, tx in enumerate(txs):
            for j, rx in enumerate(rxs):
                q = budget.evaluate(tx, rx, params)
                assert m.rssi_dbm[i, j] == q.rssi_dbm
                assert m.snr_db[i, j] == q.snr_db

    @settings(max_examples=40, deadline=None)
    @given(positions=positions_strategy, params=params_strategy)
    def test_max_range_is_conservative(self, positions, params):
        """Every pair the exact margin test admits lies within max_range."""
        _require_numpy()
        for model in _models():
            budget = LinkBudget(model)
            rng_m = batch.max_range_m(budget, params)
            assert rng_m is not None and rng_m >= 0.0
            for a in positions:
                for b in positions:
                    if budget.evaluate(a, b, params).above_sensitivity:
                        d = math.hypot(a[0] - b[0], a[1] - b[1])
                        assert d <= rng_m, (model, a, b, d, rng_m)


class TestSupportGating:
    def test_builtin_static_models_supported(self):
        _require_numpy()
        for model in _models():
            assert batch.supports_batch_model(model)

    def test_order_sensitive_shadowing_excluded(self):
        _require_numpy()
        model = LogDistancePathLoss(shadowing_sigma_db=3.0, rng=random.Random(1))
        assert not batch.supports_batch_model(model)

    def test_time_varying_fading_excluded(self):
        _require_numpy()
        sim = Simulator()
        model = BlockFadingPathLoss(
            LogDistancePathLoss(), sim, sigma_db=2.0, coherence_time_s=10.0, seed=4
        )
        assert not batch.supports_batch_model(model)

    def test_unregistered_subclass_excluded(self):
        """A subclass overriding loss_db must never inherit the parent's
        vectorized kernel (registration is by exact type)."""
        _require_numpy()

        class Custom(LogDistancePathLoss):
            def loss_db(self, tx, rx, frequency_mhz):
                return 0.0

        assert not batch.supports_batch_model(Custom())

    def test_custom_registration(self):
        _require_numpy()

        class Flat(FreeSpacePathLoss):
            pass

        try:
            batch.register_batch_kernels(
                Flat,
                lambda model, txs, rxs, f: batch.batch_loss_db(
                    FreeSpacePathLoss(), txs, rxs, f
                ),
                lambda model, max_loss, f: 10.0,
            )
            assert batch.supports_batch_model(Flat())
        finally:
            batch._BATCH_KERNELS.pop(Flat, None)


class TestMaxRangeEdgeCases:
    def test_unbounded_without_kernel(self):
        _require_numpy()

        class Alien(LogDistancePathLoss):
            pass

        assert batch.max_range_m(LinkBudget(Alien()), LoRaParams()) is None

    def test_negative_budget_clamps_to_zero(self):
        _require_numpy()
        budget = LinkBudget(MultiWallPathLoss([]), fixed_loss_db=300.0)
        rng_m = batch.max_range_m(budget, LoRaParams())
        assert rng_m is not None and rng_m >= 0.0
