"""Tests for the Semtech time-on-air formula.

Reference values cross-checked against the Semtech SX1272 LoRa calculator
/ AN1200.22 worked examples.
"""

import pytest

from repro.phy.airtime import (
    effective_bitrate,
    max_payload_for_airtime,
    payload_duration,
    payload_symbols,
    preamble_duration,
    symbol_duration,
    time_on_air,
)
from repro.phy.modulation import Bandwidth, CodingRate, LoRaParams, SpreadingFactor


class TestSymbolAndPreamble:
    def test_symbol_duration_sf7(self, params):
        assert symbol_duration(params) == pytest.approx(1.024e-3)

    def test_preamble_duration_default(self, params):
        # (8 + 4.25) symbols * 1.024 ms = 12.544 ms
        assert preamble_duration(params) == pytest.approx(12.544e-3)

    def test_longer_preamble_costs_more(self, params):
        longer = params.replace(preamble_symbols=12)
        assert preamble_duration(longer) > preamble_duration(params)


class TestPayloadSymbols:
    def test_empty_payload_is_base_eight_symbols(self, params):
        # 8B - 4SF + 28 + 16 = -28+44 = 16... numerator = 0-28+28+16-0 = 16
        # ceil(16/20)*5 = 5 -> 13 total
        assert payload_symbols(0, params) == 13

    def test_known_value_10_bytes_sf7(self, params):
        # numerator = 80 - 28 + 28 + 16 - 0 = 96; denom = 4*7 = 28
        # ceil(96/28) = 4; 4*5 = 20; +8 base = 28
        assert payload_symbols(10, params) == 28

    def test_known_value_20_bytes_sf12_ldro(self):
        p = LoRaParams(spreading_factor=SpreadingFactor.SF12)
        # numerator = 160 - 48 + 28 + 16 = 156; denom = 4*(12-2)=40
        # ceil(156/40)=4; 4*5=20; +8=28
        assert payload_symbols(20, p) == 28

    def test_negative_payload_rejected(self, params):
        with pytest.raises(ValueError):
            payload_symbols(-1, params)

    def test_crc_adds_symbols(self, params):
        with_crc = payload_symbols(10, params)
        without = payload_symbols(10, params.replace(crc_enabled=False))
        assert with_crc >= without

    def test_implicit_header_saves_symbols(self, params):
        explicit = payload_symbols(10, params)
        implicit = payload_symbols(10, params.replace(explicit_header=False))
        assert implicit <= explicit

    def test_higher_coding_rate_costs_more(self, params):
        cr45 = payload_symbols(50, params)
        cr48 = payload_symbols(50, params.replace(coding_rate=CodingRate.CR4_8))
        assert cr48 > cr45


class TestTimeOnAir:
    def test_reference_value_sf7_20_bytes(self, params):
        # Semtech calculator: SF7 BW125 CR4/5 CRC on, explicit header,
        # 8-symbol preamble, 20 B payload -> 56.58 ms.
        toa = time_on_air(20, params)
        assert toa == pytest.approx(0.05658, rel=1e-3)

    def test_reference_value_sf12_20_bytes(self):
        p = LoRaParams(spreading_factor=SpreadingFactor.SF12)
        # Same calculator: SF12 BW125 -> 1318.9 ms.
        assert time_on_air(20, p) == pytest.approx(1.3189, rel=1e-3)

    def test_airtime_monotonic_in_payload(self, params):
        times = [time_on_air(n, params) for n in range(0, 255, 16)]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_airtime_monotonic_in_sf(self):
        times = [
            time_on_air(32, LoRaParams(spreading_factor=sf)) for sf in SpreadingFactor
        ]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_wider_bandwidth_is_faster(self):
        narrow = time_on_air(32, LoRaParams(bandwidth=Bandwidth.BW125))
        wide = time_on_air(32, LoRaParams(bandwidth=Bandwidth.BW500))
        assert wide < narrow

    def test_sf_step_roughly_doubles_airtime(self):
        # Each SF step doubles symbol time; payload airtime roughly doubles
        # (slightly less because symbols carry more bits at higher SF).
        t9 = time_on_air(64, LoRaParams(spreading_factor=SpreadingFactor.SF9))
        t10 = time_on_air(64, LoRaParams(spreading_factor=SpreadingFactor.SF10))
        assert 1.6 < t10 / t9 < 2.4

    def test_total_is_preamble_plus_payload(self, params):
        assert time_on_air(40, params) == pytest.approx(
            preamble_duration(params) + payload_duration(40, params)
        )


class TestSizing:
    def test_max_payload_for_airtime_roundtrip(self, params):
        budget = 0.1
        size = max_payload_for_airtime(budget, params)
        assert time_on_air(size, params) <= budget
        assert time_on_air(size + 1, params) > budget

    def test_max_payload_respects_limit(self, params):
        assert max_payload_for_airtime(10.0, params, limit=100) == 100

    def test_max_payload_impossible_budget(self):
        p = LoRaParams(spreading_factor=SpreadingFactor.SF12)
        assert max_payload_for_airtime(0.001, p) == -1

    def test_effective_bitrate_below_raw(self, params):
        # Preamble and framing overhead keep goodput under the raw rate.
        assert effective_bitrate(100, params) < params.raw_bitrate

    def test_effective_bitrate_improves_with_size(self, params):
        assert effective_bitrate(200, params) > effective_bitrate(10, params)
