"""Tests for propagation models."""

import math
import random

import pytest

from repro.phy.pathloss import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    MultiWallPathLoss,
    distance,
    _segments_intersect,
)


class TestDistance:
    def test_euclidean(self):
        assert distance((0, 0), (3, 4)) == 5.0

    def test_zero(self):
        assert distance((1, 1), (1, 1)) == 0.0


class TestFreeSpace:
    def test_reference_value_1km_868mhz(self):
        # FSPL(1 km, 868 MHz) = 20log10(1) + 20log10(868) + 32.44 = 91.2 dB
        loss = FreeSpacePathLoss().loss_db((0, 0), (1000, 0), 868.0)
        assert loss == pytest.approx(91.21, abs=0.05)

    def test_doubling_distance_adds_6db(self):
        model = FreeSpacePathLoss()
        near = model.loss_db((0, 0), (500, 0), 868.0)
        far = model.loss_db((0, 0), (1000, 0), 868.0)
        assert far - near == pytest.approx(6.02, abs=0.01)

    def test_colocated_nodes_use_distance_floor(self):
        model = FreeSpacePathLoss()
        assert math.isfinite(model.loss_db((0, 0), (0, 0), 868.0))

    def test_higher_frequency_more_loss(self):
        model = FreeSpacePathLoss()
        assert model.loss_db((0, 0), (100, 0), 915.0) > model.loss_db((0, 0), (100, 0), 868.0)


class TestLogDistance:
    def test_reference_distance_gives_reference_loss(self):
        model = LogDistancePathLoss()
        assert model.loss_db((0, 0), (40, 0), 868.0) == pytest.approx(127.41)

    def test_exponent_slope(self):
        model = LogDistancePathLoss(exponent=3.0, reference_distance_m=10.0, reference_loss_db=60.0)
        # One decade of distance adds 10*n dB.
        assert model.loss_db((0, 0), (100, 0), 868.0) - model.loss_db(
            (0, 0), (10, 0), 868.0
        ) == pytest.approx(30.0)

    def test_invalid_exponent_rejected(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(exponent=0.0)

    def test_shadowing_requires_rng(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(shadowing_sigma_db=4.0)

    def test_shadowing_frozen_per_link(self):
        model = LogDistancePathLoss(shadowing_sigma_db=6.0, rng=random.Random(3))
        first = model.loss_db((0, 0), (100, 0), 868.0)
        second = model.loss_db((0, 0), (100, 0), 868.0)
        assert first == second

    def test_shadowing_reciprocal(self):
        model = LogDistancePathLoss(shadowing_sigma_db=6.0, rng=random.Random(3))
        forward = model.loss_db((0, 0), (100, 0), 868.0)
        backward = model.loss_db((100, 0), (0, 0), 868.0)
        assert forward == backward

    def test_shadowing_varies_across_links(self):
        model = LogDistancePathLoss(shadowing_sigma_db=6.0, rng=random.Random(3))
        a = model.loss_db((0, 0), (100, 0), 868.0)
        b = model.loss_db((0, 0), (0, 100), 868.0)
        assert a != b  # same distance, different link -> different draw

    def test_reset_redraws_shadowing(self):
        model = LogDistancePathLoss(shadowing_sigma_db=6.0, rng=random.Random(3))
        first = model.loss_db((0, 0), (100, 0), 868.0)
        model.reset()
        second = model.loss_db((0, 0), (100, 0), 868.0)
        assert first != second


class TestMultiWall:
    def test_wall_adds_penalty(self):
        wall = [((50.0, -10.0), (50.0, 10.0))]
        model = MultiWallPathLoss(wall, wall_loss_db=8.0)
        clear = MultiWallPathLoss([], wall_loss_db=8.0)
        through = model.loss_db((0, 0), (100, 0), 868.0)
        free = clear.loss_db((0, 0), (100, 0), 868.0)
        assert through - free == pytest.approx(8.0)

    def test_parallel_path_misses_wall(self):
        wall = [((50.0, 5.0), (50.0, 10.0))]
        model = MultiWallPathLoss(wall, wall_loss_db=8.0)
        clear = MultiWallPathLoss([], wall_loss_db=8.0)
        assert model.loss_db((0, 0), (100, 0), 868.0) == pytest.approx(
            clear.loss_db((0, 0), (100, 0), 868.0)
        )

    def test_multiple_walls_accumulate(self):
        walls = [((30.0, -10.0), (30.0, 10.0)), ((60.0, -10.0), (60.0, 10.0))]
        model = MultiWallPathLoss(walls, wall_loss_db=5.0)
        clear = MultiWallPathLoss([], wall_loss_db=5.0)
        delta = model.loss_db((0, 0), (100, 0), 868.0) - clear.loss_db((0, 0), (100, 0), 868.0)
        assert delta == pytest.approx(10.0)

    def test_negative_wall_loss_rejected(self):
        with pytest.raises(ValueError):
            MultiWallPathLoss([], wall_loss_db=-1.0)


class TestSegmentIntersection:
    def test_crossing_segments(self):
        assert _segments_intersect((0, 0), (10, 10), (0, 10), (10, 0))

    def test_disjoint_segments(self):
        assert not _segments_intersect((0, 0), (1, 1), (5, 5), (6, 6))

    def test_touching_endpoint(self):
        assert _segments_intersect((0, 0), (5, 5), (5, 5), (10, 0))

    def test_collinear_overlap(self):
        assert _segments_intersect((0, 0), (10, 0), (5, 0), (15, 0))
