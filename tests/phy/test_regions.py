"""Tests for regulatory regions and duty-cycle accounting."""

import pytest

from repro.phy.regions import (
    EU868,
    UNRESTRICTED,
    US915,
    DutyCycleAccountant,
    DutyCycleViolation,
    Region,
)


class TestRegionDefinitions:
    def test_eu868_is_one_percent(self):
        assert EU868.duty_cycle == 0.01
        assert EU868.window_s == 3600.0

    def test_us915_dwell_limit(self):
        assert US915.max_dwell_time_s == pytest.approx(0.4)
        assert US915.duty_cycle == 1.0

    def test_invalid_duty_cycle_rejected(self):
        with pytest.raises(ValueError):
            Region(name="bad", duty_cycle=0.0, max_dwell_time_s=1.0, max_eirp_dbm=14.0)
        with pytest.raises(ValueError):
            Region(name="bad", duty_cycle=1.5, max_dwell_time_s=1.0, max_eirp_dbm=14.0)


class TestAccounting:
    def test_fresh_accountant_allows_transmission(self):
        acct = DutyCycleAccountant(EU868)
        assert acct.can_transmit(0.0, 1.0)

    def test_budget_exhaustion(self):
        acct = DutyCycleAccountant(EU868)
        # EU868 budget: 36 s of airtime per hour.
        acct.record(0.0, 36.0)
        assert not acct.can_transmit(1.0, 0.1)

    def test_budget_frees_as_window_slides(self):
        acct = DutyCycleAccountant(EU868)
        acct.record(0.0, 36.0)
        assert not acct.can_transmit(100.0, 1.0)
        assert acct.can_transmit(3601.0, 1.0)

    def test_window_utilisation(self):
        acct = DutyCycleAccountant(EU868)
        acct.record(0.0, 18.0)
        assert acct.window_utilisation(1.0) == pytest.approx(0.005)
        assert acct.window_utilisation(3601.0) == pytest.approx(0.0)

    def test_total_airtime_never_pruned(self):
        acct = DutyCycleAccountant(EU868)
        acct.record(0.0, 10.0)
        acct.record(4000.0, 5.0)
        assert acct.total_airtime_s == pytest.approx(15.0)

    def test_next_allowed_time_now_when_budget_free(self):
        acct = DutyCycleAccountant(EU868)
        assert acct.next_allowed_time(5.0, 1.0) == 5.0

    def test_next_allowed_time_after_exhaustion(self):
        acct = DutyCycleAccountant(EU868)
        acct.record(10.0, 36.0)
        # The frame that exhausted the budget ages out at 10 + 3600.
        assert acct.next_allowed_time(100.0, 1.0) == pytest.approx(3610.0)

    def test_next_allowed_walks_multiple_records(self):
        acct = DutyCycleAccountant(EU868)
        acct.record(0.0, 20.0)
        acct.record(50.0, 16.0)
        # Needs 10 s freed: the first record (20 s) ageing out suffices.
        assert acct.next_allowed_time(60.0, 10.0) == pytest.approx(3600.0)

    def test_dwell_time_violation_raises_on_record(self):
        acct = DutyCycleAccountant(US915)
        with pytest.raises(DutyCycleViolation):
            acct.record(0.0, 0.5)

    def test_dwell_time_blocks_can_transmit(self):
        acct = DutyCycleAccountant(US915)
        assert not acct.can_transmit(0.0, 0.5)
        assert acct.can_transmit(0.0, 0.3)

    def test_dwell_violation_in_next_allowed(self):
        acct = DutyCycleAccountant(US915)
        with pytest.raises(DutyCycleViolation):
            acct.next_allowed_time(0.0, 1.0)

    def test_negative_airtime_rejected(self):
        acct = DutyCycleAccountant(EU868)
        with pytest.raises(ValueError):
            acct.record(0.0, -1.0)

    def test_unrestricted_region_never_blocks(self):
        acct = DutyCycleAccountant(UNRESTRICTED)
        acct.record(0.0, 1800.0)
        assert acct.can_transmit(1.0, 1000.0)

    def test_many_small_frames_accumulate(self):
        acct = DutyCycleAccountant(EU868)
        for i in range(35):
            assert acct.can_transmit(i * 10.0, 1.0)
            acct.record(i * 10.0, 1.0)
        # 35 s used of the 36 s budget: a 2 s frame no longer fits.
        assert not acct.can_transmit(355.0, 2.0)
        assert acct.can_transmit(355.0, 1.0)
