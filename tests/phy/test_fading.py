"""Tests for the block-fading channel."""

import pytest

from repro.phy.fading import BlockFadingPathLoss
from repro.phy.pathloss import FreeSpacePathLoss, LogDistancePathLoss
from repro.sim.kernel import Simulator

A = (0.0, 0.0)
B = (100.0, 0.0)
C = (0.0, 100.0)


@pytest.fixture
def channel():
    sim = Simulator()
    model = BlockFadingPathLoss(
        LogDistancePathLoss(), sim, coherence_time_s=30.0, sigma_db=4.0, seed=1
    )
    return sim, model


class TestBlockStructure:
    def test_constant_within_block(self, channel):
        sim, model = channel
        first = model.loss_db(A, B, 868.0)
        sim.schedule(10.0, lambda: None)
        sim.run(until=10.0)
        assert model.loss_db(A, B, 868.0) == first

    def test_redraw_across_blocks(self, channel):
        sim, model = channel
        first = model.loss_db(A, B, 868.0)
        sim.run(until=31.0)
        assert model.loss_db(A, B, 868.0) != first

    def test_block_index(self, channel):
        sim, model = channel
        assert model.current_block() == 0
        sim.run(until=95.0)
        assert model.current_block() == 3

    def test_reciprocal_within_block(self, channel):
        _, model = channel
        assert model.loss_db(A, B, 868.0) == model.loss_db(B, A, 868.0)

    def test_links_fade_independently(self, channel):
        _, model = channel
        # Same distance, different links -> different fading draws.
        assert model.fading_db(A, B) != model.fading_db(A, C)


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        def draws(seed):
            sim = Simulator()
            model = BlockFadingPathLoss(
                FreeSpacePathLoss(), sim, coherence_time_s=10.0, sigma_db=3.0, seed=seed
            )
            out = []
            for block in range(5):
                sim.run(until=block * 10.0 + 1.0)
                out.append(model.loss_db(A, B, 868.0))
            return out

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)

    def test_evaluation_order_independent(self):
        sim = Simulator()
        model = BlockFadingPathLoss(
            FreeSpacePathLoss(), sim, coherence_time_s=10.0, sigma_db=3.0, seed=2
        )
        ab_first = model.fading_db(A, B)
        sim2 = Simulator()
        model2 = BlockFadingPathLoss(
            FreeSpacePathLoss(), sim2, coherence_time_s=10.0, sigma_db=3.0, seed=2
        )
        model2.fading_db(A, C)  # evaluate another link first
        assert model2.fading_db(A, B) == ab_first


class TestStatistics:
    def test_fading_is_zero_mean_ish(self):
        sim = Simulator()
        model = BlockFadingPathLoss(
            FreeSpacePathLoss(), sim, coherence_time_s=1.0, sigma_db=4.0, seed=3
        )
        draws = []
        for block in range(300):
            sim.run(until=block * 1.0 + 0.5)
            draws.append(model.fading_db(A, B))
        mean = sum(draws) / len(draws)
        var = sum((d - mean) ** 2 for d in draws) / len(draws)
        assert abs(mean) < 1.0
        assert 4.0**2 * 0.6 < var < 4.0**2 * 1.5

    def test_zero_sigma_is_transparent(self):
        sim = Simulator()
        base = FreeSpacePathLoss()
        model = BlockFadingPathLoss(base, sim, coherence_time_s=10.0, sigma_db=0.0)
        assert model.loss_db(A, B, 868.0) == base.loss_db(A, B, 868.0)


class TestValidation:
    def test_bad_coherence_rejected(self):
        with pytest.raises(ValueError):
            BlockFadingPathLoss(FreeSpacePathLoss(), Simulator(), coherence_time_s=0.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            BlockFadingPathLoss(FreeSpacePathLoss(), Simulator(), sigma_db=-1.0)

    def test_reset_clears_cache(self, channel):
        sim, model = channel
        model.loss_db(A, B, 868.0)
        model.reset()
        assert model._cache == {}
