"""Tests for gateway-role dissemination and the GatewayClient."""

import pytest

from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.net.gateway import (
    GatewayClient,
    is_gateway,
    known_gateways,
    nearest_gateway,
)
from repro.net.packets import NodeRole
from repro.topology.placement import line_positions

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)
GW = FAST.replace(role=int(NodeRole.GATEWAY))


def line_with_gateway(n: int, gateway_index: int, *, seed: int = 3) -> MeshNetwork:
    """A line where exactly one node advertises the gateway role."""
    configs = [GW if i == gateway_index else None for i in range(n)]
    return MeshNetwork.from_positions(
        line_positions(n), config=FAST, configs=configs, seed=seed
    )


class TestRoleDissemination:
    def test_gateway_flag_reaches_distant_nodes(self):
        net = line_with_gateway(4, gateway_index=3)
        net.run_until_converged(timeout_s=1800.0)
        first = net.nodes[0]
        gws = known_gateways(first)
        assert [g.address for g in gws] == [net.addresses[3]]
        assert gws[0].metric == 3

    def test_is_gateway(self):
        net = line_with_gateway(2, gateway_index=1)
        assert not is_gateway(net.nodes[0])
        assert is_gateway(net.nodes[1])

    def test_no_gateway_known_initially(self):
        net = line_with_gateway(3, gateway_index=2)
        assert nearest_gateway(net.nodes[0]) is None


class TestNearestSelection:
    def test_nearest_of_two_gateways_wins(self):
        configs = [GW, None, None, None, GW]  # gateways at both ends
        net = MeshNetwork.from_positions(
            line_positions(5), config=FAST, configs=configs, seed=4
        )
        net.run_until_converged(timeout_s=3600.0)
        second = net.nodes[1]  # 1 hop from gw A, 3 hops from gw B
        target = nearest_gateway(second)
        assert target.address == net.addresses[0]
        assert target.metric == 1

    def test_tie_breaks_to_lower_address(self):
        net = MeshNetwork.from_positions(
            line_positions(3), config=FAST, configs=[GW, None, GW], seed=5
        )
        net.run_until_converged(timeout_s=1800.0)
        middle = net.nodes[1]  # equidistant
        assert nearest_gateway(middle).address == min(net.addresses[0], net.addresses[2])


class TestGatewayClient:
    def test_send_routes_to_gateway(self):
        net = line_with_gateway(3, gateway_index=2)
        net.run_until_converged(timeout_s=1800.0)
        client = GatewayClient(net.nodes[0])
        assert client.send(b"uplink")
        net.run(for_s=60.0)
        gw = net.nodes[2]
        assert gw.receive().payload == b"uplink"
        assert client.sends == 1

    def test_send_without_gateway_drops(self):
        net = MeshNetwork.from_positions(line_positions(2), config=FAST, seed=6)
        net.run_until_converged(timeout_s=600.0)
        client = GatewayClient(net.nodes[0])
        assert not client.send(b"nowhere")
        assert client.no_gateway_drops == 1

    def test_reliable_uplink(self):
        net = line_with_gateway(3, gateway_index=2)
        net.run_until_converged(timeout_s=1800.0)
        client = GatewayClient(net.nodes[0])
        outcome = []
        seq = client.send_reliable(bytes(500), lambda ok, why: outcome.append(ok))
        assert seq is not None
        net.run(for_s=300.0)
        assert outcome == [True]
        message = net.nodes[2].receive()
        assert message.reliable and len(message.payload) == 500

    def test_reliable_without_gateway_fails_fast(self):
        net = MeshNetwork.from_positions(line_positions(2), config=FAST, seed=7)
        client = GatewayClient(net.nodes[0])
        outcome = []
        assert client.send_reliable(b"x", lambda ok, why: outcome.append((ok, why))) is None
        assert outcome == [(False, "no gateway known")]

    def test_target_follows_gateway_failure(self):
        net = MeshNetwork.from_positions(
            line_positions(4), config=FAST, configs=[GW, None, None, GW], seed=8
        )
        net.run_until_converged(timeout_s=3600.0)
        second = net.nodes[1]
        client = GatewayClient(second)
        assert client.current_target().address == net.addresses[0]
        net.nodes[0].fail()
        net.run(for_s=FAST.route_timeout_s + 90.0)
        # The near gateway's route expired: the client re-targets the far one.
        assert client.current_target().address == net.addresses[3]
