"""Edge-case tests for the node service (lifecycle corners, queue
interactions, half-duplex consequences)."""

import pytest

from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.net.packets import DataPacket
from repro.radio.states import RadioState
from repro.topology.placement import line_positions

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)


class TestLifecycleCorners:
    def test_stopped_node_ignores_frames(self):
        net = MeshNetwork.from_positions(line_positions(2, spacing_m=80.0), config=FAST, seed=1)
        net.run_until_converged(timeout_s=600.0)
        a, b = net.nodes
        b.stop()
        # b's radio sleeps: nothing is demodulated, nothing delivered.
        a.send_datagram(b.address, b"into the void")
        net.run(for_s=60.0)
        assert b.receive() is None
        assert b.stats.data_delivered == 0

    def test_restart_after_stop(self):
        net = MeshNetwork.from_positions(line_positions(2, spacing_m=80.0), config=FAST, seed=2)
        net.run_until_converged(timeout_s=600.0)
        a, b = net.nodes
        b.stop()
        net.run(for_s=60.0)
        b.start()
        net.run(for_s=120.0)
        a.send_datagram(b.address, b"welcome back")
        net.run(for_s=60.0)
        assert b.receive() is not None

    def test_fail_while_transmitting_completes_frame(self):
        # A node killed mid-TX still finishes emitting the frame (power
        # cut semantics modelled as end-of-frame detach).
        net = MeshNetwork.from_positions(line_positions(2, spacing_m=80.0), config=FAST, seed=3)
        net.run_until_converged(timeout_s=600.0)
        a, b = net.nodes
        a.send_datagram(b.address, bytes(150))
        # Advance until the frame is on the air, then kill the sender.
        while not a.radio.transmitting:
            net.sim.step()
        a.fail()
        net.run(for_s=30.0)
        assert not a.radio.powered
        assert b.receive() is not None  # the in-flight frame landed

    def test_stop_is_idempotent_and_stats_survive(self):
        net = MeshNetwork.from_positions(line_positions(2, spacing_m=80.0), config=FAST, seed=4)
        net.run(for_s=300.0)
        node = net.nodes[0]
        sent = node.stats.frames_sent
        node.stop()
        node.stop()
        assert node.stats.frames_sent == sent


class TestQueueInteractions:
    def test_pump_survives_queue_drain_while_waiting(self):
        # Enqueue, then drain the queue behind the pump's back: the pump
        # must cope with peek() returning None.
        net = MeshNetwork.from_positions(line_positions(2, spacing_m=80.0), config=FAST, seed=5)
        net.run_until_converged(timeout_s=600.0)
        a, b = net.nodes
        a.send_datagram(b.address, b"x")
        a.send_queue.drain()
        net.run(for_s=60.0)  # must not raise
        assert b.receive() is None

    def test_enqueue_on_dead_node_is_safe(self):
        net = MeshNetwork.from_positions(line_positions(2, spacing_m=80.0), config=FAST, seed=6)
        net.run_until_converged(timeout_s=600.0)
        a, b = net.nodes
        a.fail()
        # The queue accepts but the pump never transmits on a dead radio.
        a.enqueue(DataPacket(dst=b.address, src=a.address, via=b.address, payload=b"x"))
        net.run(for_s=120.0)
        assert b.receive() is None

    def test_inbox_overflow_drops_new_messages(self):
        config = FAST.replace(app_inbox_capacity=3)
        net = MeshNetwork.from_positions(line_positions(2, spacing_m=80.0), config=config, seed=7)
        net.run_until_converged(timeout_s=600.0)
        a, b = net.nodes
        for i in range(6):
            a.send_datagram(b.address, bytes([i]))
            net.run(for_s=30.0)
        # Only the first three landed in the bounded inbox.
        received = []
        while (m := b.receive()) is not None:
            received.append(m.payload)
        assert len(received) == 3
        assert b.inbox.dropped == 3


class TestHalfDuplexConsequences:
    def test_node_misses_frames_while_transmitting(self):
        # Two neighbours transmit long frames at overlapping times: each
        # is deaf during its own TX.
        config = FAST.replace(backoff_slots=0)
        net = MeshNetwork.from_positions(line_positions(2, spacing_m=80.0), config=config, seed=8)
        net.run_until_converged(timeout_s=600.0)
        a, b = net.nodes
        a.send_datagram(b.address, bytes(200))
        # b starts its own TX a moment into a's frame.
        while not a.radio.transmitting:
            net.sim.step()
        b.send_datagram(a.address, bytes(200))
        net.run(for_s=0.02)
        # The CAD should have deferred b (it can hear a): b not in TX yet.
        assert b.radio.state is not RadioState.TX or a.radio.transmitting

    def test_hello_keeps_mesh_alive_under_continuous_traffic(self):
        net = MeshNetwork.from_positions(line_positions(3), config=FAST, seed=9)
        net.run_until_converged(timeout_s=1200.0)
        a, _, c = net.nodes
        for _ in range(50):
            a.send_datagram(c.address, bytes(50))
            net.run(for_s=30.0)
        # Routes never expired despite the load.
        assert net.coverage() == 1.0
