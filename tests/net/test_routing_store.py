"""Columnar routing-store specifics.

The behavioural contract (identical observables to the scalar table) is
covered by ``tests/properties/test_routing_equivalence.py`` and by
``tests/net/test_routing_table.py`` running its whole suite against both
implementations.  This module tests what is *unique* to the columnar
store: the implementation factory, the dense-slot storage mechanics,
the wire-row fast path, and the vectorized convergence probe.
"""

import os

import pytest

from repro.net.config import MesherConfig
from repro.net.packets import RoutingEntry
from repro.net.routing_table import ROUTING_IMPLS, RoutingTable, make_routing_table
from repro.net import routing_store

if not routing_store.HAVE_NUMPY:
    if os.environ.get("REPRO_REQUIRE_VECTOR_DV"):
        pytest.fail(
            "REPRO_REQUIRE_VECTOR_DV is set but numpy is unavailable", pytrace=False
        )
    pytest.skip("numpy not installed", allow_module_level=True)

import numpy as np  # noqa: E402

from repro.net.routing_store import ColumnarRoutingTable, as_address_array  # noqa: E402

ME = 0x0001


def entries(*rows):
    return tuple(RoutingEntry.trusted(a, m, r) for a, m, r in rows)


class TestFactory:
    @pytest.fixture(autouse=True)
    def _clean_env(self, monkeypatch):
        # These tests exercise the argument/env precedence itself, so an
        # ambient REPRO_ROUTING_IMPL (e.g. a scalar-forced CI lane) must
        # not leak in.
        monkeypatch.delenv("REPRO_ROUTING_IMPL", raising=False)

    def test_auto_prefers_columnar_when_numpy_present(self):
        assert isinstance(make_routing_table(ME), ColumnarRoutingTable)

    def test_explicit_scalar(self):
        assert isinstance(make_routing_table(ME, impl="scalar"), RoutingTable)

    def test_explicit_columnar(self):
        assert isinstance(make_routing_table(ME, impl="columnar"), ColumnarRoutingTable)

    def test_unknown_impl_rejected(self):
        with pytest.raises(ValueError):
            make_routing_table(ME, impl="quantum")

    def test_env_overrides_argument(self, monkeypatch):
        monkeypatch.setenv("REPRO_ROUTING_IMPL", "scalar")
        assert isinstance(make_routing_table(ME, impl="columnar"), RoutingTable)

    def test_impl_names_exported(self):
        assert set(ROUTING_IMPLS) == {"auto", "scalar", "columnar"}

    def test_config_carries_choice(self):
        assert MesherConfig(routing_impl="scalar").routing_impl == "scalar"
        with pytest.raises(ValueError):
            MesherConfig(routing_impl="nope")

    def test_kwargs_forwarded(self):
        t = make_routing_table(
            ME, route_timeout=42.0, max_metric=9, snr_tiebreak_db=2.0, impl="columnar"
        )
        assert t.route_timeout == 42.0
        assert t.max_metric == 9
        assert t.snr_tiebreak_db == 2.0


class TestValidation:
    def test_mirrors_scalar_constructor_checks(self):
        with pytest.raises(ValueError):
            ColumnarRoutingTable(ME, route_timeout=0.0)
        with pytest.raises(ValueError):
            ColumnarRoutingTable(ME, max_metric=0)
        with pytest.raises(ValueError):
            ColumnarRoutingTable(ME, max_metric=256)
        with pytest.raises(ValueError):
            ColumnarRoutingTable(ME, snr_tiebreak_db=-1.0)


class TestSlotStorage:
    def test_columns_stay_dense_after_removal(self):
        t = ColumnarRoutingTable(ME, route_timeout=100.0)
        for address in (0x10, 0x20, 0x30):
            t.heard_from(address, now=0.0)
        t.heard_from(0x40, now=50.0)
        # 0x10..0x30 expire; 0x40 must survive in a compacted column.
        removed = t.purge(now=120.0)
        assert [e.address for e in removed] == [0x10, 0x20, 0x30]
        assert t._count == 1
        assert t.destinations() == [0x40]
        assert t.metric(0x40) == 1

    def test_slot_map_grows_for_high_addresses(self):
        t = ColumnarRoutingTable(ME)
        t.heard_from(0xFFFE, now=0.0)
        assert t.has_route(0xFFFE)
        assert t._slots.shape[0] >= 0xFFFF

    def test_column_capacity_doubles(self):
        t = ColumnarRoutingTable(ME)
        rows = entries(*[(0x100 + i, 2, 0) for i in range(40)])
        t.process_hello(0x99, rows, now=0.0)
        assert t.size == 41  # 40 advertised + the neighbour itself
        assert t._addr.shape[0] >= 41

    def test_lookups_return_materialized_copies(self):
        t = ColumnarRoutingTable(ME)
        t.heard_from(0x10, now=0.0)
        entry = t.get(0x10)
        entry.metric = 99  # documented: does NOT write back
        assert t.metric(0x10) == 1
        t.set_route(0x10, 0x10, 3, 0, 1.0)
        assert t.metric(0x10) == 3


class TestVectorMergePath:
    def test_small_packets_take_scalar_loop(self, monkeypatch):
        t = ColumnarRoutingTable(ME)
        calls = []
        monkeypatch.setattr(
            t,
            "_merge_rows_vector",
            lambda *a, **k: calls.append(1) or (0, routing_store._EMPTY_SLOTS),
        )
        t.process_hello(0x99, entries((0x10, 1, 0)), now=0.0)
        assert not calls  # 1 row < VECTOR_MIN_ROWS
        assert t.metric(0x10) == 2

    def test_large_packets_take_vector_path(self):
        t = ColumnarRoutingTable(ME)
        rows = entries(*[(0x100 + i, 2, 0) for i in range(ColumnarRoutingTable.VECTOR_MIN_ROWS)])
        changed = t.process_hello(0x99, rows, now=0.0)
        assert changed == len(rows)

    def test_duplicate_addresses_fall_back_to_scalar_order(self):
        t = ColumnarRoutingTable(ME)
        t.VECTOR_MIN_ROWS = 1
        # Second occurrence wins the follow-the-via update, like the
        # scalar loop processes rows in order.
        rows = entries((0x10, 5, 0), (0x10, 2, 0))
        t.process_hello(0x99, rows, now=0.0)
        assert t.metric(0x10) == 3

    def test_memo_replay_refreshes_slots_after_other_merges_are_isolated(self):
        t = ColumnarRoutingTable(ME, route_timeout=100.0)
        t.VECTOR_MIN_ROWS = 1
        rows = entries((0x10, 1, 0), (0x11, 1, 0))
        assert t.process_hello(0x99, rows, now=0.0) == 2
        assert t.process_hello(0x99, rows, now=10.0) == 0  # memoized no-op
        # The replayed refresh must keep the taught routes alive.
        assert t.purge(now=105.0) == []
        assert t.has_route(0x10) and t.has_route(0x11)


class TestCoversAll:
    def test_true_when_all_routed(self):
        t = ColumnarRoutingTable(ME)
        for address in (0x10, 0x20):
            t.heard_from(address, now=0.0)
        assert t.covers_all(as_address_array([ME, 0x10, 0x20]))

    def test_false_on_any_gap(self):
        t = ColumnarRoutingTable(ME)
        t.heard_from(0x10, now=0.0)
        assert not t.covers_all(as_address_array([ME, 0x10, 0x20]))

    def test_addresses_beyond_slot_map(self):
        t = ColumnarRoutingTable(ME)
        t.heard_from(0x10, now=0.0)
        assert not t.covers_all(as_address_array([ME, 0x10, 0xFFF0]))

    def test_own_address_counts_as_covered(self):
        t = ColumnarRoutingTable(ME)
        assert t.covers_all(as_address_array([ME]))


class TestAdvertisedWireRows:
    def test_body_matches_scalar_snapshot_encoding(self):
        import struct

        pack_row = struct.Struct("<HBB").pack  # the serialization layout
        scalar = RoutingTable(ME)
        columnar = ColumnarRoutingTable(ME)
        for table in (scalar, columnar):
            table.process_hello(0x99, entries((0x10, 1, 0), (0x30, 2, 1)), now=0.0)
        addresses, metrics, roles, body = columnar.advertised_wire_rows(self_role=2)
        rows = scalar.snapshot(self_role=2)
        assert addresses == [r.address for r in rows]
        assert metrics == [r.metric for r in rows]
        assert roles == [r.role for r in rows]
        assert body == b"".join(pack_row(r.address, r.metric, r.role) for r in rows)

    def test_memoized_on_version(self):
        t = ColumnarRoutingTable(ME)
        t.heard_from(0x10, now=0.0)
        first = t.advertised_wire_rows()
        assert t.advertised_wire_rows() is first
        t.heard_from(0x20, now=1.0)  # version bump invalidates
        assert t.advertised_wire_rows() is not first

    def test_wire_dtype_is_wire_layout(self):
        from repro.net.packets import ROUTING_ENTRY_SIZE

        assert routing_store.WIRE_DTYPE.itemsize == ROUTING_ENTRY_SIZE


class TestMeshFingerprint:
    def test_whole_mesh_run_identical_scalar_vs_columnar(self):
        """End-to-end determinism: a full mesh run (placement, hellos,
        merges, convergence) produces bit-identical observables under
        either implementation — the integration-level guarantee behind
        the per-table equivalence suite."""
        from repro.net.api import MeshNetwork
        from repro.topology.placement import grid_positions

        def fingerprint(impl):
            config = MesherConfig(hello_period_s=60.0, routing_impl=impl)
            positions = grid_positions(4, 4, spacing_m=120.0)
            net = MeshNetwork.from_positions(
                positions, config=config, seed=7, trace_enabled=False
            )
            convergence = net.run_until_converged(timeout_s=3600.0, check_period_s=10.0)
            tables = tuple(
                tuple(
                    (d, node.table.next_hop(d), node.table.metric(d))
                    for d in sorted(node.table.destinations())
                )
                for node in net.nodes
            )
            return (convergence, net.total_frames_sent(), net.total_bytes_sent(), tables)

        assert fingerprint("scalar") == fingerprint("columnar")


class TestSnapshotMemo:
    def test_snapshot_memoized_until_version_changes(self):
        t = ColumnarRoutingTable(ME)
        t.heard_from(0x10, now=0.0)
        a = t.snapshot()
        b = t.snapshot()
        assert a == b and a is not b  # fresh list, cached rows
        t.heard_from(0x20, now=1.0)
        assert len(t.snapshot()) == 3

    def test_scalar_snapshot_also_memoized(self):
        t = RoutingTable(ME)
        t.heard_from(0x10, now=0.0)
        assert t.snapshot() == t.snapshot()
