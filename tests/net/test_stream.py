"""Connection-oriented stream layer: lifecycle, windowing, ordering.

Runs on real 2–3 node meshes (full kernel/PHY/transport below the
stream), plus direct unit tests of the header codec.
"""

import pytest

from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.net.stream import (
    HEADER_SIZE,
    MSG_DATA,
    MSG_SYN,
    STREAM_MAGIC,
    Stream,
    StreamManager,
    StreamState,
    decode_message,
    encode_message,
)
from repro.topology.placement import line_positions

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)


def _mesh(n=2, config=None, seed=5):
    net = MeshNetwork.from_positions(line_positions(n), config=config or FAST, seed=seed)
    assert net.run_until_converged(timeout_s=600.0) is not None
    return net


class TestCodec:
    def test_roundtrip(self):
        wire = encode_message(MSG_DATA, 7, 42, b"hello", from_initiator=True)
        assert wire[0] == STREAM_MAGIC
        assert decode_message(wire) == (MSG_DATA, 7, 42, True, b"hello")

    def test_direction_bit(self):
        wire = encode_message(MSG_SYN, 0, 0, b"", from_initiator=False)
        assert decode_message(wire)[3] is False

    def test_non_stream_payload_passes(self):
        assert decode_message(b"plain application bytes") is None
        assert decode_message(b"") is None
        assert decode_message(bytes([STREAM_MAGIC])) is None  # too short

    def test_unknown_type_rejected(self):
        wire = bytes([STREAM_MAGIC, 0x7F, 0, 0, 0, 0])
        assert decode_message(wire) is None

    def test_header_size(self):
        assert HEADER_SIZE == 6
        assert len(encode_message(MSG_DATA, 0, 0, b"", from_initiator=True)) == 6


class TestLifecycle:
    def test_open_send_close(self):
        net = _mesh()
        a, b = net.nodes
        ma, mb = StreamManager(a), StreamManager(b)
        received, closes = [], []
        mb.on_accept = lambda s: s.__setattr__(
            "on_message", lambda _s, body: received.append(body)
        )
        stream = ma.open(b.address, on_close=lambda s, why: closes.append(why))
        assert stream.state is StreamState.SYN_SENT
        net.run(for_s=30.0)
        assert stream.state is StreamState.OPEN
        for i in range(5):
            stream.send(f"msg-{i}".encode())
        stream.close()
        net.run(for_s=120.0)
        assert received == [f"msg-{i}".encode() for i in range(5)]
        assert closes == ["fin"]
        assert stream.state is StreamState.CLOSED
        assert ma.active_streams == 0
        # The responder side closed on the FIN too.
        assert mb.active_streams == 0
        assert mb.streams_closed == 1

    def test_sends_queue_during_syn(self):
        """send() before ACCEPT queues; everything drains once open."""
        net = _mesh()
        a, b = net.nodes
        ma, mb = StreamManager(a), StreamManager(b)
        received = []
        mb.on_accept = lambda s: s.__setattr__(
            "on_message", lambda _s, body: received.append(body)
        )
        stream = ma.open(b.address)
        stream.send(b"early-1")
        stream.send(b"early-2")
        assert stream.pending == 2
        net.run(for_s=60.0)
        assert received == [b"early-1", b"early-2"]

    def test_on_open_fires_once(self):
        net = _mesh()
        a, b = net.nodes
        ma, _mb = StreamManager(a), StreamManager(b)
        opens = []
        ma.open(b.address, on_open=lambda s: opens.append(s))
        net.run(for_s=60.0)
        assert len(opens) == 1

    def test_syn_to_unroutable_peer_fails(self):
        net = _mesh()
        a, b = net.nodes
        ma = StreamManager(a)
        StreamManager(b)
        closes = []
        config = a.config
        a.reliable._route_via = lambda dst: None
        ma.open(b.address, on_close=lambda s, why: closes.append(why))
        net.run(for_s=config.ack_timeout_s * (config.max_local_defers + 3))
        assert closes and closes[0].startswith("syn failed")

    def test_send_after_close_raises(self):
        net = _mesh()
        a, b = net.nodes
        ma, _mb = StreamManager(a), StreamManager(b)
        stream = ma.open(b.address)
        net.run(for_s=30.0)
        stream.close()
        with pytest.raises(RuntimeError):
            stream.send(b"too late")

    def test_refused_syn_resets_initiator(self):
        net = _mesh()
        a, b = net.nodes
        ma, mb = StreamManager(a), StreamManager(b)
        mb.on_accept = lambda s: False
        closes = []
        ma.open(b.address, on_close=lambda s, why: closes.append(why))
        net.run(for_s=60.0)
        assert closes == ["peer reset"]
        assert mb.syn_refused == 1
        assert mb.active_streams == 0

    def test_data_to_unknown_stream_draws_reset(self):
        """DATA for a stream the receiver no longer knows is answered
        with RESET, so a half-dead sender stops retransmitting."""
        net = _mesh()
        a, b = net.nodes
        ma, mb = StreamManager(a), StreamManager(b)
        stream = ma.open(b.address)
        net.run(for_s=30.0)
        assert stream.state is StreamState.OPEN
        # Kill the receiver's half behind its back.
        peer_stream = mb.streams()[0]
        mb._reset_stream(peer_stream, "test kill", notify_peer=False)
        closes = []
        stream.on_close = lambda s, why: closes.append(why)
        stream.send(b"into the void")
        net.run(for_s=120.0)
        assert closes == ["peer reset"]


class TestWindowing:
    def test_window_limits_inflight(self):
        net = _mesh(config=FAST.replace(stream_window=2))
        a, b = net.nodes
        ma, _mb = StreamManager(a), StreamManager(b)
        stream = ma.open(b.address)
        net.run(for_s=30.0)
        for i in range(10):
            stream.send(bytes([i]) * 8)
        assert len(stream._inflight) <= 2
        net.run(for_s=300.0)
        assert stream.stats.max_inflight <= 2
        assert stream.stats.window_stalls > 0
        assert stream.stats.messages_sent == 10

    def test_explicit_window_overrides_config(self):
        net = _mesh()
        a, b = net.nodes
        ma = StreamManager(a, window=1)
        StreamManager(b)
        stream = ma.open(b.address)
        net.run(for_s=30.0)
        for i in range(4):
            stream.send(b"x")
        assert len(stream._inflight) == 1

    def test_window_below_one_rejected(self):
        net = _mesh()
        with pytest.raises(ValueError):
            StreamManager(net.nodes[0], window=0)


class TestOrderingAndStats:
    def test_in_order_delivery_and_rtt(self):
        net = _mesh(n=3)
        a, _mid, c = net.nodes
        ma, mc = StreamManager(a), StreamManager(c)
        received = []
        mc.on_accept = lambda s: s.__setattr__(
            "on_message", lambda _s, body: received.append(body)
        )
        stream = ma.open(c.address)
        net.run(for_s=60.0)
        for i in range(8):
            stream.send(f"{i:04d}".encode())
        net.run(for_s=600.0)
        assert received == [f"{i:04d}".encode() for i in range(8)]
        assert stream.stats.srtt_s is not None and stream.stats.srtt_s > 0
        assert stream.stats.rtt_max_s >= stream.stats.srtt_s
        peer = None
        # The accepted half counts what it received.
        assert mc.messages_received == 8

    def test_receive_data_dedups(self):
        """Direct unit: a duplicate msg_seq is dropped and counted."""
        net = _mesh()
        a, b = net.nodes
        ma, _mb = StreamManager(a), StreamManager(b)
        stream = ma.open(b.address)
        stream.state = StreamState.OPEN
        got = []
        stream.on_message = lambda s, body: got.append(body)
        stream._receive_data(0, b"first")
        stream._receive_data(0, b"first again")
        stream._receive_data(2, b"third")  # buffered, gap at 1
        stream._receive_data(1, b"second")
        assert got == [b"first", b"second", b"third"]
        assert stream.stats.duplicates_dropped == 1
        assert stream.stats.reordered_buffered == 1

    def test_manager_requires_free_hook(self):
        net = _mesh()
        StreamManager(net.nodes[0])
        with pytest.raises(RuntimeError):
            StreamManager(net.nodes[0])

    def test_detach_releases_hook(self):
        net = _mesh()
        node = net.nodes[0]
        manager = StreamManager(node)
        manager.detach()
        assert node.on_reliable_consume is None
        assert node.stream_manager is None
        StreamManager(node)  # rebind works

    def test_plain_reliable_traffic_passes_through(self):
        """Non-stream reliable payloads still reach the app inbox."""
        net = _mesh()
        a, b = net.nodes
        StreamManager(a)
        mb = StreamManager(b)
        delivered = []
        b.on_app_delivery = lambda msg: delivered.append(msg.payload)
        a.send_reliable(b.address, b"ordinary payload")
        net.run(for_s=60.0)
        assert delivered == [b"ordinary payload"]
        assert mb.unclaimed_payloads == 1


class TestBidirectional:
    def test_chat_is_two_opposed_streams(self):
        net = _mesh()
        a, b = net.nodes
        ma, mb = StreamManager(a), StreamManager(b)
        at_a, at_b = [], []
        ma.on_accept = lambda s: s.__setattr__(
            "on_message", lambda _s, body: at_a.append(body)
        )
        mb.on_accept = lambda s: s.__setattr__(
            "on_message", lambda _s, body: at_b.append(body)
        )
        ab = ma.open(b.address)
        ba = mb.open(a.address)
        net.run(for_s=60.0)
        ab.send(b"ping from a")
        ba.send(b"ping from b")
        net.run(for_s=120.0)
        assert at_b == [b"ping from a"]
        assert at_a == [b"ping from b"]
        # Same id namespace, opposite direction bits: no collision even
        # though both sides allocated stream id 0.
        assert ab.stream_id == ba.stream_id == 0
