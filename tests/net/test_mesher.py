"""Tests for the MesherNode service (single nodes and small meshes)."""

import pytest

from repro.net.addresses import BROADCAST_ADDRESS
from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.net.mesher import AppMessage, MesherNode
from repro.radio.states import RadioState
from repro.topology.placement import line_positions
from repro.trace.events import EventKind

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)


def two_node_net(**kwargs):
    return MeshNetwork.from_positions([(0.0, 0.0), (80.0, 0.0)], config=FAST, **kwargs)


class TestLifecycle:
    def test_start_enters_rx_and_beacons(self):
        net = two_node_net()
        node = net.nodes[0]
        assert node.started
        assert node.radio.state is RadioState.RX
        net.run(for_s=60.0)
        assert node.hello.hellos_sent >= 1

    def test_stop_halts_protocol(self):
        net = two_node_net()
        node = net.nodes[0]
        net.run(for_s=60.0)
        node.stop()
        count = node.stats.frames_sent
        net.run(for_s=300.0)
        assert node.stats.frames_sent == count
        assert not node.started

    def test_start_is_idempotent(self):
        net = two_node_net()
        node = net.nodes[0]
        node.start()
        node.start()
        assert node.started

    def test_invalid_address_rejected(self, sim, medium):
        with pytest.raises(ValueError):
            MesherNode(sim, medium, 0x0000, (0.0, 0.0))

    def test_fail_removes_node_from_air(self):
        net = two_node_net()
        a, b = net.nodes
        net.run_until_converged(timeout_s=600.0)
        b.fail()
        net.run(for_s=300.0)  # past route timeout
        assert not a.table.has_route(b.address)

    def test_recover_rejoins_mesh(self):
        net = two_node_net()
        a, b = net.nodes
        net.run_until_converged(timeout_s=600.0)
        b.fail()
        net.run(for_s=200.0)
        b.recover()
        net.run(for_s=200.0)
        assert a.table.has_route(b.address)
        assert b.table.has_route(a.address)


class TestNeighbourDiscovery:
    def test_two_nodes_learn_each_other(self):
        net = two_node_net()
        net.run(for_s=120.0)
        a, b = net.nodes
        assert a.table.metric(b.address) == 1
        assert b.table.metric(a.address) == 1

    def test_hello_records_snr(self):
        net = two_node_net()
        net.run(for_s=120.0)
        a, b = net.nodes
        assert a.table.get(b.address).received_snr_db is not None


class TestSendDatagram:
    def test_datagram_between_neighbours(self):
        net = two_node_net()
        net.run_until_converged(timeout_s=600.0)
        a, b = net.nodes
        assert a.send_datagram(b.address, b"ping")
        net.run(for_s=30.0)
        message = b.receive()
        assert message is not None
        assert message.payload == b"ping"
        assert message.src == a.address
        assert not message.reliable

    def test_send_without_route_refused(self):
        net = two_node_net()
        a, b = net.nodes  # no time to converge: tables are empty
        assert not a.send_datagram(b.address, b"too-early")
        assert a.stats.no_route_drops == 1

    def test_broadcast_reaches_neighbours_once(self):
        net = MeshNetwork.from_positions(line_positions(3, spacing_m=80.0), config=FAST)
        net.run_until_converged(timeout_s=600.0)
        a, b, c = net.nodes
        b.broadcast(b"to everyone")
        net.run(for_s=30.0)
        assert a.receive().payload == b"to everyone"
        assert c.receive().payload == b"to everyone"
        # Broadcasts are single-hop: nobody re-forwards, so exactly one copy.
        assert a.receive() is None
        assert c.receive() is None

    def test_string_payload_rejected(self):
        net = two_node_net()
        a, b = net.nodes
        with pytest.raises(TypeError):
            a.send_datagram(b.address, "not bytes")  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            a.send_reliable(b.address, "not bytes")  # type: ignore[arg-type]

    def test_on_message_callback_fires(self):
        net = two_node_net()
        net.run_until_converged(timeout_s=600.0)
        a, b = net.nodes
        got = []
        b.on_message = got.append
        a.send_datagram(b.address, b"cb")
        net.run(for_s=30.0)
        assert len(got) == 1
        assert isinstance(got[0], AppMessage)

    def test_app_message_text_helper(self):
        m = AppMessage(src=1, payload="héllo".encode(), received_at=0.0, reliable=False)
        assert m.text == "héllo"


class TestMultiHop:
    def test_three_hop_delivery(self):
        net = MeshNetwork.from_positions(line_positions(4), config=FAST)
        net.run_until_converged(timeout_s=1200.0)
        a, d = net.nodes[0], net.nodes[-1]
        a.send_datagram(d.address, b"across")
        net.run(for_s=60.0)
        assert d.receive().payload == b"across"
        # The middle nodes actually forwarded.
        middle_forwards = sum(n.stats.data_forwarded for n in net.nodes[1:-1])
        assert middle_forwards == 2

    def test_forwarding_counts_in_trace(self):
        net = MeshNetwork.from_positions(line_positions(3), config=FAST)
        net.run_until_converged(timeout_s=1200.0)
        a, b, c = net.nodes
        a.send_datagram(c.address, b"x")
        net.run(for_s=60.0)
        assert net.trace.count(EventKind.DATA_FORWARDED) == 1
        assert net.trace.count(EventKind.DATA_DELIVERED) == 1

    def test_reliable_across_hops(self):
        net = MeshNetwork.from_positions(line_positions(3), config=FAST)
        net.run_until_converged(timeout_s=1200.0)
        a, _, c = net.nodes
        outcome = []
        a.send_reliable(c.address, b"important", lambda ok, why: outcome.append(ok))
        net.run(for_s=120.0)
        assert outcome == [True]
        assert c.receive().payload == b"important"


class TestTransmitPath:
    def test_duty_cycle_pacing_defers(self):
        config = FAST.replace(send_queue_capacity=512)
        net = MeshNetwork.from_positions([(0.0, 0.0), (80.0, 0.0)], config=config)
        net.run_until_converged(timeout_s=600.0)
        a, b = net.nodes
        for _ in range(400):
            a.send_datagram(b.address, bytes(180))
        net.run(for_s=3600.0)
        assert a.stats.duty_deferrals > 0
        assert a.duty.window_utilisation(net.sim.now) <= a.duty.region.duty_cycle * 1.001

    def test_strict_duty_cycle_drops_instead(self):
        config = FAST.replace(send_queue_capacity=512, strict_duty_cycle=True)
        net = MeshNetwork.from_positions([(0.0, 0.0), (80.0, 0.0)], config=config)
        net.run_until_converged(timeout_s=600.0)
        a, b = net.nodes
        for _ in range(400):
            a.send_datagram(b.address, bytes(180))
        net.run(for_s=3600.0)
        assert a.stats.strict_duty_drops > 0

    def test_queue_overflow_counted(self):
        config = FAST.replace(send_queue_capacity=4)
        net = MeshNetwork.from_positions([(0.0, 0.0), (80.0, 0.0)], config=config)
        net.run_until_converged(timeout_s=600.0)
        a, b = net.nodes
        results = [a.send_datagram(b.address, bytes(100)) for _ in range(20)]
        assert not all(results)
        assert a.send_queue.dropped > 0

    def test_crc_failures_counted_not_delivered(self):
        # Three nodes in range; two transmit simultaneously so the third
        # sees a collision -> CRC failure at the service layer.
        net = MeshNetwork.from_positions(
            [(0.0, 0.0), (100.0, 0.0), (50.0, 0.0)], config=FAST.replace(backoff_slots=0)
        )
        net.run_until_converged(timeout_s=600.0)
        a, b, c = net.nodes
        a.send_datagram(c.address, b"one")
        b.send_datagram(c.address, b"two")
        net.run(for_s=10.0)
        # At least one of the overlapping frames was corrupted for c.
        assert c.stats.crc_failures >= 1 or c.inbox.enqueued_total == 2
