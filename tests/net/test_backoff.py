"""Adaptive retransmit timers: backoff, jitter, RTT estimation.

The bugfix this file guards: the reliable transport used to re-arm every
ACK timer at a fixed ``ack_timeout_s``, so under a loss burst all
in-flight exchanges retransmitted in lock-step at the worst possible
cadence — each retry colliding with the last one's ACK.  The transport
now backs off exponentially with deterministic per-token jitter and an
RFC-6298 RTT estimator, and the historical fixed-timer schedule is
recoverable bit-for-bit by disabling all three knobs.

``GOLDEN_*`` below was captured on the pre-backoff transport (fixed
timer).  The disabled-config test proves the refactor is a strict
superset of the old behaviour; the paired test proves the default
config retransmits *less* under the same burst-loss script.
"""

import random

import pytest

from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.net.reliable import ReliableTransport, RttEstimator
from repro.sim.shard import network_fingerprint
from repro.topology.placement import line_positions
from repro.verify.faults import BurstLoss, FaultInjector, FaultPlan

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)

#: Fixed-timer behaviour, frozen before the backoff change: the three
#: knobs that must, together, reproduce the historical schedule.
FIXED = FAST.replace(retry_backoff_base=1.0, retry_jitter_fraction=0.0, adaptive_rto=False)

#: Captured from the pre-backoff transport on the scenario below.
GOLDEN_DIGEST = "8526fce2677829b293f2813dff5342afeff3d22df4f4d32f49c6271bd6db054b"
GOLDEN_FRAMES = 810
GOLDEN_RETRANSMISSIONS = 80
GOLDEN_OUTCOMES = [(False, "ack timeout"), (True, "acked"), (True, "acked"), (True, "acked")]


def _burst_loss_scenario(config: MesherConfig):
    """3-node line, 60% loss burst over [200, 500), four 1200-byte
    reliable sends end-to-end through the middle hop."""
    net = MeshNetwork.from_positions(line_positions(3), config=config, seed=33)
    plan = FaultPlan([BurstLoss(start=200.0, end=500.0, probability=0.6)])
    FaultInjector(net, plan, seed=33).arm()
    assert net.run_until_converged(timeout_s=1800.0) is not None
    src, dst = net.nodes[0], net.nodes[-1]
    payload = random.Random(1).randbytes(1200)
    outcomes: list = []
    for i in range(4):
        net.sim.schedule(
            150.0 + 40.0 * i,
            lambda: src.send_reliable(
                dst.address, payload, lambda ok, why: outcomes.append((ok, why))
            ),
            label=f"reliable send #{i}",
        )
    net.run(until=3600.0)
    return net, outcomes


def _transport_totals(net):
    frames = net.total_frames_sent()
    retrans = sum(n.reliable.retransmissions for n in net.nodes)
    defers = sum(n.reliable.local_defers for n in net.nodes)
    return frames, retrans, defers


class TestGoldenFingerprint:
    def test_disabled_backoff_matches_pre_change_schedule(self):
        """base=1.0 + jitter=0 + adaptive_rto=False is bit-identical to
        the fixed-timer transport this PR replaced."""
        net, outcomes = _burst_loss_scenario(FIXED)
        frames, retrans, _ = _transport_totals(net)
        assert network_fingerprint(net)["digest"] == GOLDEN_DIGEST
        assert frames == GOLDEN_FRAMES
        assert retrans == GOLDEN_RETRANSMISSIONS
        assert outcomes == GOLDEN_OUTCOMES

    def test_adaptive_backoff_reduces_retransmissions(self):
        """Same seed, same loss script: the default adaptive config must
        retransmit less and deliver at least as many messages."""
        fixed_net, fixed_outcomes = _burst_loss_scenario(FIXED)
        adaptive_net, adaptive_outcomes = _burst_loss_scenario(FAST)
        fixed_frames, fixed_retrans, _ = _transport_totals(fixed_net)
        adaptive_frames, adaptive_retrans, _ = _transport_totals(adaptive_net)
        assert adaptive_retrans < fixed_retrans
        assert adaptive_frames < fixed_frames
        delivered = sum(1 for ok, _ in adaptive_outcomes if ok)
        assert delivered >= sum(1 for ok, _ in fixed_outcomes if ok)

    def test_adaptive_run_is_deterministic(self):
        """Jitter comes from hashed tokens, not a shared RNG stream, so
        two identical runs agree frame-for-frame."""
        net_a, out_a = _burst_loss_scenario(FAST)
        net_b, out_b = _burst_loss_scenario(FAST)
        assert network_fingerprint(net_a) == network_fingerprint(net_b)
        assert out_a == out_b


def _lone_transport(config: MesherConfig = None) -> ReliableTransport:
    net = MeshNetwork.from_positions(line_positions(2), config=config or FAST, seed=1)
    return net.nodes[0].reliable


class TestBackoffSchedule:
    def test_timeout_grows_exponentially(self):
        transport = _lone_transport(FAST.replace(retry_jitter_fraction=0.0))
        base = transport._config.ack_timeout_s
        timeouts = [transport._retry_timeout_s(0x2, attempt, "t") for attempt in range(4)]
        assert timeouts == [base, base * 2, base * 4, base * 8]

    def test_timeout_respects_cap(self):
        transport = _lone_transport(
            FAST.replace(retry_jitter_fraction=0.0, retry_backoff_cap_s=30.0)
        )
        assert transport._retry_timeout_s(0x2, 30, "t") == 30.0

    def test_cap_never_cuts_below_base_timeout(self):
        """A cap below ``ack_timeout_s`` is clamped up: backoff may only
        lengthen the schedule, never shorten the first retry."""
        transport = _lone_transport(
            FAST.replace(retry_jitter_fraction=0.0, retry_backoff_cap_s=1.0)
        )
        base = transport._config.ack_timeout_s
        assert transport._retry_timeout_s(0x2, 30, "t") == base

    def test_huge_attempt_count_does_not_overflow(self):
        transport = _lone_transport(FAST.replace(retry_jitter_fraction=0.0))
        assert transport._retry_timeout_s(0x2, 10_000, "t") == transport._config.retry_backoff_cap_s

    def test_jitter_bounded_and_deterministic(self):
        transport = _lone_transport(FAST.replace(retry_jitter_fraction=0.25))
        base = transport._retry_timeout_s(0x2, 2, "tok")
        again = transport._retry_timeout_s(0x2, 2, "tok")
        assert base == again  # same token -> same draw
        unjittered = transport._config.ack_timeout_s * 4
        assert unjittered * 0.75 <= base <= unjittered * 1.25
        other = transport._retry_timeout_s(0x2, 2, "different-token")
        assert other != base  # tokens decorrelate the draws

    def test_base_one_restores_fixed_timer(self):
        transport = _lone_transport(FIXED)
        for attempt in range(6):
            assert transport._retry_timeout_s(0x2, attempt, "t") == transport._config.ack_timeout_s


class TestRttEstimator:
    def test_first_sample_initialises(self):
        est = RttEstimator()
        est.observe(2.0)
        assert est.srtt == 2.0
        assert est.rttvar == 1.0
        assert est.rto() == 2.0 + 4.0 * 1.0

    def test_smoothing_converges(self):
        est = RttEstimator()
        for _ in range(100):
            est.observe(3.0)
        assert est.srtt == pytest.approx(3.0, rel=1e-3)
        assert est.rttvar == pytest.approx(0.0, abs=1e-2)

    def test_transport_applies_karns_rule(self):
        """A retransmitted exchange must not feed the estimator: its ACK
        is ambiguous between the first and second transmission."""
        net = MeshNetwork.from_positions(line_positions(3), config=FAST, seed=7)
        net.run_until_converged(timeout_s=600.0)
        src, dst = net.nodes[0], net.nodes[2]
        src.send_reliable(dst.address, b"sample", None)
        net.run(for_s=120.0)
        transport = src.reliable
        assert transport.rtt_samples >= 1
        assert transport.srtt_s(dst.address) is not None
        # Adaptive RTO is bounded: never below the floor, never above
        # the configured fixed timeout.
        rto = transport.rto_s(dst.address)
        assert ReliableTransport.MIN_RTO_S <= rto <= transport._config.ack_timeout_s

    def test_rto_defaults_to_fixed_timeout_without_samples(self):
        transport = _lone_transport()
        assert transport.rto_s(0x9999) == transport._config.ack_timeout_s
