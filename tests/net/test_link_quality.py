"""Tests for the SNR-based link-quality tie-break extension."""

import pytest

from repro.net.packets import RoutingEntry
from repro.net.routing_table import RoutingTable

ME = 0x0001
WEAK = 0x0002  # neighbour with a weak link
STRONG = 0x0003  # neighbour with a strong link
FAR = 0x0009


def table(tiebreak=3.0) -> RoutingTable:
    return RoutingTable(ME, snr_tiebreak_db=tiebreak)


class TestTiebreakRules:
    def test_equal_metric_stronger_link_wins(self):
        t = table()
        t.process_hello(WEAK, [RoutingEntry(address=FAR, metric=1)], now=0.0, snr_db=-9.0)
        t.process_hello(STRONG, [RoutingEntry(address=FAR, metric=1)], now=1.0, snr_db=-2.0)
        assert t.next_hop(FAR) == STRONG
        assert t.metric(FAR) == 2

    def test_hysteresis_blocks_marginal_switch(self):
        t = table(tiebreak=3.0)
        t.process_hello(WEAK, [RoutingEntry(address=FAR, metric=1)], now=0.0, snr_db=-5.0)
        # Only 2 dB stronger: below the 3 dB hysteresis, keep the incumbent.
        t.process_hello(STRONG, [RoutingEntry(address=FAR, metric=1)], now=1.0, snr_db=-3.0)
        assert t.next_hop(FAR) == WEAK

    def test_worse_metric_never_wins_regardless_of_snr(self):
        t = table()
        t.process_hello(WEAK, [RoutingEntry(address=FAR, metric=1)], now=0.0, snr_db=-9.0)
        t.process_hello(STRONG, [RoutingEntry(address=FAR, metric=2)], now=1.0, snr_db=10.0)
        assert t.next_hop(FAR) == WEAK

    def test_disabled_by_default(self):
        t = RoutingTable(ME)  # paper behaviour: pure hop count
        t.process_hello(WEAK, [RoutingEntry(address=FAR, metric=1)], now=0.0, snr_db=-9.0)
        t.process_hello(STRONG, [RoutingEntry(address=FAR, metric=1)], now=1.0, snr_db=20.0)
        assert t.next_hop(FAR) == WEAK  # first-learned route sticks

    def test_missing_candidate_snr_blocks_switch(self):
        t = table()
        t.process_hello(WEAK, [RoutingEntry(address=FAR, metric=1)], now=0.0, snr_db=-9.0)
        t.process_hello(STRONG, [RoutingEntry(address=FAR, metric=1)], now=1.0, snr_db=None)
        assert t.next_hop(FAR) == WEAK

    def test_measured_link_beats_unmeasured_incumbent(self):
        t = table()
        t.process_hello(WEAK, [RoutingEntry(address=FAR, metric=1)], now=0.0, snr_db=None)
        t.process_hello(STRONG, [RoutingEntry(address=FAR, metric=1)], now=1.0, snr_db=-2.0)
        assert t.next_hop(FAR) == STRONG

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            RoutingTable(ME, snr_tiebreak_db=-1.0)

    def test_direct_neighbour_route_untouched(self):
        # Tie-break only reroutes multi-hop destinations; a direct
        # neighbour stays via itself.
        t = table()
        t.process_hello(WEAK, [], now=0.0, snr_db=-9.0)
        t.process_hello(STRONG, [RoutingEntry(address=WEAK, metric=1)], now=1.0, snr_db=0.0)
        # STRONG advertises WEAK at metric 2 (1+1): worse than direct.
        assert t.next_hop(WEAK) == WEAK


class TestConfigWiring:
    def test_mesher_config_validates(self):
        from repro.net.config import MesherConfig

        MesherConfig(link_quality_tiebreak_db=3.0)
        with pytest.raises(ValueError):
            MesherConfig(link_quality_tiebreak_db=-0.5)

    def test_node_table_receives_threshold(self, sim, medium):
        from repro.net.config import MesherConfig
        from repro.net.mesher import MesherNode

        config = MesherConfig(link_quality_tiebreak_db=4.0)
        node = MesherNode(sim, medium, 0x0001, (0.0, 0.0), config)
        assert node.table.snr_tiebreak_db == 4.0
