"""Tests for byte-exact packet encoding/decoding."""

import struct

import pytest

from repro.net import packets as pk
from repro.net.packets import (
    AckPacket,
    DataPacket,
    LostPacket,
    NeedAckPacket,
    PacketType,
    RoutingEntry,
    RoutingPacket,
    SyncPacket,
    XLDataPacket,
)
from repro.net.serialization import DecodeError, decode, encode, encoded_size


SAMPLE_PACKETS = [
    RoutingPacket(src=0x0A0B, entries=()),
    RoutingPacket(
        src=0x0A0B,
        entries=(RoutingEntry(address=0x0001, metric=0), RoutingEntry(address=0x0002, metric=3, role=1)),
    ),
    DataPacket(dst=0x0001, src=0x0002, via=0x0003, payload=b"hello"),
    DataPacket(dst=0xFFFF, src=0x0002, via=0xFFFF, payload=b""),
    NeedAckPacket(dst=1, src=2, via=3, seq_id=7, number=0, payload=b"reliable"),
    AckPacket(dst=1, src=2, via=3, seq_id=7, number=12),
    LostPacket(dst=1, src=2, via=3, seq_id=7, number=4),
    SyncPacket(dst=1, src=2, via=3, seq_id=9, number=40, total_bytes=7000),
    XLDataPacket(dst=1, src=2, via=3, seq_id=9, number=5, payload=bytes(range(100))),
]


class TestRoundTrip:
    @pytest.mark.parametrize("packet", SAMPLE_PACKETS, ids=lambda p: type(p).__name__)
    def test_encode_decode_roundtrip(self, packet):
        assert decode(encode(packet)) == packet

    @pytest.mark.parametrize("packet", SAMPLE_PACKETS, ids=lambda p: type(p).__name__)
    def test_encoded_size_matches(self, packet):
        assert len(encode(packet)) == encoded_size(packet)

    def test_all_frames_fit_phy_limit(self):
        big = XLDataPacket(dst=1, src=2, via=3, seq_id=0, number=0, payload=bytes(pk.MAX_CONTROL_PAYLOAD))
        assert len(encode(big)) <= pk.MAX_PHY_PAYLOAD


class TestWireLayout:
    def test_header_layout_little_endian(self):
        frame = encode(DataPacket(dst=0x0102, src=0x0304, via=0x0506, payload=b"AB"))
        dst, src, ptype, length = struct.unpack_from("<HHBB", frame)
        assert dst == 0x0102
        assert src == 0x0304
        assert ptype == int(PacketType.DATA)
        assert length == 4  # via(2) + payload(2)
        (via,) = struct.unpack_from("<H", frame, 6)
        assert via == 0x0506
        assert frame[8:] == b"AB"

    def test_routing_entry_is_four_bytes(self):
        one = encode(RoutingPacket(src=1, entries=(RoutingEntry(address=2, metric=1),)))
        two = encode(
            RoutingPacket(
                src=1,
                entries=(RoutingEntry(address=2, metric=1), RoutingEntry(address=3, metric=2)),
            )
        )
        assert len(two) - len(one) == 4

    def test_header_is_six_bytes(self):
        assert len(encode(RoutingPacket(src=1, entries=()))) == 6

    def test_ack_frame_is_eleven_bytes(self):
        # header(6) + via(2) + seq(1) + number(2)
        assert len(encode(AckPacket(dst=1, src=2, via=3, seq_id=0, number=0))) == 11


class TestDecodeErrors:
    def test_truncated_header(self):
        with pytest.raises(DecodeError):
            decode(b"\x01\x02\x03")

    def test_length_field_mismatch(self):
        frame = bytearray(encode(DataPacket(dst=1, src=2, via=3, payload=b"xy")))
        frame[5] += 1  # corrupt the length field
        with pytest.raises(DecodeError):
            decode(bytes(frame))

    def test_unknown_type(self):
        frame = bytearray(encode(AckPacket(dst=1, src=2, via=3, seq_id=0, number=0)))
        frame[4] = 0x7F
        with pytest.raises(DecodeError):
            decode(bytes(frame))

    def test_routing_body_not_multiple_of_entry_size(self):
        frame = struct.pack("<HHBB", 0xFFFF, 1, int(PacketType.ROUTING), 3) + b"\x01\x02\x03"
        with pytest.raises(DecodeError):
            decode(frame)

    def test_ack_with_trailing_garbage(self):
        frame = struct.pack("<HHBB", 1, 2, int(PacketType.ACK), 7) + struct.pack("<HBH", 3, 0, 0) + b"!"
        with pytest.raises(DecodeError):
            decode(frame)

    def test_sync_with_short_tail(self):
        frame = struct.pack("<HHBB", 1, 2, int(PacketType.SYNC), 7) + struct.pack("<HBH", 3, 0, 1) + b"\x00\x00"
        with pytest.raises(DecodeError):
            decode(frame)

    def test_data_shorter_than_via(self):
        frame = struct.pack("<HHBB", 1, 2, int(PacketType.DATA), 1) + b"\x00"
        with pytest.raises(DecodeError):
            decode(frame)

    def test_empty_buffer(self):
        with pytest.raises(DecodeError):
            decode(b"")

    def test_hostile_routing_entry_rejected(self):
        # A routing entry advertising address 0 fails dataclass validation,
        # surfaced as a DecodeError rather than ValueError.
        frame = struct.pack("<HHBB", 0xFFFF, 1, int(PacketType.ROUTING), 4) + struct.pack(
            "<HBB", 0, 1, 0
        )
        with pytest.raises(DecodeError):
            decode(frame)

    def test_decode_never_raises_bare_valueerror(self):
        # Fuzz a few corrupted buffers: only DecodeError may escape.
        base = bytearray(encode(SyncPacket(dst=1, src=2, via=3, seq_id=1, number=2, total_bytes=10)))
        for i in range(len(base)):
            corrupted = bytearray(base)
            corrupted[i] ^= 0xFF
            try:
                decode(bytes(corrupted))
            except DecodeError:
                pass
