"""Tests for 16-bit addressing."""

import pytest

from repro.net.addresses import (
    BROADCAST_ADDRESS,
    NULL_ADDRESS,
    address_from_mac,
    format_address,
    is_unicast,
    validate_address,
)


class TestDerivation:
    def test_low_two_bytes_used(self):
        assert address_from_mac(0xAABBCCDDEEFF) == 0xEEFF

    def test_broadcast_collision_perturbed(self):
        derived = address_from_mac(0x00FFFF)
        assert derived != BROADCAST_ADDRESS
        assert derived != NULL_ADDRESS

    def test_null_collision_perturbed(self):
        derived = address_from_mac(0x110000)
        assert derived != NULL_ADDRESS

    def test_negative_mac_rejected(self):
        with pytest.raises(ValueError):
            address_from_mac(-1)


class TestValidation:
    def test_unicast_accepted(self):
        assert validate_address(0x1234) == 0x1234

    def test_null_rejected(self):
        with pytest.raises(ValueError):
            validate_address(0x0000)

    def test_broadcast_rejected_by_default(self):
        with pytest.raises(ValueError):
            validate_address(BROADCAST_ADDRESS)

    def test_broadcast_allowed_when_requested(self):
        assert validate_address(BROADCAST_ADDRESS, allow_broadcast=True) == BROADCAST_ADDRESS

    def test_over_16bit_rejected(self):
        with pytest.raises(ValueError):
            validate_address(0x10000)

    def test_is_unicast(self):
        assert is_unicast(0x0001)
        assert not is_unicast(NULL_ADDRESS)
        assert not is_unicast(BROADCAST_ADDRESS)


class TestFormatting:
    def test_hex_rendering(self):
        assert format_address(0x00AB) == "00AB"

    def test_broadcast_rendering(self):
        assert format_address(BROADCAST_ADDRESS) == "BCAST"
