"""Local-defer vs on-air retry budgets, and gap-chase repair coverage.

Before this fix a send that failed *locally* — no route yet, or the TX
queue momentarily full — burned the same ``max_retries`` budget as a
frame genuinely lost on air.  A queue spike during route convergence
could therefore kill a transfer that never put a single frame on the
air.  Local failures now charge ``max_local_defers`` (re-checked at the
un-backed-off ``ack_timeout_s`` cadence: local failures are not
congestion signals), while ``max_retries`` is reserved for on-air loss.
"""

import pytest

from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.topology.placement import line_positions
from repro.verify.faults import BurstLoss, FaultInjector, FaultPlan

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)


def _pair(config: MesherConfig = None, *, converge: bool = True):
    net = MeshNetwork.from_positions(line_positions(2), config=config or FAST, seed=5)
    if converge:
        assert net.run_until_converged(timeout_s=600.0) is not None
    return net, net.nodes[0], net.nodes[1]


class TestSingleBudgets:
    def test_no_route_charges_defers_not_retries(self):
        """With the route gone, every re-check is a local defer; the
        on-air retry count must stay zero the whole time."""
        net, src, dst = _pair()
        transport = src.reliable
        transport._route_via = lambda dst_addr: None
        outcome = {}
        src.send_reliable(dst.address, b"stuck", lambda ok, why: outcome.update(ok=ok, why=why))
        state = next(iter(transport._singles.values()))
        net.run(for_s=FAST.ack_timeout_s * 5)
        assert state.retries == 0
        assert state.local_defers >= 3
        assert transport.retransmissions == 0
        assert not outcome  # still deferring, not failed

    def test_no_route_eventually_fails_with_no_route(self):
        config = FAST.replace(max_local_defers=3)
        net, src, dst = _pair(config)
        src.reliable._route_via = lambda dst_addr: None
        outcome = {}
        src.send_reliable(dst.address, b"stuck", lambda ok, why: outcome.update(ok=ok, why=why))
        net.run(for_s=config.ack_timeout_s * 10)
        assert outcome == {"ok": False, "why": "no route"}
        assert src.reliable.retransmissions == 0

    def test_route_recovery_still_delivers(self):
        """A transient outage longer than max_retries' worth of timer
        fires must not kill the send — that is the flip this PR fixes."""
        net, src, dst = _pair()
        transport = src.reliable
        real_route_via = transport._route_via
        transport._route_via = lambda dst_addr: None
        outcome = {}
        src.send_reliable(dst.address, b"patience", lambda ok, why: outcome.update(ok=ok, why=why))
        # Outage spans far more timer fires than max_retries allows.
        net.run(for_s=FAST.ack_timeout_s * (FAST.max_retries + 3))
        assert not outcome
        transport._route_via = real_route_via
        net.run(for_s=FAST.ack_timeout_s * 4)
        assert outcome.get("ok") is True
        assert transport.local_defers > FAST.max_retries

    def test_queue_spike_charges_defers_not_retries(self):
        """TX queue full is a local failure too: the frame never aired."""
        net, src, dst = _pair()
        transport = src.reliable
        real_enqueue = transport._enqueue
        transport._enqueue = lambda packet: False
        outcome = {}
        src.send_reliable(dst.address, b"spike", lambda ok, why: outcome.update(ok=ok, why=why))
        net.run(for_s=FAST.ack_timeout_s * 3)
        assert transport.retransmissions == 0
        assert transport.local_defers >= 2
        transport._enqueue = real_enqueue
        net.run(for_s=FAST.ack_timeout_s * 4)
        assert outcome.get("ok") is True


class TestStreamBudgets:
    PAYLOAD = bytes(range(256)) * 4  # 1024 B -> multiple fragments

    def test_route_loss_mid_stream_defers_then_recovers(self):
        net, src, dst = _pair()
        transport = src.reliable
        real_route_via = transport._route_via
        received = []
        dst.on_app_delivery = lambda msg: received.append(msg.payload)
        outcome = {}
        src.send_reliable(dst.address, self.PAYLOAD, lambda ok, why: outcome.update(ok=ok, why=why))
        net.run(for_s=1.5)  # first fragments air
        transport._route_via = lambda dst_addr: None
        state = next(iter(transport._streams.values()))
        retries_at_outage = state.retries
        net.run(for_s=FAST.ack_timeout_s * (FAST.max_retries + 3))
        assert state.seq_id in transport._streams  # still alive
        assert state.local_defers > 0
        transport._route_via = real_route_via
        net.run(for_s=FAST.ack_timeout_s * 6)
        assert outcome.get("ok") is True
        assert received == [self.PAYLOAD]
        # On-air budget untouched by the outage (ack-timeout fires during
        # the outage find nothing airborne to charge).
        assert state.retries <= retries_at_outage + 1

    def test_permanent_route_loss_fails_with_local_reason(self):
        config = FAST.replace(max_local_defers=4)
        net, src, dst = _pair(config)
        transport = src.reliable
        outcome = {}
        src.send_reliable(dst.address, self.PAYLOAD, lambda ok, why: outcome.update(ok=ok, why=why))
        net.run(for_s=1.5)
        transport._route_via = lambda dst_addr: None
        net.run(for_s=config.ack_timeout_s * 30)
        assert outcome.get("ok") is False
        assert outcome.get("why") in ("no route", "ack timeout")


class TestGapChaseRepair:
    def test_full_tx_queue_loses_no_fragments(self):
        """capacity+1 coverage: a stream one fragment longer than the TX
        queue must requeue the overflow at the front and deliver the
        payload intact — the silent tail-drop is the bug this guards."""
        config = FAST.replace(send_queue_capacity=4, fragment_size=64)
        net, src, dst = _pair(config)
        transport = src.reliable
        # capacity + 1 fragments, distinct bytes per fragment so any
        # reorder/drop corrupts the reassembly visibly.
        payload = b"".join(bytes([i]) * 64 for i in range(config.send_queue_capacity + 1))
        received = []
        dst.on_app_delivery = lambda msg: received.append(msg.payload)
        outcome = {}
        src.send_reliable(dst.address, payload, lambda ok, why: outcome.update(ok=ok, why=why))
        net.run(for_s=600.0)
        assert outcome.get("ok") is True
        assert received == [payload]

    def test_lost_chase_requeues_without_duplicates(self):
        """Under burst loss the receiver chases gaps with LOSTs; the
        sender's retransmit queue must never hold one index twice, and
        the repair must converge to a byte-exact delivery."""
        config = FAST.replace(fragment_size=64)
        net = MeshNetwork.from_positions(line_positions(2), config=config, seed=5)
        assert net.run_until_converged(timeout_s=600.0) is not None
        src, dst = net.nodes[0], net.nodes[1]
        plan = FaultPlan([BurstLoss(start=net.sim.now, end=net.sim.now + 120.0, probability=0.5)])
        FaultInjector(net, plan, seed=11).arm()
        transport = src.reliable
        real_handle_lost = transport.handle_lost
        queue_snapshots = []

        def handle_lost(packet):
            real_handle_lost(packet)
            state = transport._streams.get(packet.seq_id)
            if state is not None:
                queue_snapshots.append(list(state.retransmit_queue))

        transport.handle_lost = handle_lost
        payload = bytes(i % 251 for i in range(64 * 12))
        received = []
        dst.on_app_delivery = lambda msg: received.append(msg.payload)
        outcome = {}
        src.send_reliable(dst.address, payload, lambda ok, why: outcome.update(ok=ok, why=why))
        net.run(for_s=1200.0)
        assert outcome.get("ok") is True
        assert received == [payload]
        assert dst.reliable.losts_sent > 0  # the chase actually happened
        for queue in queue_snapshots:
            assert len(queue) == len(set(queue)), f"duplicate index in {queue}"

    def test_gap_chase_reports_each_missing_index_once_per_round(self):
        """One _gap_timeout round sends at most MAX_LOSTS_PER_GAP LOSTs,
        all for distinct missing indices."""
        from repro.net.reliable import ReliableTransport

        config = FAST.replace(fragment_size=64)
        net, src, dst = _pair(config)
        receiver = dst.reliable
        sent_losts = []
        real_send_lost = receiver._send_lost

        def send_lost(peer, seq_id, *, number):
            sent_losts.append(number)
            real_send_lost(peer, seq_id, number=number)

        receiver._send_lost = send_lost
        # Hand-build an inbound stream with holes: fragments 0 and 5 of 8.
        from repro.net.packets import SyncPacket, XLDataPacket

        receiver.handle_sync(
            SyncPacket(dst=dst.address, src=src.address, via=dst.address,
                       seq_id=99, number=8, total_bytes=8 * 64)
        )
        for index in (0, 5):
            receiver.handle_xl_data(
                XLDataPacket(dst=dst.address, src=src.address, via=dst.address,
                             seq_id=99, number=index, payload=b"x" * 64)
            )
        stream = receiver._inbound[(src.address, 99)]
        sent_losts.clear()
        receiver._gap_timeout(stream)
        assert len(sent_losts) == min(6, ReliableTransport.MAX_LOSTS_PER_GAP)
        assert len(sent_losts) == len(set(sent_losts))
        assert all(index not in (0, 5) for index in sent_losts)
