"""Concurrent reliable streams over the real stack."""

import random

import pytest

from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.topology.placement import line_positions

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)


class TestConcurrentStreams:
    def test_bidirectional_simultaneous_transfers(self):
        net = MeshNetwork.from_positions(line_positions(3), config=FAST, seed=14)
        net.run_until_converged(timeout_s=1800.0)
        a, c = net.nodes[0], net.nodes[-1]
        pa = random.Random(1).randbytes(1200)
        pc = random.Random(2).randbytes(1200)
        outcomes = {}
        a.send_reliable(c.address, pa, lambda ok, why: outcomes.__setitem__("a", ok))
        c.send_reliable(a.address, pc, lambda ok, why: outcomes.__setitem__("c", ok))
        net.run(for_s=1800.0)
        assert outcomes == {"a": True, "c": True}
        assert c.receive().payload == pa
        assert a.receive().payload == pc

    def test_crossing_streams_share_the_relay(self):
        # Both directions route through the same middle node: its queue
        # carries both streams' fragments interleaved.
        net = MeshNetwork.from_positions(line_positions(3), config=FAST, seed=15)
        net.run_until_converged(timeout_s=1800.0)
        a, b, c = net.nodes
        a.send_reliable(c.address, bytes(900))
        c.send_reliable(a.address, bytes(900))
        net.run(for_s=1800.0)
        assert b.stats.data_forwarded > 10  # fragments both ways

    def test_many_parallel_outbound_streams(self):
        net = MeshNetwork.from_positions(line_positions(2, spacing_m=80.0), config=FAST, seed=16)
        net.run_until_converged(timeout_s=600.0)
        a, b = net.nodes
        payloads = [bytes([i]) * 400 for i in range(5)]
        done = []
        for p in payloads:
            a.send_reliable(b.address, p, lambda ok, why: done.append(ok))
        net.run(for_s=3600.0)
        assert done == [True] * 5
        received = []
        while (m := b.receive()) is not None:
            received.append(m.payload)
        assert sorted(received) == sorted(payloads)

    def test_interleaved_datagrams_and_streams(self):
        net = MeshNetwork.from_positions(line_positions(3), config=FAST, seed=17)
        net.run_until_converged(timeout_s=1800.0)
        a, c = net.nodes[0], net.nodes[-1]
        a.send_reliable(c.address, bytes(800))
        for i in range(5):
            a.send_datagram(c.address, bytes([0xD0 + i]))
            net.run(for_s=20.0)
        net.run(for_s=600.0)
        received = []
        while (m := c.receive()) is not None:
            received.append(m)
        datagrams = [m for m in received if not m.reliable]
        streams = [m for m in received if m.reliable]
        assert len(datagrams) == 5
        assert len(streams) == 1
        assert len(streams[0].payload) == 800
