"""Tests for protocol configuration validation."""

import pytest

from repro.net.config import MesherConfig
from repro.phy.regions import US915


class TestDefaults:
    def test_firmware_defaults(self):
        c = MesherConfig()
        assert c.hello_period_s == 120.0
        assert c.route_timeout_s == 600.0
        assert c.max_metric == 16
        assert c.region.name == "EU868"

    def test_replace_returns_copy(self):
        base = MesherConfig()
        changed = base.replace(hello_period_s=60.0)
        assert changed.hello_period_s == 60.0
        assert base.hello_period_s == 120.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            MesherConfig().hello_period_s = 1.0  # type: ignore[misc]


class TestValidation:
    def test_hello_period_positive(self):
        with pytest.raises(ValueError):
            MesherConfig(hello_period_s=0.0)

    def test_route_timeout_must_exceed_hello_period(self):
        with pytest.raises(ValueError):
            MesherConfig(hello_period_s=120.0, route_timeout_s=100.0)

    def test_jitter_fraction_bounds(self):
        with pytest.raises(ValueError):
            MesherConfig(hello_jitter_fraction=1.0)
        with pytest.raises(ValueError):
            MesherConfig(hello_jitter_fraction=-0.1)

    def test_fragment_size_wire_limit(self):
        MesherConfig(fragment_size=244)
        with pytest.raises(ValueError):
            MesherConfig(fragment_size=245)
        with pytest.raises(ValueError):
            MesherConfig(fragment_size=0)

    def test_max_metric_bounds(self):
        with pytest.raises(ValueError):
            MesherConfig(max_metric=0)
        with pytest.raises(ValueError):
            MesherConfig(max_metric=256)

    def test_negative_backoff_rejected(self):
        with pytest.raises(ValueError):
            MesherConfig(backoff_slots=-1)

    def test_timeouts_positive(self):
        with pytest.raises(ValueError):
            MesherConfig(ack_timeout_s=0.0)
        with pytest.raises(ValueError):
            MesherConfig(gap_timeout_s=-1.0)

    def test_region_swappable(self):
        assert MesherConfig(region=US915).region.name == "US915"
