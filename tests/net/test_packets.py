"""Tests for packet structures and their invariants."""

import pytest

from repro.net.addresses import BROADCAST_ADDRESS
from repro.net.packets import (
    MAX_CONTROL_PAYLOAD,
    MAX_DATA_PAYLOAD,
    MAX_ROUTING_ENTRIES,
    AckPacket,
    DataPacket,
    LostPacket,
    NeedAckPacket,
    NodeRole,
    PacketType,
    RoutingEntry,
    RoutingPacket,
    SyncPacket,
    XLDataPacket,
    has_via,
)


class TestRoutingEntry:
    def test_valid_entry(self):
        e = RoutingEntry(address=0x0102, metric=3, role=int(NodeRole.GATEWAY))
        assert e.address == 0x0102

    def test_metric_must_fit_u8(self):
        with pytest.raises(ValueError):
            RoutingEntry(address=1, metric=256)

    def test_zero_address_rejected(self):
        with pytest.raises(ValueError):
            RoutingEntry(address=0, metric=1)

    def test_role_must_fit_u8(self):
        with pytest.raises(ValueError):
            RoutingEntry(address=1, metric=1, role=300)


class TestRoutingPacket:
    def test_defaults_to_broadcast(self):
        p = RoutingPacket(src=1, entries=())
        assert p.dst == BROADCAST_ADDRESS
        assert p.type is PacketType.ROUTING

    def test_entry_limit_enforced(self):
        entries = tuple(RoutingEntry(address=i + 1, metric=1) for i in range(MAX_ROUTING_ENTRIES + 1))
        with pytest.raises(ValueError):
            RoutingPacket(src=1, entries=entries)

    def test_entries_coerced_to_tuple(self):
        p = RoutingPacket(src=1, entries=[RoutingEntry(address=2, metric=1)])
        assert isinstance(p.entries, tuple)


class TestDataPacket:
    def test_payload_size_limit(self):
        DataPacket(dst=1, src=2, via=1, payload=bytes(MAX_DATA_PAYLOAD))
        with pytest.raises(ValueError):
            DataPacket(dst=1, src=2, via=1, payload=bytes(MAX_DATA_PAYLOAD + 1))

    def test_has_via(self):
        assert has_via(DataPacket(dst=1, src=2, via=1, payload=b""))
        assert not has_via(RoutingPacket(src=1, entries=()))


class TestControlPackets:
    def test_seq_id_must_fit_u8(self):
        with pytest.raises(ValueError):
            AckPacket(dst=1, src=2, via=1, seq_id=256, number=0)

    def test_number_must_fit_u16(self):
        with pytest.raises(ValueError):
            LostPacket(dst=1, src=2, via=1, seq_id=0, number=0x10000)

    def test_sync_total_bytes_u32(self):
        SyncPacket(dst=1, src=2, via=1, seq_id=0, number=1, total_bytes=0xFFFFFFFF)
        with pytest.raises(ValueError):
            SyncPacket(dst=1, src=2, via=1, seq_id=0, number=1, total_bytes=0x100000000)

    def test_xl_fragment_size_limit(self):
        XLDataPacket(dst=1, src=2, via=1, seq_id=0, number=0, payload=bytes(MAX_CONTROL_PAYLOAD))
        with pytest.raises(ValueError):
            XLDataPacket(
                dst=1, src=2, via=1, seq_id=0, number=0, payload=bytes(MAX_CONTROL_PAYLOAD + 1)
            )

    def test_need_ack_size_limit(self):
        with pytest.raises(ValueError):
            NeedAckPacket(
                dst=1, src=2, via=1, seq_id=0, number=0, payload=bytes(MAX_CONTROL_PAYLOAD + 1)
            )

    def test_types_are_distinct(self):
        codes = [int(t) for t in PacketType]
        assert len(codes) == len(set(codes))

    def test_packets_are_frozen(self):
        p = AckPacket(dst=1, src=2, via=1, seq_id=0, number=0)
        with pytest.raises(AttributeError):
            p.dst = 9  # type: ignore[misc]
