"""Tests for the reliable transport state machines.

These run two :class:`ReliableTransport` instances over a direct in-test
"wire" with controllable loss, isolating the transport from the radio
stack (full-stack reliability is covered in the integration tests).
"""

import random

import pytest

from repro.net.config import MesherConfig
from repro.net.packets import (
    AckPacket,
    LostPacket,
    NeedAckPacket,
    SyncPacket,
    XLDataPacket,
)
from repro.net.reliable import ReliableTransport, split_payload

A, B = 0x000A, 0x000B


class Wire:
    """Delivers packets between two transports with optional loss."""

    def __init__(self, sim, *, loss_rate: float = 0.0, delay_s: float = 0.05, seed: int = 0):
        self.sim = sim
        self.loss_rate = loss_rate
        self.delay_s = delay_s
        self.rng = random.Random(seed)
        self.endpoints = {}
        self.dropped = 0

    def attach(self, address, transport):
        self.endpoints[address] = transport

    def enqueue(self, packet) -> bool:
        if self.rng.random() < self.loss_rate:
            self.dropped += 1
            return True  # lost on the air, but the queue accepted it
        self.sim.schedule(self.delay_s, lambda: self._deliver(packet))
        return True

    def _deliver(self, packet):
        transport = self.endpoints.get(packet.dst)
        if transport is None:
            return
        handler = {
            NeedAckPacket: transport.handle_need_ack,
            AckPacket: transport.handle_ack,
            LostPacket: transport.handle_lost,
            SyncPacket: transport.handle_sync,
            XLDataPacket: transport.handle_xl_data,
        }[type(packet)]
        handler(packet)


@pytest.fixture
def pair(sim):
    """Two connected transports and their delivery logs."""
    config = MesherConfig(
        fragment_size=50, fragment_spacing_s=0.2, ack_timeout_s=3.0, gap_timeout_s=2.0, max_retries=5
    )
    wire = Wire(sim)
    received = {A: [], B: []}
    transports = {}
    for address in (A, B):
        transports[address] = ReliableTransport(
            sim,
            address,
            config,
            enqueue=wire.enqueue,
            route_via=lambda dst: dst,
            deliver=lambda src, payload, _addr=address: received[_addr].append((src, payload)),
        )
        wire.attach(address, transports[address])
    return transports, received, wire, config


class TestSplitPayload:
    def test_exact_multiple(self):
        assert split_payload(b"abcdef", 3) == [b"abc", b"def"]

    def test_remainder_fragment(self):
        assert split_payload(b"abcdefg", 3) == [b"abc", b"def", b"g"]

    def test_empty_payload_single_empty_fragment(self):
        assert split_payload(b"", 10) == [b""]

    def test_reassembly_identity(self):
        payload = bytes(range(256)) * 3
        assert b"".join(split_payload(payload, 37)) == payload

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            split_payload(b"x", 0)


class TestSinglePackets:
    def test_small_payload_uses_need_ack(self, sim, pair):
        transports, received, wire, _ = pair
        outcome = []
        transports[A].send(B, b"small", lambda ok, why: outcome.append((ok, why)))
        sim.run(until=10.0)
        assert received[B] == [(A, b"small")]
        assert outcome == [(True, "acked")]
        assert transports[A].singles_completed == 1

    def test_duplicate_need_ack_suppressed(self, sim, pair):
        transports, received, wire, _ = pair
        packet = NeedAckPacket(dst=B, src=A, via=B, seq_id=5, number=0, payload=b"dup")
        transports[B].handle_need_ack(packet)
        transports[B].handle_need_ack(packet)
        sim.run(until=1.0)
        assert received[B] == [(A, b"dup")]
        assert transports[B].duplicates_suppressed == 1
        # Both copies are ACKed (the retransmitted copy means the first
        # ACK was lost).
        assert transports[B].acks_sent == 2

    def test_retransmission_after_total_loss_then_failure(self, sim, pair):
        transports, received, wire, config = pair
        wire.loss_rate = 1.0  # nothing gets through
        outcome = []
        transports[A].send(B, b"doomed", lambda ok, why: outcome.append((ok, why)))
        # Backed-off retries wait 3+6+12+24+48+96 s (±25% jitter) before
        # the budget runs out, so give the failure room to land.
        sim.run(until=400.0)
        assert outcome == [(False, "ack timeout")]
        assert transports[A].singles_failed == 1
        assert received[B] == []

    def test_lost_ack_triggers_retransmit_but_single_delivery(self, sim, pair):
        transports, received, wire, _ = pair
        # Drop the first two frames on the wire (the NEED_ACK's ACK).
        drops = iter([False, True])  # deliver NEED_ACK, drop its ACK

        original = wire.enqueue

        def lossy(packet):
            try:
                if next(drops):
                    return True
            except StopIteration:
                pass
            return original(packet)

        for t in transports.values():
            t._enqueue = lossy
        outcome = []
        transports[A].send(B, b"once", lambda ok, why: outcome.append(ok))
        sim.run(until=30.0)
        assert received[B] == [(A, b"once")]  # delivered exactly once
        assert outcome == [True]


class TestStreams:
    def test_large_payload_roundtrip_clean(self, sim, pair):
        transports, received, wire, config = pair
        payload = bytes(i % 251 for i in range(500))
        outcome = []
        transports[A].send(B, payload, lambda ok, why: outcome.append(ok))
        sim.run(until=60.0)
        assert received[B] == [(A, payload)]
        assert outcome == [True]
        assert transports[A].streams_completed == 1
        assert transports[A].fragments_sent == 10  # 500/50

    def test_stream_survives_moderate_loss(self, sim, pair):
        transports, received, wire, _ = pair
        wire.loss_rate = 0.3
        wire.rng = random.Random(8)  # seed chosen to actually drop frames
        dropped_before = wire.dropped
        payload = bytes(i % 251 for i in range(1000))
        outcome = []
        transports[A].send(B, payload, lambda ok, why: outcome.append((ok, why)))
        sim.run(until=600.0)
        assert wire.dropped > dropped_before, "the lossy wire dropped nothing"
        assert outcome and outcome[0][0], f"stream failed: {outcome}"
        assert received[B] == [(A, payload)]
        assert transports[A].retransmissions > 0

    def test_lost_report_resends_exact_fragment(self, sim, pair):
        transports, received, wire, _ = pair
        payload = bytes(200)
        transports[A].send(B, payload)
        sim.run(until=5.0)  # all fragments delivered
        # Forge a LOST for fragment 2 of the (now completed) stream: stale,
        # must be ignored without crashing.
        transports[A].handle_lost(LostPacket(dst=A, src=B, via=A, seq_id=0, number=2))
        sim.run(until=10.0)
        assert received[B] == [(A, payload)]

    def test_zero_length_reliable_payload(self, sim, pair):
        transports, received, wire, _ = pair
        outcome = []
        transports[A].send(B, b"", lambda ok, why: outcome.append(ok))
        sim.run(until=10.0)
        assert received[B] == [(A, b"")]
        assert outcome == [True]

    def test_fragment_without_sync_is_ignored(self, sim, pair):
        # An orphan fragment (lost SYNC) creates no state and provokes no
        # LOST — the sender's ack-timeout path re-sends the SYNC instead.
        transports, received, wire, _ = pair
        orphan = XLDataPacket(dst=B, src=A, via=B, seq_id=9, number=3, payload=b"x")
        transports[B].handle_xl_data(orphan)
        sim.run(until=1.0)
        assert transports[B].losts_sent == 0
        assert transports[B].active_inbound == 0

    def test_lost_sync_recovered_by_ack_timeout(self, sim, pair):
        transports, received, wire, config = pair
        # Drop exactly the first frame (the SYNC), deliver everything else.
        state = {"first": True}
        original = wire.enqueue

        def drop_first(packet):
            if state["first"]:
                state["first"] = False
                wire.dropped += 1
                return True
            return original(packet)

        transports[A]._enqueue = drop_first
        outcome = []
        transports[A].send(B, bytes(300), lambda ok, why: outcome.append(ok))
        sim.run(until=120.0)
        assert outcome == [True]
        assert received[B] == [(A, bytes(300))]

    def test_lost_final_ack_answered_with_reack_not_livelock(self, sim, pair):
        transports, received, wire, config = pair
        # Drop only ACK packets emitted by B, once.
        dropped = {"done": False}
        original = wire.enqueue

        def drop_one_ack(packet):
            if isinstance(packet, AckPacket) and not dropped["done"]:
                dropped["done"] = True
                wire.dropped += 1
                return True
            return original(packet)

        transports[B]._enqueue = drop_one_ack
        outcome = []
        transports[A].send(B, bytes(200), lambda ok, why: outcome.append(ok))
        sim.run(until=120.0)
        assert outcome == [True]
        assert received[B] == [(A, bytes(200))]  # delivered exactly once

    def test_out_of_range_fragment_ignored(self, sim, pair):
        transports, received, wire, _ = pair
        transports[B].handle_sync(SyncPacket(dst=B, src=A, via=B, seq_id=1, number=2, total_bytes=10))
        transports[B].handle_xl_data(
            XLDataPacket(dst=B, src=A, via=B, seq_id=1, number=99, payload=b"x")
        )
        sim.run(until=0.1)
        assert received[B] == []

    def test_inbound_stream_capacity(self, sim, pair):
        transports, received, wire, config = pair
        for i in range(config.max_inbound_streams + 3):
            transports[B].handle_sync(
                SyncPacket(dst=B, src=A, via=B, seq_id=i, number=5, total_bytes=100)
            )
        assert transports[B].active_inbound == config.max_inbound_streams

    def test_receiver_gives_up_on_dead_sender(self, sim, pair):
        transports, received, wire, config = pair
        transports[B].handle_sync(SyncPacket(dst=B, src=A, via=B, seq_id=2, number=4, total_bytes=100))
        wire.loss_rate = 1.0  # LOSTs go nowhere, no fragments arrive
        sim.run(until=200.0)
        assert transports[B].active_inbound == 0

    def test_concurrent_streams_to_same_destination(self, sim, pair):
        transports, received, wire, _ = pair
        p1 = bytes([1]) * 120
        p2 = bytes([2]) * 120
        outcomes = []
        transports[A].send(B, p1, lambda ok, why: outcomes.append(ok))
        transports[A].send(B, p2, lambda ok, why: outcomes.append(ok))
        sim.run(until=120.0)
        assert sorted(received[B]) == sorted([(A, p1), (A, p2)])
        assert outcomes == [True, True]

    def test_seq_ids_skip_in_flight_streams(self, sim, pair):
        transports, _, wire, _ = pair
        wire.loss_rate = 1.0  # keep streams in flight
        first = transports[A].send(B, bytes(100))
        second = transports[A].send(B, bytes(100))
        assert first != second

    def test_stream_counters(self, sim, pair):
        transports, _, _, _ = pair
        transports[A].send(B, bytes(300))
        sim.run(until=30.0)
        assert transports[A].streams_started == 1
        assert transports[A].streams_completed == 1
        assert transports[B].acks_sent >= 1

    def test_no_route_eventually_fails(self, sim, pair):
        transports, received, wire, config = pair
        transports[A]._route_via = lambda dst: None
        outcome = []
        transports[A].send(B, bytes(300), lambda ok, why: outcome.append((ok, why)))
        sim.run(until=300.0)
        assert outcome and not outcome[0][0]
