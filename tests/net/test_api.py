"""Tests for the MeshNetwork builder and public API surface."""

import pytest

from repro import MeshNetwork, MesherConfig
from repro.net.config import MesherConfig as DirectConfig
from repro.phy.pathloss import FreeSpacePathLoss
from repro.topology.placement import line_positions

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)


class TestConstruction:
    def test_from_positions_assigns_sequential_addresses(self):
        net = MeshNetwork.from_positions(line_positions(3))
        assert net.addresses == [1, 2, 3]

    def test_custom_addresses(self):
        net = MeshNetwork.from_positions(line_positions(2), addresses=[0x00AA, 0x00BB])
        assert net.addresses == [0x00AA, 0x00BB]

    def test_address_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MeshNetwork.from_positions(line_positions(2), addresses=[1])

    def test_duplicate_addresses_rejected(self):
        with pytest.raises(ValueError):
            MeshNetwork.from_positions(line_positions(2), addresses=[5, 5])

    def test_empty_positions_rejected(self):
        with pytest.raises(ValueError):
            MeshNetwork.from_positions([])

    def test_custom_pathloss_model(self):
        # Free-space loss at 120 m is tiny: everything is in range, so a
        # 10-node line converges to all metric-1 routes.
        net = MeshNetwork.from_positions(
            line_positions(5), config=FAST, pathloss=FreeSpacePathLoss()
        )
        net.run_until_converged(timeout_s=600.0)
        first = net.nodes[0]
        assert first.table.metric(net.addresses[-1]) == 1

    def test_autostart_false_defers_protocol(self):
        net = MeshNetwork.from_positions(line_positions(2), autostart=False)
        assert not net.nodes[0].started
        net.run(for_s=300.0)
        assert net.nodes[0].hello.hellos_sent == 0
        net.start()
        net.run(for_s=300.0)
        assert net.nodes[0].hello.hellos_sent > 0

    def test_add_node_late_joiner(self):
        net = MeshNetwork.from_positions([(0.0, 0.0), (80.0, 0.0)], config=FAST)
        net.run_until_converged(timeout_s=600.0)
        late = net.add_node(0x0099, (40.0, 40.0), config=FAST)
        late.start()
        net.run(for_s=120.0)
        assert net.nodes[0].table.has_route(0x0099)

    def test_len_and_iter(self):
        net = MeshNetwork.from_positions(line_positions(3))
        assert len(net) == 3
        assert [n.address for n in net] == [1, 2, 3]

    def test_node_lookup_unknown_raises(self):
        net = MeshNetwork.from_positions(line_positions(2))
        with pytest.raises(KeyError):
            net.node(0x0FFF)


class TestRunning:
    def test_run_requires_exactly_one_horizon(self):
        net = MeshNetwork.from_positions(line_positions(2))
        with pytest.raises(ValueError):
            net.run()
        with pytest.raises(ValueError):
            net.run(until=1.0, for_s=1.0)

    def test_run_for_advances_relative(self):
        net = MeshNetwork.from_positions(line_positions(2))
        net.run(for_s=10.0)
        net.run(for_s=10.0)
        assert net.sim.now == 20.0

    def test_converged_empty_and_single(self):
        assert MeshNetwork.from_positions([(0.0, 0.0)]).converged()

    def test_run_until_converged_returns_time(self):
        net = MeshNetwork.from_positions(line_positions(3), config=FAST, seed=5)
        t = net.run_until_converged(timeout_s=1200.0)
        assert t is not None
        assert 0 < t <= 1200.0
        assert net.converged()

    def test_run_until_converged_timeout_returns_none(self):
        # Two nodes far out of radio range can never converge.
        net = MeshNetwork.from_positions([(0.0, 0.0), (5000.0, 0.0)], config=FAST)
        assert net.run_until_converged(timeout_s=120.0) is None

    def test_endpoint_convergence_mode(self):
        net = MeshNetwork.from_positions(line_positions(3), config=FAST, seed=5)
        t = net.run_until_converged(timeout_s=1200.0, require_all=False)
        assert t is not None
        first, last = net.nodes[0], net.nodes[-1]
        assert first.table.has_route(last.address)


class TestInspection:
    def test_coverage_grows_to_one(self):
        net = MeshNetwork.from_positions(line_positions(3), config=FAST, seed=5)
        assert net.coverage() < 1.0
        net.run_until_converged(timeout_s=1200.0)
        assert net.coverage() == 1.0

    def test_totals_accumulate(self):
        net = MeshNetwork.from_positions(line_positions(2), config=FAST)
        net.run(for_s=300.0)
        assert net.total_frames_sent() > 0
        assert net.total_bytes_sent() > 0
        assert net.total_airtime_s() > 0

    def test_describe_lists_every_node(self):
        net = MeshNetwork.from_positions(line_positions(3), config=FAST)
        text = net.describe()
        assert text.count("Routing table of") == 3

    def test_determinism_same_seed_same_outcome(self):
        def run_once():
            net = MeshNetwork.from_positions(line_positions(4), config=FAST, seed=77)
            net.run(for_s=900.0)
            return (
                net.total_frames_sent(),
                net.total_bytes_sent(),
                [tuple((e.address, e.via, e.metric) for e in n.table) for n in net.nodes],
            )

        assert run_once() == run_once()

    def test_different_seeds_differ(self):
        def frames(seed):
            net = MeshNetwork.from_positions(line_positions(4), config=FAST, seed=seed)
            net.run(for_s=900.0)
            return [n.hello.hellos_sent for n in net.nodes], net.total_bytes_sent()

        # Frame *timing* differs; counts may coincide, so compare bytes too
        # over a window where the jittered first hellos land differently.
        assert frames(1) != frames(2)
