"""Tests for the distance-vector routing table.

The whole module runs twice: once against the scalar reference and once
against the columnar (numpy) store, which must be observationally
identical.  ``VECTOR_MIN_ROWS`` is dropped to 1 so even the small
packets used here exercise the vectorized merge path.
"""

import pytest

from repro.net.packets import NodeRole, RoutingEntry
from repro.net.routing_table import RoutingTable

try:
    from repro.net.routing_store import ColumnarRoutingTable

    IMPLS = {"scalar": RoutingTable, "columnar": ColumnarRoutingTable}
except ImportError:  # numpy unavailable: scalar only
    IMPLS = {"scalar": RoutingTable}

_CLS = RoutingTable

ME = 0x0001
N1 = 0x0002  # neighbour 1
N2 = 0x0003  # neighbour 2
FAR = 0x0004  # two hops away


@pytest.fixture(params=sorted(IMPLS), autouse=True)
def _table_impl(request):
    global _CLS
    _CLS = IMPLS[request.param]
    yield
    _CLS = RoutingTable


def make(self_address, **kwargs):
    t = _CLS(self_address, **kwargs)
    if hasattr(t, "VECTOR_MIN_ROWS"):
        t.VECTOR_MIN_ROWS = 1
    return t


def table(**kwargs):
    return make(ME, **kwargs)


class TestHeardFrom:
    def test_neighbour_added_at_metric_one(self):
        t = table()
        t.heard_from(N1, now=0.0)
        entry = t.get(N1)
        assert entry is not None
        assert entry.metric == 1
        assert entry.via == N1
        assert entry.is_neighbour

    def test_self_never_added(self):
        t = table()
        t.heard_from(ME, now=0.0)
        assert t.size == 0

    def test_broadcast_never_added(self):
        t = table()
        t.heard_from(0xFFFF, now=0.0)
        assert t.size == 0

    def test_direct_route_replaces_multihop(self):
        t = table()
        t.process_hello(N1, [RoutingEntry(address=FAR, metric=1)], now=0.0)
        assert t.metric(FAR) == 2
        t.heard_from(FAR, now=1.0)
        assert t.metric(FAR) == 1
        assert t.next_hop(FAR) == FAR

    def test_refresh_updates_timestamp(self):
        t = table(route_timeout=100.0)
        t.heard_from(N1, now=0.0)
        t.heard_from(N1, now=90.0)
        t.purge(now=150.0)  # 60 s since refresh: still alive
        assert t.has_route(N1)


class TestHelloMerge:
    def test_learns_distant_nodes_with_incremented_metric(self):
        t = table()
        changed = t.process_hello(N1, [RoutingEntry(address=FAR, metric=2)], now=0.0)
        assert changed >= 1
        assert t.metric(FAR) == 3
        assert t.next_hop(FAR) == N1

    def test_hello_source_becomes_neighbour(self):
        t = table()
        t.process_hello(N1, [], now=0.0)
        assert t.metric(N1) == 1

    def test_better_metric_wins(self):
        t = table()
        t.process_hello(N1, [RoutingEntry(address=FAR, metric=3)], now=0.0)
        t.process_hello(N2, [RoutingEntry(address=FAR, metric=1)], now=1.0)
        assert t.metric(FAR) == 2
        assert t.next_hop(FAR) == N2

    def test_worse_metric_from_other_via_ignored(self):
        t = table()
        t.process_hello(N1, [RoutingEntry(address=FAR, metric=1)], now=0.0)
        t.process_hello(N2, [RoutingEntry(address=FAR, metric=5)], now=1.0)
        assert t.metric(FAR) == 2
        assert t.next_hop(FAR) == N1

    def test_same_via_follows_metric_increase(self):
        # The current next hop's view worsened: follow it (RIP behaviour).
        t = table()
        t.process_hello(N1, [RoutingEntry(address=FAR, metric=1)], now=0.0)
        t.process_hello(N1, [RoutingEntry(address=FAR, metric=4)], now=1.0)
        assert t.metric(FAR) == 5
        assert t.next_hop(FAR) == N1

    def test_own_address_in_hello_skipped(self):
        t = table()
        t.process_hello(N1, [RoutingEntry(address=ME, metric=0)], now=0.0)
        assert not t.has_route(ME)

    def test_metric_cap_blocks_count_to_infinity(self):
        t = table(max_metric=4)
        t.process_hello(N1, [RoutingEntry(address=FAR, metric=4)], now=0.0)
        assert not t.has_route(FAR)

    def test_snr_recorded_for_neighbour(self):
        t = table()
        t.process_hello(N1, [], now=0.0, snr_db=-3.5)
        assert t.get(N1).received_snr_db == -3.5

    def test_role_propagated(self):
        t = table()
        t.process_hello(N1, [RoutingEntry(address=FAR, metric=1, role=int(NodeRole.GATEWAY))], now=0.0)
        assert t.get(FAR).role == int(NodeRole.GATEWAY)


class TestExpiry:
    def test_stale_routes_purged(self):
        t = table(route_timeout=100.0)
        t.heard_from(N1, now=0.0)
        removed = t.purge(now=101.0)
        assert [e.address for e in removed] == [N1]
        assert not t.has_route(N1)

    def test_fresh_routes_survive_purge(self):
        t = table(route_timeout=100.0)
        t.heard_from(N1, now=0.0)
        assert t.purge(now=99.0) == []
        assert t.has_route(N1)

    def test_remove_via_drops_all_dependent_routes(self):
        t = table()
        t.process_hello(N1, [RoutingEntry(address=FAR, metric=1)], now=0.0)
        t.process_hello(N2, [], now=0.0)
        dropped = t.remove_via(N1)
        assert {e.address for e in dropped} == {N1, FAR}
        assert t.has_route(N2)


class TestLookupAndIteration:
    def test_next_hop_unknown_destination(self):
        assert table().next_hop(FAR) is None

    def test_contains_and_size(self):
        t = table()
        t.heard_from(N1, now=0.0)
        assert N1 in t
        assert FAR not in t
        assert t.size == 1

    def test_iteration_sorted_by_address(self):
        t = table()
        t.heard_from(N2, now=0.0)
        t.heard_from(N1, now=0.0)
        assert [e.address for e in t] == [N1, N2]

    def test_neighbours_listed(self):
        t = table()
        t.process_hello(N1, [RoutingEntry(address=FAR, metric=1)], now=0.0)
        assert t.neighbours() == [N1]
        assert t.destinations() == [N1, FAR]


class TestSnapshot:
    def test_snapshot_advertises_self_at_metric_zero(self):
        t = table()
        rows = t.snapshot()
        assert rows[0] == RoutingEntry(address=ME, metric=0, role=0)

    def test_snapshot_includes_all_routes(self):
        t = table()
        t.process_hello(N1, [RoutingEntry(address=FAR, metric=1)], now=0.0)
        rows = t.snapshot()
        advertised = {r.address: r.metric for r in rows}
        assert advertised == {ME: 0, N1: 1, FAR: 2}

    def test_snapshot_role_flag(self):
        rows = table().snapshot(self_role=int(NodeRole.GATEWAY))
        assert rows[0].role == int(NodeRole.GATEWAY)

    def test_two_tables_converge_via_snapshots(self):
        # A miniature two-node exchange: tables teach each other.
        ta = make(0x000A)
        tb = make(0x000B)
        tb.heard_from(0x000C, now=0.0)  # B knows C
        ta.process_hello(0x000B, tb.snapshot()[1:], now=1.0)
        assert ta.metric(0x000B) == 1
        assert ta.metric(0x000C) == 2


class TestChangeHook:
    def test_hook_sees_adds_updates_removes(self):
        events = []
        t = make(ME, route_timeout=100.0, on_change=lambda k, e: events.append((k, e.address)))
        t.process_hello(N1, [RoutingEntry(address=FAR, metric=3)], now=0.0)
        t.process_hello(N2, [RoutingEntry(address=FAR, metric=1)], now=1.0)
        t.purge(now=500.0)
        kinds = [k for k, _ in events]
        assert "added" in kinds
        assert "updated" in kinds
        assert "removed" in kinds


class TestValidation:
    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError):
            make(ME, route_timeout=0.0)

    def test_bad_max_metric_rejected(self):
        with pytest.raises(ValueError):
            make(ME, max_metric=0)
        with pytest.raises(ValueError):
            make(ME, max_metric=256)

    def test_format_renders_all_routes(self):
        t = table()
        t.heard_from(N1, now=0.0)
        text = t.format()
        assert "0002" in text
        assert "metric=1" in text


class TestMergeMemoEviction:
    """Regression: the no-op merge memo must not grow without bound in
    mobile scenarios (ISSUE 5 satellite)."""

    def _noop_hello(self, t, src, now):
        """Two identical merges: the second is a no-op and lands a memo."""
        entries = (RoutingEntry(address=FAR, metric=1),)
        t.process_hello(src, entries, now=now)
        t.process_hello(src, entries, now=now)
        return entries

    def test_memo_evicted_when_neighbour_route_expires(self):
        t = make(ME, route_timeout=100.0)
        self._noop_hello(t, N1, now=0.0)
        assert N1 in t._merge_memo
        t.purge(now=500.0)
        assert N1 not in t._merge_memo

    def test_memo_evicted_on_remove_via(self):
        t = table()
        self._noop_hello(t, N1, now=0.0)
        assert N1 in t._merge_memo
        t.remove_via(N1)
        assert N1 not in t._merge_memo

    def test_memo_capped_under_neighbour_churn(self):
        from repro.net.routing_table import _MERGE_MEMO_MAX

        t = RoutingTable(ME, route_timeout=10_000.0)
        # A long parade of transient neighbours, each leaving a no-op
        # memo behind and never expiring within the run.
        for i in range(4 * _MERGE_MEMO_MAX):
            src = 0x1000 + i
            entries = (RoutingEntry(address=FAR, metric=1),)
            t.process_hello(src, entries, now=float(i))
            t.process_hello(src, entries, now=float(i))
        assert len(t._merge_memo) <= _MERGE_MEMO_MAX

    def test_memo_still_correct_after_eviction(self):
        # Eviction must only cost performance, never change merge results.
        t = table()
        entries = (RoutingEntry(address=FAR, metric=1),)
        t.process_hello(N1, entries, now=0.0)
        t.process_hello(N1, entries, now=1.0)  # memoized no-op
        t._merge_memo.clear()  # simulate eviction
        assert t.process_hello(N1, entries, now=2.0) == 0
        assert t.get(FAR).updated_at == 2.0
