"""Tests for the hello (routing dissemination) service."""

import random

import pytest

from repro.net.config import MesherConfig
from repro.net.hello import HelloService
from repro.net.packets import MAX_ROUTING_ENTRIES, RoutingEntry, RoutingPacket
from repro.net.routing_table import RoutingTable

ME = 0x0001


@pytest.fixture
def setup(sim):
    table = RoutingTable(ME)
    sent = []
    config = MesherConfig(hello_period_s=100.0, hello_jitter_fraction=0.0)
    service = HelloService(
        sim, ME, table, config, enqueue=lambda p: sent.append(p) or True, rng=random.Random(1)
    )
    return table, sent, service, config


class TestScheduling:
    def test_first_hello_within_one_period(self, sim, setup):
        _, sent, service, config = setup
        service.start()
        sim.run(until=config.hello_period_s)
        assert len(sent) >= 1

    def test_steady_state_rate(self, sim, setup):
        _, sent, service, config = setup
        service.start()
        sim.run(until=1000.0)
        # ~10 periods: the first fires early, so 10 +/- 1.
        assert 9 <= len(sent) <= 11

    def test_stop_halts_hellos(self, sim, setup):
        _, sent, service, _ = setup
        service.start()
        sim.run(until=150.0)
        count = len(sent)
        service.stop()
        sim.run(until=2000.0)
        assert len(sent) == count
        assert not service.running

    def test_start_is_idempotent(self, sim, setup):
        _, sent, service, _ = setup
        service.start()
        service.start()
        sim.run(until=105.0)
        assert len(sent) <= 2  # not doubled

    def test_jitter_desynchronises(self, sim):
        # With jitter the inter-hello gaps vary.
        table = RoutingTable(ME)
        times = []
        config = MesherConfig(hello_period_s=100.0, hello_jitter_fraction=0.25)
        service = HelloService(
            sim, ME, table, config,
            enqueue=lambda p: times.append(sim.now) or True,
            rng=random.Random(3),
        )
        service.start()
        sim.run(until=2000.0)
        gaps = {round(b - a, 3) for a, b in zip(times, times[1:])}
        assert len(gaps) > 1


class TestPacketContents:
    def test_empty_table_still_advertises_self(self, sim, setup):
        table, sent, service, _ = setup
        service.send_hello()
        assert len(sent) == 1
        assert sent[0].entries[0].address == ME
        assert sent[0].entries[0].metric == 0

    def test_hello_carries_table_rows(self, sim, setup):
        table, sent, service, _ = setup
        table.heard_from(0x0002, now=0.0)
        service.send_hello()
        advertised = {e.address: e.metric for e in sent[0].entries}
        assert advertised == {ME: 0, 0x0002: 1}

    def test_large_table_split_across_packets(self, sim, setup):
        _, _, service, _ = setup
        entries = [RoutingEntry(address=i + 2, metric=1) for i in range(MAX_ROUTING_ENTRIES + 10)]
        packets = service.build_packets(entries)
        assert len(packets) == 2
        assert len(packets[0].entries) == MAX_ROUTING_ENTRIES
        assert sum(len(p.entries) for p in packets) == len(entries)

    def test_counters(self, sim, setup):
        table, _, service, _ = setup
        table.heard_from(0x0002, now=0.0)
        service.send_hello()
        assert service.hellos_sent == 1
        assert service.hello_entries_sent == 2


class TestPurge:
    def test_purge_timer_expires_routes(self, sim):
        table = RoutingTable(ME, route_timeout=150.0)
        config = MesherConfig(
            hello_period_s=100.0, route_timeout_s=150.0, purge_period_s=50.0
        )
        service = HelloService(
            sim, ME, table, config, enqueue=lambda p: True, rng=random.Random(1)
        )
        table.heard_from(0x0002, now=0.0)
        service.start()
        sim.run(until=250.0)
        assert not table.has_route(0x0002)


class TestPacketReuse:
    """Beacon packets are rebuilt only when the advertised rows change."""

    def test_stable_table_reuses_packet_objects(self, sim, setup):
        table, sent, service, config = setup
        table.heard_from(0x0002, 0.0)
        service.start()
        sim.run(until=config.hello_period_s * 3.5)
        assert len(sent) >= 3
        assert all(p is sent[0] for p in sent[1:])

    def test_table_change_rebuilds_packets(self, sim, setup):
        table, sent, service, config = setup
        table.heard_from(0x0002, 0.0)
        service.start()
        sim.run(until=config.hello_period_s * 1.5)
        first = sent[-1]
        table.heard_from(0x0003, sim.now)  # new route -> new advertisement
        sim.run(until=config.hello_period_s * 2.5)
        assert sent[-1] is not first
        assert {e.address for e in sent[-1].entries} == {ME, 0x0002, 0x0003}

    def test_timestamp_refresh_does_not_rebuild(self, sim, setup):
        table, sent, service, config = setup
        table.heard_from(0x0002, 0.0)
        service.start()
        sim.run(until=config.hello_period_s * 1.5)
        version = table.version
        table.heard_from(0x0002, sim.now)  # refresh only: same rows
        assert table.version == version
        sim.run(until=config.hello_period_s * 2.5)
        assert sent[-1] is sent[0]

    def test_version_bumps_on_add_update_remove(self, sim):
        table = RoutingTable(ME, route_timeout=10.0)
        v0 = table.version
        table.heard_from(0x0002, 0.0)
        assert table.version > v0
        v1 = table.version
        entries = (RoutingEntry(address=0x0003, metric=2, role=0),)
        table.process_hello(0x0002, entries, 1.0)
        assert table.version > v1
        v2 = table.version
        table.purge(now=100.0)
        assert table.size == 0
        assert table.version > v2

    def test_reused_packets_encode_identically(self, sim, setup):
        from repro.net import serialization

        table, sent, service, config = setup
        table.heard_from(0x0002, 0.0)
        service.start()
        sim.run(until=config.hello_period_s * 2.5)
        buffers = [serialization.encode(p) for p in sent]
        assert len(set(buffers)) == 1
        decoded = serialization.decode(buffers[0])
        assert {e.address for e in decoded.entries} == {ME, 0x0002}
