"""Tests for bounded packet queues."""

import pytest

from repro.net.packets import AckPacket, DataPacket, LostPacket, SyncPacket
from repro.net.queues import PacketQueue, SendQueue


def data(n: int = 0) -> DataPacket:
    return DataPacket(dst=1, src=2, via=1, payload=bytes([n]))


def ack() -> AckPacket:
    return AckPacket(dst=1, src=2, via=1, seq_id=0, number=0)


class TestPacketQueue:
    def test_fifo_order(self):
        q = PacketQueue(4)
        for i in range(3):
            assert q.push(i)
        assert [q.pop(), q.pop(), q.pop()] == [0, 1, 2]

    def test_pop_empty_returns_none(self):
        assert PacketQueue(2).pop() is None

    def test_overflow_drops_and_counts(self):
        q = PacketQueue(2)
        assert q.push(1) and q.push(2)
        assert not q.push(3)
        assert q.dropped == 1
        assert len(q) == 2

    def test_peek_does_not_remove(self):
        q = PacketQueue(2)
        q.push("x")
        assert q.peek() == "x"
        assert len(q) == 1

    def test_requeue_front(self):
        q = PacketQueue(3)
        q.push(1)
        q.push(2)
        item = q.pop()
        q.requeue_front(item)
        assert q.pop() == 1

    def test_full_flag(self):
        q = PacketQueue(1)
        assert not q.full
        q.push(1)
        assert q.full

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PacketQueue(0)

    def test_bool_and_iter(self):
        q = PacketQueue(3)
        assert not q
        q.push(1)
        q.push(2)
        assert q
        assert list(q) == [1, 2]

    def test_enqueued_total_counts_successes_only(self):
        q = PacketQueue(1)
        q.push(1)
        q.push(2)
        assert q.enqueued_total == 1

    def test_requeue_front_is_loss_free_when_queue_refilled(self):
        # Regression: a duty-cycle deferral pops the head, other producers
        # refill the queue to capacity, and the deferred item comes back.
        # The popped slot is still owned by the item — requeue must never
        # drop it, even if the queue transiently exceeds capacity.
        q = PacketQueue(2)
        q.push("deferred")
        q.push("b")
        item = q.pop()
        assert q.push("c")  # refills to capacity while the item is out
        assert q.requeue_front(item)
        assert len(q) == 3  # transient capacity + 1
        assert q.dropped == 0
        assert q.pop() == "deferred"
        # New pushes keep dropping until the queue drains under the cap.
        assert not q.push("d")
        assert q.dropped == 1

    def test_conservation_counters(self):
        q = PacketQueue(2)
        q.push(1)
        q.push(2)
        q.pop()
        assert q.enqueued_total == q.dequeued_total + len(q)
        q.requeue_front(1)
        assert q.enqueued_total == q.dequeued_total + len(q)


class TestSendQueue:
    def test_control_jumps_ahead_of_data(self):
        q = SendQueue(8)
        q.push(data(1))
        q.push(data(2))
        q.push(ack())
        assert isinstance(q.pop(), AckPacket)
        assert q.pop().payload == bytes([1])

    def test_lost_and_sync_are_priority(self):
        q = SendQueue(8)
        q.push(data())
        q.push(LostPacket(dst=1, src=2, via=1, seq_id=0, number=0))
        q.push(SyncPacket(dst=1, src=2, via=1, seq_id=0, number=1, total_bytes=1))
        assert isinstance(q.pop(), LostPacket)
        assert isinstance(q.pop(), SyncPacket)
        assert isinstance(q.pop(), DataPacket)

    def test_capacity_shared_across_lanes(self):
        q = SendQueue(2)
        assert q.push(data())
        assert q.push(ack())
        assert not q.push(data())
        assert q.dropped == 1

    def test_peek_matches_pop(self):
        q = SendQueue(4)
        q.push(data())
        q.push(ack())
        assert q.peek() is q.pop()

    def test_requeue_front_respects_lane(self):
        q = SendQueue(4)
        q.push(data(1))
        first = q.pop()
        q.push(ack())
        q.requeue_front(first)
        # Control still wins over the requeued data packet.
        assert isinstance(q.pop(), AckPacket)
        assert q.pop().payload == bytes([1])

    def test_requeue_front_is_loss_free_when_queue_refilled(self):
        # Regression: the pump pops the head, defers on the duty cycle,
        # and meanwhile the hello service / reliable transport fill the
        # queue to capacity.  The deferred frame must come back intact.
        q = SendQueue(2)
        q.push(data(1))
        q.push(data(2))
        deferred = q.pop()
        assert q.push(data(3))  # refills to capacity during the deferral
        assert q.requeue_front(deferred)
        assert len(q) == 3  # transient capacity + 1
        assert q.dropped == 0
        assert q.pop().payload == bytes([1])
        assert not q.push(data(4))  # still over cap until drained
        assert q.dropped == 1

    def test_conservation_counters_with_requeue_and_drain(self):
        q = SendQueue(4)
        q.push(data(1))
        q.push(ack())
        popped = q.pop()
        assert q.enqueued_total == q.dequeued_total + len(q)
        q.requeue_front(popped)
        assert q.enqueued_total == q.dequeued_total + len(q)
        q.drain()
        assert q.enqueued_total == q.dequeued_total + len(q)

    def test_drain_empties_queue(self):
        q = SendQueue(4)
        q.push(data())
        q.push(ack())
        drained = q.drain()
        assert len(drained) == 2
        assert len(q) == 0

    def test_pop_empty_returns_none(self):
        assert SendQueue(2).pop() is None
        assert SendQueue(2).peek() is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SendQueue(0)
