"""Tests for the data-plane classification logic."""

import pytest

from repro.net.addresses import BROADCAST_ADDRESS
from repro.net.forwarding import ForwardAction, classify, initial_via, rewrite_via
from repro.net.packets import AckPacket, DataPacket, RoutingEntry, SyncPacket, XLDataPacket
from repro.net.routing_table import RoutingTable

ME = 0x0001
NEXT = 0x0002
FAR = 0x0003
OTHER = 0x0009


@pytest.fixture
def table():
    t = RoutingTable(ME)
    t.process_hello(NEXT, [RoutingEntry(address=FAR, metric=1)], now=0.0)
    return t


def pkt(dst, via, src=OTHER):
    return DataPacket(dst=dst, src=src, via=via, payload=b"p")


class TestClassification:
    def test_deliver_when_destination(self, table):
        decision = classify(pkt(dst=ME, via=ME), ME, table)
        assert decision.action is ForwardAction.DELIVER

    def test_deliver_broadcast(self, table):
        decision = classify(pkt(dst=BROADCAST_ADDRESS, via=BROADCAST_ADDRESS), ME, table)
        assert decision.action is ForwardAction.DELIVER

    def test_forward_when_named_via(self, table):
        decision = classify(pkt(dst=FAR, via=ME), ME, table)
        assert decision.action is ForwardAction.FORWARD
        assert decision.next_hop == NEXT
        assert decision.outgoing.via == NEXT
        # End-to-end fields untouched.
        assert decision.outgoing.dst == FAR
        assert decision.outgoing.src == OTHER

    def test_overhear_when_for_someone_else(self, table):
        decision = classify(pkt(dst=FAR, via=NEXT), ME, table)
        assert decision.action is ForwardAction.OVERHEAR
        assert decision.outgoing is None

    def test_no_route_when_table_lacks_destination(self, table):
        decision = classify(pkt(dst=0x00AA, via=ME), ME, table)
        assert decision.action is ForwardAction.NO_ROUTE

    def test_deliver_takes_precedence_over_forward(self, table):
        # dst == me AND via == me: delivery wins (no self-forwarding loop).
        decision = classify(pkt(dst=ME, via=ME), ME, table)
        assert decision.action is ForwardAction.DELIVER

    def test_ping_pong_flagged_when_next_hop_is_previous_transmitter(self, table):
        decision = classify(pkt(dst=FAR, via=ME), ME, table, previous_hop=NEXT)
        assert decision.action is ForwardAction.FORWARD
        assert decision.ping_pong
        # The frame is still forwarded — the firmware has no previous-hop
        # knowledge, so the flag must never change behaviour.
        assert decision.outgoing.via == NEXT

    def test_ping_pong_clear_when_previous_hop_differs(self, table):
        decision = classify(pkt(dst=FAR, via=ME), ME, table, previous_hop=OTHER)
        assert decision.action is ForwardAction.FORWARD
        assert not decision.ping_pong

    def test_ping_pong_clear_without_previous_hop(self, table):
        decision = classify(pkt(dst=FAR, via=ME), ME, table)
        assert decision.action is ForwardAction.FORWARD
        assert not decision.ping_pong

    def test_control_packets_forwarded_too(self, table):
        ackpkt = AckPacket(dst=FAR, src=OTHER, via=ME, seq_id=1, number=2)
        decision = classify(ackpkt, ME, table)
        assert decision.action is ForwardAction.FORWARD
        assert isinstance(decision.outgoing, AckPacket)
        assert decision.outgoing.seq_id == 1


class TestRewrite:
    def test_rewrite_preserves_all_other_fields(self):
        original = XLDataPacket(dst=FAR, src=OTHER, via=ME, seq_id=3, number=17, payload=b"frag")
        rewritten = rewrite_via(original, NEXT)
        assert rewritten.via == NEXT
        assert rewritten.seq_id == 3
        assert rewritten.number == 17
        assert rewritten.payload == b"frag"

    def test_rewrite_sync_keeps_total_bytes(self):
        original = SyncPacket(dst=FAR, src=OTHER, via=ME, seq_id=1, number=9, total_bytes=2048)
        assert rewrite_via(original, NEXT).total_bytes == 2048

    def test_rewrite_unknown_type_raises(self):
        with pytest.raises(TypeError):
            rewrite_via("not a packet", NEXT)  # type: ignore[arg-type]


class TestInitialVia:
    def test_known_destination(self, table):
        assert initial_via(FAR, ME, table) == NEXT

    def test_unknown_destination(self, table):
        assert initial_via(0x00AA, ME, table) is None

    def test_broadcast_maps_to_broadcast(self, table):
        assert initial_via(BROADCAST_ADDRESS, ME, table) == BROADCAST_ADDRESS

    def test_self_destination_rejected(self, table):
        with pytest.raises(ValueError):
            initial_via(ME, ME, table)
