"""Tests for table rendering."""

import pytest

from repro.experiments.report import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4  # header, rule, two rows

    def test_title_line(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159]])
        assert "3.142" in text

    def test_large_float_formatting(self):
        text = format_table(["v"], [[12345.678]])
        assert "12345.7" in text

    def test_inf_and_nan(self):
        text = format_table(["v"], [[float("inf")], [float("nan")]])
        assert "inf" in text
        assert "nan" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_wide_cells_extend_columns(self):
        text = format_table(["h"], [["a very wide cell indeed"]])
        header, rule, row = text.splitlines()
        assert len(rule) == len("a very wide cell indeed")
