"""Tests for sweep helpers."""

import math

from repro.experiments.sweep import repeat_seeds, sweep_grid


class TestSweepGrid:
    def test_cartesian_product(self):
        points = list(sweep_grid(a=[1, 2], b=["x", "y"]))
        assert points == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_single_axis(self):
        assert list(sweep_grid(n=[3])) == [{"n": 3}]

    def test_empty_axis_yields_nothing(self):
        assert list(sweep_grid(n=[])) == []


class TestRepeatSeeds:
    def test_mean_and_ci(self):
        mean, ci, raw = repeat_seeds(lambda seed: float(seed), [1, 2, 3])
        assert mean == 2.0
        assert ci > 0
        assert raw == [1.0, 2.0, 3.0]

    def test_none_results_become_nan(self):
        mean, ci, raw = repeat_seeds(lambda seed: None if seed == 2 else 1.0, [1, 2, 3])
        assert mean == 1.0
        assert math.isnan(raw[1])

    def test_all_none(self):
        mean, ci, raw = repeat_seeds(lambda seed: None, [1, 2])
        assert math.isnan(mean)
        assert all(math.isnan(v) for v in raw)


# Module-level workers: multiprocessing can only ship picklable
# (importable) callables to the pool.
def _square(point):
    return point * point


def _simulate_point(seed):
    from repro.net.api import MeshNetwork
    from repro.net.config import MesherConfig
    from repro.topology.placement import line_positions

    cfg = MesherConfig(hello_period_s=60.0, route_timeout_s=300.0, purge_period_s=30.0)
    net = MeshNetwork.from_positions(line_positions(3), config=cfg, seed=seed)
    t = net.run_until_converged(timeout_s=3600.0, check_period_s=10.0)
    return (t, net.total_frames_sent(), net.total_bytes_sent())


class TestDeriveSeed:
    def test_deterministic_and_process_independent(self):
        from repro.experiments.sweep import derive_seed

        # Fixed expectations: sha256-based, so stable across processes,
        # platforms, and interpreter restarts (unlike salted hash()).
        assert derive_seed(0, 0) == derive_seed(0, 0)
        assert derive_seed(0, 0) != derive_seed(0, 1)
        assert derive_seed(0, 0) != derive_seed(1, 0)
        assert all(0 <= derive_seed(5, i) < 2**64 for i in range(100))

    def test_distinct_across_indices(self):
        from repro.experiments.sweep import derive_seed

        seeds = [derive_seed(7, i) for i in range(1000)]
        assert len(set(seeds)) == 1000


class TestRunParallel:
    def test_serial_fallback(self):
        from repro.experiments.sweep import run_parallel

        assert run_parallel([1, 2, 3], _square) == [1, 4, 9]
        assert run_parallel([1, 2, 3], _square, workers=1) == [1, 4, 9]
        assert run_parallel([], _square, workers=4) == []

    def test_serial_accepts_unpicklable_fn(self):
        from repro.experiments.sweep import run_parallel

        assert run_parallel([2], lambda p: p + 1) == [3]

    def test_negative_workers_rejected(self):
        import pytest

        from repro.experiments.sweep import run_parallel

        with pytest.raises(ValueError):
            run_parallel([1], _square, workers=-1)

    def test_parallel_matches_serial_order(self):
        from repro.experiments.sweep import run_parallel

        points = list(range(20))
        assert run_parallel(points, _square, workers=4) == [p * p for p in points]

    def test_parallel_simulation_identical_to_serial(self):
        from repro.experiments.sweep import derive_seed, run_parallel

        seeds = [derive_seed(99, i) for i in range(4)]
        serial = run_parallel(seeds, _simulate_point)
        parallel = run_parallel(seeds, _simulate_point, workers=4)
        assert serial == parallel

    def test_repeat_seeds_parallel_matches_serial(self):
        from repro.experiments.sweep import repeat_seeds

        def first(result):
            return result

        serial = repeat_seeds(_convergence_only, [1, 2, 3, 4])
        parallel = repeat_seeds(_convergence_only, [1, 2, 3, 4], workers=4)
        assert serial == parallel


class TestAutoChunksize:
    """chunksize defaults to ``max(1, len(points) // (4 * workers))`` so
    large sweeps stop paying per-point IPC; explicit values are honored."""

    class _SpyPool:
        last = None

        def __init__(self, processes=None):
            TestAutoChunksize._SpyPool.last = self
            self.processes = processes
            self.chunksize = None

        def map(self, fn, points, chunksize):
            self.chunksize = chunksize
            return [fn(p) for p in points]

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

    def _run(self, monkeypatch, points, **kwargs):
        from repro.experiments import sweep

        monkeypatch.setattr(sweep.multiprocessing, "Pool", self._SpyPool)
        # reuse_pool=False: the spy must not be cached in the shared-pool
        # table, and the chunksize derivation is identical on both paths.
        result = sweep.run_parallel(points, _square, reuse_pool=False, **kwargs)
        return result, self._SpyPool.last.chunksize

    def test_auto_chunksize_large_sweep(self, monkeypatch):
        result, chunksize = self._run(monkeypatch, list(range(100)), workers=4)
        assert result == [p * p for p in range(100)]
        assert chunksize == 100 // (4 * 4)

    def test_auto_chunksize_floors_at_one(self, monkeypatch):
        _, chunksize = self._run(monkeypatch, list(range(6)), workers=4)
        assert chunksize == 1

    def test_explicit_chunksize_honored(self, monkeypatch):
        _, chunksize = self._run(monkeypatch, list(range(100)), workers=4, chunksize=3)
        assert chunksize == 3

    def test_invalid_chunksize_rejected(self):
        import pytest

        from repro.experiments.sweep import run_parallel

        with pytest.raises(ValueError):
            run_parallel([1, 2], _square, workers=2, chunksize=0)


def _convergence_only(seed):
    return _simulate_point(seed)[0]


class TestSharedPool:
    """run_parallel reuses one persistent pool per worker count, so
    multi-stage sweeps stop paying a pool spawn per stage."""

    def test_same_pool_reused(self):
        from repro.experiments.sweep import shared_pool

        assert shared_pool(2) is shared_pool(2)

    def test_distinct_worker_counts_get_distinct_pools(self):
        from repro.experiments.sweep import shared_pool

        assert shared_pool(2) is not shared_pool(3)

    def test_invalid_worker_count_rejected(self):
        import pytest

        from repro.experiments.sweep import shared_pool

        with pytest.raises(ValueError):
            shared_pool(0)

    def test_run_parallel_back_to_back_same_pool(self):
        from repro.experiments import sweep

        first = sweep.run_parallel(list(range(8)), _square, workers=2)
        pool = sweep._POOLS.get(2)
        second = sweep.run_parallel(list(range(8)), _square, workers=2)
        assert first == second == [p * p for p in range(8)]
        assert sweep._POOLS.get(2) is pool  # no respawn between stages

    def test_reuse_false_leaves_shared_table_alone(self):
        from repro.experiments import sweep

        before = dict(sweep._POOLS)
        sweep.run_parallel(list(range(4)), _square, workers=5, reuse_pool=False)
        assert sweep._POOLS == before


class TestSeedStreamIsolation:
    """The shard/node/name seed derivations must never collide: every
    (shard subset, node address, stream name) combination has to draw an
    independent stream for sharded runs to reproduce serial ones."""

    def test_sweep_and_registry_derivations_disagree_by_design(self):
        # Same inputs through the two derive_seed variants must not be
        # forced equal or unequal — but both must be deterministic.
        from repro.experiments.sweep import derive_seed
        from repro.sim.rng import RngRegistry

        assert derive_seed(3, 7) == derive_seed(3, 7)
        registry = RngRegistry(3)
        assert registry.derive_seed("7") == RngRegistry(3).derive_seed("7")

    def test_no_collisions_across_node_and_flow_streams(self):
        from repro.sim.rng import RngRegistry

        registry = RngRegistry(42)
        traffic = registry.fork("traffic")
        seeds = set()
        names = [f"mesher.{0x0001 + i:#06x}" for i in range(500)]
        for name in names:
            seeds.add(registry.derive_seed(name))
        for i in range(500):
            seeds.add(traffic.derive_seed(f"flow{i}"))
        assert len(seeds) == 1000

    def test_streams_identical_across_worker_counts(self):
        # A shard worker rebuilds RngRegistry(seed) over its address
        # subset; per-address stream draws must not depend on how many
        # other addresses that registry serves.
        from repro.sim.rng import RngRegistry

        whole = RngRegistry(7)
        draws_whole = {
            name: whole.stream(name).random()
            for name in (f"mesher.{a:#06x}" for a in (1, 2, 3, 4))
        }
        subset = RngRegistry(7)
        draws_subset = {
            name: subset.stream(name).random()
            for name in (f"mesher.{a:#06x}" for a in (3, 1))
        }
        for name, value in draws_subset.items():
            assert draws_whole[name] == value

    def test_fork_chain_stable(self):
        from repro.sim.rng import RngRegistry

        a = RngRegistry(9).fork("traffic").derive_seed("flow0")
        b = RngRegistry(9).fork("traffic").derive_seed("flow0")
        assert a == b
        assert a != RngRegistry(9).fork("traffic").derive_seed("flow1")
        assert a != RngRegistry(9).derive_seed("flow0")
