"""Tests for sweep helpers."""

import math

from repro.experiments.sweep import repeat_seeds, sweep_grid


class TestSweepGrid:
    def test_cartesian_product(self):
        points = list(sweep_grid(a=[1, 2], b=["x", "y"]))
        assert points == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_single_axis(self):
        assert list(sweep_grid(n=[3])) == [{"n": 3}]

    def test_empty_axis_yields_nothing(self):
        assert list(sweep_grid(n=[])) == []


class TestRepeatSeeds:
    def test_mean_and_ci(self):
        mean, ci, raw = repeat_seeds(lambda seed: float(seed), [1, 2, 3])
        assert mean == 2.0
        assert ci > 0
        assert raw == [1.0, 2.0, 3.0]

    def test_none_results_become_nan(self):
        mean, ci, raw = repeat_seeds(lambda seed: None if seed == 2 else 1.0, [1, 2, 3])
        assert mean == 1.0
        assert math.isnan(raw[1])

    def test_all_none(self):
        mean, ci, raw = repeat_seeds(lambda seed: None, [1, 2])
        assert math.isnan(mean)
        assert all(math.isnan(v) for v in raw)
