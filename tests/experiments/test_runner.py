"""Tests for the protocol-agnostic experiment runner."""

import pytest

from repro.experiments.runner import (
    Protocol,
    TrafficSpec,
    all_pairs_traffic,
    endpoint_traffic,
    run_protocol,
)
from repro.net.config import MesherConfig
from repro.topology.placement import line_positions

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)
LINE4 = line_positions(4)
FLOW = [TrafficSpec(src_index=0, dst_index=3, period_s=60.0)]


class TestTrafficSpecs:
    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError):
            TrafficSpec(src_index=1, dst_index=1)

    def test_all_pairs_count(self):
        assert len(all_pairs_traffic(4)) == 12

    def test_all_pairs_limit(self):
        assert len(all_pairs_traffic(4, limit=5)) == 5

    def test_endpoint_traffic_bidirectional(self):
        specs = endpoint_traffic(5)
        assert [(s.src_index, s.dst_index) for s in specs] == [(0, 4), (4, 0)]


class TestRunProtocol:
    def test_mesh_delivers(self):
        result = run_protocol(
            Protocol.MESH, LINE4, FLOW, duration_s=600.0, seed=1, config=FAST
        )
        assert result.pdr > 0.9
        assert result.convergence_time_s is not None
        assert result.mean_latency_s is not None
        assert result.overhead.frames_sent > 0

    def test_flooding_delivers_without_convergence(self):
        result = run_protocol(Protocol.FLOODING, LINE4, FLOW, duration_s=600.0, seed=1)
        assert result.pdr > 0.9
        assert result.convergence_time_s == 0.0

    def test_star_fails_out_of_range(self):
        result = run_protocol(Protocol.STAR, LINE4, FLOW, duration_s=600.0, seed=1)
        # Source at x=0, central gateway at x=120 or 240: the 0->3 flow
        # spans 360 m, so at least one hop is out of SF7 range.
        assert result.pdr == 0.0

    def test_oracle_beats_or_matches_mesh_overhead(self):
        mesh = run_protocol(Protocol.MESH, LINE4, FLOW, duration_s=600.0, seed=1, config=FAST)
        oracle = run_protocol(Protocol.ORACLE, LINE4, FLOW, duration_s=600.0, seed=1, config=FAST)
        assert oracle.pdr >= mesh.pdr - 0.05
        assert oracle.overhead.frames_sent < mesh.overhead.frames_sent

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            run_protocol(Protocol.MESH, LINE4, FLOW, duration_s=0.0)

    def test_gateway_never_sources_star_flow(self):
        # Flow endpoints cover every central index: the runner must pick a
        # non-endpoint gateway.
        positions = line_positions(3)
        traffic = [
            TrafficSpec(src_index=0, dst_index=1, period_s=60.0),
            TrafficSpec(src_index=1, dst_index=2, period_s=60.0),
        ]
        with pytest.raises(ValueError):
            run_protocol(Protocol.STAR, positions, traffic, duration_s=60.0)


class TestSampling:
    def test_sampler_off_by_default(self):
        result = run_protocol(
            Protocol.MESH, LINE4, FLOW, duration_s=600.0, seed=1, config=FAST
        )
        assert result.sampler is None
        assert result.timeseries is None

    def test_mesh_run_collects_time_series(self):
        result = run_protocol(
            Protocol.MESH, LINE4, FLOW, duration_s=600.0, seed=1, config=FAST,
            sample_period_s=120.0,
        )
        series = result.timeseries
        assert series is not None
        assert series["period_s"] == 120.0
        assert len(series["samples"]) >= 5  # t=0 baseline + periodic + final
        frames = [p["values"]["repro_network_frames_total"] for p in series["samples"]]
        assert frames == sorted(frames)  # counters never decrease
        assert frames[-1] > 0
        pdr = series["samples"][-1]["values"]["repro_flows_pdr"]
        assert pdr == pytest.approx(result.pdr)

    def test_baseline_protocols_sample_too(self):
        for protocol in (Protocol.FLOODING, Protocol.STAR):
            result = run_protocol(
                protocol, LINE4, FLOW, duration_s=600.0, seed=1,
                sample_period_s=300.0,
            )
            assert result.timeseries is not None
            assert len(result.timeseries["samples"]) >= 2, protocol
