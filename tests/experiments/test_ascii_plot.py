"""Tests for the ASCII plotter."""

import pytest

from repro.experiments.ascii_plot import ascii_plot


class TestAsciiPlot:
    def test_basic_chart_structure(self):
        chart = ascii_plot({"s": [(0, 0), (10, 10)]}, width=20, height=5, title="T")
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert any("+" + "-" * 20 in line for line in lines)
        assert "o=s" in lines[-1]

    def test_extreme_points_land_on_edges(self):
        chart = ascii_plot({"s": [(0, 0), (10, 10)]}, width=21, height=7)
        lines = [l for l in chart.splitlines() if "|" in l]
        # Max y point is in the top plot row, min in the bottom one.
        assert "o" in lines[0]
        assert "o" in lines[-1]

    def test_multiple_series_get_distinct_markers(self):
        chart = ascii_plot({"a": [(0, 0)], "b": [(1, 1)]})
        assert "o=a" in chart
        assert "x=b" in chart

    def test_axis_labels_rendered(self):
        chart = ascii_plot(
            {"s": [(0, 0), (1, 1)]}, x_label="time", y_label="coverage"
        )
        assert "[time]" in chart
        assert "[coverage]" in chart

    def test_constant_series_does_not_crash(self):
        chart = ascii_plot({"flat": [(0, 5), (10, 5)]})
        assert "o" in chart

    def test_single_point(self):
        chart = ascii_plot({"dot": [(3, 3)]})
        assert "o" in chart

    def test_nonfinite_points_skipped(self):
        chart = ascii_plot({"s": [(0, 0), (float("nan"), 1), (1, float("inf")), (2, 2)]})
        assert "o" in chart

    def test_all_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"s": [(float("nan"), float("nan"))]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})

    def test_tick_formatting(self):
        chart = ascii_plot({"s": [(0.0, 0.0), (1000.0, 0.123456)]})
        assert "1000" in chart
        assert "0.123" in chart
