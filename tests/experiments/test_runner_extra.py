"""Additional runner coverage: Poisson traffic, explicit star gateway,
unidirectional endpoint traffic, and loss injection through the harness."""

import random

import pytest

from repro.experiments.runner import (
    Protocol,
    TrafficSpec,
    endpoint_traffic,
    run_protocol,
)
from repro.net.config import MesherConfig
from repro.topology.placement import line_positions

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)


class TestPoissonTraffic:
    def test_poisson_flow_delivers(self):
        traffic = [TrafficSpec(src_index=0, dst_index=2, period_s=60.0, poisson=True)]
        result = run_protocol(
            Protocol.MESH, line_positions(3), traffic, duration_s=1800.0, seed=2, config=FAST
        )
        assert result.recorder.total_sent() > 10
        assert result.pdr > 0.9

    def test_poisson_and_periodic_mix(self):
        traffic = [
            TrafficSpec(src_index=0, dst_index=2, period_s=90.0, poisson=True),
            TrafficSpec(src_index=2, dst_index=0, period_s=90.0, poisson=False),
        ]
        result = run_protocol(
            Protocol.MESH, line_positions(3), traffic, duration_s=1800.0, seed=3, config=FAST
        )
        flows = result.recorder.flows()
        assert len(flows) == 2
        assert all(f.pdr > 0.8 for f in flows)


class TestStarGatewayPlacement:
    def test_explicit_gateway_index(self):
        # Put the gateway right next to the flow endpoints: now the star
        # works, proving the index is honoured.
        positions = [(0.0, 0.0), (80.0, 0.0), (160.0, 0.0)]
        traffic = [TrafficSpec(src_index=0, dst_index=2, period_s=60.0)]
        result = run_protocol(
            Protocol.STAR, positions, traffic, duration_s=1200.0, seed=4,
            star_gateway_index=1,
        )
        assert result.pdr > 0.9

    def test_default_gateway_is_central(self):
        positions = line_positions(5)
        traffic = [TrafficSpec(src_index=0, dst_index=1, period_s=60.0)]
        result = run_protocol(Protocol.STAR, positions, traffic, duration_s=600.0, seed=5)
        # Central gateway = index 2; flow 0->1 via gateway at 240 m from
        # node 0 -> unreachable. The result documents the architecture's
        # failure, not a bug.
        assert result.pdr == 0.0


class TestEndpointTraffic:
    def test_unidirectional(self):
        specs = endpoint_traffic(4, bidirectional=False)
        assert [(s.src_index, s.dst_index) for s in specs] == [(0, 3)]

    def test_single_node_network_rejected(self):
        # A one-node "network" has no distinct endpoints to exchange
        # traffic between; the spec validation catches it.
        with pytest.raises(ValueError):
            endpoint_traffic(1)


class TestLossThroughHarness:
    def test_mesh_pdr_degrades_with_injected_loss(self):
        traffic = [TrafficSpec(src_index=0, dst_index=2, period_s=60.0)]

        def run(loss):
            rng = random.Random(77)
            from repro.net.api import MeshNetwork

            net = MeshNetwork.from_positions(
                line_positions(3), config=FAST, seed=6,
                loss_injector=(lambda tx, rx: rng.random() < loss) if loss else None,
            )
            net.run_until_converged(timeout_s=3600.0)
            return net

        clean = run(0.0)
        lossy = run(0.3)
        # The lossy network needed more frames (hello retries through
        # lost beacons) to converge -> sanity that injection works.
        assert lossy.total_frames_sent() >= clean.total_frames_sent()
