"""Tests for result-file regression comparison."""

import pytest

from repro.experiments.export import ExperimentRecord, export_records
from repro.experiments.regression import compare_files, compare_records


def record(exp_id="e1", columns=("x", "pdr"), rows=((1, 0.95), (2, 0.90))):
    rec = ExperimentRecord(exp_id, "test", columns=list(columns))
    for row in rows:
        rec.add_row(*row)
    return rec


class TestCompare:
    def test_identical_documents_match(self):
        report = compare_records([record()], [record()])
        assert report.ok
        assert report.compared_experiments == 1
        assert report.compared_cells == 4

    def test_within_tolerance_matches(self):
        base = record(rows=((1, 1.00),))
        cand = record(rows=((1, 1.05),))
        assert compare_records([base], [cand], rel_tolerance=0.10).ok

    def test_beyond_tolerance_flagged(self):
        base = record(rows=((1, 1.00),))
        cand = record(rows=((1, 1.30),))
        report = compare_records([base], [cand], rel_tolerance=0.10)
        assert not report.ok
        assert report.differences[0].kind == "value"
        assert "pdr" in report.differences[0].detail

    def test_near_zero_uses_abs_tolerance(self):
        base = record(rows=((1, 0.0),))
        cand = record(rows=((1, 1e-12),))
        assert compare_records([base], [cand], abs_tolerance=1e-9).ok

    def test_string_cells_must_match_exactly(self):
        base = record(columns=("outcome",), rows=(("ok",),))
        cand = record(columns=("outcome",), rows=(("FAIL",),))
        report = compare_records([base], [cand])
        assert not report.ok

    def test_missing_and_extra_experiments(self):
        report = compare_records([record("e1")], [record("e2")])
        kinds = {d.kind for d in report.differences}
        assert kinds == {"missing", "extra"}

    def test_shape_mismatch(self):
        base = record(rows=((1, 0.9),))
        cand = record(rows=((1, 0.9), (2, 0.8)))
        report = compare_records([base], [cand])
        assert report.differences[0].kind == "shape"

    def test_format_readable(self):
        ok = compare_records([record()], [record()])
        assert ok.format().startswith("OK")
        bad = compare_records([record("e1")], [])
        assert "missing" in bad.format()


class TestFiles:
    def test_compare_files_roundtrip(self, tmp_path):
        base_path = export_records([record()], tmp_path / "base.json")
        cand_path = export_records([record()], tmp_path / "cand.json")
        assert compare_files(base_path, cand_path).ok

    def test_compare_files_detects_drift(self, tmp_path):
        base_path = export_records([record(rows=((1, 0.95),))], tmp_path / "base.json")
        cand_path = export_records([record(rows=((1, 0.50),))], tmp_path / "cand.json")
        report = compare_files(base_path, cand_path)
        assert not report.ok
