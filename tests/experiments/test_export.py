"""Tests for JSON experiment export."""

import json

import pytest

from repro.experiments.export import (
    ExperimentRecord,
    export_records,
    load_records,
    run_result_summary,
)
from repro.experiments.runner import Protocol, TrafficSpec, run_protocol
from repro.net.config import MesherConfig
from repro.topology.placement import line_positions

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)


class TestExperimentRecord:
    def test_add_row_validates_width(self):
        record = ExperimentRecord("e1", "test", columns=["a", "b"])
        record.add_row(1, 2)
        with pytest.raises(ValueError):
            record.add_row(1)

    def test_nonfinite_floats_mapped(self):
        record = ExperimentRecord("e1", "test", columns=["v"])
        record.add_row(float("inf"))
        record.add_row(float("nan"))
        assert record.rows == [["inf"], ["nan"]]


class TestExportLoad:
    def test_roundtrip(self, tmp_path):
        record = ExperimentRecord(
            "e2", "multi-hop", parameters={"hops": 3}, columns=["hops", "pdr"]
        )
        record.add_row(3, 0.98)
        path = export_records([record], tmp_path / "results.json", metadata={"seed": 7})
        loaded = load_records(path)
        assert len(loaded) == 1
        assert loaded[0].experiment_id == "e2"
        assert loaded[0].parameters == {"hops": 3}
        assert loaded[0].rows == [[3, 0.98]]

    def test_document_structure(self, tmp_path):
        path = export_records([], tmp_path / "empty.json")
        document = json.loads(path.read_text())
        assert document["schema_version"] == 1
        assert document["experiments"] == []

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 99, "experiments": []}))
        with pytest.raises(ValueError):
            load_records(path)

    def test_creates_parent_directories(self, tmp_path):
        path = export_records([], tmp_path / "deep" / "nested" / "r.json")
        assert path.exists()


class TestRunResultSummary:
    def test_summary_fields(self):
        result = run_protocol(
            Protocol.MESH,
            line_positions(2, spacing_m=80.0),
            [TrafficSpec(src_index=0, dst_index=1, period_s=60.0)],
            duration_s=300.0,
            seed=1,
            config=FAST,
        )
        summary = run_result_summary(result)
        assert summary["protocol"] == "mesh"
        assert summary["sent"] > 0
        assert 0 <= summary["pdr"] <= 1
        # The whole summary is JSON-serialisable.
        json.dumps(summary)


class TestTimeseriesEmbedding:
    def test_summary_embeds_time_series_when_sampled(self):
        result = run_protocol(
            Protocol.MESH,
            line_positions(3),
            [TrafficSpec(src_index=0, dst_index=2, period_s=60.0)],
            duration_s=600.0,
            seed=1,
            config=FAST,
            sample_period_s=300.0,
        )
        summary = run_result_summary(result)
        assert "timeseries" in summary
        assert summary["timeseries"]["period_s"] == 300.0
        assert len(summary["timeseries"]["samples"]) >= 2
        json.dumps(summary)

    def test_summary_omits_time_series_when_not_sampled(self):
        result = run_protocol(
            Protocol.MESH,
            line_positions(3),
            [TrafficSpec(src_index=0, dst_index=2, period_s=60.0)],
            duration_s=600.0,
            seed=1,
            config=FAST,
        )
        assert "timeseries" not in run_result_summary(result)
