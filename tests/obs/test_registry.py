"""Tests for the metrics registry instruments."""

import pytest

from repro.obs.registry import (
    LATENCY_BUCKETS_S,
    MetricError,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("frames_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_decrease(self):
        counter = MetricsRegistry().counter("frames_total")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_callback_backed(self):
        source = {"n": 0}
        counter = MetricsRegistry().counter("cb_total", fn=lambda: source["n"])
        source["n"] = 7
        assert counter.value == 7

    def test_callback_backed_rejects_inc(self):
        counter = MetricsRegistry().counter("cb_total", fn=lambda: 0)
        with pytest.raises(MetricError):
            counter.inc()


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_callback_backed(self):
        values = [3.5]
        gauge = MetricsRegistry().gauge("depth", fn=lambda: values[0])
        assert gauge.value == 3.5
        values[0] = 1.0
        assert gauge.value == 1.0


class TestHistogram:
    def test_observe_and_buckets(self):
        hist = MetricsRegistry().histogram("lat", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 0.7, 3.0, 20.0):
            hist.observe(value)
        sample = hist.sample()
        assert sample.value == 4  # observation count
        assert sample.sum == pytest.approx(24.2)
        assert sample.buckets == ((1.0, 2), (5.0, 3), (10.0, 3))

    def test_quantile_estimate(self):
        hist = MetricsRegistry().histogram("lat", buckets=LATENCY_BUCKETS_S)
        for _ in range(90):
            hist.observe(0.2)
        for _ in range(10):
            hist.observe(40.0)
        assert hist.quantile(0.5) == 0.25  # bucket upper bound containing rank
        assert hist.quantile(0.99) == 60.0

    def test_above_all_buckets_is_inf_quantile(self):
        hist = MetricsRegistry().histogram("lat", buckets=(1.0,))
        hist.observe(5.0)
        assert hist.quantile(1.0) == float("inf")

    def test_empty_histogram(self):
        hist = MetricsRegistry().histogram("lat", buckets=(1.0,))
        assert hist.quantile(0.9) == 0.0
        assert hist.sample().value == 0

    def test_needs_buckets(self):
        with pytest.raises(MetricError):
            MetricsRegistry().histogram("lat", buckets=())


class TestRegistry:
    def test_same_identity_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("frames_total", labels={"node": "0001"})
        b = registry.counter("frames_total", labels={"node": "0001"})
        assert a is b

    def test_distinct_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.counter("frames_total", labels={"node": "0001"})
        b = registry.counter("frames_total", labels={"node": "0002"})
        a.inc(3)
        assert b.value == 0
        assert len(registry) == 2

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("frames_total")
        with pytest.raises(MetricError):
            registry.gauge("frames_total")

    def test_invalid_name_rejected(self):
        with pytest.raises(MetricError):
            MetricsRegistry().counter("bad name")

    def test_invalid_label_rejected(self):
        with pytest.raises(MetricError):
            MetricsRegistry().counter("ok", labels={"bad key": "v"})

    def test_snapshot_sorted_and_keyed(self):
        registry = MetricsRegistry()
        registry.gauge("zeta").set(1)
        registry.counter("alpha", labels={"node": "0001"}).inc()
        samples = registry.snapshot()
        assert [s.name for s in samples] == ["alpha", "zeta"]
        assert samples[0].key == 'alpha{node="0001"}'
        assert samples[1].key == "zeta"

    def test_value_lookup(self):
        registry = MetricsRegistry()
        registry.counter("frames_total", labels={"node": "0001"}).inc(9)
        assert registry.value("frames_total", {"node": "0001"}) == 9
        with pytest.raises(MetricError):
            registry.value("missing")
