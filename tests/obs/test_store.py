"""Tests for the persistent event store and its live recorder."""

import json
import sqlite3

import pytest

from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.obs.registry import MetricsRegistry
from repro.obs.instrument import instrument_network
from repro.obs.sampler import TimeSeriesSampler, load_timeseries_jsonl
from repro.obs.store import (
    KIND_FRAME,
    KIND_MARKER,
    KIND_ROUTE,
    KIND_SAMPLE,
    KIND_STREAM,
    EventStore,
    StoreRecorder,
)
from repro.trace.capture import load_capture_jsonl

CONFIG = MesherConfig(hello_period_s=60.0, route_timeout_s=300.0, purge_period_s=30.0)
LINE4 = [(0.0, 0.0), (120.0, 0.0), (240.0, 0.0), (360.0, 0.0)]


def make_store(tmp_path, **kwargs):
    return EventStore(tmp_path / "run.db", **kwargs)


class TestEventStoreBasics:
    def test_wal_mode(self, tmp_path):
        store = make_store(tmp_path)
        mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        store.close()

    def test_append_flush_query(self, tmp_path):
        store = make_store(tmp_path, batch_size=4)
        for i in range(10):
            store.append(float(i), "test", {"i": i}, node=i % 2)
        # 8 committed (two batches), 2 still buffered — but writer reads
        # autoflush, so queries see all 10.
        events = store.events()
        assert len(events) == 10
        assert [e.id for e in events] == list(range(1, 11))
        assert events[3].data == {"i": 3}
        assert store.count() == 10
        store.close()

    def test_query_filters(self, tmp_path):
        store = make_store(tmp_path)
        for i in range(20):
            store.append(float(i), "even" if i % 2 == 0 else "odd", {"i": i}, node=i % 4)
        assert store.count(kind="even") == 10
        assert len(store.events(node=1)) == 5
        # t0 <= t < t1 half-open range
        ranged = store.events(t0=5.0, t1=10.0)
        assert [e.data["i"] for e in ranged] == [5, 6, 7, 8, 9]
        # after_id is a strict cursor
        tail = store.events(after_id=18)
        assert [e.id for e in tail] == [19, 20]
        limited = store.events(limit=3)
        assert len(limited) == 3
        assert store.counts_by_kind() == {"even": 10, "odd": 10}
        assert store.last_id() == 20
        assert store.time_range() == (0.0, 19.0)
        store.close()

    def test_meta_and_nodes(self, tmp_path):
        store = make_store(tmp_path)
        store.set_meta("protocol", "mesh")
        store.set_meta("seed", 7)
        store.add_node(1, "alpha", 0.0, 0.0)
        store.add_node(2, "beta", 120.0, 0.0)
        meta = store.meta()
        assert meta["protocol"] == "mesh"
        assert meta["seed"] == 7
        assert meta["schema_version"] == 1
        assert [n["name"] for n in store.nodes()] == ["alpha", "beta"]
        store.close()

    def test_write_mode_truncates(self, tmp_path):
        store = make_store(tmp_path)
        store.append(0.0, "x", {})
        store.close()
        fresh = make_store(tmp_path, mode="w")
        assert fresh.count() == 0
        fresh.close()

    def test_append_mode_preserves(self, tmp_path):
        store = make_store(tmp_path)
        store.append(0.0, "x", {})
        store.close()
        again = make_store(tmp_path, mode="a")
        again.append(1.0, "y", {})
        assert again.count() == 2
        again.close()

    def test_read_only_rejects_writes(self, tmp_path):
        make_store(tmp_path).close()
        reader = make_store(tmp_path, mode="r")
        with pytest.raises(sqlite3.OperationalError):
            reader.append(0.0, "x", {})
        with pytest.raises(sqlite3.OperationalError):
            reader.set_meta("k", "v")
        reader.close()

    def test_read_missing_store_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            EventStore(tmp_path / "absent.db", mode="r")

    def test_reader_sees_writer_commits_live(self, tmp_path):
        writer = make_store(tmp_path, batch_size=2)
        writer.append(0.0, "x", {"n": 1})
        writer.append(1.0, "x", {"n": 2})  # triggers a commit
        reader = make_store(tmp_path, mode="r")
        assert reader.count() == 2
        writer.append(2.0, "x", {"n": 3})
        writer.flush()
        assert reader.last_id() == 3  # WAL: reader sees new commits
        reader.close()
        writer.close()

    def test_context_manager(self, tmp_path):
        with make_store(tmp_path) as store:
            store.append(0.0, "x", {})
        assert EventStore(tmp_path / "run.db", mode="r").count() == 1


class TestDerivedViews:
    def test_route_state_folding(self, tmp_path):
        store = make_store(tmp_path)
        add = lambda t, node, dst, via, metric, event="added": store.append(
            t, KIND_ROUTE, {"event": event, "dst": dst, "via": via, "metric": metric}, node=node
        )
        add(10.0, 1, 2, 2, 1)
        add(20.0, 1, 3, 2, 2)
        add(30.0, 1, 3, 3, 1, event="updated")
        add(40.0, 1, 2, 2, 1, event="removed")
        mid = store.route_state_at(25.0)
        assert mid[1] == {2: {"via": 2, "metric": 1}, 3: {"via": 2, "metric": 2}}
        end = store.route_state_at()
        assert end[1] == {3: {"via": 3, "metric": 1}}
        store.close()

    def test_topology_links_are_direct_routes(self, tmp_path):
        store = make_store(tmp_path)
        store.add_node(1, "a", 0.0, 0.0)
        store.add_node(2, "b", 120.0, 0.0)
        store.append(5.0, KIND_ROUTE, {"event": "added", "dst": 2, "via": 2, "metric": 1}, node=1)
        store.append(5.0, KIND_ROUTE, {"event": "added", "dst": 1, "via": 1, "metric": 1}, node=2)
        store.append(6.0, KIND_ROUTE, {"event": "added", "dst": 3, "via": 2, "metric": 2}, node=1)
        topo = store.topology_at()
        assert topo["links"] == [[1, 2]]  # metric-2 route is not a link
        assert len(topo["nodes"]) == 2
        store.close()

    def test_health_summary_empty(self, tmp_path):
        store = make_store(tmp_path)
        assert store.health_summary() == {"t": None, "nodes": [], "coverage": None}
        store.close()


class TestJsonlBridges:
    def test_timeseries_round_trip(self, tmp_path):
        store = make_store(tmp_path)
        store.append(10.0, KIND_SAMPLE, {"values": {"a": 1.0, "b": 2.5}})
        store.append(20.0, KIND_SAMPLE, {"values": {"a": 3.0}})
        out = store.export_timeseries_jsonl(tmp_path / "series.jsonl")
        points = load_timeseries_jsonl(out)
        assert [p.time_s for p in points] == [10.0, 20.0]
        assert points[0].values == {"a": 1.0, "b": 2.5}
        # And back in: import recreates the same sample events.
        store2 = EventStore(tmp_path / "copy.db")
        assert store2.import_timeseries_jsonl(out) == 2
        assert store2.events(kind=KIND_SAMPLE)[1].data == {"values": {"a": 3.0}}
        store2.close()
        store.close()

    def test_capture_round_trip_with_load_capture_jsonl(self, tmp_path):
        net = MeshNetwork.from_positions(LINE4, config=CONFIG, seed=3)
        store = EventStore(tmp_path / "run.db")
        recorder = StoreRecorder(store, net).attach()
        net.run(for_s=400.0)
        recorder.detach()
        out = store.export_capture_jsonl(tmp_path / "capture.jsonl")
        frames = load_capture_jsonl(out)
        assert len(frames) == store.count(kind=KIND_FRAME) > 0
        assert frames[0].index == 0
        assert [f.index for f in frames] == list(range(len(frames)))
        # Round-trip back into a fresh store.
        store2 = EventStore(tmp_path / "copy.db")
        assert store2.import_capture_jsonl(out) == len(frames)
        assert store2.events(kind=KIND_FRAME)[0].data["sender"] == frames[0].sender
        store2.close()
        store.close()


class TestStoreRecorder:
    def run_recorded(self, tmp_path, duration=600.0, **recorder_kwargs):
        net = MeshNetwork.from_positions(LINE4, config=CONFIG, seed=1)
        store = EventStore(tmp_path / "run.db")
        registry = MetricsRegistry()
        instrument_network(registry, net)
        sampler = TimeSeriesSampler(net.sim, registry, period_s=120.0)
        recorder = StoreRecorder(store, net, sampler=sampler, **recorder_kwargs).attach()
        net.run(for_s=duration)
        recorder.detach()
        return net, store, recorder

    def test_records_all_kinds(self, tmp_path):
        net, store, _ = self.run_recorded(tmp_path)
        counts = store.counts_by_kind()
        assert counts[KIND_FRAME] == net.total_frames_sent()
        assert counts[KIND_ROUTE] > 0
        assert counts[KIND_SAMPLE] == 5  # t=120..600
        assert counts[KIND_MARKER] == 2  # started + finished
        assert store.meta()["finished"] is True
        assert {n["address"] for n in store.nodes()} == set(net.addresses)
        store.close()

    def test_records_stream_events(self, tmp_path):
        """A StreamManager present at attach time (or watched later) has
        its lifecycle/delivery events recorded as KIND_STREAM rows."""
        from repro.net.stream import StreamManager

        net = MeshNetwork.from_positions(LINE4, config=CONFIG, seed=1)
        assert net.run_until_converged(timeout_s=1200.0) is not None
        a, b = net.nodes[0], net.nodes[1]
        manager_a = StreamManager(a)  # exists before attach: auto-tapped
        store = EventStore(tmp_path / "run.db")
        recorder = StoreRecorder(store, net, frames=False).attach()
        manager_b = StreamManager(b)  # created after attach
        recorder.watch_stream_manager(manager_b)
        received = []
        manager_b.on_accept = lambda s: s.__setattr__(
            "on_message", lambda _s, body: received.append(body)
        )
        stream = manager_a.open(b.address)
        net.run(for_s=60.0)
        stream.send(b"payload-0")
        stream.send(b"payload-1")
        stream.close()
        net.run(for_s=300.0)
        recorder.detach()
        assert received == [b"payload-0", b"payload-1"]
        events = store.events(kind=KIND_STREAM)
        kinds = [e.data["event"] for e in events]
        assert "open" in kinds and "accept" in kinds
        assert kinds.count("deliver") == 2
        assert kinds.count("close") == 2  # both endpoints
        deliveries = [e for e in events if e.data["event"] == "deliver"]
        assert [e.data["seq"] for e in deliveries] == [0, 1]
        assert all(e.node == b.address for e in deliveries)
        store.close()

    def test_frames_off_skips_transmissions(self, tmp_path):
        _, store, _ = self.run_recorded(tmp_path, frames=False)
        assert store.count(kind=KIND_FRAME) == 0
        assert store.count(kind=KIND_ROUTE) > 0
        store.close()

    def test_frames_full_records_outcomes(self, tmp_path):
        from repro.obs.store import frame_view

        net, store, _ = self.run_recorded(tmp_path, frames="full")
        frames = store.events(kind=KIND_FRAME)
        assert len(frames) == net.total_frames_sent()
        # Per-listener outcomes are only available in "full" mode.
        outcomes = frames[0].data["outcomes"]
        assert len(outcomes) == 3  # everyone but the sender
        assert set(outcomes.values()) <= {
            "delivered", "collision", "below_sensitivity", "not_listening", "wrong_params"
        }
        view = frame_view(frames[0].data, t=frames[0].t, node=frames[0].node)
        assert view["kind"] and view["summary"]
        store.close()

    def test_light_and_full_agree_on_capture_export(self, tmp_path):
        def capture(frames_mode, name):
            net = MeshNetwork.from_positions(LINE4, config=CONFIG, seed=8)
            store = EventStore(tmp_path / f"{name}.db")
            recorder = StoreRecorder(store, net, frames=frames_mode).attach()
            net.run(for_s=400.0)
            recorder.detach()
            out = store.export_capture_jsonl(tmp_path / f"{name}.jsonl")
            store.close()
            return load_capture_jsonl(out)

        light = capture(True, "light")
        full = capture("full", "full")
        assert len(light) == len(full)
        for a, b in zip(light, full):
            assert (a.index, a.time, a.sender, a.size, a.airtime_s) == (
                b.index, b.time, b.sender, b.size, b.airtime_s
            )
            assert (a.packet_kind, a.summary) == (b.packet_kind, b.summary)
            assert a.outcomes == {}  # light mode has no per-listener data
            assert b.outcomes  # full mode does

    def test_rejects_bad_frames_mode(self, tmp_path):
        net = MeshNetwork.from_positions(LINE4, config=CONFIG, seed=1)
        store = EventStore(tmp_path / "x.db")
        with pytest.raises(ValueError):
            StoreRecorder(store, net, frames="lite")
        store.close()

    def test_detach_restores_taps(self, tmp_path):
        net = MeshNetwork.from_positions(LINE4, config=CONFIG, seed=1)
        saved = [(n.on_route_event, n.on_forward_decision, n.on_app_delivery) for n in net.nodes]
        store = EventStore(tmp_path / "run.db")
        recorder = StoreRecorder(store, net).attach()
        assert net.medium.on_frame is not None
        recorder.detach()
        for node, (route, forward, delivery) in zip(net.nodes, saved):
            assert node.on_route_event is route
            assert node.on_forward_decision is forward
            assert node.on_app_delivery is delivery
        assert net.medium.on_frame is None
        assert net.medium.on_transmission is None  # light mode never set it
        store.close()

    def test_full_mode_restores_sniffer(self, tmp_path):
        net = MeshNetwork.from_positions(LINE4, config=CONFIG, seed=1)
        store = EventStore(tmp_path / "run.db")
        recorder = StoreRecorder(store, net, frames="full").attach()
        assert net.medium.on_transmission is not None
        assert net.medium.on_frame is None  # full mode uses the sniffer
        recorder.detach()
        assert net.medium.on_transmission is None
        store.close()

    def test_recording_is_outcome_invisible(self, tmp_path):
        def fingerprint(with_store):
            net = MeshNetwork.from_positions(LINE4, config=CONFIG, seed=9)
            recorder = None
            store = None
            if with_store:
                store = EventStore(tmp_path / "fp.db")
                recorder = StoreRecorder(store, net).attach()
            net.run(for_s=900.0)
            if recorder is not None:
                recorder.detach()
                store.close()
            return (
                net.total_frames_sent(),
                net.total_bytes_sent(),
                [tuple((e.address, e.via, e.metric) for e in n.table) for n in net.nodes],
            )

        assert fingerprint(False) == fingerprint(True)

    def test_health_summary_is_byte_stable(self, tmp_path):
        _, store, _ = self.run_recorded(tmp_path)
        first = json.dumps(store.health_summary(), sort_keys=True)
        reader = EventStore(store.path, mode="r")
        again = json.dumps(reader.health_summary(), sort_keys=True)
        assert first == again  # live view == replayed view, byte for byte
        assert json.loads(first)["coverage"] == 1.0
        reader.close()
        store.close()


class TestRunProtocolStore:
    def test_run_protocol_stores_and_keeps_fingerprint(self, tmp_path):
        from repro.experiments.runner import Protocol, TrafficSpec, run_protocol

        traffic = [TrafficSpec(src_index=0, dst_index=3, period_s=120.0)]

        def run(store_path):
            result = run_protocol(
                Protocol.MESH,
                LINE4,
                traffic,
                duration_s=600.0,
                seed=5,
                config=CONFIG,
                store=store_path,
            )
            net = result.network
            return result, (
                net.total_frames_sent(),
                net.total_bytes_sent(),
                [tuple((e.address, e.via, e.metric) for e in n.table) for n in net.nodes],
            )

        stored, fp_on = run(tmp_path / "run.db")
        plain, fp_off = run(None)
        assert fp_on == fp_off  # store on/off: identical outcomes
        assert stored.store_path == tmp_path / "run.db"
        assert plain.store_path is None
        store = EventStore(stored.store_path, mode="r")
        counts = store.counts_by_kind()
        assert counts[KIND_FRAME] == stored.network.total_frames_sent()
        assert counts[KIND_SAMPLE] > 0
        assert any(
            e.data.get("phase") == "converged" for e in store.events(kind=KIND_MARKER)
        )
        meta = store.meta()
        assert meta["protocol"] == "mesh"
        assert meta["seed"] == 5
        store.close()

    def test_run_protocol_store_on_baseline_protocol(self, tmp_path):
        from repro.experiments.runner import Protocol, TrafficSpec, run_protocol

        result = run_protocol(
            Protocol.FLOODING,
            LINE4,
            [TrafficSpec(src_index=0, dst_index=3, period_s=120.0)],
            duration_s=600.0,
            seed=2,
            store=tmp_path / "flood.db",
        )
        store = EventStore(result.store_path, mode="r")
        assert store.count(kind=KIND_FRAME) > 0
        assert store.meta()["protocol"] == "flooding"
        store.close()
