"""Tests for the stdlib HTTP + SSE dashboard server."""

import json
import urllib.request

import pytest

from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.obs.dashboard import DashboardServer
from repro.obs.instrument import instrument_network
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import TimeSeriesSampler
from repro.obs.store import EventStore, StoreRecorder

CONFIG = MesherConfig(hello_period_s=60.0, route_timeout_s=300.0, purge_period_s=30.0)
LINE4 = [(0.0, 0.0), (120.0, 0.0), (240.0, 0.0), (360.0, 0.0)]


@pytest.fixture(scope="module")
def stored_run(tmp_path_factory):
    """One short stored run shared by every dashboard test."""
    path = tmp_path_factory.mktemp("dash") / "run.db"
    net = MeshNetwork.from_positions(LINE4, config=CONFIG, seed=4)
    store = EventStore(path)
    store.set_meta("protocol", "mesh")
    registry = MetricsRegistry()
    instrument_network(registry, net)
    sampler = TimeSeriesSampler(net.sim, registry, period_s=120.0)
    recorder = StoreRecorder(store, net, sampler=sampler).attach()
    net.run(for_s=600.0)
    recorder.detach()
    store.close()
    return path


@pytest.fixture(scope="module")
def server(stored_run):
    server = DashboardServer(stored_run, port=0)  # port 0: pick a free one
    server.start()
    yield server
    server.stop()


def get(server, path):
    with urllib.request.urlopen(f"{server.url.rstrip('/')}{path}", timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), resp.read()


class TestEndpoints:
    def test_index_html(self, server):
        status, ctype, body = get(server, "/")
        assert status == 200
        assert "text/html" in ctype
        assert b"<svg" in body  # topology map markup

    def test_api_meta(self, server):
        status, ctype, body = get(server, "/api/meta")
        assert status == 200
        assert "application/json" in ctype
        meta = json.loads(body)
        assert meta["meta"]["finished"] is True
        assert meta["node_count"] == 4
        assert meta["counts"]["frame"] > 0
        assert meta["last_id"] >= meta["counts"]["frame"]

    def test_api_nodes(self, server):
        status, _, body = get(server, "/api/nodes")
        assert status == 200
        nodes = json.loads(body)
        assert len(nodes) == 4
        assert {"address", "name", "x", "y"} <= set(nodes[0])

    def test_api_topology(self, server):
        status, _, body = get(server, "/api/topology")
        assert status == 200
        topo = json.loads(body)
        assert len(topo["nodes"]) == 4
        assert [1, 2] in topo["links"]  # the line's first hop

    def test_api_health(self, server):
        status, _, body = get(server, "/api/health")
        assert status == 200
        health = json.loads(body)
        assert health["coverage"] == 1.0
        assert len(health["nodes"]) == 4
        assert {"name", "routes", "frames_sent", "duty_utilisation"} <= set(health["nodes"][0])

    def test_api_events_filtered(self, server):
        status, _, body = get(server, "/api/events?kind=route&limit=5")
        assert status == 200
        events = json.loads(body)
        assert 0 < len(events) <= 5
        assert all(e["kind"] == "route" for e in events)

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server, "/nope")
        assert err.value.code == 404


class TestStreams:
    def read_sse(self, server, query, max_bytes=200_000):
        """Collect SSE frames until the `end` control event."""
        events = []
        with urllib.request.urlopen(
            f"{server.url.rstrip('/')}/stream?{query}", timeout=10
        ) as resp:
            assert resp.status == 200
            assert "text/event-stream" in resp.headers.get("Content-Type", "")
            current = {}
            read = 0
            for raw in resp:
                read += len(raw)
                line = raw.decode().rstrip("\n")
                if line.startswith("event: "):
                    current["event"] = line[len("event: "):]
                elif line.startswith("data: "):
                    current["data"] = json.loads(line[len("data: "):])
                elif line == "" and current:
                    events.append(current)
                    if current.get("event") == "end":
                        break
                    current = {}
                if read > max_bytes:
                    break
        return events

    def test_live_stream_drains_finished_store(self, server):
        events = self.read_sse(server, "mode=live")
        kinds = {e.get("event") for e in events}
        assert "route" in kinds and "frame" in kinds
        assert events[-1]["event"] == "end"

    def test_replay_stream_instant(self, server):
        events = self.read_sse(server, "mode=replay&speed=0")
        assert events[0]["event"] == "replay-start"
        assert events[-1]["event"] == "end"
        # Replay is in causal (insertion) order: nearly time-sorted, but a
        # frame is recorded at its *start* time once it finishes, so t may
        # step back by at most one airtime.
        times = [e["data"]["t"] for e in events if "t" in e.get("data", {})]
        assert all(b >= a - 2.0 for a, b in zip(times, times[1:]))
        assert times[-1] >= times[0]

    def test_replay_stream_range(self, server):
        events = self.read_sse(server, "mode=replay&speed=0&t0=100&t1=200")
        payload = [e for e in events if e["event"] not in ("replay-start", "end")]
        assert payload
        assert all(100.0 <= e["data"]["t"] < 200.0 for e in payload)


class TestLifecycle:
    def test_port_zero_picks_free_port(self, stored_run):
        a = DashboardServer(stored_run, port=0)
        b = DashboardServer(stored_run, port=0)
        a.start()
        b.start()
        try:
            assert a.port != b.port
            assert str(a.port) in a.url
        finally:
            a.stop()
            b.stop()

    def test_missing_store_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DashboardServer(tmp_path / "absent.db")
