"""Tests for the time-series sampler."""

import csv
import json

from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import (
    TimeSeriesSampler,
    load_timeseries_csv,
    load_timeseries_jsonl,
)
from repro.sim.kernel import Simulator


def make_pair():
    sim = Simulator()
    registry = MetricsRegistry()
    counter = registry.counter("events_total")
    registry.gauge("clock_seconds", fn=lambda: sim.now)
    return sim, registry, counter


class TestSampling:
    def test_periodic_samples(self):
        sim, registry, counter = make_pair()
        sampler = TimeSeriesSampler(sim, registry, period_s=10.0)
        sim.schedule(25.0, lambda: counter.inc(5))
        sim.run(until=35.0)
        assert len(sampler) == 3  # t=10, 20, 30
        assert [p.time_s for p in sampler.points] == [10.0, 20.0, 30.0]
        assert sampler.series("events_total") == [(10.0, 0.0), (20.0, 0.0), (30.0, 5.0)]

    def test_sample_now_and_stop(self):
        sim, registry, _ = make_pair()
        sampler = TimeSeriesSampler(sim, registry, period_s=10.0, autostart=False)
        sampler.sample_now()
        sim.run(until=50.0)
        assert len(sampler) == 1  # never armed
        sampler.start()
        sim.run(until=75.0)
        sampler.stop()
        sim.run(until=200.0)
        assert [p.time_s for p in sampler.points] == [0.0, 60.0, 70.0]

    def test_ring_capacity_evicts_oldest(self):
        sim, registry, _ = make_pair()
        sampler = TimeSeriesSampler(sim, registry, period_s=1.0, capacity=3)
        sim.run(until=10.5)
        assert len(sampler) == 3
        assert sampler.points_dropped == 7
        assert [p.time_s for p in sampler.points] == [8.0, 9.0, 10.0]

    def test_histogram_flattening(self):
        sim = Simulator()
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(1.0,))
        hist.observe(0.5)
        hist.observe(3.0)
        sampler = TimeSeriesSampler(sim, registry, period_s=1.0, autostart=False)
        point = sampler.sample_now()
        assert point.values["lat_count"] == 2
        assert point.values["lat_sum"] == 3.5

    def test_rejects_bad_period(self):
        sim, registry, _ = make_pair()
        try:
            TimeSeriesSampler(sim, registry, period_s=0.0)
        except ValueError:
            pass
        else:
            raise AssertionError("period_s=0 must be rejected")


class TestExport:
    def test_to_dict_shape(self):
        sim, registry, counter = make_pair()
        sampler = TimeSeriesSampler(sim, registry, period_s=10.0)
        counter.inc()
        sim.run(until=20.0)
        document = sampler.to_dict()
        assert document["period_s"] == 10.0
        assert len(document["samples"]) == 2
        assert document["samples"][0]["values"]["events_total"] == 1.0

    def test_jsonl_export(self, tmp_path):
        sim, registry, _ = make_pair()
        sampler = TimeSeriesSampler(sim, registry, period_s=10.0)
        sim.run(until=30.0)
        path = sampler.export_jsonl(tmp_path / "series.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [entry["t"] for entry in lines] == [10.0, 20.0, 30.0]
        assert all("clock_seconds" in entry["values"] for entry in lines)

    def test_csv_export(self, tmp_path):
        sim, registry, _ = make_pair()
        sampler = TimeSeriesSampler(sim, registry, period_s=10.0)
        sim.run(until=20.0)
        path = sampler.export_csv(tmp_path / "series.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "time_s"
        assert "events_total" in rows[0]
        assert len(rows) == 3  # header + 2 points


class TestRaggedRoundTrips:
    """Series keys that appear mid-run must survive export → reload."""

    def make_ragged(self):
        sim = Simulator()
        registry = MetricsRegistry()
        registry.gauge("always").set(1.0)
        sampler = TimeSeriesSampler(sim, registry, period_s=10.0, autostart=False)
        sim.run(until=10.0)
        sampler.sample_now()  # only "always"
        registry.gauge("late", labels={"node": "0002"}).set(7.5)
        sim.run(until=20.0)
        sampler.sample_now()  # "always" + the late key
        return sampler

    def test_jsonl_round_trip(self, tmp_path):
        sampler = self.make_ragged()
        path = sampler.export_jsonl(tmp_path / "series.jsonl")
        points = load_timeseries_jsonl(path)
        assert [p.time_s for p in points] == [10.0, 20.0]
        assert [p.values for p in points] == [p.values for p in sampler.points]
        assert "late{node=\"0002\"}" not in points[0].values
        assert points[1].values["late{node=\"0002\"}"] == 7.5

    def test_csv_round_trip_drops_empty_cells(self, tmp_path):
        sampler = self.make_ragged()
        path = sampler.export_csv(tmp_path / "series.csv")
        points = load_timeseries_csv(path)
        # CSV is a rectangular union of keys; reload restores the ragged
        # per-point key sets by dropping empty cells.
        assert [p.values for p in points] == [p.values for p in sampler.points]

    def test_csv_and_jsonl_agree(self, tmp_path):
        sampler = self.make_ragged()
        from_csv = load_timeseries_csv(sampler.export_csv(tmp_path / "s.csv"))
        from_jsonl_ = load_timeseries_jsonl(sampler.export_jsonl(tmp_path / "s.jsonl"))
        assert from_csv == from_jsonl_


class TestSubscribe:
    def test_listeners_see_every_point(self):
        sim, registry, counter = make_pair()
        sampler = TimeSeriesSampler(sim, registry, period_s=10.0)
        seen = []
        sampler.subscribe(seen.append)
        sim.schedule(15.0, lambda: counter.inc(2))
        sim.run(until=25.0)
        sampler.sample_now()
        assert [p.time_s for p in seen] == [10.0, 20.0, 25.0]
        assert seen[-1].values["events_total"] == 2.0
        # Listener points are the same objects the ring stores.
        assert seen == list(sampler.points)
