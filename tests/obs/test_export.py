"""Tests for Prometheus/JSONL exposition of registry snapshots."""

import json
import math

from repro.obs.export import (
    export_jsonl,
    export_prometheus,
    from_jsonl,
    to_jsonl,
    to_prometheus,
)
from repro.obs.registry import MetricsRegistry


def make_registry():
    registry = MetricsRegistry()
    registry.counter(
        "frames_total", labels={"node": "0001"}, help="Frames on the air"
    ).inc(12)
    registry.counter("frames_total", labels={"node": "0002"}).inc(3)
    registry.gauge("coverage", help="Routed pair fraction").set(0.75)
    hist = registry.histogram("latency_seconds", buckets=(0.5, 2.0), help="E2E latency")
    hist.observe(0.2)
    hist.observe(1.0)
    hist.observe(9.0)
    return registry


class TestPrometheus:
    def test_text_format(self):
        text = to_prometheus(make_registry().snapshot())
        lines = text.splitlines()
        assert "# TYPE coverage gauge" in lines
        assert "# TYPE frames_total counter" in lines
        assert "# HELP frames_total Frames on the air" in lines
        assert 'frames_total{node="0001"} 12' in lines
        assert 'frames_total{node="0002"} 3' in lines
        assert "coverage 0.75" in lines
        assert text.endswith("\n")

    def test_one_header_per_name(self):
        text = to_prometheus(make_registry().snapshot())
        assert text.count("# TYPE frames_total counter") == 1

    def test_histogram_expansion(self):
        lines = to_prometheus(make_registry().snapshot()).splitlines()
        assert 'latency_seconds_bucket{le="0.5"} 1' in lines
        assert 'latency_seconds_bucket{le="2"} 2' in lines
        assert 'latency_seconds_bucket{le="+Inf"} 3' in lines
        assert "latency_seconds_count 3" in lines
        assert "latency_seconds_sum 10.2" in lines


class TestJsonlRoundTrip:
    def test_round_trip_equality(self):
        snapshot = make_registry().snapshot()
        assert from_jsonl(to_jsonl(snapshot)) == snapshot

    def test_file_round_trip(self, tmp_path):
        snapshot = make_registry().snapshot()
        path = export_jsonl(snapshot, tmp_path / "metrics.jsonl")
        assert from_jsonl(path.read_text()) == snapshot

    def test_empty_snapshot(self):
        assert to_jsonl([]) == ""
        assert from_jsonl("") == []


class TestFiles:
    def test_prometheus_file(self, tmp_path):
        path = export_prometheus(make_registry().snapshot(), tmp_path / "metrics.prom")
        assert "frames_total" in path.read_text()


class TestNonFiniteValues:
    """NaN and ±Inf must survive both expositions (regression).

    ``json.dumps`` would emit the non-standard ``NaN``/``Infinity``
    tokens; the JSONL bridge spells them ``"NaN"``/``"+Inf"``/``"-Inf"``
    instead and parses them back losslessly.
    """

    def make_nonfinite_registry(self):
        registry = MetricsRegistry()
        registry.gauge("g_nan").set(math.nan)
        registry.gauge("g_pinf").set(math.inf)
        registry.gauge("g_ninf").set(-math.inf)
        registry.gauge("g_ok").set(1.5)
        return registry

    def test_prometheus_spellings(self):
        lines = to_prometheus(self.make_nonfinite_registry().snapshot()).splitlines()
        assert "g_nan NaN" in lines
        assert "g_pinf +Inf" in lines
        assert "g_ninf -Inf" in lines
        assert "g_ok 1.5" in lines

    def test_jsonl_is_strict_json(self):
        text = to_jsonl(self.make_nonfinite_registry().snapshot())
        for line in text.splitlines():
            json.loads(line)  # would fail on bare NaN/Infinity tokens
        assert "Infinity" not in text and ": NaN" not in text

    def test_jsonl_round_trip_lossless(self):
        snapshot = self.make_nonfinite_registry().snapshot()
        back = from_jsonl(to_jsonl(snapshot))
        by_name = {s.name: s for s in back}
        assert math.isnan(by_name["g_nan"].value)
        assert by_name["g_pinf"].value == math.inf
        assert by_name["g_ninf"].value == -math.inf
        assert by_name["g_ok"].value == 1.5

    def test_histogram_nonfinite_sum_round_trips(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0,))
        hist.observe(math.inf)
        back = from_jsonl(to_jsonl(registry.snapshot()))
        assert back[0].sum == math.inf
