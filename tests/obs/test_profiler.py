"""Tests for the kernel profiler."""

import pytest

from repro.obs.profiler import KernelProfiler, callback_name, normalize_label
from repro.sim.kernel import Simulator


class TestNormalisation:
    def test_digits_collapse(self):
        assert normalize_label("0001 pump") == "N pump"
        assert normalize_label("tx#123 end") == "tx#N end"
        assert normalize_label("radio7 txdone") == "radioN txdone"

    def test_callback_name_for_functions(self):
        def handler():
            pass

        assert "handler" in callback_name(handler)


class TestAttachment:
    def test_attach_and_detach(self):
        sim = Simulator()
        profiler = KernelProfiler().attach(sim)
        assert sim.profiler is profiler
        profiler.detach()
        assert sim.profiler is None

    def test_double_attach_rejected(self):
        sim = Simulator()
        KernelProfiler().attach(sim)
        with pytest.raises(RuntimeError):
            KernelProfiler().attach(sim)

    def test_reattach_same_profiler_is_fine(self):
        sim = Simulator()
        profiler = KernelProfiler().attach(sim)
        profiler.attach(sim)
        assert sim.profiler is profiler


class TestRecording:
    def test_events_grouped_by_normalised_label(self):
        sim = Simulator()
        profiler = KernelProfiler().attach(sim)
        for i in range(4):
            sim.schedule(float(i), lambda: None, label=f"{i:04d} pump")
        sim.schedule(5.0, lambda: None, label="hello 0x0001")
        sim.run()
        groups = {spot.name: spot for spot in profiler.table()}
        assert groups["N pump"].events == 4
        assert groups["hello NxN"].events == 1
        assert profiler.total_events == 5

    def test_unlabelled_events_use_callback_name(self):
        sim = Simulator()
        profiler = KernelProfiler().attach(sim)

        def my_handler():
            pass

        sim.schedule(1.0, my_handler)
        sim.run()
        assert any("my_handler" in spot.name for spot in profiler.table())

    def test_time_accumulates_and_sorts(self):
        sim = Simulator()
        profiler = KernelProfiler().attach(sim)

        def busy():
            sum(range(20_000))

        for i in range(3):
            sim.schedule(float(i), busy, label="busy")
            sim.schedule(float(i), lambda: None, label="idle")
        sim.run()
        spots = profiler.table()
        assert spots[0].name == "busy"
        assert spots[0].total_s > 0
        assert spots[0].max_s <= spots[0].total_s
        assert profiler.total_s == pytest.approx(sum(s.total_s for s in spots))

    def test_detached_kernel_records_nothing(self):
        sim = Simulator()
        profiler = KernelProfiler().attach(sim)
        profiler.detach()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert profiler.total_events == 0

    def test_reset(self):
        sim = Simulator()
        profiler = KernelProfiler().attach(sim)
        sim.schedule(1.0, lambda: None, label="x")
        sim.run()
        assert profiler.total_events == 1
        profiler.reset()
        assert profiler.total_events == 0
        assert profiler.table() == []


class TestFormatting:
    def test_format_renders_table(self):
        sim = Simulator()
        profiler = KernelProfiler().attach(sim)
        sim.schedule(1.0, lambda: None, label="pump 3")
        sim.run()
        text = profiler.format()
        assert "Kernel hot spots" in text
        assert "pump N" in text
        assert "share" in text

    def test_format_limit_note(self):
        sim = Simulator()
        profiler = KernelProfiler().attach(sim)
        for i, label in enumerate(("alpha", "beta", "gamma", "delta")):
            sim.schedule(float(i), lambda: None, label=label)
        sim.run()
        text = profiler.format(limit=2)
        assert "2 more handler groups" in text
