"""Tests for binding live networks into the registry."""

import pytest

from repro.metrics.collect import FlowRecorder
from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.obs.instrument import (
    NODE_METRICS,
    instrument_flows,
    instrument_network,
    instrument_shards,
)
from repro.obs.registry import MetricsRegistry
from repro.topology.placement import line_positions

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)


@pytest.fixture(scope="module")
def converged_net():
    net = MeshNetwork.from_positions(line_positions(3), config=FAST, seed=2)
    net.run_until_converged(timeout_s=1800.0)
    a, c = net.nodes[0], net.nodes[-1]
    a.send_datagram(c.address, b"traffic")
    net.run(for_s=60.0)
    return net


class TestInstrumentNetwork:
    def test_per_node_series_exist(self, converged_net):
        registry = instrument_network(MetricsRegistry(), converged_net)
        for node in converged_net.nodes:
            labels = {"node": node.name}
            for name in NODE_METRICS:
                assert registry.get(name, labels) is not None, name

    def test_values_track_live_state(self, converged_net):
        registry = instrument_network(MetricsRegistry(), converged_net)
        node = converged_net.nodes[0]
        labels = {"node": node.name}
        assert registry.value("repro_node_routes", labels) == node.table.size
        assert (
            registry.value("repro_node_frames_sent_total", labels)
            == node.stats.frames_sent
        )
        assert registry.value("repro_network_coverage") == converged_net.coverage()
        assert (
            registry.value("repro_network_frames_total")
            == converged_net.total_frames_sent()
        )
        assert registry.value("repro_sim_events_total") == converged_net.sim.events_fired

    def test_instrumentation_is_idempotent(self, converged_net):
        registry = MetricsRegistry()
        instrument_network(registry, converged_net)
        size = len(registry)
        instrument_network(registry, converged_net)
        assert len(registry) == size

    def test_snapshot_is_live_not_cached(self, converged_net):
        registry = instrument_network(MetricsRegistry(), converged_net)
        before = registry.value("repro_network_frames_total")
        converged_net.run(for_s=120.0)
        after = registry.value("repro_network_frames_total")
        assert after > before


class TestInstrumentFlows:
    def test_flow_metrics(self):
        recorder = FlowRecorder()
        registry = instrument_flows(MetricsRegistry(), recorder)
        recorder.sent(1, 2, seq=0, time=0.0, size=24)
        recorder.sent(1, 2, seq=1, time=1.0, size=24)
        assert registry.value("repro_flows_sent_total") == 2
        assert registry.value("repro_flows_delivered_total") == 0
        assert registry.value("repro_flows_pdr") == 0.0


class TestInstrumentShards:
    def test_shard_metrics_track_run_result(self):
        from repro.sim.shard import run_sharded

        result = run_sharded(
            line_positions(6),
            shards=2,
            workers=1,
            config=FAST,
            seed=3,
            converge_timeout_s=1800.0,
            check_period_s=10.0,
        )
        registry = instrument_shards(MetricsRegistry(), result)
        for stats in result.stats:
            labels = {"shard": str(stats.shard)}
            assert registry.value("repro_shard_nodes", labels) == stats.nodes
            assert registry.value("repro_shard_events_total", labels) == stats.events
            assert (
                registry.value("repro_shard_frames_sent_total", labels)
                == stats.frames_sent
            )
            assert (
                registry.value("repro_shard_boundary_exports_total", labels)
                == stats.exports_sent
            )
            assert (
                registry.value("repro_shard_ghosts_injected_total", labels)
                == stats.ghosts_received
            )
        assert registry.value("repro_shard_load_imbalance") == result.load_imbalance()
        assert registry.value("repro_shard_windows_total") == max(
            s.windows for s in result.stats
        )


class TestTraceDroppedCounter:
    def test_exported_and_tracks_recorder(self):
        net = MeshNetwork.from_positions(line_positions(3), config=FAST, seed=6)
        net.trace.capacity = 5  # tiny ring: force drops
        registry = instrument_network(MetricsRegistry(), net)
        series = {s.key: s.value for s in registry.snapshot()}
        assert series["repro_trace_events_dropped_total"] == 0
        net.run(for_s=600.0)
        assert net.trace.events_dropped > 0
        series = {s.key: s.value for s in registry.snapshot()}
        assert series["repro_trace_events_dropped_total"] == net.trace.events_dropped
