"""Invariant-audited scenario runs (the `verify-smoke` suite).

Fast-config versions of the paper's bench scenarios (E1 convergence, E5
protocol comparison, E6 reliable transfer, E8 route repair) run under
the strict invariant checker: any routing loop that outlives the grace
window, inconsistent via, metric excursion, duplicate delivery, queue
imbalance, or duty-cycle breach fails the test.  A fault-injected 3x3
grid adds crash/revive churn, an asymmetric blackout, and burst loss —
the conditions that historically flushed out the queue and merge-memo
bugs this checker was built to catch.

Seeds are fixed: a red run here is replayable bit-for-bit.
"""

import random

import pytest

from repro.experiments.runner import Protocol, TrafficSpec, run_protocol
from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.topology.placement import grid_positions, line_positions
from repro.verify import (
    BurstLoss,
    FaultInjector,
    FaultPlan,
    InvariantChecker,
    LinkBlackout,
    random_churn_plan,
)

#: Scaled-down firmware timers so each scenario simulates in well under
#: a second of wall clock while keeping the period/timeout ratios.
FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)

AUDIT_S = 20.0


def checked(net):
    return InvariantChecker(net, audit_period_s=AUDIT_S, strict=True).attach()


def test_e1_cold_start_line_audits_clean():
    """E1 scenario: 4-node line from cold start to convergence."""
    net = MeshNetwork.from_positions(line_positions(4), config=FAST, seed=11)
    checker = checked(net)
    assert net.run_until_converged(timeout_s=1800.0) is not None
    net.run(for_s=600.0)
    checker.audit()
    checker.assert_clean()
    assert checker.audits_run > 10


def test_e5_grid_with_probe_traffic_audits_clean():
    """E5 scenario (mesh leg): 3x3 grid, two diagonal flows."""
    positions = grid_positions(3, 3, spacing_m=100.0)
    traffic = [
        TrafficSpec(src_index=0, dst_index=8, period_s=60.0),
        TrafficSpec(src_index=2, dst_index=6, period_s=60.0),
    ]
    result = run_protocol(
        Protocol.MESH,
        positions,
        traffic,
        duration_s=1200.0,
        seed=22,
        config=FAST,
        verify=True,
        verify_strict=True,
        verify_audit_period_s=AUDIT_S,
    )
    assert result.checker is not None
    result.checker.assert_clean()
    assert result.checker.audits_run > 10
    assert result.pdr > 0.5


def test_e6_reliable_transfer_under_loss_audits_clean():
    """E6 scenario: multi-fragment reliable transfer across 2 hops with
    20% random loss — exercises the exactly-once ledger hard."""
    loss_rng = random.Random(33)
    net = MeshNetwork.from_positions(
        line_positions(3),
        config=FAST,
        seed=33,
        loss_injector=lambda tx, rx: loss_rng.random() < 0.2,
    )
    checker = checked(net)
    assert net.run_until_converged(timeout_s=1800.0) is not None
    src, dst = net.nodes[0], net.nodes[-1]
    payload = random.Random(1).randbytes(2000)
    outcome = {}
    src.send_reliable(dst.address, payload, lambda ok, why: outcome.update(ok=ok))
    net.run(for_s=3600.0)
    checker.audit()
    checker.assert_clean()
    assert outcome.get("ok") is True
    message = dst.receive()
    assert message is not None and message.payload == payload


def test_e8_relay_failure_audits_clean():
    """E8 scenario: diamond topology, the active relay dies mid-run."""
    diamond = [(0.0, 0.0), (120.0, 45.0), (120.0, -45.0), (240.0, 0.0)]
    net = MeshNetwork.from_positions(diamond, config=FAST, seed=11)
    checker = checked(net)
    assert net.run_until_converged(timeout_s=1800.0) is not None
    a, d = net.nodes[0], net.nodes[3]
    relay = net.node(a.table.next_hop(d.address))
    net.sim.schedule(120.0, relay.fail, label="kill relay")
    sent = []

    def probe():
        if a.table.has_route(d.address):
            a.send_datagram(d.address, b"e8-probe")
            sent.append(net.sim.now)

    net.sim.periodic(15.0, probe, label="e8 probes")
    net.run(for_s=FAST.route_timeout_s + 10 * FAST.hello_period_s)
    checker.audit()
    checker.assert_clean()
    # The mesh healed: traffic flows via the surviving relay.
    assert a.table.next_hop(d.address) not in (None, relay.address)
    assert d.stats.data_delivered > 0


def test_churned_grid_with_faults_audits_clean():
    """The stress case: 3x3 grid under deterministic crash/revive churn,
    an asymmetric link blackout, and a burst-loss window, all while the
    strict checker audits every 20 simulated seconds."""
    net = MeshNetwork.from_positions(
        grid_positions(3, 3, spacing_m=100.0), config=FAST, seed=44
    )
    checker = checked(net)
    addresses = net.addresses
    plan = FaultPlan(
        random_churn_plan(
            addresses, seed=44, start=900.0, end=2700.0, cycles=3, down_s=360.0
        ).events
        + [
            LinkBlackout(
                a=addresses[0], b=addresses[1], start=600.0, end=1200.0, symmetric=False
            ),
            BurstLoss(start=1500.0, end=1700.0, probability=0.5),
        ]
    )
    injector = FaultInjector(net, plan, seed=44).arm()
    assert net.run_until_converged(timeout_s=600.0) is not None

    def probe_round():
        for i, addr in enumerate(addresses):
            node = net.node(addr)
            peer = addresses[(i + 4) % len(addresses)]
            if node.started and node.radio.powered and node.table.has_route(peer):
                node.send_datagram(peer, b"churn-probe")

    net.sim.periodic(120.0, probe_round, label="churn probes")
    net.run(until=3600.0)
    checker.audit()
    checker.assert_clean()
    # The faults actually bit: frames were dropped and churn was seen.
    assert injector.dropped_frames > 0
    assert checker.observations.get("loop_ghost", 0) >= 0  # ghosts tolerated
    delivered = sum(n.stats.data_delivered for n in net.nodes)
    assert delivered > 0


def test_verify_rejected_for_baseline_protocols():
    positions = grid_positions(2, 2, spacing_m=100.0)
    traffic = [TrafficSpec(src_index=0, dst_index=3, period_s=60.0)]
    with pytest.raises(ValueError):
        run_protocol(
            Protocol.FLOODING, positions, traffic, duration_s=60.0, verify=True
        )
