"""Tests for the protocol invariant checker.

The flip tests are the checker's own verification: each invariant class
is deliberately broken once and strict mode must catch exactly that
class.  A checker that stays green on a healthy mesh but cannot see a
planted violation verifies nothing.
"""

import pytest

from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.net.routing_table import RouteEntry
from repro.obs.registry import MetricsRegistry
from repro.topology.placement import line_positions
from repro.verify import (
    Invariant,
    InvariantChecker,
    InvariantViolation,
    strict_from_env,
)

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)


def converged_line(n=3, seed=5):
    net = MeshNetwork.from_positions(line_positions(n), config=FAST, seed=seed)
    assert net.run_until_converged(timeout_s=1200.0) is not None
    return net


def plant_route(node, *, address, via, metric, now):
    """Bypass the protocol and write a raw routing-table row (the only
    way to create states the implementation itself cannot reach).

    Deliberately skips the change hook/version bump on both table
    implementations so the planted inconsistency is first seen by the
    audit, not by the per-event checks."""
    table = node.table
    if hasattr(table, "_routes"):  # scalar reference
        table._routes[address] = RouteEntry(
            address=address, via=via, metric=metric, role=0, updated_at=now
        )
        return
    slot = table._slot_of(address)
    if slot < 0:
        table._append_row(address, via, metric, 0, now, float("nan"))
    else:
        table._via[slot] = via
        table._metric[slot] = metric
        table._role[slot] = 0
        table._updated[slot] = now


class TestLifecycle:
    def test_attach_is_idempotent_and_detach_restores_taps(self):
        net = converged_line()
        node = net.nodes[0]
        before = node.on_route_event
        checker = InvariantChecker(net, strict=False)
        checker.attach()
        checker.attach()
        assert node.on_route_event is not before or before is None
        checker.detach()
        assert node.on_route_event is before
        assert node.reliable.on_deliver is None

    def test_chains_existing_taps(self):
        net = converged_line()
        node = net.nodes[0]
        seen = []
        node.on_route_event = lambda kind, entry: seen.append(kind)
        checker = InvariantChecker(net, strict=False).attach()
        node.table.heard_from(0x00AA, now=net.sim.now)
        assert "added" in seen
        checker.detach()

    def test_audit_period_must_be_positive(self):
        net = converged_line()
        with pytest.raises(ValueError):
            InvariantChecker(net, audit_period_s=0.0)

    def test_default_grace_follows_config(self):
        net = converged_line()
        checker = InvariantChecker(net, strict=False)
        cfg = net.nodes[0].config
        assert checker.loop_grace_s == pytest.approx(
            cfg.max_metric * cfg.hello_period_s + cfg.route_timeout_s
        )

    def test_strict_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_STRICT_INVARIANTS", raising=False)
        assert strict_from_env() is False
        monkeypatch.setenv("REPRO_STRICT_INVARIANTS", "1")
        assert strict_from_env() is True
        monkeypatch.setenv("REPRO_STRICT_INVARIANTS", "0")
        assert strict_from_env() is False


class TestHealthyMesh:
    def test_converged_line_audits_clean(self):
        net = converged_line(4)
        checker = InvariantChecker(net, strict=True).attach()
        net.run(for_s=600.0)
        found = checker.audit()
        assert found == []
        checker.assert_clean()
        assert checker.audits_run > 1  # periodic timer fired too

    def test_registry_binding_exports_counts(self):
        net = converged_line()
        registry = MetricsRegistry()
        checker = InvariantChecker(net, strict=False, registry=registry).attach()
        net.run(for_s=120.0)
        checker.audit()
        for inv in Invariant:
            assert registry.value(
                "repro_verify_violations_total", {"invariant": inv.value}
            ) == 0.0
        assert registry.value("repro_verify_audits_total") >= 1.0


# ---------------------------------------------------------------------------
# Flip tests: break each invariant once, strict mode must catch it.
# ---------------------------------------------------------------------------
class TestFlips:
    def _checker(self, net, **kwargs):
        kwargs.setdefault("strict", True)
        return InvariantChecker(net, **kwargs).attach()

    def test_flip_routing_loop(self):
        net = converged_line(3)
        a, b, c = net.nodes
        checker = self._checker(net, loop_grace_s=1.0)
        now = net.sim.now
        # a and b point at each other for the (live) destination c.
        plant_route(a, address=c.address, via=b.address, metric=3, now=now)
        plant_route(b, address=c.address, via=a.address, metric=3, now=now)
        checker.strict = False
        checker.audit()  # first sighting: inside the grace window
        assert not checker.violations
        checker.strict = True
        net.sim.run(until=net.sim.now + 2.0)
        plant_route(a, address=c.address, via=b.address, metric=3, now=net.sim.now)
        plant_route(b, address=c.address, via=a.address, metric=3, now=net.sim.now)
        with pytest.raises(InvariantViolation) as exc:
            checker.audit()
        assert exc.value.violation.invariant is Invariant.ROUTING_LOOP

    def test_ghost_loop_never_violates(self):
        net = converged_line(3)
        a, b, c = net.nodes
        checker = self._checker(net, loop_grace_s=0.0)
        c.fail()  # destination is dead: any cycle towards it is debris
        now = net.sim.now
        plant_route(a, address=c.address, via=b.address, metric=3, now=now)
        plant_route(b, address=c.address, via=a.address, metric=3, now=now)
        checker.audit()
        checker.audit()
        assert checker.observations.get("loop_ghost", 0) >= 2
        assert not checker.violations

    def test_flip_via_consistency(self):
        net = converged_line(3)
        a = net.nodes[0]
        checker = self._checker(net)
        # A route whose via was never heard from (not a neighbour).
        plant_route(a, address=0x0BAD, via=0x0EEE, metric=4, now=net.sim.now)
        with pytest.raises(InvariantViolation) as exc:
            checker.audit()
        assert exc.value.violation.invariant is Invariant.VIA_CONSISTENCY

    def test_flip_metric_sanity_bounds(self):
        net = converged_line(3)
        a, b = net.nodes[0], net.nodes[1]
        checker = self._checker(net)
        plant_route(
            a,
            address=0x0BAD,
            via=b.address,
            metric=a.table.max_metric + 7,
            now=net.sim.now,
        )
        with pytest.raises(InvariantViolation) as exc:
            checker.audit()
        assert exc.value.violation.invariant is Invariant.METRIC_SANITY

    def test_flip_metric_direct_iff_one(self):
        net = converged_line(3)
        a, b = net.nodes[0], net.nodes[1]
        checker = self._checker(net)
        # metric 2 but via == address claims "direct two hops away".
        plant_route(a, address=0x0BAD, via=0x0BAD, metric=2, now=net.sim.now)
        with pytest.raises(InvariantViolation) as exc:
            checker.audit()
        assert exc.value.violation.invariant is Invariant.METRIC_SANITY

    def test_flip_exactly_once(self):
        net = converged_line(3)
        a = net.nodes[0]
        checker = self._checker(net)
        a.reliable.on_deliver(0x0002, 9, "single")
        with pytest.raises(InvariantViolation) as exc:
            a.reliable.on_deliver(0x0002, 9, "single")
        assert exc.value.violation.invariant is Invariant.EXACTLY_ONCE

    def test_flip_conservation(self):
        net = converged_line(3)
        a = net.nodes[0]
        checker = self._checker(net)
        a.send_queue.enqueued_total += 5  # five frames "vanish"
        with pytest.raises(InvariantViolation) as exc:
            checker.audit()
        assert exc.value.violation.invariant is Invariant.CONSERVATION

    def test_flip_duty_cycle(self):
        net = converged_line(3)
        a = net.nodes[0]
        checker = self._checker(net)
        # 100 s of airtime in a 3600 s window blows the 1% EU868 cap.
        a.duty.record(net.sim.now, 100.0)
        with pytest.raises(InvariantViolation) as exc:
            checker.audit()
        assert exc.value.violation.invariant is Invariant.DUTY_CYCLE

    def test_non_strict_counts_instead_of_raising(self):
        net = converged_line(3)
        a = net.nodes[0]
        checker = InvariantChecker(net, strict=False).attach()
        plant_route(a, address=0x0BAD, via=0x0EEE, metric=4, now=net.sim.now)
        found = checker.audit()
        assert found and found[0].invariant is Invariant.VIA_CONSISTENCY
        assert checker.violation_counts()["via_consistency"] >= 1
        with pytest.raises(InvariantViolation):
            checker.assert_clean()

    def test_summary_shape(self):
        net = converged_line(3)
        checker = InvariantChecker(net, strict=False).attach()
        checker.audit()
        summary = checker.summary()
        assert set(summary["violations"]) == {inv.value for inv in Invariant}
        assert summary["audits"] == 1
