"""STREAM_ORDERING invariant: flip tests + strict scenario runs.

The invariant asserts every stream endpoint delivers message sequences
exactly 0, 1, 2, … per (receiver, peer, stream id, side): no gap, no
regression, no duplicate ever surfacing at the stream layer.  The flip
tests feed the checker synthetic taps to prove it catches each break
class; the scenario tests run real stream workloads — including the
churned 3x3 grid — under strict mode.
"""

import pytest

from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.net.stream import StreamManager
from repro.topology.placement import grid_positions, line_positions
from repro.verify import (
    BurstLoss,
    FaultInjector,
    FaultPlan,
    Invariant,
    InvariantChecker,
    InvariantViolation,
    LinkBlackout,
    random_churn_plan,
)
from repro.workload.flows import FlowEngine, build_workload

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)
AUDIT_S = 20.0


def converged_line(n=2, seed=5):
    net = MeshNetwork.from_positions(line_positions(n), config=FAST, seed=seed)
    assert net.run_until_converged(timeout_s=1200.0) is not None
    return net


class TestFlips:
    """Each break class planted once; strict mode must catch exactly it."""

    def _watched(self, net):
        manager = StreamManager(net.nodes[1])
        checker = InvariantChecker(net, audit_period_s=AUDIT_S, strict=True).attach()
        return manager, checker

    def test_flip_gap(self):
        net = converged_line()
        manager, checker = self._watched(net)
        tap = manager.on_stream_event
        tap("accept", 0x0001, 3, True, 0)
        tap("deliver", 0x0001, 3, True, 0)
        with pytest.raises(InvariantViolation) as exc:
            tap("deliver", 0x0001, 3, True, 2)  # seq 1 skipped
        assert exc.value.violation.invariant is Invariant.STREAM_ORDERING
        assert "gap" in exc.value.violation.detail

    def test_flip_regression(self):
        net = converged_line()
        manager, checker = self._watched(net)
        tap = manager.on_stream_event
        tap("accept", 0x0001, 3, True, 0)
        tap("deliver", 0x0001, 3, True, 0)
        tap("deliver", 0x0001, 3, True, 1)
        with pytest.raises(InvariantViolation) as exc:
            tap("deliver", 0x0001, 3, True, 0)  # replay
        assert "duplicate/regression" in exc.value.violation.detail

    def test_flip_duplicate_drop_is_a_violation(self):
        """The stream layer dropping a duplicate means the transport
        below delivered twice — that still flags, by design."""
        net = converged_line()
        manager, checker = self._watched(net)
        with pytest.raises(InvariantViolation) as exc:
            manager.on_stream_event("duplicate", 0x0001, 3, True, 4)
        assert exc.value.violation.invariant is Invariant.STREAM_ORDERING

    def test_ledger_resets_on_reuse(self):
        """close/reset frees the id; a successor stream restarts at 0."""
        net = converged_line()
        manager, checker = self._watched(net)
        tap = manager.on_stream_event
        tap("accept", 0x0001, 3, True, 0)
        tap("deliver", 0x0001, 3, True, 0)
        tap("close", 0x0001, 3, True, 1)
        tap("accept", 0x0001, 3, True, 0)
        tap("deliver", 0x0001, 3, True, 0)  # must not flag as regression
        checker.assert_clean()

    def test_sides_are_independent(self):
        net = converged_line()
        manager, checker = self._watched(net)
        tap = manager.on_stream_event
        tap("accept", 0x0001, 3, True, 0)
        tap("open", 0x0001, 3, False, 0)
        tap("deliver", 0x0001, 3, True, 0)
        tap("deliver", 0x0001, 3, False, 0)
        tap("deliver", 0x0001, 3, True, 1)
        checker.assert_clean()

    def test_counted_mode_records_instead_of_raising(self):
        net = converged_line()
        manager = StreamManager(net.nodes[1])
        checker = InvariantChecker(net, strict=False).attach()
        tap = manager.on_stream_event
        tap("accept", 0x0001, 3, True, 0)
        tap("deliver", 0x0001, 3, True, 5)
        assert len(checker.violations) == 1
        assert checker.violations[0].invariant is Invariant.STREAM_ORDERING


class TestDiscovery:
    def test_attach_discovers_existing_manager(self):
        net = converged_line()
        manager = StreamManager(net.nodes[1])
        InvariantChecker(net, strict=True).attach()
        assert manager.on_stream_event is not None

    def test_watch_chains_previous_tap(self):
        net = converged_line()
        manager = StreamManager(net.nodes[1])
        seen = []
        manager.on_stream_event = lambda *args: seen.append(args)
        InvariantChecker(net, strict=True).attach()
        manager.on_stream_event("accept", 0x0001, 1, True, 0)
        assert seen == [("accept", 0x0001, 1, True, 0)]


class TestScenarios:
    def test_stream_traffic_line_audits_clean(self):
        """E-series style: streams over a 3-node line, strict checker."""
        net = MeshNetwork.from_positions(line_positions(3), config=FAST, seed=7)
        checker = InvariantChecker(net, audit_period_s=AUDIT_S, strict=True).attach()
        assert net.run_until_converged(timeout_s=1200.0) is not None
        a, c = net.nodes[0], net.nodes[2]
        ma, mc = StreamManager(a), StreamManager(c)
        received = []
        mc.on_accept = lambda s: s.__setattr__(
            "on_message", lambda _s, body: received.append(body)
        )
        stream = ma.open(c.address)
        net.run(for_s=60.0)
        for i in range(6):
            stream.send(f"audit-{i}".encode())
        stream.close()
        net.run(for_s=600.0)
        checker.audit()
        checker.assert_clean()
        assert received == [f"audit-{i}".encode() for i in range(6)]

    def test_stream_workload_under_burst_loss_audits_clean(self):
        """E6-style: flows across a lossy 2-hop path; the transport must
        repair every loss without ever breaking stream ordering."""
        net = MeshNetwork.from_positions(line_positions(3), config=FAST, seed=33)
        checker = InvariantChecker(net, audit_period_s=AUDIT_S, strict=True).attach()
        plan = FaultPlan([BurstLoss(start=300.0, end=900.0, probability=0.4)])
        FaultInjector(net, plan, seed=33).arm()
        assert net.run_until_converged(timeout_s=1200.0) is not None
        engine = FlowEngine(net, checker=checker)
        engine.add_flows(
            build_workload(
                "mixed", net.addresses, 12, seed=3,
                messages=3, payload_bytes=24, window_s=600.0, interval_s=60.0,
            )
        )
        engine.start()
        net.run(for_s=3600.0)
        checker.audit()
        checker.assert_clean()
        summary = engine.summary()
        assert summary.completed > 0
        assert summary.messages_delivered > 0

    def test_churned_grid_stream_workload_audits_clean(self):
        """The acceptance stress case: 3x3 grid under crash/revive churn,
        an asymmetric blackout and burst loss, with a live stream
        workload — strict mode, audits every 20 simulated seconds."""
        net = MeshNetwork.from_positions(
            grid_positions(3, 3, spacing_m=100.0), config=FAST, seed=44
        )
        checker = InvariantChecker(net, audit_period_s=AUDIT_S, strict=True).attach()
        addresses = net.addresses
        plan = FaultPlan(
            random_churn_plan(
                addresses, seed=44, start=900.0, end=2700.0, cycles=3, down_s=360.0
            ).events
            + [
                LinkBlackout(
                    a=addresses[0], b=addresses[1], start=600.0, end=1200.0, symmetric=False
                ),
                BurstLoss(start=1500.0, end=1700.0, probability=0.5),
            ]
        )
        injector = FaultInjector(net, plan, seed=44).arm()
        assert net.run_until_converged(timeout_s=600.0) is not None
        engine = FlowEngine(net, checker=checker)
        engine.add_flows(
            build_workload(
                "mixed", addresses, 18, seed=44,
                messages=2, payload_bytes=24, window_s=2400.0, interval_s=120.0,
            )
        )
        engine.start()
        net.run(until=3600.0)
        checker.audit()
        checker.assert_clean()
        assert injector.dropped_frames > 0
        summary = engine.summary()
        # Churn may kill some flows (that is the point); ordering held
        # for everything that was delivered.
        assert summary.messages_delivered > 0
        assert summary.completed > 0
