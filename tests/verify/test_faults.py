"""Tests for the deterministic fault-injection harness."""

import pytest

from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.topology.placement import line_positions
from repro.verify import (
    BurstLoss,
    FaultInjector,
    FaultPlan,
    LinkBlackout,
    NodeCrash,
    NodeRevive,
    random_churn_plan,
)

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)


def small_net(n=3, seed=5):
    return MeshNetwork.from_positions(line_positions(n), config=FAST, seed=seed)


class TestPlanValidation:
    def test_negative_schedule_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan([NodeCrash(node=1, at=-1.0)])

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan([LinkBlackout(a=1, b=2, start=10.0, end=10.0)])

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            BurstLoss(start=0.0, end=1.0, probability=1.5)

    def test_horizon(self):
        plan = FaultPlan(
            [
                NodeCrash(node=1, at=100.0),
                LinkBlackout(a=1, b=2, start=50.0, end=400.0),
            ]
        )
        assert plan.horizon == 400.0


class TestBlackoutSemantics:
    def test_symmetric_drops_both_directions(self):
        fault = LinkBlackout(a=1, b=2, start=0.0, end=10.0)
        assert fault.drops(1, 2, 5.0)
        assert fault.drops(2, 1, 5.0)
        assert not fault.drops(1, 3, 5.0)
        assert not fault.drops(1, 2, 10.0)  # window is half-open

    def test_asymmetric_drops_one_direction(self):
        fault = LinkBlackout(a=1, b=2, start=0.0, end=10.0, symmetric=False)
        assert fault.drops(1, 2, 5.0)
        assert not fault.drops(2, 1, 5.0)


class TestInjector:
    def test_crash_and_revive_fire(self):
        net = small_net()
        victim = net.nodes[1]
        plan = FaultPlan(
            [
                NodeCrash(node=victim.address, at=100.0),
                NodeRevive(node=victim.address, at=200.0),
            ]
        )
        FaultInjector(net, plan).arm()
        net.run(until=150.0)
        assert not victim.radio.powered
        net.run(until=250.0)
        assert victim.radio.powered and victim.started

    def test_blackout_partitions_the_pair(self):
        net = small_net(2)
        a, b = net.nodes
        plan = FaultPlan([LinkBlackout(a=a.address, b=b.address, start=0.0, end=1e9)])
        injector = FaultInjector(net, plan).arm()
        net.run(for_s=600.0)
        assert not a.table.has_route(b.address)
        assert not b.table.has_route(a.address)
        assert injector.dropped_frames > 0

    def test_burst_loss_is_seed_deterministic(self):
        def run(seed):
            net = small_net(seed=3)
            plan = FaultPlan([BurstLoss(start=0.0, end=600.0, probability=0.4)])
            injector = FaultInjector(net, plan, seed=seed).arm()
            net.run(for_s=600.0)
            return injector.dropped_frames, net.total_frames_sent()

        first = run(seed=7)
        assert first == run(seed=7)
        assert first[0] > 0
        assert first != run(seed=8)

    def test_chains_preexisting_injector(self):
        drops = []
        net = MeshNetwork.from_positions(
            line_positions(2),
            config=FAST,
            seed=1,
            loss_injector=lambda tx, rx: drops.append(tx.tx_id) is not None and False,
        )
        plan = FaultPlan([LinkBlackout(a=99, b=98, start=0.0, end=1.0)])
        injector = FaultInjector(net, plan).arm()
        net.run(for_s=120.0)
        assert drops  # the original injector still sees every frame
        injector.disarm()
        assert net.medium.loss_injector is not None  # restored, not cleared

    def test_disarm_cancels_pending_faults(self):
        net = small_net()
        victim = net.nodes[1]
        plan = FaultPlan([NodeCrash(node=victim.address, at=100.0)])
        injector = FaultInjector(net, plan).arm()
        injector.disarm()
        net.run(until=200.0)
        assert victim.radio.powered


class TestRandomChurn:
    def test_deterministic_for_seed(self):
        addresses = [1, 2, 3, 4, 5]
        a = random_churn_plan(addresses, seed=9, start=100.0, end=2000.0, cycles=4)
        b = random_churn_plan(addresses, seed=9, start=100.0, end=2000.0, cycles=4)
        assert a == b
        c = random_churn_plan(addresses, seed=10, start=100.0, end=2000.0, cycles=4)
        assert a != c

    def test_every_crash_has_a_revival(self):
        plan = random_churn_plan(
            [1, 2, 3, 4], seed=3, start=0.0, end=3000.0, cycles=5, down_s=200.0
        )
        crashes = {(e.node, e.at) for e in plan.crashes}
        revives = {(e.node, e.at - 200.0) for e in plan.revives}
        assert crashes == revives

    def test_spare_nodes_stay_up(self):
        plan = random_churn_plan(
            [1, 2, 3], seed=1, start=0.0, end=1000.0, cycles=8, down_s=400.0, spare=2
        )
        # At most one node down at any instant with spare=2 of 3.
        events = sorted(
            [(e.at, 1, e.node) for e in plan.crashes]
            + [(e.at, -1, e.node) for e in plan.revives]
        )
        down = 0
        for _, delta, _node in events:
            down += delta
            assert down <= 1

    def test_window_too_small_rejected(self):
        with pytest.raises(ValueError):
            random_churn_plan([1, 2], seed=0, start=0.0, end=100.0, down_s=200.0)
