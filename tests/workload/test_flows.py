"""Flow workload engine: spec generation, execution, metrics export.

The closing soak is the PR's headline demonstration: one thousand
concurrent stream flows over a 49-node mesh, p50/p95/p99 latency and
goodput exported through the metrics registry, with the strict
STREAM_ORDERING checker watching every delivery.
"""

import pytest

from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.obs.instrument import instrument_flow_engine
from repro.obs.registry import MetricsRegistry
from repro.phy.modulation import Bandwidth, LoRaParams
from repro.phy.regions import UNRESTRICTED
from repro.topology.placement import grid_positions, line_positions
from repro.verify.invariants import InvariantChecker
from repro.workload.flows import (
    WORKLOAD_KINDS,
    FlowEngine,
    FlowSpec,
    build_workload,
)

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)

#: The high-throughput mesh profile the 1000-flow soak runs on: BW500
#: quadruples channel capacity, slow hellos and long route lifetimes
#: keep the control plane from being starved by data traffic.
SOAK_CONFIG = MesherConfig(
    lora=LoRaParams(bandwidth=Bandwidth.BW500),
    region=UNRESTRICTED,
    hello_period_s=120.0,
    route_timeout_s=7200.0,
    purge_period_s=900.0,
    send_queue_capacity=64,
    stream_window=2,
)


class TestBuildWorkload:
    ADDRESSES = list(range(0x10, 0x10 + 12))

    def test_exact_count_and_ids(self):
        specs = build_workload("bursty", self.ADDRESSES, 25, seed=1)
        assert len(specs) == 25
        assert [s.flow_id for s in specs] == list(range(25))

    def test_mixed_balances_kinds(self):
        specs = build_workload("mixed", self.ADDRESSES, 300, seed=2)
        counts = {kind: sum(1 for s in specs if s.kind == kind) for kind in WORKLOAD_KINDS}
        assert counts["bursty"] == 100
        assert counts["ota"] == 100
        assert counts["chat"] == 100

    def test_deterministic_per_seed(self):
        a = build_workload("mixed", self.ADDRESSES, 50, seed=9)
        b = build_workload("mixed", self.ADDRESSES, 50, seed=9)
        c = build_workload("mixed", self.ADDRESSES, 50, seed=10)
        assert a == b
        assert a != c

    def test_starts_spread_over_window(self):
        specs = build_workload("bursty", self.ADDRESSES, 100, seed=3, window_s=500.0)
        starts = [s.start_s for s in specs]
        assert all(0.0 <= s <= 500.0 for s in starts)
        assert max(starts) - min(starts) > 250.0  # actually spread

    def test_chat_flows_come_in_opposed_pairs(self):
        specs = build_workload("chat", self.ADDRESSES, 20, seed=4)
        pairs = {(s.src, s.dst) for s in specs}
        reversed_count = sum(1 for (a, b) in pairs if (b, a) in pairs)
        assert reversed_count >= len(pairs) // 2

    def test_src_never_equals_dst(self):
        specs = build_workload("mixed", self.ADDRESSES, 120, seed=5)
        assert all(s.src != s.dst for s in specs)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_workload("bursty", [0x10], 5)
        with pytest.raises(ValueError):
            build_workload("bursty", self.ADDRESSES, 0)
        with pytest.raises(ValueError):
            build_workload("nonsense", self.ADDRESSES, 5)
        with pytest.raises(ValueError):
            FlowSpec(flow_id=0, kind="bad", src=1, dst=2, messages=1,
                     payload_bytes=16, start_s=0.0, interval_s=0.0)


def _run_small_workload(flows=12, seed=3, checker=None):
    net = MeshNetwork.from_positions(
        grid_positions(3, 3, spacing_m=100.0), config=FAST, seed=seed
    )
    assert net.run_until_converged(timeout_s=600.0) is not None
    engine = FlowEngine(net, checker=checker)
    engine.add_flows(
        build_workload(
            "mixed", net.addresses, flows, seed=seed,
            messages=3, payload_bytes=24, window_s=300.0, interval_s=60.0,
        )
    )
    engine.start()
    net.run(for_s=2400.0)
    return net, engine


class TestFlowEngine:
    def test_small_mixed_workload_completes(self):
        _net, engine = _run_small_workload()
        summary = engine.summary()
        assert summary.flows == 12
        assert summary.completed == 12
        assert summary.failed == 0
        assert summary.delivery_ratio == 1.0
        assert summary.latency_p50_s is not None
        assert summary.latency_p50_s <= summary.latency_p95_s <= summary.latency_p99_s
        assert {ks.kind for ks in summary.kinds} == set(WORKLOAD_KINDS)
        assert engine.flows_active == 0

    def test_goodput_and_latency_percentiles(self):
        _net, engine = _run_small_workload()
        assert engine.latency_percentile(50) is not None
        assert engine.goodput_percentile(50) is not None
        assert engine.latency_percentile(50, "chat") is not None

    def test_runs_are_deterministic(self):
        _net_a, engine_a = _run_small_workload()
        _net_b, engine_b = _run_small_workload()
        assert engine_a.summary() == engine_b.summary()

    def test_duplicate_flow_id_rejected(self):
        net = MeshNetwork.from_positions(line_positions(2), config=FAST, seed=1)
        engine = FlowEngine(net)
        spec = FlowSpec(flow_id=0, kind="bursty", src=net.addresses[0],
                        dst=net.addresses[1], messages=1, payload_bytes=16,
                        start_s=0.0, interval_s=0.0)
        engine.add_flows([spec])
        with pytest.raises(ValueError):
            engine.add_flows([spec])

    def test_engine_reuses_existing_manager(self):
        from repro.net.stream import StreamManager

        net = MeshNetwork.from_positions(line_positions(2), config=FAST, seed=1)
        assert net.run_until_converged(timeout_s=600.0) is not None
        pre_existing = StreamManager(net.nodes[0])
        engine = FlowEngine(net)
        assert engine.manager(net.nodes[0].address) is pre_existing

    def test_registry_instruments_track_engine(self):
        _net, engine = _run_small_workload()
        registry = instrument_flow_engine(MetricsRegistry(), engine)
        assert registry.value("repro_workload_flows_total") == 12
        assert registry.value("repro_workload_flows_completed_total") == 12
        assert registry.value("repro_workload_flows_failed_total") == 0
        assert registry.value("repro_workload_messages_delivered_total") == engine.messages_delivered
        p50 = registry.value(
            "repro_workload_latency_seconds", {"kind": "all", "quantile": "50"}
        )
        assert p50 == pytest.approx(engine.latency_percentile(50))
        assert registry.value("repro_workload_streams_opened_total") > 0


class TestThousandFlowSoak:
    def test_sustains_1000_concurrent_flows(self):
        """The acceptance run: 1000 flows over a 7x7 BW500 mesh, strict
        ordering checker attached, percentiles through the registry."""
        net = MeshNetwork.from_positions(
            grid_positions(7, 7, spacing_m=60.0), config=SOAK_CONFIG, seed=9
        )
        assert net.run_until_converged(timeout_s=7200.0) is not None
        checker = InvariantChecker(net, strict=True)
        engine = FlowEngine(net, checker=checker)
        engine.add_flows(
            build_workload(
                "mixed", net.addresses, 1000, seed=9,
                messages=3, payload_bytes=32, window_s=7200.0, interval_s=90.0,
            )
        )
        engine.start()
        registry = instrument_flow_engine(MetricsRegistry(), engine)
        net.run(for_s=14400.0)
        summary = engine.summary()
        assert summary.flows == 1000
        # The mesh must actually sustain the load: overwhelming majority
        # completes, ordering never breaks, queues do not collapse.
        assert summary.completed >= 950
        assert summary.delivery_ratio > 0.99
        assert len(checker.violations) == 0
        for kind in ("all",) + WORKLOAD_KINDS:
            for q in ("50", "95", "99"):
                value = registry.value(
                    "repro_workload_latency_seconds", {"kind": kind, "quantile": q}
                )
                assert value > 0.0
        assert registry.value(
            "repro_workload_goodput_bps", {"kind": "all", "quantile": "50"}
        ) > 0.0
        assert registry.value("repro_workload_flows_completed_total") == summary.completed
