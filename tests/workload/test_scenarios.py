"""Tests for the canonical scenario library."""

import pytest

from repro.experiments.runner import Protocol, run_protocol
from repro.net.config import MesherConfig
from repro.phy.link import LinkBudget
from repro.phy.modulation import LoRaParams
from repro.phy.pathloss import LogDistancePathLoss
from repro.topology.graphs import connectivity_graph, graph_stats, hop_distance
from repro.workload.scenarios import (
    SCENARIOS,
    campus,
    demo_line,
    dense_cell,
    diamond,
    get_scenario,
    hidden_terminals,
    sensor_grid,
)

BUDGET = LinkBudget(LogDistancePathLoss())
PARAMS = LoRaParams()
FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)


def stats_of(scenario):
    return graph_stats(connectivity_graph(scenario.positions, BUDGET, PARAMS))


class TestGeometryInvariants:
    """Every scenario's documented radio structure actually holds."""

    def test_demo_line_is_a_chain(self):
        scenario = demo_line(5)
        graph = connectivity_graph(scenario.positions, BUDGET, PARAMS)
        assert set(graph.edges()) == {(0, 1), (1, 2), (2, 3), (3, 4)}

    def test_diamond_has_two_disjoint_paths(self):
        scenario = diamond()
        graph = connectivity_graph(scenario.positions, BUDGET, PARAMS)
        assert graph.has_edge(0, 1) and graph.has_edge(1, 3)
        assert graph.has_edge(0, 2) and graph.has_edge(2, 3)
        assert not graph.has_edge(0, 3)

    def test_dense_cell_is_complete(self):
        scenario = dense_cell(6)
        stats = stats_of(scenario)
        assert stats.edges == 6 * 5 // 2  # complete graph

    def test_sensor_grid_diagonals_out_of_range(self):
        scenario = sensor_grid(3, 3)
        graph = connectivity_graph(scenario.positions, BUDGET, PARAMS)
        assert not graph.has_edge(0, 4)  # corner-centre diagonal: 141 m
        assert graph.has_edge(0, 1)

    def test_campus_connected_but_multihop(self):
        scenario = campus()
        stats = stats_of(scenario)
        assert stats.connected
        assert stats.diameter >= 3

    def test_hidden_terminals_structure(self):
        scenario = hidden_terminals()
        graph = connectivity_graph(scenario.positions, BUDGET, PARAMS)
        assert not graph.has_edge(0, 1)
        assert graph.has_edge(0, 2) and graph.has_edge(1, 2)


class TestFlows:
    def test_flow_indices_in_range(self):
        for name in SCENARIOS:
            scenario = get_scenario(name)
            for flow in scenario.flows:
                assert 0 <= flow.src_index < scenario.n_nodes
                assert 0 <= flow.dst_index < scenario.n_nodes

    def test_demo_line_flows_are_end_to_end(self):
        scenario = demo_line(4)
        pairs = {(f.src_index, f.dst_index) for f in scenario.flows}
        assert pairs == {(0, 3), (3, 0)}


class TestRegistry:
    def test_all_registered_scenarios_build(self):
        for name in SCENARIOS:
            scenario = get_scenario(name)
            assert scenario.n_nodes >= 3
            assert scenario.description

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="available"):
            get_scenario("nope")

    def test_kwargs_forwarded(self):
        assert get_scenario("demo_line", n=6).n_nodes == 6


class TestRunnable:
    def test_scenario_feeds_the_harness(self):
        scenario = diamond()
        result = run_protocol(
            Protocol.MESH,
            list(scenario.positions),
            list(scenario.flows),
            duration_s=600.0,
            seed=1,
            config=FAST,
        )
        assert result.pdr > 0.9
