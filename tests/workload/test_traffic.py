"""Tests for traffic generators."""

import random

import pytest

from repro.workload.probes import parse_probe
from repro.workload.traffic import PeriodicSender, PoissonSender


class Collector:
    """Captures send() calls and listener reports."""

    def __init__(self, accept=True):
        self.sent_payloads = []
        self.reports = []
        self.accept = accept

    def send(self, dst, payload):
        self.sent_payloads.append((dst, payload))
        return self.accept

    def sent(self, src, dst, seq, time, size):
        self.reports.append((src, dst, seq, time, size))


class TestPeriodicSender:
    def test_steady_rate(self, sim):
        c = Collector()
        PeriodicSender(
            sim, 1, 2, c.send, period_s=10.0, jitter_fraction=0.0, start_delay_s=5.0
        )
        sim.run(until=100.0)
        assert len(c.sent_payloads) == 10  # t = 5, 15, ..., 95

    def test_payloads_are_valid_probes_with_increasing_seq(self, sim):
        c = Collector()
        PeriodicSender(sim, 1, 2, c.send, period_s=10.0, start_delay_s=0.0, jitter_fraction=0.0)
        sim.run(until=35.0)
        seqs = [parse_probe(p).seq for _, p in c.sent_payloads]
        assert seqs == [0, 1, 2, 3]

    def test_listener_reports_every_send(self, sim):
        c = Collector()
        PeriodicSender(
            sim, 1, 2, c.send, period_s=10.0, listener=c, start_delay_s=0.0, jitter_fraction=0.0
        )
        sim.run(until=25.0)
        assert len(c.reports) == 3
        assert c.reports[0][:3] == (1, 2, 0)

    def test_stop_halts_generation(self, sim):
        c = Collector()
        sender = PeriodicSender(sim, 1, 2, c.send, period_s=10.0, start_delay_s=0.0)
        sim.run(until=15.0)
        sender.stop()
        sim.run(until=200.0)
        assert sender.sent_count == 2

    def test_max_packets_cap(self, sim):
        c = Collector()
        sender = PeriodicSender(
            sim, 1, 2, c.send, period_s=1.0, start_delay_s=0.0, max_packets=5
        )
        sim.run(until=100.0)
        assert sender.sent_count == 5

    def test_refused_sends_counted(self, sim):
        c = Collector(accept=False)
        sender = PeriodicSender(sim, 1, 2, c.send, period_s=10.0, start_delay_s=0.0)
        sim.run(until=35.0)
        assert sender.refused_count == sender.sent_count == 4

    def test_payload_size_respected(self, sim):
        c = Collector()
        PeriodicSender(sim, 1, 2, c.send, period_s=10.0, payload_size=48, start_delay_s=0.0)
        sim.run(until=5.0)
        assert len(c.sent_payloads[0][1]) == 48

    def test_invalid_period_rejected(self, sim):
        with pytest.raises(ValueError):
            PeriodicSender(sim, 1, 2, lambda d, p: True, period_s=0.0)

    def test_too_small_payload_rejected(self, sim):
        with pytest.raises(ValueError):
            PeriodicSender(sim, 1, 2, lambda d, p: True, period_s=1.0, payload_size=2)


class TestPoissonSender:
    def test_mean_rate_approximates_target(self, sim):
        c = Collector()
        PoissonSender(sim, 1, 2, c.send, mean_interval_s=10.0, rng=random.Random(7))
        sim.run(until=10_000.0)
        # ~1000 expected; Poisson sd ~32, allow generous bounds.
        assert 850 <= len(c.sent_payloads) <= 1150

    def test_intervals_vary(self, sim):
        times = []
        PoissonSender(
            sim, 1, 2, lambda d, p: times.append(sim.now) or True,
            mean_interval_s=5.0, rng=random.Random(1),
        )
        sim.run(until=200.0)
        gaps = {round(b - a, 6) for a, b in zip(times, times[1:])}
        assert len(gaps) > 1

    def test_stop_halts(self, sim):
        c = Collector()
        sender = PoissonSender(sim, 1, 2, c.send, mean_interval_s=1.0, rng=random.Random(2))
        sim.run(until=10.0)
        sender.stop()
        count = sender.sent_count
        sim.run(until=100.0)
        assert sender.sent_count == count

    def test_invalid_interval_rejected(self, sim):
        with pytest.raises(ValueError):
            PoissonSender(sim, 1, 2, lambda d, p: True, mean_interval_s=0.0, rng=random.Random(0))
