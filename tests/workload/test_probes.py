"""Tests for probe payload encoding."""

import pytest

from repro.workload.probes import PROBE_OVERHEAD, is_probe, make_probe, parse_probe


class TestProbes:
    def test_roundtrip(self):
        payload = make_probe(0x0A0B, 17, 123.456)
        probe = parse_probe(payload)
        assert probe.src == 0x0A0B
        assert probe.seq == 17
        assert probe.sent_at == 123.456
        assert probe.size == PROBE_OVERHEAD

    def test_padding_to_size(self):
        payload = make_probe(1, 0, 0.0, size=64)
        assert len(payload) == 64
        assert parse_probe(payload).size == 64

    def test_too_small_size_rejected(self):
        with pytest.raises(ValueError):
            make_probe(1, 0, 0.0, size=PROBE_OVERHEAD - 1)

    def test_non_probe_rejected(self):
        with pytest.raises(ValueError):
            parse_probe(b"just some bytes that are long enough")

    def test_is_probe(self):
        assert is_probe(make_probe(1, 2, 3.0))
        assert not is_probe(b"nope")
        assert not is_probe(b"")

    def test_timestamp_precision(self):
        # Double precision: microsecond-scale latencies survive.
        payload = make_probe(1, 0, 1234.000001)
        assert parse_probe(payload).sent_at == 1234.000001

    def test_large_seq_and_src(self):
        probe = parse_probe(make_probe(0xFFFE, 2**31, 0.0))
        assert probe.seq == 2**31
        assert probe.src == 0xFFFE
