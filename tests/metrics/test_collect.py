"""Tests for flow recording and overhead summaries."""

import pytest

from repro.metrics.collect import FlowRecorder, attach_recorder, overhead_summary
from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.net.mesher import AppMessage
from repro.topology.placement import line_positions
from repro.workload.probes import make_probe

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)


def delivery(src, seq, sent_at, received_at, *, size=24):
    return AppMessage(
        src=src, payload=make_probe(src, seq, sent_at, size=size), received_at=received_at, reliable=False
    )


class TestFlowRecorder:
    def test_pdr_counts_matched_deliveries(self):
        r = FlowRecorder()
        for seq in range(4):
            r.sent(1, 2, seq, float(seq), 24)
        r.delivered(2, delivery(1, 0, 0.0, 0.5))
        r.delivered(2, delivery(1, 2, 2.0, 2.5))
        flow = r.flow(1, 2)
        assert flow.sent == 4
        assert flow.delivered == 2
        assert flow.pdr == 0.5

    def test_latency_computed_from_probe_timestamp(self):
        r = FlowRecorder()
        r.sent(1, 2, 0, 10.0, 24)
        r.delivered(2, delivery(1, 0, 10.0, 11.25))
        assert r.flow(1, 2).latency.mean == pytest.approx(1.25)

    def test_duplicates_counted_once(self):
        r = FlowRecorder()
        r.sent(1, 2, 0, 0.0, 24)
        r.delivered(2, delivery(1, 0, 0.0, 1.0))
        r.delivered(2, delivery(1, 0, 0.0, 2.0))
        flow = r.flow(1, 2)
        assert flow.delivered == 1
        assert flow.duplicates == 1

    def test_non_probe_messages_tracked_separately(self):
        r = FlowRecorder()
        r.delivered(2, AppMessage(src=1, payload=b"hello", received_at=0.0, reliable=False))
        assert r.non_probe_messages == 1
        assert r.total_delivered() == 0

    def test_aggregate_over_flows(self):
        r = FlowRecorder()
        r.sent(1, 2, 0, 0.0, 24)
        r.sent(3, 2, 0, 0.0, 24)
        r.delivered(2, delivery(1, 0, 0.0, 1.0))
        assert r.aggregate_pdr() == 0.5
        assert r.total_sent() == 2

    def test_zero_sent_pdr_is_zero(self):
        assert FlowRecorder().aggregate_pdr() == 0.0

    def test_flows_listing(self):
        r = FlowRecorder()
        r.sent(1, 2, 0, 0.0, 24)
        r.sent(1, 3, 0, 0.0, 24)
        assert [(f.src, f.dst) for f in r.flows()] == [(1, 2), (1, 3)]

    def test_all_latencies_flattened(self):
        r = FlowRecorder()
        r.sent(1, 2, 0, 0.0, 24)
        r.sent(3, 2, 0, 5.0, 24)
        r.delivered(2, delivery(1, 0, 0.0, 1.0))
        r.delivered(2, delivery(3, 0, 5.0, 7.0))
        assert sorted(r.all_latencies()) == [1.0, 2.0]


class TestAttachRecorder:
    def test_hook_preserves_existing_callback(self):
        net = MeshNetwork.from_positions(line_positions(2, spacing_m=80.0), config=FAST)
        net.run_until_converged(timeout_s=600.0)
        a, b = net.nodes
        seen = []
        b.on_message = seen.append
        recorder = FlowRecorder()
        attach_recorder(recorder, b)
        recorder.sent(a.address, b.address, 0, net.sim.now, 24)
        a.send_datagram(b.address, make_probe(a.address, 0, net.sim.now))
        net.run(for_s=30.0)
        assert len(seen) == 1  # original callback still fires
        assert recorder.total_delivered() == 1


class TestOverheadSummary:
    def test_summary_over_live_network(self):
        net = MeshNetwork.from_positions(line_positions(2, spacing_m=80.0), config=FAST)
        net.run(for_s=300.0)
        summary = overhead_summary(net.nodes, now=net.sim.now)
        assert summary.frames_sent == net.total_frames_sent()
        assert summary.airtime_s == pytest.approx(net.total_airtime_s())
        assert 0 <= summary.duty_cycle_peak <= 1

    def test_airtime_per_delivered_byte_inf_when_nothing_delivered(self):
        net = MeshNetwork.from_positions(line_positions(2, spacing_m=80.0), config=FAST)
        net.run(for_s=300.0)
        summary = overhead_summary(net.nodes, FlowRecorder(), now=net.sim.now)
        assert summary.airtime_per_delivered_byte_ms == float("inf")


class TestDeliveredBytes:
    def test_counts_only_matched_deliveries(self):
        r = FlowRecorder()
        r.sent(1, 2, seq=0, time=0.0, size=24)
        r.sent(1, 2, seq=1, time=1.0, size=40)
        r.sent(1, 3, seq=0, time=2.0, size=100)
        r.delivered(2, delivery(1, 0, 0.0, 0.5))
        assert r.delivered_bytes() == 24

    def test_zero_when_nothing_delivered(self):
        r = FlowRecorder()
        r.sent(1, 2, seq=0, time=0.0, size=24)
        assert r.delivered_bytes() == 0
