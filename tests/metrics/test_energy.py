"""Tests for the energy model."""

import pytest

from repro.metrics.energy import EnergyModel, TTGO_LORA32, TTGO_LORA32_20DBM
from repro.radio.states import RadioState


class TestEnergyModel:
    def test_charge_known_value(self):
        # 1 hour of continuous RX at 11.5 mA = 11.5 mAh.
        times = {RadioState.RX: 3600.0}
        assert TTGO_LORA32.charge_mah(times) == pytest.approx(11.5)

    def test_energy_joules(self):
        # 10 s TX at 44 mA, 3.3 V -> 3.3 * 0.044 * 10 = 1.452 J
        times = {RadioState.TX: 10.0}
        assert TTGO_LORA32.energy_j(times) == pytest.approx(1.452)

    def test_tx_dominates_sleep(self):
        tx = TTGO_LORA32.energy_j({RadioState.TX: 1.0})
        sleep = TTGO_LORA32.energy_j({RadioState.SLEEP: 1.0})
        assert tx > 10_000 * sleep

    def test_battery_life_projection(self):
        # Continuous RX from a 1000 mAh battery: 1000/11.5 h = ~3.6 days.
        times = {RadioState.RX: 3600.0}
        days = TTGO_LORA32.battery_life_days(times, elapsed_s=3600.0, battery_mah=1000.0)
        assert days == pytest.approx(1000.0 / 11.5 / 24.0, rel=1e-6)

    def test_battery_life_infinite_when_idle(self):
        days = TTGO_LORA32.battery_life_days({}, elapsed_s=100.0, battery_mah=1000.0)
        assert days == float("inf")

    def test_battery_life_needs_elapsed(self):
        with pytest.raises(ValueError):
            TTGO_LORA32.battery_life_days({RadioState.RX: 1.0}, elapsed_s=0.0, battery_mah=1.0)

    def test_20dbm_profile_draws_more_tx(self):
        assert TTGO_LORA32_20DBM.tx_ma > TTGO_LORA32.tx_ma

    def test_radio_energy_integration(self, sim, medium, params, radio_pair):
        a, _ = radio_pair
        a.transmit(bytes(50))
        sim.run(until=100.0)
        energy = TTGO_LORA32.radio_energy_j(a)
        assert energy > 0
        # RX residency dominates a mostly-idle radio's energy.
        rx_energy = TTGO_LORA32.energy_j({RadioState.RX: 100.0})
        assert energy == pytest.approx(rx_energy, rel=0.05)
