"""Tests for network health reports."""

import pytest

from repro.metrics.health import network_health
from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.topology.placement import line_positions

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)


@pytest.fixture
def running_net():
    net = MeshNetwork.from_positions(line_positions(3), config=FAST, seed=2)
    net.run_until_converged(timeout_s=1800.0)
    a, c = net.nodes[0], net.nodes[-1]
    a.send_datagram(c.address, b"traffic")
    net.run(for_s=60.0)
    return net


class TestNetworkHealth:
    def test_snapshot_fields(self, running_net):
        health = network_health(running_net)
        assert health.coverage == 1.0
        assert health.time_s == running_net.sim.now
        assert len(health.nodes) == 3
        assert health.total_frames == running_net.total_frames_sent()

    def test_per_node_counters_consistent(self, running_net):
        health = network_health(running_net)
        by_name = {n.name: n for n in health.nodes}
        middle = by_name["0002"]
        assert middle.forwarded == 1
        assert middle.routes == 2
        assert middle.neighbours == 2
        end = by_name["0003"]
        assert end.delivered == 1

    def test_energy_positive_and_ordered(self, running_net):
        health = network_health(running_net)
        assert all(n.energy_j > 0 for n in health.nodes)

    def test_worst_duty_is_max(self, running_net):
        health = network_health(running_net)
        assert health.worst_duty == max(n.duty_utilisation for n in health.nodes)

    def test_format_renders(self, running_net):
        text = network_health(running_net).format()
        assert "Network health" in text
        assert "coverage 100.0%" in text
        assert text.count("000") >= 3

    def test_empty_network(self):
        net = MeshNetwork.from_positions([(0.0, 0.0)], config=FAST)
        health = network_health(net)
        assert health.worst_duty == 0.0
        assert len(health.nodes) == 1


class TestHealthFromRegistry:
    def test_same_answer_as_direct_reads(self, running_net):
        from repro.metrics.health import health_from_registry
        from repro.obs.instrument import instrument_network
        from repro.obs.registry import MetricsRegistry

        registry = instrument_network(MetricsRegistry(), running_net)
        health = health_from_registry(
            registry,
            time_s=running_net.sim.now,
            node_order=[n.name for n in running_net.nodes],
        )
        direct = network_health(running_net)
        assert health.coverage == direct.coverage
        assert health.total_frames == direct.total_frames
        assert [n.name for n in health.nodes] == [n.name for n in direct.nodes]
        assert [n.frames_sent for n in health.nodes] == [
            n.frames_sent for n in direct.nodes
        ]

    def test_registry_snapshot_is_prometheus_exportable(self, running_net):
        from repro.obs.export import to_prometheus
        from repro.obs.instrument import instrument_network
        from repro.obs.registry import MetricsRegistry

        registry = instrument_network(MetricsRegistry(), running_net)
        text = to_prometheus(registry.snapshot())
        assert "# TYPE repro_network_coverage gauge" in text
        assert "repro_node_frames_sent_total" in text
