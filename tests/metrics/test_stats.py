"""Tests for statistics helpers."""

import pytest

from repro.metrics.stats import (
    confidence_interval_95,
    mean,
    percentile,
    stdev,
    summary_stats,
)


class TestMean:
    def test_basic(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestStdev:
    def test_known_value(self):
        assert stdev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(2.138, abs=1e-3)

    def test_single_value_zero(self):
        assert stdev([5.0]) == 0.0

    def test_constant_sample_zero(self):
        assert stdev([3.0, 3.0, 3.0]) == 0.0


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_p95(self):
        values = list(map(float, range(1, 101)))
        assert percentile(values, 95) == pytest.approx(95.05)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_single_value(self):
        assert percentile([7.0], 95) == 7.0


class TestSummary:
    def test_fields(self):
        s = summary_stats([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.p50 == 2.5

    def test_format(self):
        text = summary_stats([1.0, 2.0]).format(unit="s")
        assert "n=2" in text
        assert "mean=1.500 s" in text

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summary_stats([])


class TestConfidenceInterval:
    def test_zero_for_small_samples(self):
        assert confidence_interval_95([1.0]) == 0.0

    def test_shrinks_with_sample_size(self):
        wide = confidence_interval_95([1.0, 5.0, 3.0])
        narrow = confidence_interval_95([1.0, 5.0, 3.0] * 10)
        assert narrow < wide
