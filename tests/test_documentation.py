"""Documentation consistency: what the docs promise must exist.

These tests parse DESIGN.md / README.md / EXPERIMENTS.md and verify that
every referenced bench target, example script, and public import path is
real — so documentation drift fails CI instead of confusing users.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (REPO / name).read_text()


class TestDesignDocument:
    def test_every_bench_target_exists(self):
        targets = re.findall(r"`(benchmarks/bench_[a-z0-9_]+\.py)`", read("DESIGN.md"))
        assert targets, "DESIGN.md lists no bench targets?"
        for target in targets:
            assert (REPO / target).exists(), f"DESIGN.md references missing {target}"

    def test_every_bench_file_is_indexed(self):
        design = read("DESIGN.md")
        for path in sorted((REPO / "benchmarks").glob("bench_*.py")):
            if path.name.startswith("bench_perf"):
                continue  # substrate perf benches are not paper artifacts
            assert path.name in design, f"{path.name} missing from DESIGN.md index"

    def test_inventory_modules_exist(self):
        design = read("DESIGN.md")
        for module in re.findall(r"`repro\.([a-z_.]+)`", design):
            parts = module.split(".")
            candidate = REPO / "src" / "repro" / Path(*parts)
            assert (
                candidate.with_suffix(".py").exists() or (candidate / "__init__.py").exists()
            ), f"DESIGN.md references repro.{module} which does not exist"


class TestReadme:
    def test_listed_examples_exist(self):
        readme = read("README.md")
        for name in re.findall(r"`([a-z_]+\.py)`", readme):
            assert (REPO / "examples" / name).exists(), f"README lists missing example {name}"

    def test_quickstart_imports_resolve(self):
        import repro
        from repro import MeshNetwork, MesherConfig  # noqa: F401
        from repro.topology import line_positions  # noqa: F401

        assert hasattr(repro, "__version__")


class TestExperimentsDocument:
    def test_every_experiment_section_has_a_bench(self):
        experiments = read("EXPERIMENTS.md")
        ids = re.findall(r"^#+ (E\d+|F\d+|A\d+) ", experiments, flags=re.MULTILINE)
        assert len(set(ids)) >= 15, f"only {sorted(set(ids))} documented"
        benches = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
        for exp_id in set(ids):
            prefix = f"bench_{exp_id.lower()}_"
            assert any(b.startswith(prefix) for b in benches), (
                f"{exp_id} documented in EXPERIMENTS.md but no {prefix}*.py bench"
            )

    def test_benches_referenced_by_backticks_exist(self):
        experiments = read("EXPERIMENTS.md")
        for name in re.findall(r"`(bench_[a-z0-9_]+\.py)`", experiments):
            assert (REPO / "benchmarks" / name).exists(), f"missing {name}"


class TestExamplesReadme:
    def test_examples_readme_covers_every_script(self):
        listing = read("examples/README.md")
        for path in sorted((REPO / "examples").glob("*.py")):
            assert path.name in listing, f"{path.name} missing from examples/README.md"
