"""Tests for the trace recorder."""

import pytest

from repro.trace.events import EventKind, TraceRecorder


class TestRecording:
    def test_records_and_counts(self):
        trace = TraceRecorder()
        trace.record(1.0, 0x01, EventKind.DATA_DELIVERED, bytes=10)
        trace.record(2.0, 0x02, EventKind.DATA_DELIVERED, bytes=20)
        assert len(trace) == 2
        assert trace.count(EventKind.DATA_DELIVERED) == 2
        assert trace.count(EventKind.DATA_FORWARDED) == 0

    def test_disabled_recorder_still_counts(self):
        trace = TraceRecorder(enabled=False)
        trace.record(1.0, 0x01, EventKind.HELLO_SENT)
        assert len(trace) == 0
        assert trace.count(EventKind.HELLO_SENT) == 1

    def test_capacity_bounds_storage_not_counts(self):
        trace = TraceRecorder(capacity=2)
        for i in range(5):
            trace.record(float(i), 0x01, EventKind.FRAME_SENT)
        assert len(trace) == 2
        assert trace.count(EventKind.FRAME_SENT) == 5


class TestQueries:
    @pytest.fixture
    def trace(self):
        t = TraceRecorder()
        t.record(1.0, 0x01, EventKind.ROUTE_ADDED, dst=5)
        t.record(2.0, 0x02, EventKind.ROUTE_ADDED, dst=6)
        t.record(3.0, 0x01, EventKind.ROUTE_REMOVED, dst=5)
        return t

    def test_filter_by_kind(self, trace):
        assert len(trace.events(EventKind.ROUTE_ADDED)) == 2

    def test_filter_by_node(self, trace):
        assert len(trace.events(node=0x01)) == 2

    def test_filter_by_window(self, trace):
        assert len(trace.events(after=1.5, before=2.5)) == 1

    def test_first_with_detail_match(self, trace):
        event = trace.first(EventKind.ROUTE_ADDED, dst=6)
        assert event is not None
        assert event.node == 0x02
        assert trace.first(EventKind.ROUTE_ADDED, dst=99) is None

    def test_clear_keeps_counters(self, trace):
        trace.clear()
        assert len(trace) == 0
        assert trace.count(EventKind.ROUTE_ADDED) == 2


class TestListeners:
    def test_subscriber_sees_live_events(self):
        trace = TraceRecorder()
        seen = []
        trace.subscribe(seen.append)
        trace.record(1.0, 0x01, EventKind.HELLO_SENT)
        assert len(seen) == 1
        assert seen[0].kind is EventKind.HELLO_SENT

    def test_repr_readable(self):
        trace = TraceRecorder()
        trace.record(1.5, 0x0A, EventKind.DATA_NO_ROUTE, dst=3)
        assert "data_no_route" in repr(trace.events()[0])


class TestDropAccounting:
    def test_events_dropped_counter(self):
        trace = TraceRecorder(capacity=2)
        for i in range(5):
            trace.record(float(i), 0x01, EventKind.FRAME_SENT)
        assert trace.events_dropped == 3
        assert "dropped=3" in repr(trace)

    def test_repr_without_drops(self):
        trace = TraceRecorder()
        trace.record(1.0, 0x01, EventKind.HELLO_SENT)
        text = repr(trace)
        assert "1 event" in text
        assert "dropped" not in text

    def test_listeners_fire_even_for_dropped_events(self):
        trace = TraceRecorder(capacity=1)
        seen = []
        trace.subscribe(seen.append)
        trace.record(1.0, 0x01, EventKind.FRAME_SENT)
        trace.record(2.0, 0x01, EventKind.FRAME_SENT)
        assert len(trace) == 1
        assert len(seen) == 2  # delivery is not gated by storage capacity

    def test_disabled_recorder_skips_listeners(self):
        trace = TraceRecorder(enabled=False)
        seen = []
        trace.subscribe(seen.append)
        trace.record(1.0, 0x01, EventKind.HELLO_SENT)
        assert seen == []


class TestExportJsonl:
    def test_export_writes_one_line_per_event(self, tmp_path):
        import json

        trace = TraceRecorder()
        trace.record(1.0, 0x01, EventKind.ROUTE_ADDED, dst=5, metric=2)
        trace.record(2.5, 0x02, EventKind.DATA_DELIVERED, bytes=24)
        path = trace.export_jsonl(tmp_path / "events.jsonl")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 2
        assert records[0] == {
            "time": 1.0, "node": 1, "kind": "route_added",
            "detail": {"dst": 5, "metric": 2},
        }
        assert records[1]["kind"] == "data_delivered"
