"""Shared fixtures for the test suite."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import pytest

from repro.medium.channel import Medium
from repro.phy.link import LinkBudget
from repro.phy.modulation import LoRaParams
from repro.phy.pathloss import LogDistancePathLoss
from repro.radio.driver import Radio
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry

Position = Tuple[float, float]


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulation kernel."""
    return Simulator()


@pytest.fixture
def rngs() -> RngRegistry:
    """Deterministic RNG registry with a fixed master seed."""
    return RngRegistry(1234)


@pytest.fixture
def params() -> LoRaParams:
    """Default SF7/BW125 modulation parameters."""
    return LoRaParams()


@pytest.fixture
def medium(sim: Simulator) -> Medium:
    """A medium over the default log-distance channel (SF7 range ~135 m)."""
    return Medium(sim, LinkBudget(LogDistancePathLoss()))


def build_radios(
    sim: Simulator,
    medium: Medium,
    positions: Sequence[Position],
    params: LoRaParams,
    *,
    listen: bool = True,
) -> List[Radio]:
    """Radios with addresses 1..n at the given positions."""
    radios = []
    for i, position in enumerate(positions):
        radio = Radio(sim, medium, i + 1, position, params)
        if listen:
            radio.start_receive()
        radios.append(radio)
    return radios


@pytest.fixture
def radio_pair(sim: Simulator, medium: Medium, params: LoRaParams) -> List[Radio]:
    """Two radios 50 m apart, both listening (well within range)."""
    return build_radios(sim, medium, [(0.0, 0.0), (50.0, 0.0)], params)
