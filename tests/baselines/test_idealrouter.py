"""Tests for the oracle routing baseline."""

import pytest

from repro.baselines.idealrouter import OracleNode, build_oracle_network
from repro.topology.placement import line_positions


class TestOracle:
    def test_tables_prefilled_with_shortest_paths(self):
        net = build_oracle_network(line_positions(4))
        first = net.nodes[0]
        assert first.table.metric(net.addresses[1]) == 1
        assert first.table.metric(net.addresses[2]) == 2
        assert first.table.metric(net.addresses[3]) == 3
        assert first.table.next_hop(net.addresses[3]) == net.addresses[1]

    def test_no_hellos_ever_sent(self):
        net = build_oracle_network(line_positions(3))
        net.run(for_s=3600.0)
        assert all(n.hello.hellos_sent == 0 for n in net.nodes)
        # And therefore zero frames in an idle network.
        assert net.total_frames_sent() == 0

    def test_delivery_works_immediately(self):
        net = build_oracle_network(line_positions(4))
        a, d = net.nodes[0], net.nodes[-1]
        a.send_datagram(d.address, b"instant route")
        net.run(for_s=60.0)
        assert d.receive().payload == b"instant route"

    def test_routes_never_expire(self):
        net = build_oracle_network(line_positions(3))
        net.run(for_s=7200.0)  # far past the default route timeout
        assert net.nodes[0].table.has_route(net.addresses[-1])

    def test_partition_leaves_no_route(self):
        # Two clusters 5 km apart: even the oracle cannot cross.
        positions = [(0.0, 0.0), (80.0, 0.0), (5000.0, 0.0), (5080.0, 0.0)]
        net = build_oracle_network(positions)
        assert not net.nodes[0].table.has_route(net.addresses[2])
        assert net.nodes[0].table.has_route(net.addresses[1])

    def test_oracle_node_start_skips_hello(self, sim, medium):
        node = OracleNode(sim, medium, 0x0001, (0.0, 0.0))
        node.start()
        assert node.started
        assert not node.hello.running
