"""Tests for the LoRaWAN-style star baseline."""

import pytest

from repro.baselines.star import StarNetwork
from repro.topology.placement import line_positions


class TestStarTopology:
    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            StarNetwork([(0.0, 0.0)])

    def test_gateway_index_validated(self):
        with pytest.raises(ValueError):
            StarNetwork(line_positions(3), gateway_index=5)

    def test_gateway_accessor(self):
        net = StarNetwork(line_positions(3), gateway_index=1)
        assert net.gateway.address == net.addresses[1]
        assert len(net.end_nodes()) == 2


class TestStarDelivery:
    def test_uplink_to_gateway(self):
        net = StarNetwork([(0.0, 0.0), (80.0, 0.0)], gateway_index=0)
        end = net.end_nodes()[0]
        end.send(net.gateway_address, b"report")
        net.run(for_s=10.0)
        message = net.gateway.receive()
        assert message is not None
        assert message.payload == b"report"

    def test_node_to_node_via_gateway_relay(self):
        # Triangle: both ends in range of the central gateway.
        net = StarNetwork([(0.0, 0.0), (100.0, 0.0), (200.0, 0.0)], gateway_index=1)
        a, b = net.end_nodes()
        a.send(b.address, b"two hops")
        net.run(for_s=10.0)
        message = b.receive()
        assert message is not None
        assert message.payload == b"two hops"
        assert message.src == a.address
        assert net.gateway.downlinks_relayed == 1

    def test_out_of_gateway_range_is_unreachable(self):
        # The motivating failure: 240 m from the gateway at SF7 is silence.
        net = StarNetwork([(0.0, 0.0), (120.0, 0.0), (360.0, 0.0)], gateway_index=1)
        a, far = net.end_nodes()
        far.send(a.address, b"lost")
        net.run(for_s=30.0)
        assert a.receive() is None
        assert net.gateway.uplinks_received == 0

    def test_even_neighbours_pay_two_hops(self):
        # Two end nodes right next to each other still route via gateway.
        net = StarNetwork([(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)], gateway_index=0)
        a, b = net.end_nodes()
        a.send(b.address, b"detour")
        net.run(for_s=10.0)
        assert b.receive() is not None
        assert net.total_frames_sent() == 2  # uplink + downlink

    def test_gateway_broadcast_delivery(self):
        from repro.net.addresses import BROADCAST_ADDRESS

        net = StarNetwork([(0.0, 0.0), (80.0, 0.0)], gateway_index=0)
        end = net.end_nodes()[0]
        end.send(BROADCAST_ADDRESS, b"to gw")
        net.run(for_s=10.0)
        assert net.gateway.receive() is not None
