"""Tests for the AODV-style reactive routing baseline."""

import pytest

from repro.baselines.aodv import (
    AodvFrame,
    AodvNetwork,
    AodvNode,
    TYPE_DATA,
    decode_frame,
    encode_frame,
)
from repro.topology.placement import grid_positions, line_positions


class TestFraming:
    def test_roundtrip(self):
        frame = encode_frame(0x0001, 0x0002, TYPE_DATA, 0x0003, b"\x01\x00payload")
        decoded = decode_frame(frame)
        assert decoded.dst == 0x0001
        assert decoded.src == 0x0002
        assert decoded.sender == 0x0003
        assert decoded.body == b"\x01\x00payload"

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            decode_frame(b"\x00\x01")
        with pytest.raises(ValueError):
            decode_frame(encode_frame(1, 2, 0x7F, 3, b""))


class TestDiscoveryAndDelivery:
    def test_on_demand_multihop_delivery(self):
        net = AodvNetwork(line_positions(4), seed=1)
        a, d = net.addresses[0], net.addresses[-1]
        assert net.node(a).send(d, b"on demand")
        net.run(for_s=120.0)
        message = net.node(d).receive()
        assert message is not None
        assert message.payload == b"on demand"
        assert message.src == a

    def test_no_traffic_no_frames(self):
        # The whole point of reactive routing: an idle network is silent.
        net = AodvNetwork(line_positions(5), seed=2)
        net.run(for_s=3600.0)
        assert net.total_frames_sent() == 0

    def test_discovery_builds_routes_along_path(self):
        net = AodvNetwork(line_positions(4), seed=3)
        a, d = net.addresses[0], net.addresses[-1]
        net.node(a).send(d, b"x")
        net.run(for_s=120.0)
        assert net.node(a).has_route(d)
        # Relays learned both directions.
        middle = net.node(net.addresses[1])
        assert middle.has_route(a)
        assert middle.has_route(d)

    def test_second_packet_skips_discovery(self):
        net = AodvNetwork(line_positions(4), seed=4)
        a, d = net.addresses[0], net.addresses[-1]
        net.node(a).send(d, b"first")
        net.run(for_s=120.0)
        control_after_first = net.total_control_frames()
        net.node(a).send(d, b"second")
        net.run(for_s=120.0)
        assert net.total_control_frames() == control_after_first
        # Both delivered.
        received = []
        while (m := net.node(d).receive()) is not None:
            received.append(m.payload)
        assert received == [b"first", b"second"]

    def test_reverse_traffic_reuses_reverse_routes(self):
        net = AodvNetwork(line_positions(4), seed=5)
        a, d = net.addresses[0], net.addresses[-1]
        net.node(a).send(d, b"ping")
        net.run(for_s=120.0)
        control = net.total_control_frames()
        net.node(d).send(a, b"pong")
        net.run(for_s=120.0)
        assert net.total_control_frames() == control  # no new RREQ flood
        assert net.node(a).receive().payload == b"pong"

    def test_grid_discovery(self):
        net = AodvNetwork(grid_positions(3, 3, spacing_m=100.0), seed=6)
        corners = (net.addresses[0], net.addresses[8])
        net.node(corners[0]).send(corners[1], b"across the grid")
        net.run(for_s=180.0)
        assert net.node(corners[1]).receive() is not None


class TestFailureModes:
    def test_unreachable_target_fails_discovery(self):
        net = AodvNetwork([(0.0, 0.0), (80.0, 0.0), (5000.0, 0.0)], seed=7)
        a, far = net.addresses[0], net.addresses[2]
        node = net.node(a)
        assert node.send(far, b"void")
        net.run(for_s=300.0)
        assert node.stats.discovery_failures == 1
        assert node.stats.buffered_drops >= 1
        assert not node.has_route(far)

    def test_buffer_capacity_enforced(self):
        net = AodvNetwork([(0.0, 0.0), (5000.0, 0.0)], seed=8)
        node = net.node(net.addresses[0])
        target = net.addresses[1]
        results = [node.send(target, bytes([i])) for i in range(12)]
        assert not all(results)  # buffer filled during hopeless discovery

    def test_routes_expire_without_use(self):
        net = AodvNetwork(line_positions(3), seed=9)
        a, c = net.addresses[0], net.addresses[2]
        net.node(a).send(c, b"x")
        net.run(for_s=60.0)
        assert net.node(a).has_route(c)
        net.run(for_s=AodvNode.ROUTE_LIFETIME_S + 60.0)
        assert not net.node(a).has_route(c)

    def test_rediscovery_after_expiry(self):
        net = AodvNetwork(line_positions(3), seed=10)
        a, c = net.addresses[0], net.addresses[2]
        net.node(a).send(c, b"one")
        net.run(for_s=AodvNode.ROUTE_LIFETIME_S + 120.0)
        control = net.total_control_frames()
        net.node(a).send(c, b"two")
        net.run(for_s=120.0)
        assert net.total_control_frames() > control  # a fresh RREQ flood
        received = []
        while (m := net.node(c).receive()) is not None:
            received.append(m.payload)
        assert b"two" in received

    def test_dead_relay_breaks_route_until_rediscovery(self):
        net = AodvNetwork(line_positions(3), seed=11)
        a, b, c = net.addresses
        net.node(a).send(c, b"one")
        net.run(for_s=60.0)
        assert net.node(c).receive() is not None
        net.node(b).radio.power_off()
        # The stale route still points through the corpse: loss.
        net.node(a).send(c, b"two")
        net.run(for_s=120.0)
        assert net.node(c).receive() is None


class TestRreqSuppression:
    def test_duplicate_rreqs_not_relayed(self):
        # Dense cell: every node hears the RREQ directly and each relays
        # at most once.
        from repro.topology.placement import ring_positions

        net = AodvNetwork(ring_positions(6, radius_m=50.0), seed=12)
        a, d = net.addresses[0], net.addresses[3]
        net.node(a).send(d, b"x")
        net.run(for_s=120.0)
        for address in net.addresses:
            node = net.node(address)
            assert node.stats.rreqs_relayed <= 1
