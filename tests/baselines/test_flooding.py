"""Tests for the controlled-flooding baseline."""

import pytest

from repro.baselines.flooding import (
    FloodFrame,
    FloodingNetwork,
    decode_flood,
    encode_flood,
)
from repro.net.addresses import BROADCAST_ADDRESS
from repro.topology.placement import line_positions


class TestFloodFraming:
    def test_roundtrip(self):
        frame = FloodFrame(dst=1, src=2, seq=300, ttl=5, payload=b"flood")
        assert decode_flood(encode_flood(frame)) == frame

    def test_oversized_payload_rejected(self):
        with pytest.raises(ValueError):
            encode_flood(FloodFrame(dst=1, src=2, seq=0, ttl=1, payload=bytes(250)))

    def test_non_flood_frame_rejected(self):
        with pytest.raises(ValueError):
            decode_flood(b"\x00" * 20)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            decode_flood(b"\x01\x02")


class TestFloodingDelivery:
    def test_multihop_unicast_delivery(self):
        net = FloodingNetwork(line_positions(4), seed=1)
        src, dst = net.addresses[0], net.addresses[-1]
        net.node(src).send(dst, b"end to end")
        net.run(for_s=30.0)
        message = net.node(dst).receive()
        assert message is not None
        assert message.payload == b"end to end"

    def test_no_routing_state_needed(self):
        # Flooding delivers immediately from cold start (no convergence).
        net = FloodingNetwork(line_positions(3), seed=2)
        net.node(net.addresses[0]).send(net.addresses[-1], b"instant")
        net.run(for_s=10.0)
        assert net.node(net.addresses[-1]).receive() is not None

    def test_broadcast_reaches_everyone(self):
        net = FloodingNetwork(line_positions(4), seed=3)
        net.node(net.addresses[0]).send(BROADCAST_ADDRESS, b"all")
        net.run(for_s=30.0)
        for address in net.addresses[1:]:
            assert net.node(address).receive() is not None

    def test_duplicates_suppressed(self):
        net = FloodingNetwork(line_positions(4), seed=4)
        net.node(net.addresses[0]).send(BROADCAST_ADDRESS, b"x")
        net.run(for_s=30.0)
        # Each node delivers the flood exactly once.
        for address in net.addresses[1:]:
            node = net.node(address)
            assert node.delivered == 1

    def test_ttl_bounds_propagation(self):
        net = FloodingNetwork(line_positions(5), ttl=2, seed=5)
        net.node(net.addresses[0]).send(BROADCAST_ADDRESS, b"short leash")
        net.run(for_s=30.0)
        # TTL 2: source + one relay generation -> nodes 2 away get it,
        # the far end (4 hops) does not.
        assert net.node(net.addresses[1]).delivered == 1
        assert net.node(net.addresses[-1]).delivered == 0

    def test_flooding_costs_more_frames_than_hops(self):
        # At 60 m spacing each node hears two hops away: the shortest path
        # is 2 transmissions, but every intermediate node rebroadcasts.
        net = FloodingNetwork(line_positions(5, spacing_m=60.0), seed=6)
        net.node(net.addresses[0]).send(net.addresses[-1], b"pricey")
        net.run(for_s=30.0)
        assert net.total_frames_sent() > 2

    def test_unicast_target_does_not_rebroadcast(self):
        net = FloodingNetwork(line_positions(3), seed=7)
        mid = net.addresses[1]
        net.node(net.addresses[0]).send(mid, b"stop here")
        net.run(for_s=30.0)
        assert net.node(mid).rebroadcasts == 0

    def test_dedup_cache_eviction(self):
        net = FloodingNetwork(line_positions(2), seed=8)
        node = net.node(net.addresses[0])
        node.DEDUP_CAPACITY = 4
        for i in range(10):
            node.send(net.addresses[1], bytes([i]))
        net.run(for_s=60.0)
        assert len(node._seen) <= 4
