"""Tests for the mesh ping application."""

import pytest

from repro.apps.ping import (
    MIN_SIZE,
    Pinger,
    decode_echo,
    deploy_responders,
    encode_echo,
    install_responder,
)
from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.topology.placement import line_positions

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)


class TestFraming:
    def test_roundtrip(self):
        payload = encode_echo(0x01, 7, 42, 123.5)
        assert decode_echo(payload) == (0x01, 7, 42, 123.5)

    def test_padding(self):
        payload = encode_echo(0x02, 1, 2, 3.0, size=64)
        assert len(payload) == 64
        assert decode_echo(payload)[1] == 1

    def test_undersize_rejected(self):
        with pytest.raises(ValueError):
            encode_echo(0x01, 0, 0, 0.0, size=MIN_SIZE - 1)

    def test_non_ping_ignored(self):
        assert decode_echo(b"not a ping at all....") is None
        assert decode_echo(b"PING\x09" + bytes(12)) is None


@pytest.fixture
def mesh():
    net = MeshNetwork.from_positions(line_positions(4), config=FAST, seed=6)
    net.run_until_converged(timeout_s=3600.0)
    deploy_responders(net.nodes)
    return net


class TestPing:
    def test_multihop_ping_measures_rtt(self, mesh):
        pinger = Pinger(mesh.nodes[0])
        result = pinger.ping(mesh.addresses[-1], count=5, interval_s=20.0)
        mesh.run(for_s=300.0)
        assert result.sent == 5
        assert result.received == 5
        assert result.loss == 0.0
        stats = result.rtt_stats
        assert stats is not None
        # RTT over 3 hops each way: roughly 2x the one-way latency seen
        # in E2 (~0.6 s), plus backoff.
        assert 0.2 < stats.mean < 5.0

    def test_rtt_grows_with_distance(self, mesh):
        pinger = Pinger(mesh.nodes[0])
        near = pinger.ping(mesh.addresses[1], count=3, interval_s=30.0)
        far = pinger.ping(mesh.addresses[3], count=3, interval_s=30.0)
        mesh.run(for_s=400.0)
        assert near.rtt_stats.mean < far.rtt_stats.mean

    def test_unreachable_target_counts_loss(self, mesh):
        pinger = Pinger(mesh.nodes[0])
        result = pinger.ping(0x0EEE, count=3, interval_s=10.0)  # nobody
        mesh.run(for_s=120.0)
        assert result.sent == 3
        assert result.received == 0
        assert result.loss == 1.0
        assert result.rtt_stats is None

    def test_format_summary(self, mesh):
        pinger = Pinger(mesh.nodes[0])
        result = pinger.ping(mesh.addresses[1], count=2, interval_s=15.0)
        mesh.run(for_s=120.0)
        text = result.format()
        assert "2 packets transmitted, 2 received, 0% packet loss" in text
        assert "rtt min/avg/max" in text

    def test_two_pingers_do_not_cross_talk(self, mesh):
        p1 = Pinger(mesh.nodes[0])
        p2 = Pinger(mesh.nodes[1])
        r1 = p1.ping(mesh.addresses[2], count=2, interval_s=20.0)
        r2 = p2.ping(mesh.addresses[2], count=2, interval_s=20.0)
        mesh.run(for_s=200.0)
        assert r1.received == 2
        assert r2.received == 2

    def test_responder_chains_user_callback(self, mesh):
        target = mesh.nodes[1]
        got = []
        # install_responder already ran in the fixture; add a user hook on
        # top and make sure both fire.
        previous = target.on_message
        target.on_message = lambda m: (got.append(m), previous and previous(m))
        pinger = Pinger(mesh.nodes[0])
        result = pinger.ping(target.address, count=1)
        mesh.run(for_s=60.0)
        assert result.received == 1
        assert len(got) == 1
