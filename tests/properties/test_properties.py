"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.net import serialization
from repro.net.packets import (
    AckPacket,
    DataPacket,
    LostPacket,
    NeedAckPacket,
    RoutingEntry,
    RoutingPacket,
    SyncPacket,
    XLDataPacket,
    MAX_CONTROL_PAYLOAD,
    MAX_DATA_PAYLOAD,
    MAX_ROUTING_ENTRIES,
)
from repro.net.queues import SendQueue
from repro.net.reliable import split_payload
from repro.net.routing_table import RoutingTable
from repro.phy.airtime import time_on_air
from repro.phy.modulation import Bandwidth, CodingRate, LoRaParams, SpreadingFactor
from repro.phy.regions import EU868, DutyCycleAccountant
from repro.workload.probes import make_probe, parse_probe

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
addresses = st.integers(min_value=1, max_value=0xFFFF)
unicast = st.integers(min_value=1, max_value=0xFFFD)  # 0xFFFE is "me" below
seq_ids = st.integers(min_value=0, max_value=0xFF)
numbers = st.integers(min_value=0, max_value=0xFFFF)

routing_entries = st.builds(
    RoutingEntry,
    address=addresses,
    metric=st.integers(min_value=0, max_value=255),
    role=st.integers(min_value=0, max_value=255),
)

packets = st.one_of(
    st.builds(
        RoutingPacket,
        src=addresses,
        entries=st.lists(routing_entries, max_size=MAX_ROUTING_ENTRIES).map(tuple),
    ),
    st.builds(
        DataPacket,
        dst=addresses,
        src=addresses,
        via=addresses,
        payload=st.binary(max_size=MAX_DATA_PAYLOAD),
    ),
    st.builds(
        NeedAckPacket,
        dst=addresses, src=addresses, via=addresses, seq_id=seq_ids, number=numbers,
        payload=st.binary(max_size=MAX_CONTROL_PAYLOAD),
    ),
    st.builds(AckPacket, dst=addresses, src=addresses, via=addresses, seq_id=seq_ids, number=numbers),
    st.builds(LostPacket, dst=addresses, src=addresses, via=addresses, seq_id=seq_ids, number=numbers),
    st.builds(
        SyncPacket,
        dst=addresses, src=addresses, via=addresses, seq_id=seq_ids, number=numbers,
        total_bytes=st.integers(min_value=0, max_value=0xFFFFFFFF),
    ),
    st.builds(
        XLDataPacket,
        dst=addresses, src=addresses, via=addresses, seq_id=seq_ids, number=numbers,
        payload=st.binary(max_size=MAX_CONTROL_PAYLOAD),
    ),
)

lora_params = st.builds(
    LoRaParams,
    spreading_factor=st.sampled_from(SpreadingFactor),
    bandwidth=st.sampled_from(Bandwidth),
    coding_rate=st.sampled_from(CodingRate),
    preamble_symbols=st.integers(min_value=6, max_value=20),
    crc_enabled=st.booleans(),
    explicit_header=st.booleans(),
)


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
class TestSerializationProperties:
    @given(packet=packets)
    def test_roundtrip_identity(self, packet):
        assert serialization.decode(serialization.encode(packet)) == packet

    @given(packet=packets)
    def test_encoded_size_is_exact(self, packet):
        assert len(serialization.encode(packet)) == serialization.encoded_size(packet)

    @given(packet=packets)
    def test_frames_fit_phy_limit(self, packet):
        assert len(serialization.encode(packet)) <= 255

    @given(buffer=st.binary(max_size=300))
    def test_decode_never_crashes_on_garbage(self, buffer):
        try:
            packet = serialization.decode(buffer)
        except serialization.DecodeError:
            return
        # Anything that decodes must re-encode to the same bytes.
        assert serialization.encode(packet) == buffer

    @given(packet=packets, index=st.integers(min_value=0), flip=st.integers(1, 255))
    def test_bitflip_decodes_differently_or_fails(self, packet, index, flip):
        frame = bytearray(serialization.encode(packet))
        frame[index % len(frame)] ^= flip
        try:
            decoded = serialization.decode(bytes(frame))
        except serialization.DecodeError:
            return
        assert decoded != packet


# ----------------------------------------------------------------------
# Airtime
# ----------------------------------------------------------------------
class TestAirtimeProperties:
    @given(params=lora_params, size=st.integers(0, 255))
    def test_airtime_positive_and_finite(self, params, size):
        toa = time_on_air(size, params)
        assert 0 < toa < 15.0  # even SF12 CR4/8 255 B is well bounded

    @given(params=lora_params, a=st.integers(0, 254))
    def test_airtime_monotonic_in_payload(self, params, a):
        assert time_on_air(a + 1, params) >= time_on_air(a, params)

    @given(size=st.integers(0, 255), sf_index=st.integers(0, 4))
    def test_airtime_monotonic_in_sf(self, size, sf_index):
        sfs = list(SpreadingFactor)
        lower = LoRaParams(spreading_factor=sfs[sf_index])
        higher = LoRaParams(spreading_factor=sfs[sf_index + 1])
        assert time_on_air(size, higher) > time_on_air(size, lower)


# ----------------------------------------------------------------------
# Routing table
# ----------------------------------------------------------------------
hello_events = st.lists(
    st.tuples(
        unicast,  # neighbour the hello came from
        st.lists(routing_entries, max_size=10),
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    ),
    max_size=30,
)


class TestRoutingTableProperties:
    @given(events=hello_events)
    def test_invariants_after_arbitrary_hellos(self, events):
        me = 0xFFFE  # excluded from the unicast strategy above
        table = RoutingTable(me, max_metric=16)
        for src, entries, now in events:
            table.process_hello(src, entries, now)
        for entry in table:
            assert entry.address != me
            assert 1 <= entry.metric <= 16
            assert entry.via in table  # the via is itself routable
            assert table.get(entry.via).is_neighbour

    @given(events=hello_events)
    def test_snapshot_always_encodable(self, events):
        me = 0xFFFE
        table = RoutingTable(me, max_metric=16)
        for src, entries, now in events:
            table.process_hello(src, entries, now)
        rows = table.snapshot()
        assert rows[0].address == me
        # The snapshot must fit the hello packet machinery.
        for start in range(0, len(rows), MAX_ROUTING_ENTRIES):
            chunk = tuple(rows[start : start + MAX_ROUTING_ENTRIES])
            serialization.encode(RoutingPacket(src=me, entries=chunk))

    @given(events=hello_events, cutoff=st.floats(min_value=0.0, max_value=2000.0))
    def test_purge_removes_only_stale(self, events, cutoff):
        me = 0xFFFE
        table = RoutingTable(me, route_timeout=100.0)
        for src, entries, now in events:
            table.process_hello(src, entries, now)
        table.purge(cutoff)
        for entry in table:
            assert cutoff - entry.updated_at <= 100.0


# ----------------------------------------------------------------------
# Reliable transport fragmentation
# ----------------------------------------------------------------------
class TestFragmentationProperties:
    @given(payload=st.binary(max_size=5000), size=st.integers(1, 244))
    def test_split_reassembles_identically(self, payload, size):
        fragments = split_payload(payload, size)
        assert b"".join(fragments) == payload
        assert all(len(f) <= size for f in fragments)

    @given(payload=st.binary(min_size=1, max_size=5000), size=st.integers(1, 244))
    def test_fragment_count_is_ceiling_division(self, payload, size):
        fragments = split_payload(payload, size)
        assert len(fragments) == math.ceil(len(payload) / size)


# ----------------------------------------------------------------------
# Queues
# ----------------------------------------------------------------------
queue_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push_data"), st.integers(0, 200)),
        st.tuples(st.just("push_ack"), st.integers(0, 255)),
        st.tuples(st.just("pop"), st.just(0)),
    ),
    max_size=60,
)


class TestQueueProperties:
    @given(ops=queue_ops, capacity=st.integers(1, 16))
    def test_size_never_exceeds_capacity(self, ops, capacity):
        queue = SendQueue(capacity)
        pushed = popped = dropped = 0
        for op, arg in ops:
            if op == "push_data":
                ok = queue.push(DataPacket(dst=1, src=2, via=1, payload=bytes([arg % 256])))
                pushed += ok
                dropped += not ok
            elif op == "push_ack":
                ok = queue.push(AckPacket(dst=1, src=2, via=1, seq_id=arg, number=0))
                pushed += ok
                dropped += not ok
            else:
                popped += queue.pop() is not None
            assert len(queue) <= capacity
        assert len(queue) == pushed - popped
        assert queue.dropped == dropped

    @given(ops=queue_ops, capacity=st.integers(1, 16))
    def test_control_packets_always_pop_first(self, ops, capacity):
        queue = SendQueue(capacity)
        for op, arg in ops:
            if op == "push_data":
                queue.push(DataPacket(dst=1, src=2, via=1, payload=b""))
            elif op == "push_ack":
                queue.push(AckPacket(dst=1, src=2, via=1, seq_id=arg, number=0))
            else:
                item = queue.pop()
                if isinstance(item, DataPacket):
                    # No control packet may remain queued behind it.
                    assert not any(isinstance(x, AckPacket) for x in queue._control)


# ----------------------------------------------------------------------
# Duty cycle
# ----------------------------------------------------------------------
transmissions = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False),
        st.floats(min_value=0.001, max_value=2.0, allow_nan=False),
    ),
    max_size=50,
)


class TestDutyCycleProperties:
    @given(txs=transmissions)
    def test_paced_schedule_never_violates_budget(self, txs):
        acct = DutyCycleAccountant(EU868)
        budget = EU868.duty_cycle * EU868.window_s
        for start, airtime in sorted(txs):
            allowed_at = acct.next_allowed_time(start, airtime)
            assert allowed_at >= start
            acct.record(allowed_at, airtime)
            assert acct.window_utilisation(allowed_at) <= EU868.duty_cycle + 1e-9

    @given(txs=transmissions)
    def test_utilisation_matches_recorded_airtime(self, txs):
        acct = DutyCycleAccountant(EU868)
        recorded = []
        for start, airtime in sorted(txs):
            if acct.can_transmit(start, airtime):
                acct.record(start, airtime)
                recorded.append((start, airtime))
        if recorded:
            now = recorded[-1][0]
            in_window = sum(a for s, a in recorded if s > now - EU868.window_s)
            assert acct.window_utilisation(now) * EU868.window_s == (
                __import__("pytest").approx(in_window)
            )


# ----------------------------------------------------------------------
# Probes
# ----------------------------------------------------------------------
class TestProbeProperties:
    @given(
        src=addresses,
        seq=st.integers(0, 2**32 - 1),
        t=st.floats(min_value=0, max_value=1e9, allow_nan=False),
        size=st.integers(16, 200),
    )
    def test_probe_roundtrip(self, src, seq, t, size):
        probe = parse_probe(make_probe(src, seq, t, size=size))
        assert (probe.src, probe.seq, probe.sent_at, probe.size) == (src, seq, t, size)
