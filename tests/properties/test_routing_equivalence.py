"""Scalar/columnar routing-table equivalence (hypothesis).

The columnar store must be observationally identical to the scalar
reference: same return values, same version counters, same change events
in the same order, same table contents.  Random operation streams —
hello merges (with and without duplicate addresses), direct sightings,
purges and neighbour withdrawals — are replayed against both
implementations and every observable compared after each step.
"""

import math
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.packets import RoutingEntry
from repro.net.routing_table import RoutingTable
from repro.net import routing_store

if not routing_store.HAVE_NUMPY:
    if os.environ.get("REPRO_REQUIRE_VECTOR_DV"):
        pytest.fail(
            "REPRO_REQUIRE_VECTOR_DV is set but numpy is unavailable", pytrace=False
        )
    pytest.skip("numpy not installed", allow_module_level=True)

from repro.net.routing_store import ColumnarRoutingTable  # noqa: E402

SELF = 0x0050

addresses = st.integers(min_value=1, max_value=0x00FF)
roles = st.integers(min_value=0, max_value=3)
metrics = st.integers(min_value=0, max_value=20)
snrs = st.one_of(st.none(), st.integers(min_value=-20, max_value=12).map(float))

entry_rows = st.tuples(addresses, metrics, roles)


def _entries(rows):
    return tuple(RoutingEntry.trusted(a, m, r) for a, m, r in rows)


hello_ops = st.tuples(
    st.just("hello"),
    addresses,
    st.lists(entry_rows, min_size=0, max_size=20).map(_entries),
    snrs,
)
heard_ops = st.tuples(st.just("heard"), addresses, roles, snrs)
purge_ops = st.tuples(st.just("purge"), st.just(0), st.just(0), st.just(0))
remove_ops = st.tuples(st.just("remove_via"), addresses, st.just(0), st.just(0))
set_ops = st.tuples(st.just("set_route"), addresses, addresses, metrics)

op_streams = st.lists(
    st.one_of(hello_ops, heard_ops, purge_ops, remove_ops, set_ops),
    min_size=1,
    max_size=40,
)


def _norm_snr(value):
    if value is None:
        return None
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def _event_key(kind, entry):
    return (
        kind,
        entry.address,
        entry.via,
        entry.metric,
        entry.role,
        entry.updated_at,
        _norm_snr(entry.received_snr_db),
    )


def _dump(table):
    rows = []
    for entry in (table.get(address) for address in table.destinations()):
        rows.append(
            (
                entry.address,
                entry.via,
                entry.metric,
                entry.role,
                entry.updated_at,
                _norm_snr(entry.received_snr_db),
            )
        )
    return rows


def _run_pair(ops, *, snr_tiebreak_db=None, route_timeout=50.0):
    scalar_events, columnar_events = [], []
    scalar = RoutingTable(
        SELF,
        route_timeout=route_timeout,
        max_metric=16,
        snr_tiebreak_db=snr_tiebreak_db,
        on_change=lambda kind, entry: scalar_events.append(_event_key(kind, entry)),
    )
    columnar = ColumnarRoutingTable(
        SELF,
        route_timeout=route_timeout,
        max_metric=16,
        snr_tiebreak_db=snr_tiebreak_db,
        on_change=lambda kind, entry: columnar_events.append(_event_key(kind, entry)),
    )
    # Force the vector path for every unique-address packet, however small.
    columnar.VECTOR_MIN_ROWS = 1
    now = 0.0
    for op, a, b, c in ops:
        now += 3.0
        if op == "hello":
            # The same entries tuple goes to both tables so the identity
            # -keyed merge memo sees identical stimuli.
            assert scalar.process_hello(a, b, now, snr_db=c) == columnar.process_hello(
                a, b, now, snr_db=c
            )
        elif op == "heard":
            scalar.heard_from(a, now, role=b, snr_db=c)
            columnar.heard_from(a, now, role=b, snr_db=c)
        elif op == "purge":
            assert scalar.purge(now) == columnar.purge(now)
        elif op == "remove_via":
            assert scalar.remove_via(a) == columnar.remove_via(a)
        elif op == "set_route":
            scalar.set_route(a, b, max(1, c), 0, now)
            columnar.set_route(a, b, max(1, c), 0, now)
        assert scalar.version == columnar.version
        assert scalar.size == columnar.size
    assert scalar_events == columnar_events
    assert _dump(scalar) == _dump(columnar)
    assert list(scalar.destinations()) == list(columnar.destinations())
    assert sorted(scalar.neighbours()) == sorted(columnar.neighbours())
    for address in scalar.destinations():
        assert scalar.next_hop(address) == columnar.next_hop(address)
        assert scalar.metric(address) == columnar.metric(address)


@settings(max_examples=120, deadline=None)
@given(op_streams)
def test_equivalent_without_tiebreak(ops):
    _run_pair(ops)


@settings(max_examples=80, deadline=None)
@given(op_streams)
def test_equivalent_with_snr_tiebreak(ops):
    _run_pair(ops, snr_tiebreak_db=3.0)


@settings(max_examples=60, deadline=None)
@given(op_streams)
def test_equivalent_with_fast_expiry(ops):
    _run_pair(ops, route_timeout=7.0)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(addresses, st.lists(entry_rows, min_size=2, max_size=12)),
        min_size=1,
        max_size=12,
    )
)
def test_equivalent_with_duplicate_addresses(batches):
    """Packets carrying the same destination twice take the scalar
    fallback inside the columnar store; outcomes must still match."""
    ops = []
    for src, rows in batches:
        doubled = rows + rows[:1]  # guarantee at least one duplicate
        ops.append(("hello", src, _entries(doubled), None))
    _run_pair(ops)


def test_replaying_same_packet_is_memoized_identically():
    scalar = RoutingTable(SELF, route_timeout=100.0)
    columnar = ColumnarRoutingTable(SELF, route_timeout=100.0)
    columnar.VECTOR_MIN_ROWS = 1
    entries = _entries([(2, 1, 0), (3, 2, 0), (4, 3, 1)])
    for table in (scalar, columnar):
        assert table.process_hello(9, entries, 10.0) == 3
        assert table.process_hello(9, entries, 20.0) == 0  # memo replay
    assert _dump(scalar) == _dump(columnar)
    # The replay must still refresh timestamps (routes survive past the
    # original expiry).
    assert scalar.purge(105.0) == columnar.purge(105.0) == []
