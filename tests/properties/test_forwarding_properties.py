"""Property tests on the data-plane classification."""

from hypothesis import given, strategies as st

from repro.net.addresses import BROADCAST_ADDRESS
from repro.net.forwarding import ForwardAction, classify
from repro.net.packets import DataPacket, RoutingEntry
from repro.net.routing_table import RoutingTable

ME = 0x00FE

addresses = st.integers(min_value=1, max_value=0xFFFE).filter(lambda a: a != ME)

hello_feeds = st.lists(
    st.tuples(
        addresses,
        st.lists(
            st.builds(
                RoutingEntry,
                address=st.integers(1, 0xFFFE),
                metric=st.integers(0, 10),
                role=st.just(0),
            ),
            max_size=6,
        ),
    ),
    max_size=10,
)

packets = st.builds(
    DataPacket,
    dst=st.one_of(addresses, st.just(ME), st.just(BROADCAST_ADDRESS)),
    src=addresses,
    via=st.one_of(addresses, st.just(ME), st.just(BROADCAST_ADDRESS)),
    payload=st.binary(max_size=8),
)


def build_table(feeds) -> RoutingTable:
    table = RoutingTable(ME)
    for i, (src, entries) in enumerate(feeds):
        table.process_hello(src, entries, now=float(i))
    return table


class TestClassifyProperties:
    @given(feeds=hello_feeds, packet=packets)
    def test_classification_is_total_and_consistent(self, feeds, packet):
        table = build_table(feeds)
        decision = classify(packet, ME, table)
        if decision.action is ForwardAction.FORWARD:
            assert decision.outgoing is not None
            assert decision.next_hop is not None
            # The rewritten packet keeps end-to-end identity.
            assert decision.outgoing.dst == packet.dst
            assert decision.outgoing.src == packet.src
            assert decision.outgoing.payload == packet.payload
            # And its via is a destination we can actually reach.
            assert decision.outgoing.via == table.next_hop(packet.dst)
        else:
            assert decision.outgoing is None

    @given(feeds=hello_feeds, packet=packets)
    def test_never_forwards_to_self(self, feeds, packet):
        table = build_table(feeds)
        decision = classify(packet, ME, table)
        if decision.action is ForwardAction.FORWARD:
            assert decision.outgoing.via != ME

    @given(feeds=hello_feeds, packet=packets)
    def test_deliver_iff_addressed_here(self, feeds, packet):
        table = build_table(feeds)
        decision = classify(packet, ME, table)
        addressed_here = packet.dst in (ME, BROADCAST_ADDRESS)
        assert (decision.action is ForwardAction.DELIVER) == addressed_here

    @given(feeds=hello_feeds, packet=packets)
    def test_only_named_via_triggers_work(self, feeds, packet):
        table = build_table(feeds)
        decision = classify(packet, ME, table)
        if packet.dst not in (ME, BROADCAST_ADDRESS) and packet.via != ME:
            assert decision.action is ForwardAction.OVERHEAR
