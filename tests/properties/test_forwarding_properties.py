"""Property tests on the data-plane classification."""

from hypothesis import given, strategies as st

from repro.net.addresses import BROADCAST_ADDRESS
from repro.net.forwarding import ForwardAction, classify
from repro.net.packets import DataPacket, RoutingEntry
from repro.net.routing_table import RoutingTable

ME = 0x00FE

addresses = st.integers(min_value=1, max_value=0xFFFE).filter(lambda a: a != ME)

hello_feeds = st.lists(
    st.tuples(
        addresses,
        st.lists(
            st.builds(
                RoutingEntry,
                address=st.integers(1, 0xFFFE),
                metric=st.integers(0, 10),
                role=st.just(0),
            ),
            max_size=6,
        ),
    ),
    max_size=10,
)

packets = st.builds(
    DataPacket,
    dst=st.one_of(addresses, st.just(ME), st.just(BROADCAST_ADDRESS)),
    src=addresses,
    via=st.one_of(addresses, st.just(ME), st.just(BROADCAST_ADDRESS)),
    payload=st.binary(max_size=8),
)


def build_table(feeds) -> RoutingTable:
    table = RoutingTable(ME)
    for i, (src, entries) in enumerate(feeds):
        table.process_hello(src, entries, now=float(i))
    return table


class TestClassifyProperties:
    @given(feeds=hello_feeds, packet=packets)
    def test_classification_is_total_and_consistent(self, feeds, packet):
        table = build_table(feeds)
        decision = classify(packet, ME, table)
        if decision.action is ForwardAction.FORWARD:
            assert decision.outgoing is not None
            assert decision.next_hop is not None
            # The rewritten packet keeps end-to-end identity.
            assert decision.outgoing.dst == packet.dst
            assert decision.outgoing.src == packet.src
            assert decision.outgoing.payload == packet.payload
            # And its via is a destination we can actually reach.
            assert decision.outgoing.via == table.next_hop(packet.dst)
        else:
            assert decision.outgoing is None

    @given(feeds=hello_feeds, packet=packets)
    def test_never_forwards_to_self(self, feeds, packet):
        table = build_table(feeds)
        decision = classify(packet, ME, table)
        if decision.action is ForwardAction.FORWARD:
            assert decision.outgoing.via != ME

    @given(feeds=hello_feeds, packet=packets)
    def test_deliver_iff_addressed_here(self, feeds, packet):
        table = build_table(feeds)
        decision = classify(packet, ME, table)
        addressed_here = packet.dst in (ME, BROADCAST_ADDRESS)
        assert (decision.action is ForwardAction.DELIVER) == addressed_here

    @given(feeds=hello_feeds, packet=packets)
    def test_only_named_via_triggers_work(self, feeds, packet):
        table = build_table(feeds)
        decision = classify(packet, ME, table)
        if packet.dst not in (ME, BROADCAST_ADDRESS) and packet.via != ME:
            assert decision.action is ForwardAction.OVERHEAR


# ---------------------------------------------------------------------------
# Forwarding chains on *consistent* tables
# ---------------------------------------------------------------------------
#
# Count-to-infinity transients aside, once every node's table agrees with
# its neighbours' (a fixed point of hello exchange), the follow-your-via
# rule must route any packet along a simple path: no node is ever visited
# twice, no hop is a ping-pong back to the transmitter, and the walk ends
# at the destination.  This is the property the invariant checker's loop
# detector assumes; here hypothesis drives it over random connected graphs.

graphs = st.integers(min_value=2, max_value=7).flatmap(
    lambda n: st.tuples(
        st.just(n),
        # Parent pointer per node 1..n-1 builds a random spanning tree.
        st.tuples(*(st.integers(0, k - 1) for k in range(1, n))),
        # Optional extra edges densify the tree into a general graph.
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=n,
        ),
    )
)


def converge_tables(n, parents, extras):
    """Build per-node RoutingTables and run synchronous hello rounds to a
    fixed point.  Addresses are 1..n (index + 1)."""
    adjacency = {i: set() for i in range(n)}
    for child, parent in enumerate(parents, start=1):
        adjacency[child].add(parent)
        adjacency[parent].add(child)
    for a, b in extras:
        if a != b:
            adjacency[a].add(b)
            adjacency[b].add(a)
    tables = [RoutingTable(i + 1) for i in range(n)]
    now = 0.0
    for _ in range(2 * n):
        before = [t.version for t in tables]
        adverts = [t.snapshot() for t in tables]
        for u in range(n):
            for v in adjacency[u]:
                tables[v].process_hello(u + 1, adverts[u], now=now)
            now += 1.0
        if [t.version for t in tables] == before:
            break
    return tables


class TestConsistentTableChains:
    @given(graph=graphs)
    def test_chains_are_simple_paths(self, graph):
        n, parents, extras = graph
        tables = converge_tables(n, parents, extras)
        for src in range(n):
            for dst in range(n):
                if dst == src or not tables[src].has_route(dst + 1):
                    continue
                packet = DataPacket(
                    dst=dst + 1,
                    src=src + 1,
                    via=tables[src].next_hop(dst + 1),
                    payload=b"walk",
                )
                visited = [src + 1]
                previous = src + 1
                current = packet.via
                for _ in range(n + 1):
                    assert current not in visited, (
                        f"chain {visited + [current]} revisits {current}"
                    )
                    visited.append(current)
                    decision = classify(
                        packet, current, tables[current - 1], previous_hop=previous
                    )
                    if decision.action is ForwardAction.DELIVER:
                        break
                    assert decision.action is ForwardAction.FORWARD, (
                        f"chain to {dst + 1} broke at {current}: {decision.action}"
                    )
                    assert not decision.ping_pong
                    packet = decision.outgoing
                    previous, current = current, decision.next_hop
                else:  # pragma: no cover - loud failure if the walk never ends
                    raise AssertionError(f"chain {visited} never delivered")
                assert visited[-1] == dst + 1
