"""Fuzz the node's receive path: arbitrary bytes must never crash it.

A mesh node demodulates whatever is on the air — including frames from
buggy peers, other protocols sharing the band, or bit-flipped garbage
that happened to pass CRC.  The service must count and drop, never
raise, and never corrupt its own state.
"""

from hypothesis import given, settings, strategies as st

from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.phy.modulation import LoRaParams
from repro.radio.frames import ReceivedFrame
from repro.net import serialization
from repro.topology.placement import line_positions

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)


def _inject(node, payload: bytes) -> None:
    """Hand raw bytes to the node as a CRC-valid received frame."""
    node._on_frame(
        ReceivedFrame(
            payload=payload,
            rssi_dbm=-80.0,
            snr_db=10.0,
            crc_ok=True,
            received_at=node.sim.now,
            params=LoRaParams(),
        )
    )


class TestRxFuzz:
    @settings(max_examples=150, deadline=None)
    @given(payload=st.binary(max_size=255))
    def test_arbitrary_bytes_never_crash(self, payload):
        net = MeshNetwork.from_positions(line_positions(2, spacing_m=80.0), config=FAST, seed=1)
        node = net.nodes[0]
        _inject(node, payload)
        # The node remains operational afterwards.
        net.run(for_s=60.0)
        assert node.started

    @settings(max_examples=60, deadline=None)
    @given(payloads=st.lists(st.binary(max_size=255), min_size=1, max_size=20))
    def test_garbage_storms_only_move_counters(self, payloads):
        net = MeshNetwork.from_positions(line_positions(2, spacing_m=80.0), config=FAST, seed=2)
        node = net.nodes[0]
        for payload in payloads:
            _inject(node, payload)
        decodable = 0
        for payload in payloads:
            try:
                serialization.decode(payload)
                decodable += 1
            except serialization.DecodeError:
                pass
        assert node.stats.decode_failures == len(payloads) - decodable

    @settings(max_examples=60, deadline=None)
    @given(payload=st.binary(max_size=255))
    def test_mesh_still_works_after_fuzz(self, payload):
        net = MeshNetwork.from_positions(line_positions(2, spacing_m=80.0), config=FAST, seed=3)
        a, b = net.nodes
        _inject(a, payload)
        _inject(b, payload)
        net.run_until_converged(timeout_s=600.0)
        a.send_datagram(b.address, b"still alive")
        net.run(for_s=30.0)
        assert b.receive() is not None
