"""Property: abstract DV exchange converges to true shortest paths.

Strips the radio away entirely: N routing tables exchange snapshots
along the edges of a random connected graph (in hypothesis-chosen
order), and after enough full rounds every table's metric must equal the
true shortest-path distance.  This verifies the *algorithm* independent
of channel behaviour — the integration tests verify it over the air.
"""

import itertools

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.net.routing_table import RoutingTable


def _random_connected_graph(n: int, extra_edge_bits: list) -> nx.Graph:
    """A connected graph: a random spanning tree plus optional extras."""
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    # Spanning tree: attach node i to a pseudo-random earlier node.
    for i in range(1, n):
        parent = extra_edge_bits[i % len(extra_edge_bits)] % i if extra_edge_bits else 0
        graph.add_edge(i, parent)
    # Extra edges from the bit list.
    pairs = list(itertools.combinations(range(n), 2))
    for k, bit in enumerate(extra_edge_bits):
        if bit % 3 == 0:
            graph.add_edge(*pairs[bit % len(pairs)])
    return graph


@st.composite
def dv_scenarios(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    bits = draw(st.lists(st.integers(0, 1_000), min_size=1, max_size=12))
    order_seed = draw(st.randoms(use_true_random=False))
    return n, bits, order_seed


class TestDistanceVectorConvergence:
    @settings(max_examples=40, deadline=None)
    @given(scenario=dv_scenarios())
    def test_converges_to_shortest_paths(self, scenario):
        n, bits, order_rng = scenario
        graph = _random_connected_graph(n, bits)
        addresses = [0x0100 + i for i in range(n)]
        tables = {
            i: RoutingTable(addresses[i], route_timeout=1e9, max_metric=32)
            for i in range(n)
        }

        edges = list(graph.edges())
        now = 0.0
        # Diameter+2 full rounds of bidirectional exchanges suffice for DV.
        rounds = nx.diameter(graph) + 2 if n > 1 else 1
        for _ in range(rounds):
            order_rng.shuffle(edges)
            for u, v in edges:
                now += 1.0
                tables[v].process_hello(addresses[u], tables[u].snapshot()[1:], now)
                tables[u].process_hello(addresses[v], tables[v].snapshot()[1:], now)

        truth = dict(nx.all_pairs_shortest_path_length(graph))
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                assert tables[i].metric(addresses[j]) == truth[i][j], (
                    f"table {i} -> {j}: got {tables[i].metric(addresses[j])}, "
                    f"true {truth[i][j]}"
                )

    @settings(max_examples=40, deadline=None)
    @given(scenario=dv_scenarios())
    def test_next_hops_are_loop_free_at_convergence(self, scenario):
        n, bits, order_rng = scenario
        graph = _random_connected_graph(n, bits)
        addresses = [0x0100 + i for i in range(n)]
        index_of = {a: i for i, a in enumerate(addresses)}
        tables = {
            i: RoutingTable(addresses[i], route_timeout=1e9, max_metric=32)
            for i in range(n)
        }
        edges = list(graph.edges())
        rounds = (nx.diameter(graph) + 2) if n > 1 else 1
        now = 0.0
        for _ in range(rounds):
            order_rng.shuffle(edges)
            for u, v in edges:
                now += 1.0
                tables[v].process_hello(addresses[u], tables[u].snapshot()[1:], now)
                tables[u].process_hello(addresses[v], tables[v].snapshot()[1:], now)

        # Following next hops from any source reaches the destination in
        # exactly metric steps (no loops, no dead ends).
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                steps = 0
                at = i
                while at != j:
                    via = tables[at].next_hop(addresses[j])
                    assert via is not None
                    at = index_of[via]
                    steps += 1
                    assert steps <= n, "forwarding loop"
                assert steps == tables[i].metric(addresses[j])
