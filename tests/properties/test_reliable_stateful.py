"""Stateful property test of the reliable transport.

Hypothesis drives a random interleaving of sends, frame drops, frame
deliveries, and time advancement against a pair of transports, checking
the end-to-end transport invariants the protocol promises:

* every payload whose sender saw success was delivered intact,
* no payload is delivered twice,
* nothing is delivered that was never sent,
* every send eventually resolves (success or failure) once the wire is
  allowed to drain.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, precondition, rule
import hypothesis.strategies as st

from repro.net.config import MesherConfig
from repro.net.packets import (
    AckPacket,
    LostPacket,
    NeedAckPacket,
    SyncPacket,
    XLDataPacket,
)
from repro.net.reliable import ReliableTransport
from repro.sim.kernel import Simulator

A, B = 0x000A, 0x000B


class ReliableTransportMachine(RuleBasedStateMachine):
    """Random adversarial wire between two transports."""

    @initialize()
    def setup(self):
        self.sim = Simulator()
        self.config = MesherConfig(
            fragment_size=40,
            fragment_spacing_s=0.1,
            ack_timeout_s=2.0,
            gap_timeout_s=1.5,
            max_retries=4,
        )
        self.pending = []  # frames queued on the wire, in order
        self.received = []  # (payload) delivered at B
        self.outcomes = {}  # send_id -> (ok, payload)
        self.sent_payloads = {}  # send_id -> payload
        self.next_send_id = 0
        self.transports = {}
        for address in (A, B):
            self.transports[address] = ReliableTransport(
                self.sim,
                address,
                self.config,
                enqueue=self._enqueue,
                route_via=lambda dst: dst,
                deliver=self._deliver,
            )

    # ------------------------------------------------------------------
    def _enqueue(self, packet) -> bool:
        self.pending.append(packet)
        return True

    def _deliver(self, src: int, payload: bytes) -> None:
        self.received.append(payload)

    def _dispatch(self, packet) -> None:
        transport = self.transports.get(packet.dst)
        if transport is None:
            return
        handler = {
            NeedAckPacket: transport.handle_need_ack,
            AckPacket: transport.handle_ack,
            LostPacket: transport.handle_lost,
            SyncPacket: transport.handle_sync,
            XLDataPacket: transport.handle_xl_data,
        }[type(packet)]
        handler(packet)

    # ------------------------------------------------------------------
    @rule(size=st.integers(min_value=0, max_value=300), fill=st.integers(0, 255))
    def send(self, size, fill):
        send_id = self.next_send_id
        self.next_send_id += 1
        payload = bytes([fill]) * size
        self.sent_payloads[send_id] = payload
        self.transports[A].send(
            B,
            payload,
            lambda ok, why, _id=send_id: self.outcomes.__setitem__(_id, ok),
        )

    @rule()
    @precondition(lambda self: self.pending)
    def deliver_next(self):
        self._dispatch(self.pending.pop(0))

    @rule()
    @precondition(lambda self: self.pending)
    def drop_next(self):
        self.pending.pop(0)

    @rule(dt=st.floats(min_value=0.05, max_value=3.0))
    def advance(self, dt):
        self.sim.run(until=self.sim.now + dt)

    # ------------------------------------------------------------------
    @invariant()
    def delivered_only_sent_payloads(self):
        sent = list(self.sent_payloads.values())
        for payload in self.received:
            assert payload in sent

    @invariant()
    def no_duplicate_deliveries(self):
        # Payload bytes may repeat across sends (same size+fill), so the
        # count of deliveries of a given payload never exceeds the count
        # of sends of it.
        for payload in set(self.received):
            sends = sum(1 for p in self.sent_payloads.values() if p == payload)
            deliveries = sum(1 for p in self.received if p == payload)
            assert deliveries <= sends

    def teardown(self):
        # Drain: deliver everything still pending and let timers settle;
        # afterwards every send must have resolved one way or the other.
        for _ in range(2000):
            if self.pending:
                self._dispatch(self.pending.pop(0))
            else:
                before = self.sim.now
                self.sim.run(until=before + 5.0)
                if not self.pending and self.sim.pending == 0:
                    break
        unresolved = [
            send_id for send_id in self.sent_payloads if send_id not in self.outcomes
        ]
        assert not unresolved, f"sends never resolved: {unresolved}"
        # Successful sends were delivered intact at least once.
        for send_id, ok in self.outcomes.items():
            if ok:
                assert self.sent_payloads[send_id] in self.received


ReliableTransportMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
TestReliableTransportStateful = ReliableTransportMachine.TestCase
