"""Tests for deployment layout files."""

import json

import pytest

from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.phy.modulation import SpreadingFactor
from repro.topology.layout import (
    Layout,
    LayoutError,
    LayoutNode,
    layout_from_dict,
    load_layout,
    save_layout,
)

DOC = {
    "name": "office",
    "spreading_factor": 9,
    "nodes": [
        {"x": 0, "y": 0, "name": "sink", "gateway": True},
        {"x": 110, "y": 5, "name": "lab-a"},
        {"x": 220, "y": -3},
    ],
}


class TestParsing:
    def test_from_dict(self):
        layout = layout_from_dict(DOC)
        assert layout.name == "office"
        assert layout.spreading_factor is SpreadingFactor.SF9
        assert len(layout) == 3
        assert layout.nodes[0].gateway
        assert layout.nodes[2].name == ""

    def test_positions_and_gateways(self):
        layout = layout_from_dict(DOC)
        assert layout.positions() == [(0.0, 0.0), (110.0, 5.0), (220.0, -3.0)]
        assert layout.gateway_indices() == [0]

    def test_default_sf7(self):
        layout = layout_from_dict({"nodes": [{"x": 0, "y": 0}]})
        assert layout.spreading_factor is SpreadingFactor.SF7

    def test_missing_nodes_rejected(self):
        with pytest.raises(LayoutError):
            layout_from_dict({"name": "empty"})
        with pytest.raises(LayoutError):
            layout_from_dict({"nodes": []})

    def test_bad_node_rejected(self):
        with pytest.raises(LayoutError):
            layout_from_dict({"nodes": [{"x": 0}]})
        with pytest.raises(LayoutError):
            layout_from_dict({"nodes": ["not an object"]})

    def test_bad_sf_rejected(self):
        with pytest.raises(LayoutError):
            layout_from_dict({"nodes": [{"x": 0, "y": 0}], "spreading_factor": 6})

    def test_bad_version_rejected(self):
        with pytest.raises(LayoutError):
            layout_from_dict({"version": 99, "nodes": [{"x": 0, "y": 0}]})

    def test_non_object_rejected(self):
        with pytest.raises(LayoutError):
            layout_from_dict(["not", "an", "object"])


class TestFiles:
    def test_roundtrip(self, tmp_path):
        layout = layout_from_dict(DOC)
        path = save_layout(layout, tmp_path / "office.json")
        loaded = load_layout(path)
        assert loaded == layout

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(LayoutError):
            load_layout(tmp_path / "nope.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(LayoutError):
            load_layout(path)

    def test_default_name_from_filename(self, tmp_path):
        path = tmp_path / "floor3.json"
        path.write_text(json.dumps({"nodes": [{"x": 0, "y": 0}]}))
        assert load_layout(path).name == "floor3"


class TestIntegration:
    def test_layout_drives_a_network(self):
        layout = layout_from_dict(
            {
                "nodes": [{"x": 0, "y": 0}, {"x": 110, "y": 0}, {"x": 220, "y": 0}],
                "spreading_factor": 7,
            }
        )
        config = MesherConfig(
            hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0,
            lora=layout.params(),
        )
        net = MeshNetwork.from_positions(layout.positions(), config=config, seed=1)
        assert net.run_until_converged(timeout_s=1800.0) is not None
        assert net.nodes[0].table.metric(net.addresses[2]) == 2
