"""Tests for connectivity-graph analysis."""

import pytest

from repro.phy.link import LinkBudget
from repro.phy.modulation import LoRaParams, SpreadingFactor
from repro.phy.pathloss import LogDistancePathLoss
from repro.topology.graphs import connectivity_graph, graph_stats, hop_distance, is_connected
from repro.topology.placement import line_positions


@pytest.fixture
def budget():
    return LinkBudget(LogDistancePathLoss())


class TestConnectivityGraph:
    def test_line_is_a_path_graph(self, budget, params):
        positions = line_positions(4, spacing_m=120.0)
        graph = connectivity_graph(positions, budget, params)
        assert set(graph.edges()) == {(0, 1), (1, 2), (2, 3)}

    def test_close_spacing_adds_skip_edges(self, budget, params):
        positions = line_positions(4, spacing_m=60.0)
        graph = connectivity_graph(positions, budget, params)
        assert graph.has_edge(0, 2)

    def test_higher_sf_connects_farther(self, budget):
        positions = line_positions(3, spacing_m=250.0)
        sf7 = connectivity_graph(positions, budget, LoRaParams())
        sf12 = connectivity_graph(
            positions, budget, LoRaParams(spreading_factor=SpreadingFactor.SF12)
        )
        assert sf7.number_of_edges() == 0
        assert sf12.number_of_edges() >= 2

    def test_edges_carry_snr(self, budget, params):
        graph = connectivity_graph(line_positions(2, spacing_m=100.0), budget, params)
        assert graph.edges[0, 1]["snr_db"] > -7.5


class TestStats:
    def test_connected_line(self, budget, params):
        positions = line_positions(5, spacing_m=120.0)
        assert is_connected(positions, budget, params)
        stats = graph_stats(connectivity_graph(positions, budget, params))
        assert stats.connected
        assert stats.diameter == 4
        assert stats.components == 1

    def test_partitioned_placement(self, budget, params):
        positions = [(0.0, 0.0), (80.0, 0.0), (5000.0, 0.0)]
        assert not is_connected(positions, budget, params)
        stats = graph_stats(connectivity_graph(positions, budget, params))
        assert not stats.connected
        assert stats.components == 2
        assert stats.diameter == -1

    def test_mean_degree(self, budget, params):
        stats = graph_stats(connectivity_graph(line_positions(3, spacing_m=120.0), budget, params))
        assert stats.mean_degree == pytest.approx(4 / 3)


class TestHopDistance:
    def test_hops_along_line(self, budget, params):
        positions = line_positions(5, spacing_m=120.0)
        assert hop_distance(positions, budget, params, 0, 4) == 4
        assert hop_distance(positions, budget, params, 0, 1) == 1

    def test_unreachable_is_minus_one(self, budget, params):
        positions = [(0.0, 0.0), (5000.0, 0.0)]
        assert hop_distance(positions, budget, params, 0, 1) == -1
