"""Tests for SF deployment planning."""

import pytest

from repro.phy.link import LinkBudget
from repro.phy.modulation import SpreadingFactor
from repro.phy.pathloss import LogDistancePathLoss
from repro.topology.planning import evaluate_sf, minimum_connecting_sf, plan_all_sfs
from repro.topology.placement import line_positions


@pytest.fixture
def budget():
    return LinkBudget(LogDistancePathLoss())


class TestEvaluate:
    def test_dense_line_connected_at_sf7(self, budget):
        plan = evaluate_sf(line_positions(4, spacing_m=100.0), budget, SpreadingFactor.SF7)
        assert plan.connected
        assert plan.diameter == 3

    def test_sparse_line_needs_higher_sf(self, budget):
        positions = line_positions(4, spacing_m=250.0)
        sf7 = evaluate_sf(positions, budget, SpreadingFactor.SF7)
        sf12 = evaluate_sf(positions, budget, SpreadingFactor.SF12)
        assert not sf7.connected
        assert sf12.connected

    def test_airtime_reported(self, budget):
        plan = evaluate_sf(line_positions(2), budget, SpreadingFactor.SF9)
        assert plan.frame_toa_s == pytest.approx(0.2058, rel=1e-2)


class TestMinimumSf:
    def test_picks_lowest_connecting(self, budget):
        # 250 m spacing: SF7 (135 m) fails; SF9 (~225 m) fails; SF10+ works.
        positions = line_positions(3, spacing_m=250.0)
        sf = minimum_connecting_sf(positions, budget)
        assert sf is not None
        assert sf > SpreadingFactor.SF7
        assert evaluate_sf(positions, budget, sf).connected
        previous = SpreadingFactor(int(sf) - 1)
        assert not evaluate_sf(positions, budget, previous).connected

    def test_dense_placement_gets_sf7(self, budget):
        assert minimum_connecting_sf(line_positions(4, spacing_m=80.0), budget) is SpreadingFactor.SF7

    def test_impossible_placement_returns_none(self, budget):
        positions = [(0.0, 0.0), (50_000.0, 0.0)]
        assert minimum_connecting_sf(positions, budget) is None

    def test_single_node_trivially_connected(self, budget):
        assert minimum_connecting_sf([(0.0, 0.0)], budget) is SpreadingFactor.SF7


class TestPlanAll:
    def test_covers_every_sf_in_order(self, budget):
        plans = plan_all_sfs(line_positions(2), budget)
        assert [p.spreading_factor for p in plans] == list(SpreadingFactor)

    def test_connectivity_monotone_in_sf(self, budget):
        # Once connected at some SF, every higher SF stays connected.
        plans = plan_all_sfs(line_positions(4, spacing_m=200.0), budget)
        flags = [p.connected for p in plans]
        first_true = flags.index(True) if True in flags else len(flags)
        assert all(flags[first_true:])

    def test_airtime_monotone_in_sf(self, budget):
        plans = plan_all_sfs(line_positions(2), budget)
        toas = [p.frame_toa_s for p in plans]
        assert all(b > a for a, b in zip(toas, toas[1:]))
