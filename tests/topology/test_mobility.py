"""Tests for failure schedules and mobility."""

import pytest

from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.topology.mobility import FailureSchedule, RandomWaypoint
from repro.topology.placement import line_positions

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)


class TestFailureSchedule:
    def test_fail_at_kills_node(self):
        net = MeshNetwork.from_positions(line_positions(2, spacing_m=80.0), config=FAST)
        schedule = FailureSchedule(net.sim)
        schedule.fail_at(100.0, net.nodes[1])
        net.run(for_s=200.0)
        assert not net.nodes[1].radio.powered

    def test_recover_at_revives_node(self):
        net = MeshNetwork.from_positions(line_positions(2, spacing_m=80.0), config=FAST)
        schedule = FailureSchedule(net.sim)
        schedule.fail_at(100.0, net.nodes[1])
        schedule.recover_at(200.0, net.nodes[1])
        net.run(for_s=400.0)
        assert net.nodes[1].radio.powered
        assert net.nodes[0].table.has_route(net.addresses[1])

    def test_past_event_rejected(self):
        net = MeshNetwork.from_positions(line_positions(2), config=FAST)
        net.run(for_s=100.0)
        schedule = FailureSchedule(net.sim)
        with pytest.raises(ValueError):
            schedule.fail_at(50.0, net.nodes[0])

    def test_events_recorded(self):
        net = MeshNetwork.from_positions(line_positions(2), config=FAST)
        schedule = FailureSchedule(net.sim)
        schedule.fail_at(10.0, net.nodes[0])
        assert schedule.events == [(10.0, "fail", net.addresses[0])]


class TestRandomWaypoint:
    def test_node_moves(self):
        net = MeshNetwork.from_positions(line_positions(2, spacing_m=80.0), config=FAST)
        node = net.nodes[1]
        start = node.radio.position
        walker = RandomWaypoint(
            net.sim, node, area=(0.0, 0.0, 500.0, 500.0), speed_mps=5.0, pause_s=1.0
        )
        walker.start()
        net.run(for_s=120.0)
        assert node.radio.position != start

    def test_stays_in_area(self):
        net = MeshNetwork.from_positions(line_positions(2, spacing_m=80.0), config=FAST)
        node = net.nodes[1]
        walker = RandomWaypoint(
            net.sim, node, area=(0.0, 0.0, 200.0, 200.0), speed_mps=10.0, pause_s=0.5
        )
        walker.start()
        for _ in range(20):
            net.run(for_s=30.0)
            x, y = node.radio.position
            assert -1e-6 <= x <= 200.0 + 1e-6
            assert -1e-6 <= y <= 200.0 + 1e-6

    def test_stop_freezes(self):
        net = MeshNetwork.from_positions(line_positions(2, spacing_m=80.0), config=FAST)
        node = net.nodes[1]
        walker = RandomWaypoint(net.sim, node, area=(0.0, 0.0, 500.0, 500.0), speed_mps=5.0)
        walker.start()
        net.run(for_s=60.0)
        walker.stop()
        frozen = node.radio.position
        net.run(for_s=60.0)
        assert node.radio.position == frozen

    def test_legs_counted(self):
        net = MeshNetwork.from_positions(line_positions(2, spacing_m=80.0), config=FAST)
        walker = RandomWaypoint(
            net.sim, net.nodes[1], area=(0.0, 0.0, 50.0, 50.0), speed_mps=20.0, pause_s=0.1
        )
        walker.start()
        net.run(for_s=300.0)
        assert walker.legs_completed > 1

    def test_degenerate_area_rejected(self):
        net = MeshNetwork.from_positions(line_positions(2), config=FAST)
        with pytest.raises(ValueError):
            RandomWaypoint(net.sim, net.nodes[0], area=(0.0, 0.0, 0.0, 100.0))

    def test_invalid_speed_rejected(self):
        net = MeshNetwork.from_positions(line_positions(2), config=FAST)
        with pytest.raises(ValueError):
            RandomWaypoint(net.sim, net.nodes[0], area=(0.0, 0.0, 1.0, 1.0), speed_mps=0.0)
