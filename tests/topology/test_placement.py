"""Tests for placement generators."""

import math
import random

import pytest

from repro.topology.placement import (
    bounding_box,
    campus_positions,
    grid_positions,
    line_positions,
    random_positions,
    ring_positions,
)


class TestLine:
    def test_count_and_spacing(self):
        positions = line_positions(4, spacing_m=100.0)
        assert len(positions) == 4
        assert positions[2] == (200.0, 0.0)

    def test_single_node(self):
        assert line_positions(1) == [(0.0, 0.0)]

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            line_positions(0)


class TestGrid:
    def test_rows_times_cols(self):
        positions = grid_positions(3, 4, spacing_m=10.0)
        assert len(positions) == 12
        assert positions[-1] == (30.0, 20.0)

    def test_unique_positions(self):
        positions = grid_positions(5, 5)
        assert len(set(positions)) == 25


class TestRing:
    def test_on_circle(self):
        positions = ring_positions(8, radius_m=100.0)
        for x, y in positions:
            assert math.hypot(x, y) == pytest.approx(100.0)

    def test_evenly_spaced(self):
        positions = ring_positions(4, radius_m=100.0)
        d01 = math.dist(positions[0], positions[1])
        d12 = math.dist(positions[1], positions[2])
        assert d01 == pytest.approx(d12)


class TestRandom:
    def test_respects_bounds_and_count(self):
        rng = random.Random(1)
        positions = random_positions(20, width_m=500.0, height_m=300.0, rng=rng)
        assert len(positions) == 20
        assert all(0 <= x <= 500 and 0 <= y <= 300 for x, y in positions)

    def test_minimum_separation(self):
        rng = random.Random(2)
        positions = random_positions(
            15, width_m=1000.0, height_m=1000.0, rng=rng, min_separation_m=50.0
        )
        for i, a in enumerate(positions):
            for b in positions[i + 1 :]:
                assert math.dist(a, b) >= 50.0

    def test_deterministic_given_rng(self):
        a = random_positions(5, width_m=100.0, height_m=100.0, rng=random.Random(3))
        b = random_positions(5, width_m=100.0, height_m=100.0, rng=random.Random(3))
        assert a == b

    def test_impossible_density_raises(self):
        with pytest.raises(RuntimeError):
            random_positions(
                100, width_m=10.0, height_m=10.0, rng=random.Random(4), min_separation_m=50.0
            )


class TestCampus:
    def test_cluster_structure(self):
        positions = campus_positions(3, 4, cluster_spread_m=20.0, cluster_distance_m=200.0)
        assert len(positions) == 12
        # Members stay within their cluster's spread radius.
        for c in range(3):
            centre = (c * 200.0, 0.0)
            for member in positions[c * 4 : (c + 1) * 4]:
                assert math.dist(member, centre) <= 10.0 + 1e-9

    def test_deterministic_with_rng(self):
        a = campus_positions(2, 2, rng=random.Random(5))
        b = campus_positions(2, 2, rng=random.Random(5))
        assert a == b


class TestBoundingBox:
    def test_box(self):
        assert bounding_box([(1.0, 2.0), (-3.0, 4.0)]) == (-3.0, 2.0, 1.0, 4.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bounding_box([])
