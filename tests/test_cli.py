"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.seed == 0
        assert args.hello_period == 60.0

    def test_simulate_options(self):
        args = build_parser().parse_args(
            ["simulate", "--nodes", "9", "--topology", "grid", "--spacing", "90"]
        )
        assert args.nodes == 9
        assert args.topology == "grid"
        assert args.spacing == 90.0

    def test_bad_topology_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--topology", "star"])


class TestDemoCommand:
    def test_demo_runs_and_delivers(self, capsys):
        code = main(["demo", "--hello-period", "30", "--route-timeout", "120"])
        out = capsys.readouterr().out
        assert code == 0
        assert "converged after" in out
        assert "hello mesh" in out
        assert "Routing table of" in out


class TestSimulateCommand:
    def test_line_simulation_reports(self, capsys):
        code = main(
            [
                "simulate",
                "--nodes", "3",
                "--duration", "600",
                "--hello-period", "30",
                "--route-timeout", "120",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "converged at" in out
        assert out.count("000") >= 3  # one row per node

    def test_disconnected_simulation_exits_nonzero(self, capsys):
        code = main(
            [
                "simulate",
                "--nodes", "2",
                "--spacing", "2000",
                "--duration", "300",
                "--hello-period", "30",
                "--route-timeout", "120",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "DID NOT CONVERGE" in out

    def test_grid_topology(self, capsys):
        code = main(
            [
                "simulate",
                "--nodes", "4",
                "--topology", "grid",
                "--spacing", "100",
                "--duration", "600",
                "--hello-period", "30",
                "--route-timeout", "120",
            ]
        )
        assert code == 0


class TestAirtimeCommand:
    def test_airtime_table(self, capsys):
        code = main(["airtime", "--payload", "20", "--sf", "7", "12"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SF7" in out and "SF12" in out
        # SF7 reference value for 20 B: ~56.6 ms.
        assert "56.6" in out

    def test_invalid_sf_rejected(self):
        with pytest.raises(ValueError):
            main(["airtime", "--sf", "6"])


class TestPingCommand:
    def test_ping_across_line(self, capsys):
        code = main(
            ["ping", "--count", "2", "--interval", "10",
             "--hello-period", "30", "--route-timeout", "120"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 packets transmitted, 2 received" in out
        assert "rtt min/avg/max" in out


class TestCaptureFlag:
    def test_simulate_workload_reports_percentiles(self, capsys):
        code = main(
            [
                "simulate",
                "--nodes", "9",
                "--topology", "grid",
                "--spacing", "100",
                "--duration", "2400",
                "--hello-period", "30",
                "--route-timeout", "120",
                "--workload", "mixed",
                "--flows", "12",
                "--seed", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "workload mixed: 12 flows" in out
        assert "delivery ratio" in out
        for kind in ("bursty", "ota", "chat", "all"):
            assert kind in out
        assert "p95 (s)" in out and "goodput p50 (bps)" in out

    def test_simulate_workload_stores_stream_rows(self, capsys, tmp_path):
        """--workload + --store must persist stream lifecycle rows even
        though the flow engine's managers are created after the store
        recorder attaches, and replay must render them."""
        db = tmp_path / "run.db"
        code = main(
            [
                "simulate",
                "--nodes", "9",
                "--topology", "grid",
                "--spacing", "100",
                "--duration", "2400",
                "--hello-period", "30",
                "--route-timeout", "120",
                "--workload", "mixed",
                "--flows", "12",
                "--seed", "3",
                "--store", str(db),
            ]
        )
        assert code == 0
        capsys.readouterr()
        from repro.obs.store import KIND_STREAM, EventStore

        store = EventStore(db, mode="r")
        rows = store.events(kind=KIND_STREAM)
        store.close()
        assert rows
        events = {row.data["event"] for row in rows}
        assert {"open", "accept", "deliver", "close"} <= events
        code = main(["replay", "--store", str(db), "--kind", "stream", "--limit", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "stream open" in out

    def test_simulate_rejects_bad_workload_kind(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--workload", "torrent"])

    def test_simulate_writes_capture(self, capsys, tmp_path):
        path = tmp_path / "air.jsonl"
        code = main(
            ["simulate", "--nodes", "2", "--duration", "300",
             "--hello-period", "30", "--route-timeout", "120",
             "--capture", str(path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "air capture" in out
        assert path.exists()
        assert len(path.read_text().splitlines()) > 0


class TestLayoutFlag:
    def test_simulate_runs_a_layout_file(self, capsys, tmp_path):
        import json

        layout_path = tmp_path / "site.json"
        layout_path.write_text(
            json.dumps(
                {
                    "name": "site",
                    "spreading_factor": 7,
                    "nodes": [{"x": 0, "y": 0}, {"x": 100, "y": 0}, {"x": 200, "y": 0}],
                }
            )
        )
        code = main(
            ["simulate", "--layout", str(layout_path), "--duration", "600",
             "--hello-period", "30", "--route-timeout", "120"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "converged at" in out


class TestPlanCommand:
    def test_connected_placement(self, capsys):
        code = main(["plan", "--nodes", "4", "--spacing", "120"])
        out = capsys.readouterr().out
        assert code == 0
        assert "connected" in out
        assert "yes" in out

    def test_disconnected_placement_exit_code(self, capsys):
        code = main(["plan", "--nodes", "3", "--spacing", "500"])
        out = capsys.readouterr().out
        assert code == 1
        assert "NO" in out

    def test_higher_sf_connects(self, capsys):
        code = main(["plan", "--nodes", "3", "--spacing", "400", "--sf", "12"])
        assert code == 0

    def test_auto_sf_picks_cheapest(self, capsys):
        code = main(["plan", "--nodes", "3", "--spacing", "250", "--auto-sf"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cheapest connecting spreading factor: SF10" in out

    def test_auto_sf_impossible(self, capsys):
        code = main(["plan", "--nodes", "2", "--spacing", "50000", "--auto-sf"])
        out = capsys.readouterr().out
        assert code == 1
        assert "no spreading factor" in out


class TestTraceFlag:
    def test_simulate_writes_trace(self, capsys, tmp_path):
        path = tmp_path / "events.jsonl"
        code = main(
            ["simulate", "--nodes", "2", "--duration", "300",
             "--hello-period", "30", "--route-timeout", "120",
             "--trace", str(path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "trace:" in out
        lines = path.read_text().splitlines()
        assert len(lines) > 0
        import json

        record = json.loads(lines[0])
        assert set(record) >= {"time", "node", "kind"}


class TestMonitorCommand:
    def test_monitor_prints_time_series(self, capsys):
        code = main(
            ["monitor", "--nodes", "3", "--topology", "line", "--duration", "600",
             "--interval", "120", "--hello-period", "30", "--route-timeout", "120"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Sampled health" in out
        assert "t (s)" in out
        assert "Network health" in out
        # one sampled row per interval plus the t=0 baseline
        table = out.split("Network health")[0]
        rows = [line for line in table.splitlines() if line.strip()[:1].isdigit()]
        assert len(rows) == 6  # t = 0, 120, 240, 360, 480, 600

    def test_monitor_exports_csv(self, capsys, tmp_path):
        path = tmp_path / "series.csv"
        code = main(
            ["monitor", "--nodes", "2", "--duration", "300", "--interval", "60",
             "--hello-period", "30", "--route-timeout", "120", "--csv", str(path)]
        )
        assert code == 0
        header = path.read_text().splitlines()[0]
        assert header.startswith("time_s")
        assert "repro_network_coverage" in header

    def test_monitor_rejects_nonpositive_interval(self, capsys):
        code = main(["monitor", "--nodes", "2", "--duration", "300", "--interval", "0"])
        out = capsys.readouterr().out
        assert code == 2
        assert "must be positive" in out


class TestProfileCommand:
    def test_profile_prints_hot_spots(self, capsys):
        code = main(
            ["profile", "--nodes", "4", "--duration", "600",
             "--hello-period", "30", "--route-timeout", "120"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Kernel hot spots" in out
        assert "handler" in out
        assert "events" in out


class TestStoreServeReplay:
    def simulate_store(self, tmp_path, capsys):
        path = tmp_path / "run.db"
        rc = main(
            ["simulate", "--nodes", "4", "--duration", "600", "--store", str(path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "event store:" in out
        assert path.exists()
        return path

    def test_simulate_store_writes_events(self, capsys, tmp_path):
        from repro.obs.store import EventStore

        path = self.simulate_store(tmp_path, capsys)
        store = EventStore(path, mode="r")
        counts = store.counts_by_kind()
        assert counts["frame"] > 0
        assert counts["route"] > 0
        assert counts["sample"] > 0
        assert store.meta()["finished"] is True
        assert any(
            e.data["phase"] == "converged" for e in store.events(kind="marker")
        )
        store.close()

    def test_replay_console(self, capsys, tmp_path):
        path = self.simulate_store(tmp_path, capsys)
        rc = main(
            ["replay", "--store", str(path), "--kind", "route", "--limit", "5", "--summary"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "events replayed" in out
        assert '"coverage": 1.0' in out

    def test_replay_missing_store_fails(self, capsys, tmp_path):
        assert main(["replay", "--store", str(tmp_path / "absent.db")]) == 2

    def test_serve_missing_store_fails(self, capsys, tmp_path):
        assert main(["serve", "--store", str(tmp_path / "absent.db")]) == 2

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--store", "run.db"])
        assert args.host == "127.0.0.1"
        assert args.port == 8437
