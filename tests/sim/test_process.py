"""Tests for generator-based processes."""

import pytest

from repro.sim.errors import ProcessKilled, SimulationError
from repro.sim.process import Process, Timeout, Waiter


class TestTimeout:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_process_sleeps_for_timeout(self, sim):
        times = []

        def body():
            times.append(sim.now)
            yield Timeout(5.0)
            times.append(sim.now)

        Process(sim, body())
        sim.run(until=10.0)
        assert times == [0.0, 5.0]

    def test_sequential_timeouts_accumulate(self, sim):
        times = []

        def body():
            for _ in range(3):
                yield Timeout(2.0)
                times.append(sim.now)

        Process(sim, body())
        sim.run(until=10.0)
        assert times == [2.0, 4.0, 6.0]


class TestWaiter:
    def test_waiter_resumes_with_value(self, sim):
        waiter = Waiter()
        results = []

        def body():
            value = yield waiter
            results.append(value)

        Process(sim, body())
        sim.schedule(3.0, lambda: waiter.fire("payload"))
        sim.run(until=10.0)
        assert results == ["payload"]

    def test_waiter_fires_once_only(self, sim):
        waiter = Waiter()
        waiter.fire(1)
        with pytest.raises(SimulationError):
            waiter.fire(2)

    def test_callback_after_fire_runs_immediately(self):
        waiter = Waiter()
        waiter.fire("x")
        got = []
        waiter.add_callback(got.append)
        assert got == ["x"]

    def test_multiple_waiting_processes_all_resume(self, sim):
        waiter = Waiter()
        resumed = []

        def body(name):
            yield waiter
            resumed.append(name)

        Process(sim, body("a"))
        Process(sim, body("b"))
        sim.schedule(1.0, waiter.fire)
        sim.run(until=10.0)
        assert sorted(resumed) == ["a", "b"]


class TestProcessLifecycle:
    def test_result_available_after_completion(self, sim):
        def body():
            yield Timeout(1.0)
            return 42

        proc = Process(sim, body())
        sim.run(until=10.0)
        assert proc.done
        assert proc.result == 42

    def test_completion_waiter_carries_result(self, sim):
        def child():
            yield Timeout(1.0)
            return "child-result"

        got = []

        def parent():
            value = yield Process(sim, child())
            got.append(value)

        Process(sim, parent())
        sim.run(until=10.0)
        assert got == ["child-result"]

    def test_exception_propagates_via_result(self, sim):
        def body():
            yield Timeout(1.0)
            raise RuntimeError("boom")

        proc = Process(sim, body())
        with pytest.raises(RuntimeError, match="boom"):
            sim.run(until=10.0)
        assert proc.done
        with pytest.raises(RuntimeError, match="boom"):
            proc.result

    def test_kill_stops_process(self, sim):
        progressed = []

        def body():
            yield Timeout(5.0)
            progressed.append(True)

        proc = Process(sim, body())
        sim.run(until=1.0)
        proc.kill()
        sim.run(until=10.0)
        assert proc.done
        assert progressed == []

    def test_kill_lets_cleanup_run(self, sim):
        cleaned = []

        def body():
            try:
                yield Timeout(5.0)
            except ProcessKilled:
                cleaned.append(True)
                raise

        proc = Process(sim, body())
        sim.run(until=1.0)
        proc.kill()
        assert cleaned == [True]

    def test_kill_finished_process_is_noop(self, sim):
        def body():
            return 7
            yield  # pragma: no cover

        proc = Process(sim, body())
        sim.run(until=1.0)
        proc.kill()
        assert proc.result == 7

    def test_unsupported_yield_raises(self, sim):
        def body():
            yield "nonsense"

        Process(sim, body())
        with pytest.raises(SimulationError, match="unsupported"):
            sim.run(until=1.0)

    def test_immediate_return_process(self, sim):
        def body():
            return "instant"
            yield  # pragma: no cover

        proc = Process(sim, body())
        sim.run(until=0.1)
        assert proc.done
        assert proc.result == "instant"

    def test_repr_shows_state(self, sim):
        def body():
            yield Timeout(1.0)

        proc = Process(sim, body(), name="worker")
        assert "running" in repr(proc)
        sim.run(until=2.0)
        assert "done" in repr(proc)
