"""Sharded runner: partition plans, ghost exchange, and the fingerprint
identities the conservative-window design guarantees.

The three contracts under test (see repro/sim/shard.py module doc):

1. ``shards=1`` reproduces the serial run bit-exactly;
2. for fixed (shards, window), any worker count gives the identical
   fingerprint;
3. RF-isolated strips reproduce serial per-node results exactly (no
   ghost is ever exchanged).
"""

import random

import pytest

from repro.medium.spatial import ShardPlan, plan_strips
from repro.metrics.collect import FlowRecorder
from repro.net.api import MeshNetwork
from repro.phy.modulation import LoRaParams
from repro.sim.kernel import SchedulingError, Simulator
from repro.sim.shard import (
    ShardedInvariantReport,
    make_plan,
    network_fingerprint,
    run_sharded,
    table_digest,
)
from repro.topology.placement import line_positions, random_positions


# ----------------------------------------------------------------------
# ShardPlan / plan_strips
# ----------------------------------------------------------------------
class TestShardPlan:
    def test_single_shard_owns_everything(self):
        plan = plan_strips([(0.0, 0.0), (500.0, 0.0)], 1, 100.0)
        assert plan.shards == 1
        assert plan.cuts == ()
        assert plan.shard_of((-1e9, 0.0)) == 0
        assert plan.shard_of((1e9, 0.0)) == 0

    def test_cuts_snap_to_cell_edges(self):
        positions = [(float(x), 0.0) for x in range(0, 1000, 10)]
        plan = plan_strips(positions, 4, 135.0)
        assert len(plan.cuts) == 3
        for cut in plan.cuts:
            assert cut % 135.0 == 0.0

    def test_cuts_strictly_ascending_even_when_clustered(self):
        # All nodes in one cell: quantile targets collide, and the
        # collision rule must push each cut one cell up.
        positions = [(5.0 + 0.1 * i, 0.0) for i in range(40)]
        plan = plan_strips(positions, 4, 100.0)
        assert list(plan.cuts) == sorted(set(plan.cuts))

    def test_partition_covers_every_index_once(self):
        rng = random.Random(1)
        positions = random_positions(60, width_m=900, height_m=300, rng=rng)
        plan = plan_strips(positions, 3, 135.0)
        owned = plan.partition(positions)
        flat = sorted(i for shard in owned for i in shard)
        assert flat == list(range(60))
        for indices, shard in ((ix, s) for s, ix in enumerate(owned)):
            for i in indices:
                assert plan.shard_of(positions[i]) == shard

    def test_balanced_on_uniform_placement(self):
        rng = random.Random(2)
        positions = random_positions(90, width_m=2000, height_m=300, rng=rng)
        plan = plan_strips(positions, 3, 135.0)
        counts = [len(s) for s in plan.partition(positions)]
        assert min(counts) >= 15  # quantile cuts keep strips comparable

    def test_shards_overlapping_routes_boundary_disk(self):
        plan = ShardPlan(cuts=(100.0, 200.0), cell_size=100.0)
        # interior disk
        assert list(plan.shards_overlapping((50.0, 0.0), 20.0)) == [0]
        assert plan.is_interior((50.0, 0.0), 20.0)
        # disk spanning the first cut
        assert list(plan.shards_overlapping((95.0, 0.0), 20.0)) == [0, 1]
        assert not plan.is_interior((95.0, 0.0), 20.0)
        # disk spanning everything
        assert list(plan.shards_overlapping((150.0, 0.0), 500.0)) == [0, 1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_strips([(0.0, 0.0)], 0, 100.0)
        with pytest.raises(ValueError):
            plan_strips([(0.0, 0.0)], 2, 0.0)
        with pytest.raises(ValueError):
            plan_strips([], 2, 100.0)

    def test_make_plan_uses_radio_range(self):
        positions = [(float(x), 0.0) for x in range(0, 2000, 100)]
        plan = make_plan(positions, 2)
        assert plan.shards == 2
        assert plan.cell_size > 0


# ----------------------------------------------------------------------
# Simulator.advance_to
# ----------------------------------------------------------------------
class TestAdvanceTo:
    def test_lands_exactly_on_barrier(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        events = sim.advance_to(10.0)
        assert sim.now == 10.0
        assert fired == [5.0]
        assert events == 1

    def test_counts_only_window_events(self):
        sim = Simulator()
        for t in (1.0, 2.0, 12.0):
            sim.schedule(t, lambda: None)
        assert sim.advance_to(10.0) == 2
        assert sim.advance_to(20.0) == 1

    def test_rewind_rejected(self):
        sim = Simulator()
        sim.advance_to(10.0)
        with pytest.raises(SchedulingError):
            sim.advance_to(5.0)

    def test_barrier_equal_to_now_is_noop(self):
        sim = Simulator()
        sim.advance_to(10.0)
        assert sim.advance_to(10.0) == 0
        assert sim.now == 10.0


# ----------------------------------------------------------------------
# Medium boundary hooks
# ----------------------------------------------------------------------
class TestMediumBoundaryHooks:
    def _net(self):
        return MeshNetwork.from_positions(
            line_positions(2), seed=1, trace_enabled=False
        )

    def test_on_transmit_start_fires_for_local_frames(self):
        net = self._net()
        seen = []
        net.medium.on_transmit_start = lambda tx: seen.append(tx.sender_id)
        net.run(for_s=300.0)
        assert seen  # hellos were aired
        assert set(seen) <= {node.radio.node_id for node in net.nodes}

    def test_inject_external_occupies_channel_without_hook(self):
        net = self._net()
        seen = []
        net.medium.on_transmit_start = lambda tx: seen.append(tx.sender_id)
        params = net.nodes[0].radio.params
        tx = net.medium.inject_external(
            999_999, (60.0, 0.0), params, b"ghost", 0.05
        )
        assert tx.sender_id == 999_999
        assert not seen  # ghosts must not re-export
        assert net.medium.channel_busy((60.0, 0.0), params)

    def test_inject_external_delivers_to_listeners(self):
        net = self._net()
        node = net.nodes[0]
        heard = []
        original = node.radio.on_receive

        def tap(frame):
            heard.append(bytes(frame.payload))
            if original is not None:
                original(frame)

        node.radio.on_receive = tap
        params = node.radio.params
        net.medium.inject_external(999_999, (0.0, 1.0), params, b"ghost", 0.05)
        net.run(for_s=1.0)
        assert b"ghost" in heard

    def test_inject_external_interns_unpickled_params(self):
        import pickle

        net = self._net()
        params = net.nodes[0].radio.params
        clone = pickle.loads(pickle.dumps(params))
        assert clone is not params
        tx = net.medium.inject_external(999_999, (0.0, 1.0), clone, b"g", 0.05)
        # The interning table must map the equal-but-distinct params back
        # to one canonical object so id()-keyed range caches stay warm.
        tx2 = net.medium.inject_external(
            999_998, (0.0, 2.0), pickle.loads(pickle.dumps(params)), b"g", 0.05
        )
        assert tx.params is tx2.params

    def test_inject_external_rejects_nonpositive_airtime(self):
        net = self._net()
        params = net.nodes[0].radio.params
        with pytest.raises(ValueError):
            net.medium.inject_external(1, (0.0, 0.0), params, b"g", 0.0)

    def test_max_range_alias(self):
        net = self._net()
        params = net.nodes[0].radio.params
        assert net.medium.max_range_m(params) == net.medium._max_range_for(params)


# ----------------------------------------------------------------------
# Fingerprint identities
# ----------------------------------------------------------------------
def _serial_fingerprint(positions, seed, *, timeout_s=3600.0, check_period_s=10.0):
    net = MeshNetwork.from_positions(positions, seed=seed, trace_enabled=False)
    convergence = net.run_until_converged(
        timeout_s=timeout_s, check_period_s=check_period_s
    )
    return network_fingerprint(net, convergence)


class TestFingerprintIdentity:
    def test_shards_1_equals_serial(self):
        # window == check period makes the kernel run() call sequence
        # literally identical to run_until_converged's, so this identity
        # is bit-exact, convergence time included.
        positions = line_positions(8)
        serial = _serial_fingerprint(positions, seed=11)
        sharded = run_sharded(
            positions, shards=1, seed=11, window_s=10.0, check_period_s=10.0
        )
        assert serial == sharded.fingerprint
        assert sharded.convergence_s == serial["convergence_s"]
        assert sharded.boundary_exports == 0

    def test_worker_count_invariance(self):
        rng = random.Random(8)
        positions = random_positions(24, width_m=700, height_m=250, rng=rng)
        results = [
            run_sharded(
                positions, shards=3, workers=w, seed=5,
                window_s=5.0, check_period_s=10.0,
            )
            for w in (1, 2, 3)
        ]
        assert results[0].fingerprint == results[1].fingerprint
        assert results[1].fingerprint == results[2].fingerprint
        assert results[0].convergence_s == results[2].convergence_s

    def test_isolated_strips_equal_serial(self):
        # Two clusters farther apart than any audible disk: the plan
        # cuts between them, no ghost is ever exchanged, and a fixed-
        # duration sharded run must reproduce the serial per-node tables
        # and frame counts exactly.
        cluster_a = [(x * 100.0, 0.0) for x in range(4)]
        cluster_b = [(10_000.0 + x * 100.0, 0.0) for x in range(4)]
        positions = cluster_a + cluster_b
        duration = 900.0

        net = MeshNetwork.from_positions(positions, seed=3, trace_enabled=False)
        net.run(for_s=duration)
        serial = network_fingerprint(net)

        # Cut mid-gap so neither cluster's audible disk crosses it (the
        # quantile planner would hug cluster B and export inaudible —
        # harmless but nonzero — ghosts).
        sharded = run_sharded(
            positions, shards=2, seed=3, window_s=10.0,
            converge=False, extend_to_s=duration,
            plan=ShardPlan(cuts=(5_000.0,), cell_size=137.0),
        )
        assert sharded.boundary_exports == 0
        serial_no_conv = dict(serial, convergence_s=None)
        assert sharded.fingerprint == serial_no_conv

    def test_connected_multi_shard_is_deterministic(self):
        # With real boundary traffic the sharded result is its own
        # (windowed) semantics — but it must be a *deterministic* one:
        # same inputs, same fingerprint, run after run.
        positions = line_positions(10)
        a = run_sharded(positions, shards=2, seed=4, window_s=5.0, check_period_s=10.0)
        b = run_sharded(positions, shards=2, seed=4, window_s=5.0, check_period_s=10.0)
        assert a.boundary_exports > 0  # the line really crosses the cut
        assert a.fingerprint == b.fingerprint
        assert a.convergence_s == b.convergence_s
        assert a.convergence_s is not None

    def test_table_digest_tracks_structure_not_timestamps(self):
        net = MeshNetwork.from_positions(line_positions(3), seed=2, trace_enabled=False)
        net.run_until_converged(timeout_s=3600.0)
        node = net.nodes[0]
        before = table_digest(node.table)
        # A refresh-only change (timestamps move, structure does not)
        # must not alter the digest.
        net.run(for_s=65.0)
        assert node.table.size and table_digest(node.table) == before


# ----------------------------------------------------------------------
# Traffic, verify and stats on the sharded runner
# ----------------------------------------------------------------------
class TestShardedTrafficAndVerify:
    def test_traffic_flows_across_shards(self):
        from repro.experiments.runner import TrafficSpec

        positions = line_positions(6)
        result = run_sharded(
            positions, shards=2, seed=6, window_s=5.0, check_period_s=10.0,
            duration_s=600.0, drain_s=120.0,
            traffic=[TrafficSpec(src_index=0, dst_index=5, period_s=60.0)],
            verify=True,
        )
        assert result.convergence_s is not None
        assert result.recorder.total_sent() > 0
        # End-to-end deliveries must cross the cut (src and dst live in
        # different strips) via ghost re-airing.
        assert result.recorder.total_delivered() > 0
        assert result.checker is not None
        assert result.checker.audits_run > 0
        result.checker.assert_clean()

    def test_stats_shape(self):
        positions = line_positions(8)
        result = run_sharded(
            positions, shards=2, workers=2, seed=1, window_s=10.0, check_period_s=10.0
        )
        assert [s.shard for s in result.stats] == [0, 1]
        assert sum(s.nodes for s in result.stats) == 8
        assert all(s.windows > 0 for s in result.stats)
        assert sum(s.frames_sent for s in result.stats) == result.frames
        assert result.load_imbalance() >= 1.0
        assert result.sim_time_s > 0
        assert result.wall_s > 0

    def test_validation(self):
        positions = line_positions(4)
        with pytest.raises(ValueError):
            run_sharded(positions, shards=0)
        with pytest.raises(ValueError):
            run_sharded(positions, shards=1, window_s=0.0)
        with pytest.raises(ValueError):  # window does not divide check
            run_sharded(positions, shards=1, window_s=3.0, check_period_s=10.0)


class TestShardedInvariantReport:
    def test_aggregation(self):
        report = ShardedInvariantReport()
        report.absorb(
            {
                "audits": 3,
                "violations": {"loop": 1},
                "violation_details": ["loop at n1"],
                "observations": {"routes": 5},
            }
        )
        report.absorb(
            {
                "audits": 2,
                "violations": {"loop": 1, "dup": 2},
                "violation_details": ["loop at n2"],
                "observations": {"routes": 7},
            }
        )
        assert report.audits_run == 5
        assert report.violation_counts() == {"loop": 2, "dup": 2}
        assert report.observations == {"routes": 12}
        with pytest.raises(AssertionError):
            report.assert_clean()

    def test_clean_report_passes(self):
        report = ShardedInvariantReport()
        report.absorb({"audits": 1, "violations": {}, "violation_details": [],
                       "observations": {}})
        report.assert_clean()
        assert report.summary()["audits"] == 1


# ----------------------------------------------------------------------
# run_protocol integration
# ----------------------------------------------------------------------
class TestRunProtocolSharded:
    def test_mesh_sharded_run(self):
        from repro.experiments.runner import Protocol, TrafficSpec, run_protocol

        positions = line_positions(6)
        result = run_protocol(
            Protocol.MESH,
            positions,
            [TrafficSpec(src_index=0, dst_index=5, period_s=60.0)],
            duration_s=600.0,
            seed=9,
            drain_s=120.0,
            shards=2,
        )
        assert result.sharded is not None
        assert result.network is None
        assert result.sharded.shards == 2
        assert result.convergence_time_s is not None
        assert result.overhead.frames_sent == result.sharded.frames
        assert result.recorder.total_sent() > 0

    def test_non_mesh_rejected(self):
        from repro.experiments.runner import Protocol, run_protocol

        with pytest.raises(ValueError):
            run_protocol(
                Protocol.FLOODING, line_positions(4), [], duration_s=60.0, shards=2
            )

    def test_store_and_sampler_rejected(self):
        from repro.experiments.runner import Protocol, run_protocol

        with pytest.raises(ValueError):
            run_protocol(
                Protocol.MESH, line_positions(4), [], duration_s=60.0,
                shards=2, sample_period_s=10.0,
            )
        with pytest.raises(ValueError):
            run_protocol(
                Protocol.MESH, line_positions(4), [], duration_s=60.0,
                shards=2, store="/tmp/nope.db",
            )


# ----------------------------------------------------------------------
# FlowRecorder.merge_from
# ----------------------------------------------------------------------
class TestFlowRecorderMerge:
    def test_merge_disjoint_flows(self):
        a, b = FlowRecorder(), FlowRecorder()
        a.sent(1, 2, 0, 10.0, 24)
        b.sent(3, 4, 0, 12.0, 24)
        a.merge_from(b)
        assert a.total_sent() == 2
        assert {(f.src, f.dst) for f in a.flows()} == {(1, 2), (3, 4)}

    def test_merge_send_and_delivery_halves(self):
        from repro.net.mesher import AppMessage
        from repro.workload.probes import make_probe

        send_side, recv_side = FlowRecorder(), FlowRecorder()
        payload = make_probe(1, 0, 10.0, size=24)
        send_side.sent(1, 2, 0, 10.0, 24)
        recv_side.delivered(
            2, AppMessage(src=1, payload=payload, received_at=14.0, reliable=False)
        )
        merged = FlowRecorder()
        merged.merge_from(send_side)
        merged.merge_from(recv_side)
        flow = merged.flow(1, 2)
        assert flow.sent == 1 and flow.delivered == 1
        assert flow.pdr == 1.0
        assert merged.delivered_bytes() == 24
        assert merged.all_latencies() == [4.0]

    def test_merge_adds_duplicates_and_non_probes(self):
        a, b = FlowRecorder(), FlowRecorder()
        b._duplicates[(1, 2)] = 3
        b.non_probe_messages = 2
        a.merge_from(b)
        assert a.total_duplicates() == 3
        assert a.non_probe_messages == 2
