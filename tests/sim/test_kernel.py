"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.errors import SchedulingError, SimulationError
from repro.sim.kernel import PeriodicTimer, Simulator, format_time


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_fires_at_delay(self, sim):
        fired = []
        sim.schedule(2.5, lambda: fired.append(sim.now))
        sim.run(until=10.0)
        assert fired == [2.5]

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(4.0, lambda: fired.append(sim.now))
        sim.run(until=10.0)
        assert fired == [4.0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run(until=5.0)
        with pytest.raises(SchedulingError):
            sim.schedule_at(4.0, lambda: None)

    def test_non_callable_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule(1.0, "not callable")

    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run(until=10.0)
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_in_scheduling_order(self, sim):
        order = []
        for name in "abcde":
            sim.schedule(1.0, lambda n=name: order.append(n))
        sim.run(until=10.0)
        assert order == list("abcde")

    def test_priority_beats_scheduling_order(self, sim):
        from repro.sim.kernel import PRIORITY_HIGH

        order = []
        sim.schedule(1.0, lambda: order.append("normal"))
        sim.schedule(1.0, lambda: order.append("high"), priority=PRIORITY_HIGH)
        sim.run(until=10.0)
        assert order == ["high", "normal"]

    def test_callback_can_schedule_more_events(self, sim):
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run(until=10.0)
        assert fired == ["first", "second"]

    def test_call_soon_runs_at_current_time(self, sim):
        times = []
        sim.schedule(3.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
        sim.run(until=10.0)
        assert times == [3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run(until=10.0)
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()  # must not raise
        assert not handle.active

    def test_handle_reports_time_and_activity(self, sim):
        handle = sim.schedule(2.0, lambda: None, label="x")
        assert handle.time == 2.0
        assert handle.label == "x"
        assert handle.active
        handle.cancel()
        assert not handle.active


class TestRun:
    def test_run_advances_clock_to_horizon_even_when_idle(self, sim):
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_run_does_not_execute_events_beyond_horizon(self, sim):
        fired = []
        sim.schedule(5.0, lambda: fired.append(1))
        sim.run(until=4.0)
        assert fired == []
        sim.run(until=6.0)
        assert fired == [1]

    def test_run_without_horizon_drains_queue(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(100.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1, 2]
        assert sim.now == 100.0

    def test_run_is_not_reentrant(self, sim):
        def nested():
            sim.run(until=5.0)

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run(until=10.0)

    def test_max_events_guard(self, sim):
        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(until=1.0, max_events=100)

    def test_stop_ends_run_early(self, sim):
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run(until=10.0)
        assert fired == [1]
        # Pending events remain runnable afterwards.
        sim.run(until=10.0)
        assert fired == [1, 2]

    def test_step_executes_one_event(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step()
        assert fired == [1]
        assert sim.step()
        assert fired == [1, 2]
        assert not sim.step()

    def test_events_fired_counter(self, sim):
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run(until=2.0)
        assert sim.events_fired == 5

    def test_pending_excludes_cancelled(self, sim):
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        assert sim.pending == 1


class TestPeriodicTimer:
    def test_fires_every_period(self, sim):
        times = []
        sim.periodic(10.0, lambda: times.append(sim.now))
        sim.run(until=35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_first_delay_override(self, sim):
        times = []
        sim.periodic(10.0, lambda: times.append(sim.now), first_delay=1.0)
        sim.run(until=25.0)
        assert times == [1.0, 11.0, 21.0]

    def test_cancel_stops_firing(self, sim):
        times = []
        timer = sim.periodic(10.0, lambda: times.append(sim.now))
        sim.run(until=15.0)
        timer.cancel()
        sim.run(until=100.0)
        assert times == [10.0]
        assert not timer.active

    def test_callback_may_cancel_its_own_timer(self, sim):
        timer = sim.periodic(5.0, lambda: timer.cancel())
        sim.run(until=100.0)
        assert timer.fired == 1

    def test_jitter_applied_per_firing(self, sim):
        times = []
        jitters = iter([1.0, 2.0, 3.0, 0.0, 0.0])
        timer = PeriodicTimer(sim, 10.0, lambda: times.append(sim.now), jitter=lambda: next(jitters))
        timer.start()
        sim.run(until=40.0)
        assert times == [11.0, 23.0, 36.0]

    def test_jitter_cannot_make_delay_negative(self, sim):
        # A jitter larger than the period clamps the delay at zero: the
        # timer fires repeatedly at the same instant but never rewinds time.
        times = []
        timer = PeriodicTimer(sim, 1.0, lambda: times.append(sim.now), jitter=lambda: -5.0)
        timer.start()
        sim.schedule(0.0, lambda: None)  # anchor an event so run() advances
        for _ in range(10):
            sim.step()
        timer.cancel()
        assert times and all(t == 0.0 for t in times)

    def test_invalid_period_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.periodic(0.0, lambda: None)

    def test_reset_rearms_from_now(self, sim):
        times = []
        timer = sim.periodic(10.0, lambda: times.append(sim.now))
        sim.run(until=5.0)
        timer.reset()
        sim.run(until=30.0)
        assert times == [15.0, 25.0]

    def test_fired_count(self, sim):
        timer = sim.periodic(1.0, lambda: None)
        sim.run(until=5.5)
        assert timer.fired == 5


class TestFormatting:
    def test_format_time(self):
        assert format_time(0.0) == "0:00:00.000"
        assert format_time(3661.5) == "1:01:01.500"
        assert format_time(0.1234) == "0:00:00.123"


class TestProfilerHook:
    def test_no_profiler_by_default(self):
        assert Simulator().profiler is None

    def test_attached_profiler_sees_every_event(self):
        from repro.obs.profiler import KernelProfiler

        sim = Simulator()
        profiler = KernelProfiler().attach(sim)
        sim.schedule(1.0, lambda: None, label="a")
        sim.schedule(2.0, lambda: None, label="b")
        sim.run()
        assert profiler.total_events == sim.events_fired == 2

    def test_step_is_also_profiled(self):
        from repro.obs.profiler import KernelProfiler

        sim = Simulator()
        profiler = KernelProfiler().attach(sim)
        sim.schedule(1.0, lambda: None, label="stepped")
        assert sim.step() is True
        assert profiler.total_events == 1


class TestPendingBookkeeping:
    """``pending`` is maintained incrementally (O(1) reads)."""

    def test_pending_tracks_schedule_fire_cancel(self, sim):
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert sim.pending == 5
        handles[0].cancel()
        handles[0].cancel()  # idempotent: must not double-decrement
        assert sim.pending == 4
        sim.run(until=2.5)  # fires t=2.0 (t=1.0 was cancelled)
        assert sim.pending == 3
        sim.run()
        assert sim.pending == 0

    def test_cancel_after_fire_does_not_underflow(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        sim.run(until=2.0)
        assert sim.pending == 0
        handle.cancel()
        assert sim.pending == 0

    def test_pending_matches_live_heap_contents(self, sim):
        import random as _random

        rng = _random.Random(42)
        handles = []
        for _ in range(200):
            handles.append(sim.schedule(rng.uniform(0.0, 50.0), lambda: None))
        for handle in rng.sample(handles, 80):
            handle.cancel()
        live = sum(
            1 for (_, _, _, e) in sim._heap if not e.cancelled and not e.fired
        )
        assert sim.pending == live == 120


class TestLazyLabels:
    def test_callable_label_resolved_only_on_read(self, sim):
        calls = []

        def label():
            calls.append(1)
            return "expensive"

        handle = sim.schedule(1.0, lambda: None, label=label)
        sim.run()
        assert calls == []  # never read, never built
        assert handle.label == "expensive"
        assert calls == [1]

    def test_profiler_resolves_lazy_labels(self):
        from repro.obs.profiler import KernelProfiler

        sim = Simulator()
        KernelProfiler().attach(sim)
        sim.schedule(1.0, lambda: None, label=lambda: "lazy-evt")
        sim.run()
