"""Tests for deterministic named RNG streams."""

import pytest

from repro.sim.rng import RngRegistry


class TestStreams:
    def test_same_name_returns_same_stream(self):
        rngs = RngRegistry(42)
        assert rngs.stream("a") is rngs.stream("a")

    def test_different_names_are_independent(self):
        rngs = RngRegistry(42)
        a_only = RngRegistry(42)
        # Drawing from stream "b" must not perturb stream "a".
        rngs.stream("b").random()
        assert rngs.stream("a").random() == a_only.stream("a").random()

    def test_same_seed_reproduces_sequences(self):
        first = [RngRegistry(7).stream("x").random() for _ in range(5)]
        second_rngs = RngRegistry(7)
        second = [second_rngs.stream("x").random() for _ in range(5)]
        # Note: both read 5 draws from a fresh stream.
        assert first[0] == second[0]

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").random()
        b = RngRegistry(2).stream("x").random()
        assert a != b

    def test_derive_seed_is_stable(self):
        # The derivation must be platform/process independent (SHA-256),
        # so pin an actual value as a regression anchor.
        seed = RngRegistry(0).derive_seed("phy.shadowing")
        assert seed == RngRegistry(0).derive_seed("phy.shadowing")
        assert isinstance(seed, int)
        assert seed.bit_length() <= 64

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(0).stream("")

    def test_non_string_name_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(0).stream(123)  # type: ignore[arg-type]

    def test_fork_produces_independent_registry(self):
        parent = RngRegistry(5)
        child = parent.fork("trial-1")
        assert child.master_seed != parent.master_seed
        assert child.stream("x").random() != parent.stream("x").random()

    def test_fork_is_deterministic(self):
        a = RngRegistry(5).fork("trial-1").stream("x").random()
        b = RngRegistry(5).fork("trial-1").stream("x").random()
        assert a == b

    def test_names_lists_created_streams(self):
        rngs = RngRegistry(0)
        rngs.stream("b")
        rngs.stream("a")
        assert list(rngs.names()) == ["a", "b"]

    def test_repr(self):
        rngs = RngRegistry(9)
        rngs.stream("one")
        assert "master_seed=9" in repr(rngs)
        assert "streams=1" in repr(rngs)
