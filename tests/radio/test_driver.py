"""Tests for the SX127x-style radio driver."""

import pytest

from repro.phy.airtime import time_on_air
from repro.phy.modulation import LoRaParams, SpreadingFactor
from repro.radio.driver import Radio, RadioBusyError, RadioError
from repro.radio.states import RadioState

from tests.conftest import build_radios


class TestStates:
    def test_starts_in_standby(self, sim, medium, params):
        radio = Radio(sim, medium, 1, (0.0, 0.0), params)
        assert radio.state is RadioState.STANDBY

    def test_start_receive_enters_rx(self, sim, medium, params):
        radio = Radio(sim, medium, 1, (0.0, 0.0), params)
        radio.start_receive()
        assert radio.state is RadioState.RX
        assert radio.rx_params == params

    def test_rx_params_none_outside_rx(self, sim, medium, params):
        radio = Radio(sim, medium, 1, (0.0, 0.0), params)
        assert radio.rx_params is None

    def test_sleep_and_standby(self, sim, medium, params):
        radio = Radio(sim, medium, 1, (0.0, 0.0), params)
        radio.sleep()
        assert radio.state is RadioState.SLEEP
        radio.standby()
        assert radio.state is RadioState.STANDBY

    def test_only_rx_can_hear(self):
        assert RadioState.RX.can_hear
        assert not RadioState.TX.can_hear
        assert not RadioState.SLEEP.can_hear


class TestTransmit:
    def test_transmit_returns_airtime(self, sim, medium, params, radio_pair):
        a, _ = radio_pair
        airtime = a.transmit(b"x" * 30)
        assert airtime == pytest.approx(time_on_air(30, params))

    def test_transmit_enters_tx_then_returns_to_rx(self, sim, medium, params, radio_pair):
        a, _ = radio_pair
        a.transmit(b"hello")
        assert a.state is RadioState.TX
        assert a.transmitting
        sim.run(until=1.0)
        assert a.state is RadioState.RX

    def test_tx_done_callback_fires(self, sim, medium, params, radio_pair):
        a, _ = radio_pair
        done = []
        a.on_tx_done = lambda: done.append(sim.now)
        a.transmit(b"hello")
        sim.run(until=1.0)
        assert done == [pytest.approx(time_on_air(5, params))]

    def test_transmit_while_transmitting_raises(self, sim, medium, params, radio_pair):
        a, _ = radio_pair
        a.transmit(b"first")
        with pytest.raises(RadioBusyError):
            a.transmit(b"second")

    def test_oversized_payload_rejected(self, sim, medium, params, radio_pair):
        a, _ = radio_pair
        with pytest.raises(RadioError):
            a.transmit(bytes(256))

    def test_state_changes_forbidden_during_tx(self, sim, medium, params, radio_pair):
        a, _ = radio_pair
        a.transmit(b"x")
        with pytest.raises(RadioBusyError):
            a.sleep()
        with pytest.raises(RadioBusyError):
            a.standby()
        with pytest.raises(RadioBusyError):
            a.start_receive()

    def test_counters(self, sim, medium, params, radio_pair):
        a, b = radio_pair
        a.transmit(b"x" * 10)
        sim.run(until=1.0)
        assert a.frames_sent == 1
        assert a.bytes_sent == 10
        assert a.tx_airtime_s > 0
        assert b.frames_received == 1
        assert b.bytes_received == 10


class TestConfigure:
    def test_configure_changes_params(self, sim, medium, params):
        radio = Radio(sim, medium, 1, (0.0, 0.0), params)
        sf9 = params.replace(spreading_factor=SpreadingFactor.SF9)
        radio.configure(sf9)
        assert radio.params == sf9

    def test_configure_mid_rx_loses_in_flight_frame(self, sim, medium, params, radio_pair):
        a, b = radio_pair
        frames = []
        b.on_receive = frames.append
        a.transmit(b"x" * 60)
        sim.run(until=0.01)
        b.configure(params)  # retune drops out of RX momentarily
        sim.run(until=2.0)
        assert frames == []

    def test_configure_restores_rx(self, sim, medium, params, radio_pair):
        _, b = radio_pair
        b.configure(params.replace(spreading_factor=SpreadingFactor.SF8))
        assert b.state is RadioState.RX


class TestPower:
    def test_power_off_detaches(self, sim, medium, params, radio_pair):
        a, b = radio_pair
        frames = []
        b.on_receive = frames.append
        b.power_off()
        assert not b.powered
        a.transmit(b"x")
        sim.run(until=1.0)
        assert frames == []

    def test_power_on_reattaches(self, sim, medium, params, radio_pair):
        a, b = radio_pair
        frames = []
        b.on_receive = frames.append
        b.power_off()
        b.power_on()
        b.start_receive()
        a.transmit(b"x")
        sim.run(until=1.0)
        assert len(frames) == 1

    def test_operations_on_dead_radio_raise(self, sim, medium, params, radio_pair):
        _, b = radio_pair
        b.power_off()
        with pytest.raises(RadioError):
            b.transmit(b"x")
        with pytest.raises(RadioError):
            b.start_receive()

    def test_power_off_is_idempotent(self, sim, medium, params, radio_pair):
        _, b = radio_pair
        b.power_off()
        b.power_off()
        assert not b.powered


class TestMobility:
    def test_move_changes_reception(self, sim, medium, params, radio_pair):
        a, b = radio_pair
        frames = []
        b.on_receive = frames.append
        b.move_to((5000.0, 0.0))
        a.transmit(b"x")
        sim.run(until=1.0)
        assert frames == []
        b.move_to((50.0, 0.0))
        a.transmit(b"y")
        sim.run(until=2.0)
        assert len(frames) == 1


class TestSensing:
    def test_channel_activity(self, sim, medium, params, radio_pair):
        a, b = radio_pair
        assert not b.channel_activity()
        a.transmit(b"x" * 50)
        sim.run(until=0.01)
        assert b.channel_activity()


class TestEnergyBookkeeping:
    def test_state_times_accumulate(self, sim, medium, params):
        radio = Radio(sim, medium, 1, (0.0, 0.0), params)
        radio.start_receive()
        sim.run(until=10.0)
        radio.sleep()
        sim.run(until=15.0)
        times = radio.state_times()
        assert times[RadioState.RX] == pytest.approx(10.0)
        assert times[RadioState.SLEEP] == pytest.approx(5.0)

    def test_current_stay_included(self, sim, medium, params):
        radio = Radio(sim, medium, 1, (0.0, 0.0), params)
        radio.start_receive()
        sim.run(until=7.0)
        assert radio.state_times()[RadioState.RX] == pytest.approx(7.0)

    def test_tx_time_matches_airtime(self, sim, medium, params, radio_pair):
        a, _ = radio_pair
        airtime = a.transmit(b"x" * 40)
        sim.run(until=5.0)
        assert a.state_times()[RadioState.TX] == pytest.approx(airtime)
