"""Tests for the air-capture sniffer."""

import json

import pytest

from repro.medium.channel import DropReason
from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.topology.placement import line_positions
from repro.trace.capture import AirCapture

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)


@pytest.fixture
def captured_net():
    net = MeshNetwork.from_positions(line_positions(3), config=FAST, seed=9)
    capture = AirCapture(net.medium)
    net.run_until_converged(timeout_s=1800.0)
    a, c = net.nodes[0], net.nodes[-1]
    a.send_datagram(c.address, b"sniff me")
    net.run(for_s=60.0)
    return net, capture


class TestCapture:
    def test_sees_every_frame(self, captured_net):
        net, capture = captured_net
        assert capture.total_seen == net.total_frames_sent()
        assert len(capture) == capture.total_seen

    def test_decodes_packet_kinds(self, captured_net):
        _, capture = captured_net
        counts = capture.kind_counts()
        assert counts.get("RoutingPacket", 0) > 0
        assert counts.get("DataPacket", 0) == 2  # original + forwarded hop

    def test_outcomes_recorded(self, captured_net):
        net, capture = captured_net
        data_frames = capture.by_kind("DataPacket")
        # The first data frame (from the end node) was delivered to the
        # middle node at least.
        assert data_frames[0].delivered_to

    def test_by_sender(self, captured_net):
        net, capture = captured_net
        a = net.addresses[0]
        assert all(f.sender == a for f in capture.by_sender(a))
        assert len(capture.by_sender(a)) > 0

    def test_airtime_split(self, captured_net):
        _, capture = captured_net
        airtimes = capture.airtime_by_kind()
        assert airtimes["RoutingPacket"] > airtimes["DataPacket"]

    def test_capacity_caps_storage_not_count(self):
        net = MeshNetwork.from_positions(line_positions(2), config=FAST, seed=3)
        capture = AirCapture(net.medium, capacity=2)
        net.run(for_s=600.0)
        assert len(capture) == 2
        assert capture.total_seen > 2

    def test_single_sniffer_per_medium(self, captured_net):
        net, _ = captured_net
        with pytest.raises(RuntimeError):
            AirCapture(net.medium)

    def test_stop_detaches(self):
        net = MeshNetwork.from_positions(line_positions(2), config=FAST, seed=4)
        capture = AirCapture(net.medium)
        net.run(for_s=120.0)
        seen = capture.total_seen
        capture.stop()
        net.run(for_s=600.0)
        assert capture.total_seen == seen
        # A new sniffer can attach afterwards.
        AirCapture(net.medium)

    def test_format_renders_lines(self, captured_net):
        _, capture = captured_net
        text = capture.format(limit=5)
        assert "RoutingPacket" in text
        assert "more frames" in text or len(capture) <= 5

    def test_export_jsonl_roundtrips(self, captured_net, tmp_path):
        _, capture = captured_net
        path = capture.export_jsonl(tmp_path / "capture.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(capture)
        record = json.loads(lines[0])
        assert set(record) >= {"time", "sender", "kind", "outcomes"}

    def test_collision_counting(self):
        # Hidden terminals: a and b cannot hear each other (260 m apart),
        # both reach c — CAD cannot save them, the frames collide at c.
        config = FAST.replace(backoff_slots=0)
        net = MeshNetwork.from_positions(
            [(0.0, 0.0), (260.0, 0.0), (130.0, 0.0)], config=config, seed=5
        )
        capture = AirCapture(net.medium)
        net.run_until_converged(timeout_s=1800.0)
        a, b, c = net.nodes
        a.send_datagram(c.address, b"one" + bytes(60))
        b.send_datagram(c.address, b"two" + bytes(60))
        net.run(for_s=30.0)
        assert capture.collision_count() >= 1


class TestRoundTrip:
    def test_export_then_load_compares_equal(self, captured_net, tmp_path):
        from repro.trace.capture import load_capture_jsonl

        _, capture = captured_net
        path = capture.export_jsonl(tmp_path / "capture.jsonl")
        frames = load_capture_jsonl(path)
        assert frames == capture.frames
        # DropReason enums survive the trip, not just their string values
        outcomes = [o for frame in frames for o in frame.outcomes.values()]
        assert any(isinstance(o, DropReason) for o in outcomes) or all(
            o == "delivered" for o in outcomes
        )
