"""Tests for the OTA dissemination application."""

import pytest

from repro.apps.ota import (
    OtaNode,
    decode_ota,
    deploy_ota,
    dissemination_complete,
    encode_advert,
    encode_blob,
    encode_request,
)
from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.topology.placement import grid_positions, line_positions

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)
BLOB = bytes(range(256)) * 4  # 1 KiB image


class TestFraming:
    def test_advert_roundtrip(self):
        message = decode_ota(encode_advert(3, 1024))
        assert (message.kind, message.version, message.size) == (0x01, 3, 1024)

    def test_request_roundtrip(self):
        message = decode_ota(encode_request(7))
        assert (message.kind, message.version) == (0x02, 7)

    def test_blob_roundtrip(self):
        message = decode_ota(encode_blob(2, b"firmware"))
        assert message.version == 2
        assert message.blob == b"firmware"
        assert message.size == 8

    def test_non_ota_payload_ignored(self):
        assert decode_ota(b"hello mesh") is None
        assert decode_ota(b"") is None

    def test_truncated_ota_ignored(self):
        assert decode_ota(b"OTA1\x01\x00") is None
        assert decode_ota(b"OTA1\x7f") is None


def build(positions, seed=5, advert_period_s=60.0):
    net = MeshNetwork.from_positions(positions, config=FAST, seed=seed)
    net.run_until_converged(timeout_s=3600.0)
    apps = deploy_ota(net.nodes, advert_period_s=advert_period_s, seed=seed)
    return net, apps


class TestDissemination:
    def test_neighbour_gets_the_image(self):
        net, apps = build(line_positions(2, spacing_m=80.0))
        seed_app = apps[net.addresses[0]]
        seed_app.install(1, BLOB)
        net.run(for_s=600.0)
        other = apps[net.addresses[1]]
        assert other.version == 1
        assert other.blob == BLOB

    def test_wave_crosses_a_line(self):
        net, apps = build(line_positions(4))
        apps[net.addresses[0]].install(1, BLOB)
        net.run(for_s=3600.0)
        assert dissemination_complete(apps, 1)
        for app in apps.values():
            assert app.blob == BLOB

    def test_each_transfer_is_single_hop(self):
        # Epidemic spread means nobody ever forwards XL_DATA: every
        # reliable transfer runs between radio neighbours.
        net, apps = build(line_positions(4))
        apps[net.addresses[0]].install(1, BLOB)
        net.run(for_s=3600.0)
        assert dissemination_complete(apps, 1)
        assert all(n.stats.data_forwarded == 0 for n in net.nodes)

    def test_grid_dissemination(self):
        net, apps = build(grid_positions(3, 3, spacing_m=100.0))
        apps[net.addresses[4]].install(2, BLOB)  # seed at the centre
        net.run(for_s=3600.0)
        assert dissemination_complete(apps, 2)

    def test_version_upgrade_propagates(self):
        net, apps = build(line_positions(3))
        apps[net.addresses[0]].install(1, b"v1" + bytes(300))
        net.run(for_s=2400.0)
        assert dissemination_complete(apps, 1)
        apps[net.addresses[2]].install(2, b"v2" + bytes(300))  # new seed, other end
        net.run(for_s=2400.0)
        assert dissemination_complete(apps, 2)
        assert apps[net.addresses[0]].blob.startswith(b"v2")

    def test_stale_blob_ignored(self):
        net, apps = build(line_positions(2, spacing_m=80.0))
        a = apps[net.addresses[0]]
        a.install(5, BLOB)
        a._handle_blob(decode_ota(encode_blob(3, b"old")))
        assert a.version == 5
        assert a.stats.stale_blobs_ignored == 1

    def test_install_is_idempotent(self):
        net, apps = build(line_positions(2, spacing_m=80.0))
        a = apps[net.addresses[0]]
        a.install(1, BLOB)
        a.install(1, b"different")
        assert a.blob == BLOB
        assert a.stats.installs == 1

    def test_request_holdoff_limits_begging(self):
        # A node hearing two adverts back-to-back requests only once.
        net, apps = build(line_positions(3, spacing_m=80.0))
        middle = apps[net.addresses[1]]
        middle_node = net.node(net.addresses[1])
        apps[net.addresses[0]].install(1, BLOB)
        apps[net.addresses[2]].install(1, BLOB)
        # Deliver two adverts within the holdoff window.
        from repro.net.mesher import AppMessage

        middle._on_message(
            AppMessage(src=net.addresses[0], payload=encode_advert(1, len(BLOB)),
                       received_at=net.sim.now, reliable=False)
        )
        middle._on_message(
            AppMessage(src=net.addresses[2], payload=encode_advert(1, len(BLOB)),
                       received_at=net.sim.now, reliable=False)
        )
        assert middle.stats.requests_sent == 1

    def test_serves_queue_sequentially(self):
        net, apps = build(line_positions(3, spacing_m=80.0))
        seed_app = apps[net.addresses[1]]  # middle can hear both ends
        seed_app.install(1, BLOB)
        net.run(for_s=1200.0)
        assert dissemination_complete(apps, 1)
        # The middle node served both neighbours, one at a time.
        assert seed_app.stats.transfers_completed == 2

    def test_dissemination_survives_loss(self):
        import random as _random

        loss_rng = _random.Random(9)
        net = MeshNetwork.from_positions(
            line_positions(3),
            config=FAST,
            seed=8,
            loss_injector=lambda tx, rx: loss_rng.random() < 0.10,
        )
        net.run_until_converged(timeout_s=3600.0)
        apps = deploy_ota(net.nodes, advert_period_s=60.0, seed=8)
        apps[net.addresses[0]].install(1, BLOB)
        net.run(for_s=2 * 3600.0)
        assert dissemination_complete(apps, 1)

    def test_app_coexists_with_user_callback(self):
        net = MeshNetwork.from_positions(line_positions(2, spacing_m=80.0), config=FAST, seed=3)
        net.run_until_converged(timeout_s=600.0)
        got = []
        b = net.nodes[1]
        b.on_message = got.append
        deploy_ota(net.nodes, seed=3)
        net.nodes[0].send_datagram(b.address, b"user traffic")
        net.run(for_s=60.0)
        assert any(m.payload == b"user traffic" for m in got)
