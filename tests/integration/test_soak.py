"""Soak test: a realistic network runs for a simulated day.

One test, many invariants: a 12-node random mesh with fading, periodic
traffic, a reliable bulk transfer, two node failures with recovery, and
a mobile node — run for 24 simulated hours while asserting the global
invariants that must hold at *any* point of *any* run:

* no node ever exceeds its regulatory duty cycle,
* queue depths stay bounded (no leak),
* reliable outcomes all resolve,
* the trace's conservation law holds: delivered + in-flight <= sent
  (per flow, unique sequence numbers),
* the network is functional at the end (fresh datagram delivered).

Marked slow-ish (~10 s wall clock) but deterministic.
"""

import random

import pytest

from repro import MeshNetwork, MesherConfig
from repro.metrics.collect import FlowRecorder, attach_recorder
from repro.metrics.health import network_health
from repro.phy.fading import BlockFadingPathLoss
from repro.phy.link import LinkBudget
from repro.phy.pathloss import LogDistancePathLoss
from repro.topology.graphs import is_connected
from repro.topology.mobility import FailureSchedule, RandomWaypoint
from repro.topology.placement import random_positions
from repro.workload.traffic import PeriodicSender

CONFIG = MesherConfig(
    hello_period_s=60.0,
    route_timeout_s=240.0,
    purge_period_s=30.0,
    send_queue_capacity=32,
)


def _connected_random_positions(n, seed):
    budget = LinkBudget(LogDistancePathLoss())
    rng = random.Random(seed)
    for _ in range(60):
        positions = random_positions(
            n, width_m=420.0, height_m=320.0, rng=rng, min_separation_m=40.0
        )
        if is_connected(positions, budget, CONFIG.lora):
            return positions
    raise RuntimeError("no connected placement found")


@pytest.mark.slow
def test_one_simulated_day_soak():
    positions = _connected_random_positions(12, seed=60)
    net = MeshNetwork.from_positions(
        positions,
        config=CONFIG,
        seed=61,
        trace_enabled=False,
        pathloss_factory=lambda sim, rngs: BlockFadingPathLoss(
            LogDistancePathLoss(),
            sim,
            coherence_time_s=300.0,
            sigma_db=2.0,
            seed=rngs.derive_seed("fading"),
        ),
    )
    assert net.run_until_converged(timeout_s=4 * 3600.0) is not None

    sink = net.nodes[0]
    # Capture reliable deliveries by callback: the sink's bounded inbox
    # (64 entries, as on the MCU) will overflow under a day of sensor
    # reports, which is expected behaviour, not a test failure.
    reliable_deliveries = []
    sink.on_message = lambda m: reliable_deliveries.append(m) if m.reliable else None
    recorder = FlowRecorder()
    for node in net.nodes:
        attach_recorder(recorder, node)

    # Periodic sensor traffic from everyone to the sink.
    senders = [
        PeriodicSender(
            net.sim, node.address, sink.address, node.send_datagram,
            period_s=600.0, listener=recorder, rng=random.Random(node.address),
        )
        for node in net.nodes[1:]
    ]

    # A couple of failures with recovery.
    schedule = FailureSchedule(net.sim)
    t0 = net.sim.now
    schedule.fail_at(t0 + 4 * 3600.0, net.nodes[3])
    schedule.recover_at(t0 + 6 * 3600.0, net.nodes[3])
    schedule.fail_at(t0 + 10 * 3600.0, net.nodes[7])
    schedule.recover_at(t0 + 13 * 3600.0, net.nodes[7])

    # One roaming node.
    walker = net.nodes[-1]
    mobility = RandomWaypoint(
        net.sim, walker, area=(0.0, 0.0, 420.0, 320.0),
        speed_mps=1.0, pause_s=300.0, rng=random.Random(5),
    )
    mobility.start()

    # A reliable bulk transfer mid-run.
    bulk_outcome = {}
    payload = random.Random(2).randbytes(4000)

    def start_bulk():
        net.nodes[2].send_reliable(
            sink.address, payload, lambda ok, why: bulk_outcome.update(ok=ok, why=why)
        )

    net.sim.schedule_at(t0 + 2 * 3600.0, start_bulk)

    # ------------------------------------------------------------------
    # Run the day in hourly slices, checking invariants at each.
    # ------------------------------------------------------------------
    for hour in range(24):
        net.run(for_s=3600.0)
        now = net.sim.now
        for node in net.nodes:
            if not node.radio.powered:
                continue
            duty = node.duty.window_utilisation(now)
            assert duty <= node.duty.region.duty_cycle * 1.001, (
                f"hour {hour}: {node.name} duty {duty:.4f}"
            )
            assert len(node.send_queue) <= node.send_queue.capacity
            assert node.reliable.active_inbound <= CONFIG.max_inbound_streams

    for sender in senders:
        sender.stop()
    mobility.stop()
    net.run(for_s=600.0)

    # Traffic conservation and floor.
    assert recorder.total_delivered() <= recorder.total_sent()
    pdr = recorder.aggregate_pdr()
    assert pdr > 0.6, f"soak PDR collapsed to {pdr:.2f}"

    # The bulk transfer resolved (success expected on this channel).
    assert bulk_outcome, "bulk transfer never resolved"
    assert bulk_outcome["ok"], f"bulk transfer failed: {bulk_outcome}"
    assert any(m.payload == payload for m in reliable_deliveries)

    # The network still works at the end of the day.
    probe_src = net.nodes[4]
    assert probe_src.send_datagram(sink.address, b"end of day") or True
    net.run(for_s=300.0)
    health = network_health(net)
    assert health.coverage > 0.8
    assert health.worst_duty <= 0.01 * 1.001

