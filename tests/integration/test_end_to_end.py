"""Whole-stack integration tests: the demo's observable behaviours."""

import random

import pytest

from repro import MeshNetwork, MesherConfig
from repro.metrics import FlowRecorder, attach_recorder
from repro.topology.mobility import FailureSchedule
from repro.topology.placement import campus_positions, grid_positions, line_positions
from repro.workload.probes import make_probe
from repro.workload.traffic import PeriodicSender

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=120.0, purge_period_s=15.0)


class TestConvergence:
    def test_line_converges_and_metrics_match_hops(self):
        net = MeshNetwork.from_positions(line_positions(5), config=FAST, seed=11)
        assert net.run_until_converged(timeout_s=1800.0) is not None
        first = net.nodes[0]
        for hops, address in enumerate(net.addresses[1:], start=1):
            assert first.table.metric(address) == hops

    def test_grid_converges(self):
        net = MeshNetwork.from_positions(grid_positions(3, 3, spacing_m=100.0), config=FAST, seed=12)
        assert net.run_until_converged(timeout_s=1800.0) is not None

    def test_campus_converges(self):
        positions = campus_positions(3, 2, cluster_distance_m=110.0, rng=random.Random(4))
        net = MeshNetwork.from_positions(positions, config=FAST, seed=13)
        assert net.run_until_converged(timeout_s=3600.0) is not None

    def test_convergence_time_grows_with_diameter(self):
        def converge(n, seed):
            net = MeshNetwork.from_positions(line_positions(n), config=FAST, seed=seed)
            return net.run_until_converged(timeout_s=7200.0)

        short = [converge(2, s) for s in range(3)]
        long = [converge(6, s) for s in range(3)]
        assert all(t is not None for t in short + long)
        assert sum(long) / 3 > sum(short) / 3


class TestMultiHopTraffic:
    def test_sustained_bidirectional_traffic_high_pdr(self):
        net = MeshNetwork.from_positions(line_positions(4), config=FAST, seed=21)
        net.run_until_converged(timeout_s=1800.0)
        a, d = net.nodes[0], net.nodes[-1]
        recorder = FlowRecorder()
        attach_recorder(recorder, a)
        attach_recorder(recorder, d)
        senders = [
            PeriodicSender(net.sim, a.address, d.address, a.send_datagram,
                           period_s=60.0, listener=recorder, rng=random.Random(1)),
            PeriodicSender(net.sim, d.address, a.address, d.send_datagram,
                           period_s=60.0, listener=recorder, rng=random.Random(2)),
        ]
        net.run(for_s=3600.0)
        for s in senders:
            s.stop()
        net.run(for_s=120.0)
        assert recorder.aggregate_pdr() > 0.95
        assert recorder.total_duplicates() == 0

    def test_latency_grows_with_hops(self):
        net = MeshNetwork.from_positions(line_positions(5), config=FAST, seed=22)
        net.run_until_converged(timeout_s=3600.0)
        src = net.nodes[0]
        recorder = FlowRecorder()
        for node in net.nodes[1:]:
            attach_recorder(recorder, node)
        for seq, dst in enumerate(net.addresses[1:]):
            for k in range(5):
                recorder.sent(src.address, dst, k, net.sim.now, 24)
                src.send_datagram(dst, make_probe(src.address, k, net.sim.now))
                net.run(for_s=30.0)
        latencies = [
            recorder.flow(src.address, dst).latency.mean for dst in net.addresses[1:]
        ]
        assert all(lat is not None for lat in latencies)
        assert latencies[-1] > latencies[0]  # 4 hops slower than 1 hop

    def test_cross_traffic_does_not_break_delivery(self):
        net = MeshNetwork.from_positions(grid_positions(3, 3, spacing_m=100.0), config=FAST, seed=23)
        net.run_until_converged(timeout_s=3600.0)
        recorder = FlowRecorder()
        for node in net.nodes:
            attach_recorder(recorder, node)
        rng = random.Random(0)
        senders = []
        for i, node in enumerate(net.nodes):
            dst = net.addresses[(i + 4) % len(net.addresses)]
            senders.append(
                PeriodicSender(net.sim, node.address, dst, node.send_datagram,
                               period_s=120.0, listener=recorder,
                               rng=random.Random(100 + i))
            )
        net.run(for_s=3600.0)
        for s in senders:
            s.stop()
        net.run(for_s=180.0)
        assert recorder.aggregate_pdr() > 0.8


class TestReliability:
    def test_bulk_transfer_under_loss_all_hops(self):
        loss_rng = random.Random(99)
        net = MeshNetwork.from_positions(
            line_positions(3),
            config=FAST,
            seed=31,
            loss_injector=lambda tx, rx: loss_rng.random() < 0.10,
        )
        assert net.run_until_converged(timeout_s=3600.0) is not None
        a, c = net.nodes[0], net.nodes[-1]
        payload = random.Random(1).randbytes(3000)
        outcome = []
        a.send_reliable(c.address, payload, lambda ok, why: outcome.append((ok, why)))
        net.run(for_s=1800.0)
        assert outcome and outcome[0][0], f"transfer failed: {outcome}"
        message = c.receive()
        assert message.payload == payload
        assert message.reliable

    def test_many_small_reliable_messages(self):
        net = MeshNetwork.from_positions(line_positions(3), config=FAST, seed=32)
        net.run_until_converged(timeout_s=3600.0)
        a, c = net.nodes[0], net.nodes[-1]
        results = []
        for i in range(10):
            a.send_reliable(c.address, f"msg-{i}".encode(), lambda ok, why: results.append(ok))
            net.run(for_s=60.0)
        net.run(for_s=120.0)
        assert results == [True] * 10
        received = []
        while (m := c.receive()) is not None:
            received.append(m.payload)
        assert sorted(received) == sorted(f"msg-{i}".encode() for i in range(10))


class TestRobustness:
    def test_route_repair_after_relay_death(self):
        # Diamond: two disjoint 2-hop paths between the ends.
        positions = [(0.0, 0.0), (120.0, 45.0), (120.0, -45.0), (240.0, 0.0)]
        net = MeshNetwork.from_positions(positions, config=FAST, seed=41)
        assert net.run_until_converged(timeout_s=3600.0) is not None
        a, d = net.nodes[0], net.nodes[3]
        relay_address = a.table.next_hop(d.address)
        relay = net.node(relay_address)
        schedule = FailureSchedule(net.sim)
        schedule.fail_at(net.sim.now + 10.0, relay)
        # After the stale route times out, hellos teach the other path.
        net.run(for_s=FAST.route_timeout_s + 3 * FAST.hello_period_s + 60.0)
        new_via = a.table.next_hop(d.address)
        assert new_via is not None
        assert new_via != relay_address
        a.send_datagram(d.address, b"rerouted")
        net.run(for_s=60.0)
        assert d.receive().payload == b"rerouted"

    def test_network_partition_and_heal(self):
        net = MeshNetwork.from_positions(line_positions(3), config=FAST, seed=42)
        net.run_until_converged(timeout_s=3600.0)
        a, b, c = net.nodes
        b.fail()  # the only relay dies: a and c are partitioned
        net.run(for_s=FAST.route_timeout_s + 120.0)
        assert not a.table.has_route(c.address)
        b.recover()
        net.run(for_s=300.0)
        assert a.table.has_route(c.address)
        a.send_datagram(c.address, b"healed")
        net.run(for_s=60.0)
        assert c.receive().payload == b"healed"

    def test_late_joiner_becomes_reachable(self):
        net = MeshNetwork.from_positions(line_positions(3), config=FAST, seed=43)
        net.run_until_converged(timeout_s=3600.0)
        late = net.add_node(0x0050, (360.0, 0.0), config=FAST)  # extends the line
        late.start()
        net.run(for_s=600.0)
        first = net.nodes[0]
        assert first.table.metric(0x0050) == 3
        first.send_datagram(0x0050, b"welcome")
        net.run(for_s=60.0)
        assert late.receive().payload == b"welcome"


class TestDutyCycleCompliance:
    def test_whole_network_stays_under_budget(self):
        net = MeshNetwork.from_positions(grid_positions(3, 3, spacing_m=100.0), config=FAST, seed=51)
        net.run_until_converged(timeout_s=3600.0)
        centre = net.node(net.addresses[4])
        senders = [
            PeriodicSender(net.sim, n.address, centre.address, n.send_datagram,
                           period_s=120.0, rng=random.Random(n.address))
            for n in net.nodes if n is not centre
        ]
        net.run(for_s=4 * 3600.0)
        for s in senders:
            s.stop()
        for node in net.nodes:
            utilisation = node.duty.window_utilisation(net.sim.now)
            assert utilisation <= node.duty.region.duty_cycle * 1.001, (
                f"{node.name} at {utilisation:.4f}"
            )
