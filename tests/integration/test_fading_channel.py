"""Integration: the mesh over a time-varying (block-fading) channel.

The protocol's timeouts, retransmissions, and route refresh exist for
channels that breathe — this suite runs the full stack on one and checks
it stays functional where the static channel is trivially fine.
"""

import pytest

from repro import MeshNetwork, MesherConfig
from repro.metrics.collect import FlowRecorder, attach_recorder
from repro.phy.fading import BlockFadingPathLoss
from repro.phy.pathloss import LogDistancePathLoss
from repro.topology.placement import line_positions
from repro.workload.traffic import PeriodicSender
import random

FAST = MesherConfig(hello_period_s=30.0, route_timeout_s=180.0, purge_period_s=15.0)


def fading_net(positions, *, sigma_db=3.0, coherence_s=60.0, seed=0, **kwargs):
    return MeshNetwork.from_positions(
        positions,
        config=FAST,
        seed=seed,
        pathloss_factory=lambda sim, rngs: BlockFadingPathLoss(
            LogDistancePathLoss(),
            sim,
            coherence_time_s=coherence_s,
            sigma_db=sigma_db,
            seed=rngs.derive_seed("fading"),
        ),
        **kwargs,
    )


class TestFadingMesh:
    def test_factory_and_pathloss_are_exclusive(self):
        with pytest.raises(ValueError):
            MeshNetwork.from_positions(
                line_positions(2),
                pathloss=LogDistancePathLoss(),
                pathloss_factory=lambda sim, rngs: LogDistancePathLoss(),
            )

    def test_converges_under_mild_fading(self):
        # 100 m spacing leaves ~3 dB of margin at SF7: mild fading makes
        # links flicker but hellos eventually get through.
        net = fading_net(line_positions(4, spacing_m=100.0), sigma_db=2.0, seed=3)
        assert net.run_until_converged(timeout_s=3600.0) is not None

    @staticmethod
    def _traffic_pdr(config: MesherConfig, seed: int) -> float:
        net = MeshNetwork.from_positions(
            line_positions(3, spacing_m=90.0),
            config=config,
            seed=seed,
            pathloss_factory=lambda sim, rngs: BlockFadingPathLoss(
                LogDistancePathLoss(),
                sim,
                coherence_time_s=60.0,
                sigma_db=3.0,
                seed=rngs.derive_seed("fading"),
            ),
        )
        assert net.run_until_converged(timeout_s=3600.0) is not None
        a, c = net.nodes[0], net.nodes[-1]
        recorder = FlowRecorder()
        attach_recorder(recorder, c)
        sender = PeriodicSender(
            net.sim, a.address, c.address, a.send_datagram,
            period_s=60.0, listener=recorder, rng=random.Random(1),
        )
        net.run(for_s=4 * 3600.0)
        sender.stop()
        net.run(for_s=120.0)
        return recorder.flow(a.address, c.address).pdr

    def test_sustained_traffic_degrades_gracefully(self):
        # Fading periodically opens a transient direct A->C link; the
        # metric-1 route pins to it and goes stale when the fade flips
        # back, so loss is dominated by route staleness, not link loss.
        pdr = self._traffic_pdr(FAST, seed=4)
        assert pdr > 0.4  # degraded, but the mesh keeps delivering

    def test_shorter_route_timeout_tracks_the_channel_better(self):
        # When the route timeout approaches the channel's coherence time,
        # stale transient routes die quickly and PDR recovers — the same
        # trade-off the A3 ablation measures on a static mesh.
        slow = self._traffic_pdr(FAST, seed=4)  # 180 s timeout
        fast = self._traffic_pdr(
            FAST.replace(route_timeout_s=60.0, purge_period_s=10.0), seed=4
        )
        assert fast > slow + 0.05

    def test_reliable_transfer_rides_out_fades(self):
        net = fading_net(line_positions(3, spacing_m=100.0), sigma_db=2.5, seed=6)
        assert net.run_until_converged(timeout_s=3600.0) is not None
        a, c = net.nodes[0], net.nodes[-1]
        payload = random.Random(2).randbytes(1500)
        outcome = []
        a.send_reliable(c.address, payload, lambda ok, why: outcome.append((ok, why)))
        net.run(for_s=3600.0)
        assert outcome and outcome[0][0], f"transfer failed: {outcome}"
        assert c.receive().payload == payload

    def test_routes_adapt_to_channel_evolution(self):
        # Over hours of fading, route churn happens but coverage recovers.
        net = fading_net(line_positions(4, spacing_m=100.0), sigma_db=3.0, seed=7)
        assert net.run_until_converged(timeout_s=7200.0) is not None
        samples = []
        for _ in range(24):
            net.run(for_s=600.0)
            samples.append(net.coverage())
        # The mesh spends most of the time fully covered.
        assert sum(1 for c in samples if c == 1.0) >= len(samples) * 0.5
        assert samples[-1] >= 0.8
