"""Command-line interface.

A small operational surface mirroring what the demo showed on the serial
console, plus planning helpers::

    python -m repro.cli demo                     # the 4-node live demo
    python -m repro.cli simulate --nodes 6 --topology grid --duration 1800
    python -m repro.cli simulate --store run.db  # stream into an event store
    python -m repro.cli serve --store run.db     # live/replay web dashboard
    python -m repro.cli replay --store run.db --speed 60
    python -m repro.cli airtime --payload 24 --sf 7 9 12
    python -m repro.cli plan --spacing 120      # does this placement mesh?

Every subcommand is deterministic for a given ``--seed``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.experiments.report import format_table
from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.phy.airtime import time_on_air
from repro.phy.link import LinkBudget
from repro.phy.modulation import LoRaParams, SpreadingFactor
from repro.phy.pathloss import LogDistancePathLoss
from repro.topology.graphs import connectivity_graph, graph_stats
from repro.topology.placement import grid_positions, line_positions, ring_positions


def _make_positions(topology: str, nodes: int, spacing: float):
    if topology == "line":
        return line_positions(nodes, spacing_m=spacing)
    if topology == "grid":
        side = max(2, round(nodes**0.5))
        rows = (nodes + side - 1) // side
        return grid_positions(rows, side, spacing_m=spacing)[:nodes]
    if topology == "ring":
        return ring_positions(nodes, radius_m=spacing)
    raise ValueError(f"unknown topology {topology!r}")


def _config(args: argparse.Namespace) -> MesherConfig:
    return MesherConfig(
        hello_period_s=args.hello_period,
        route_timeout_s=max(args.route_timeout, args.hello_period * 1.5),
        purge_period_s=max(args.hello_period / 4, 5.0),
    )


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_demo(args: argparse.Namespace) -> int:
    """The paper's demo: 4 nodes, convergence, a routed exchange."""
    config = _config(args)
    net = MeshNetwork.from_positions(line_positions(4), config=config, seed=args.seed)
    print("Converging a 4-node line (120 m spacing, SF7) ...")
    convergence = net.run_until_converged(timeout_s=7200.0)
    if convergence is None:
        print("did not converge", file=sys.stderr)
        return 1
    print(f"converged after {convergence:.0f} s\n")
    print(net.describe())
    a, d = net.nodes[0], net.nodes[-1]
    a.send_datagram(d.address, b"hello mesh")
    net.run(for_s=60.0)
    message = d.receive()
    print(f"\n{d.name} received {message.payload!r} from {message.src:04X}")
    return 0


def _resolve_positions(args: argparse.Namespace):
    """Positions from --layout (a JSON deployment file) or the generator
    flags; returns (positions, layout_or_none)."""
    if getattr(args, "layout", None):
        from repro.topology.layout import load_layout

        layout = load_layout(args.layout)
        return layout.positions(), layout
    return _make_positions(args.topology, args.nodes, args.spacing), None


def _simulate_sharded(args: argparse.Namespace) -> int:
    """`simulate --shards N`: the same scenario on the sharded runner."""
    if args.capture or getattr(args, "trace", None) or getattr(args, "store", None):
        print(
            "error: --capture/--trace/--store need the in-process network "
            "and are not available with --shards > 1",
            file=sys.stderr,
        )
        return 2
    from repro.sim.shard import run_sharded

    positions, layout = _resolve_positions(args)
    config = _config(args)
    if layout is not None:
        config = config.replace(lora=layout.params())
    # Convergence is checked every ~10 s like the serial path, snapped to
    # a whole number of windows (the barrier alignment run_sharded needs).
    window = args.shard_window
    check = window * max(1, round(10.0 / window))
    result = run_sharded(
        positions,
        shards=args.shards,
        config=config,
        seed=args.seed,
        workers=args.shard_workers,
        window_s=window,
        converge_timeout_s=args.duration,
        check_period_s=check,
        extend_to_s=args.duration,
    )
    convergence = result.convergence_s
    rows = [
        (
            s.shard,
            s.nodes,
            s.events,
            s.frames_sent,
            f"{s.airtime_s:.2f}",
            s.exports_sent,
            s.ghosts_received,
            f"{s.busy_s:.2f}",
        )
        for s in result.stats
    ]
    print(
        format_table(
            ["shard", "nodes", "events", "frames", "TX airtime (s)", "exports", "ghosts", "busy (s)"],
            rows,
            title=(
                f"{args.shards} shard(s) x {result.workers} worker(s), "
                f"window {window:g} s, "
                + (
                    f"converged at {convergence:.0f} s"
                    if convergence is not None
                    else "DID NOT CONVERGE"
                )
            ),
        )
    )
    print(
        f"\nfingerprint {result.fingerprint['digest'][:16]}  "
        f"frames={result.frames} bytes={result.bytes} "
        f"boundary exports={result.boundary_exports} "
        f"load imbalance={result.load_imbalance():.2f}"
    )
    return 0 if convergence is not None else 1


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run a mesh and report routing/traffic/duty statistics."""
    if getattr(args, "shards", 1) > 1:
        return _simulate_sharded(args)
    positions, layout = _resolve_positions(args)
    config = _config(args)
    if layout is not None:
        config = config.replace(lora=layout.params())
    trace_path = getattr(args, "trace", None)
    net = MeshNetwork.from_positions(
        positions, config=config, seed=args.seed, trace_enabled=bool(trace_path)
    )
    capture = None
    if args.capture:
        from repro.trace.capture import AirCapture

        capture = AirCapture(net.medium)
    store = recorder = sampler = None
    if getattr(args, "store", None):
        from repro.obs import (
            EventStore,
            MetricsRegistry,
            StoreRecorder,
            TimeSeriesSampler,
            instrument_network,
        )

        store = EventStore(args.store, mode="w")
        store.set_meta("protocol", "mesh")
        store.set_meta("seed", args.seed)
        store.set_meta("n_nodes", len(positions))
        store.set_meta("duration_s", args.duration)
        sampler = TimeSeriesSampler(
            net.sim,
            instrument_network(MetricsRegistry(), net),
            period_s=max(args.duration / 30.0, 60.0),
        )
        sampler.sample_now()  # t=0 baseline point
        recorder = StoreRecorder(store, net, sampler=sampler).attach()
    convergence = net.run_until_converged(timeout_s=args.duration)
    if recorder is not None and convergence is not None:
        recorder.mark("converged", convergence_s=convergence)
    engine = None
    if getattr(args, "workload", None):
        from repro.workload.flows import FlowEngine, build_workload

        engine = FlowEngine(net)
        remaining = max(args.duration - net.sim.now, 60.0)
        engine.add_flows(
            build_workload(
                args.workload,
                [node.address for node in net.nodes],
                args.flows,
                seed=args.seed,
                messages=args.flow_messages,
                payload_bytes=args.flow_payload,
                window_s=remaining / 2.0,
            )
        )
        engine.start()
        if recorder is not None:
            # The engine's managers were created after the recorder
            # tapped the nodes; watch them so stream rows land too.
            for manager in engine.managers():
                recorder.watch_stream_manager(manager)
    remaining = args.duration - net.sim.now
    if remaining > 0:
        net.run(for_s=remaining)

    # Per-node rows come from the metrics registry rather than ad-hoc
    # attribute reads — the same instruments `repro monitor` samples.
    from repro.obs import MetricsRegistry, instrument_network

    registry = instrument_network(MetricsRegistry(), net)
    rows = []
    for node in net.nodes:
        labels = {"node": node.name}
        rows.append(
            (
                node.name,
                int(registry.value("repro_node_routes", labels)),
                int(registry.value("repro_node_frames_sent_total", labels)),
                int(registry.value("repro_node_data_forwarded_total", labels)),
                f"{registry.value('repro_node_tx_airtime_seconds_total', labels):.2f}",
                f"{registry.value('repro_node_duty_utilisation', labels) * 100:.3f}%",
            )
        )
    print(
        format_table(
            ["node", "routes", "frames", "forwarded", "TX airtime (s)", "duty"],
            rows,
            title=(
                f"{args.topology} x{args.nodes}, {args.duration:.0f} s, "
                f"converged at {convergence:.0f} s"
                if convergence is not None
                else f"{args.topology} x{args.nodes}: DID NOT CONVERGE"
            ),
        )
    )
    if engine is not None:
        from repro.obs import MetricsRegistry as _Registry
        from repro.obs.instrument import instrument_flow_engine

        flow_registry = instrument_flow_engine(_Registry(), engine)

        def _pct(kind: str, q: int) -> str:
            value = flow_registry.value(
                "repro_workload_latency_seconds", {"kind": kind, "quantile": str(q)}
            )
            return f"{value:.2f}" if value else "-"

        summary = engine.summary()
        flow_rows = [
            (
                ks.kind,
                ks.flows,
                ks.completed,
                ks.failed,
                _pct(ks.kind, 50),
                _pct(ks.kind, 95),
                _pct(ks.kind, 99),
                f"{ks.goodput_p50_bps:.1f}" if ks.goodput_p50_bps else "-",
            )
            for ks in summary.kinds
        ]
        flow_rows.append(
            (
                "all",
                summary.flows,
                summary.completed,
                summary.failed,
                _pct("all", 50),
                _pct("all", 95),
                _pct("all", 99),
                f"{g:.1f}" if (g := engine.goodput_percentile(50)) else "-",
            )
        )
        print()
        print(
            format_table(
                ["kind", "flows", "done", "failed", "p50 (s)", "p95 (s)", "p99 (s)", "goodput p50 (bps)"],
                flow_rows,
                title=(
                    f"workload {args.workload}: {summary.flows} flows, "
                    f"delivery ratio {summary.delivery_ratio:.3f}"
                ),
            )
        )
    if capture is not None:
        path = capture.export_jsonl(args.capture)
        print(f"\nair capture: {len(capture)} frames written to {path}")
    if trace_path:
        path = net.trace.export_jsonl(trace_path)
        print(f"\ntrace: {len(net.trace)} events written to {path}")
    if recorder is not None and store is not None:
        if sampler is not None:
            sampler.stop()
            sampler.sample_now()  # end-of-run health point
        recorder.detach()
        count = store.count()
        store.close()
        print(
            f"\nevent store: {count} events in {args.store} "
            f"(serve with `repro serve --store {args.store}`)"
        )
    return 0 if convergence is not None else 1


def _sweep_point(point: dict) -> dict:
    """One ``repro sweep`` trial.

    Module-level (not a closure) so ``--workers`` can ship it to worker
    processes; everything the trial needs arrives in the point dict and
    the RNG seed is explicit, so parallel and serial sweeps agree.
    """
    config = MesherConfig(
        hello_period_s=point["hello_period"],
        route_timeout_s=max(point["route_timeout"], point["hello_period"] * 1.5),
        purge_period_s=max(point["hello_period"] / 4, 5.0),
    )
    positions = _make_positions(point["topology"], point["nodes"], point["spacing"])
    net = MeshNetwork.from_positions(
        positions, config=config, seed=point["seed"], trace_enabled=False
    )
    convergence = net.run_until_converged(timeout_s=point["timeout"])
    return {
        "nodes": point["nodes"],
        "seed": point["seed"],
        "convergence_s": convergence,
        "frames": net.total_frames_sent(),
        "bytes": net.total_bytes_sent(),
        "airtime_s": net.total_airtime_s(),
    }


def cmd_sweep(args: argparse.Namespace) -> int:
    """Sweep network sizes with repeated derived seeds, optionally in
    parallel worker processes."""
    from repro.experiments.sweep import derive_seed, run_parallel
    from repro.metrics.stats import mean

    points: List[dict] = []
    for nodes in args.nodes:
        for _ in range(args.repeats):
            points.append(
                {
                    "topology": args.topology,
                    "nodes": nodes,
                    "spacing": args.spacing,
                    "seed": derive_seed(args.seed, len(points)),
                    "hello_period": args.hello_period,
                    "route_timeout": args.route_timeout,
                    "timeout": args.timeout,
                }
            )
    results = run_parallel(points, _sweep_point, workers=args.workers)
    rows = []
    for nodes in args.nodes:
        group = [r for r in results if r["nodes"] == nodes]
        times = [r["convergence_s"] for r in group if r["convergence_s"] is not None]
        rows.append(
            (
                nodes,
                f"{mean(times):.0f}" if times else "timeout",
                f"{len(times)}/{len(group)}",
                f"{mean([float(r['frames']) for r in group]):.0f}",
                f"{mean([float(r['bytes']) for r in group]):.0f}",
                f"{mean([r['airtime_s'] for r in group]):.2f}",
            )
        )
    workers = args.workers or 1
    print(
        format_table(
            ["nodes", "convergence (s)", "converged", "frames", "bytes", "airtime (s)"],
            rows,
            title=(
                f"sweep: {args.topology}, {args.repeats} seed(s)/point, "
                f"{workers} worker(s), master seed {args.seed}"
            ),
        )
    )
    return 0 if all(r["convergence_s"] is not None for r in results) else 1


def cmd_monitor(args: argparse.Namespace) -> int:
    """Run a mesh while sampling health as a time series."""
    from repro.metrics.health import network_health
    from repro.obs import MetricsRegistry, TimeSeriesSampler, instrument_network

    if args.interval <= 0:
        print(f"error: --interval must be positive, got {args.interval:g}")
        return 2
    positions, layout = _resolve_positions(args)
    config = _config(args)
    if layout is not None:
        config = config.replace(lora=layout.params())
    net = MeshNetwork.from_positions(positions, config=config, seed=args.seed, trace_enabled=False)
    registry = instrument_network(MetricsRegistry(), net)
    sampler = TimeSeriesSampler(net.sim, registry, period_s=args.interval)
    sampler.sample_now()  # t=0 baseline point
    net.run(for_s=args.duration)
    sampler.stop()

    rows = []
    for point in sampler.points:
        values = point.values
        depth = sum(v for k, v in values.items() if k.startswith("repro_node_queue_depth"))
        worst_duty = max(
            (v for k, v in values.items() if k.startswith("repro_node_duty_utilisation")),
            default=0.0,
        )
        rows.append(
            (
                f"{point.time_s:.0f}",
                f"{values.get('repro_network_coverage', 0.0) * 100:.1f}%",
                int(values.get("repro_network_frames_total", 0)),
                f"{values.get('repro_network_airtime_seconds_total', 0.0):.2f}",
                int(depth),
                f"{worst_duty * 100:.3f}%",
            )
        )
    print(
        format_table(
            ["t (s)", "coverage", "frames", "airtime (s)", "queued", "worst duty"],
            rows,
            title=(
                f"Sampled health: {args.topology} x{args.nodes}, "
                f"every {args.interval:.0f} s over {args.duration:.0f} s"
            ),
        )
    )
    print()
    print(network_health(net).format())
    if args.csv:
        print(f"\ntime series written to {sampler.export_csv(args.csv)}")
    if args.jsonl:
        print(f"\ntime series written to {sampler.export_jsonl(args.jsonl)}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Run a mesh under the kernel profiler and print the hot spots."""
    from repro.obs import KernelProfiler

    positions, layout = _resolve_positions(args)
    config = _config(args)
    if layout is not None:
        config = config.replace(lora=layout.params())
    net = MeshNetwork.from_positions(positions, config=config, seed=args.seed, trace_enabled=False)
    profiler = KernelProfiler().attach(net.sim)
    net.run(for_s=args.duration)
    profiler.detach()
    print(profiler.format(limit=args.limit))
    print(
        f"\n{net.sim.events_fired} kernel events over {args.duration:.0f} simulated s "
        f"({net.sim.events_fired / args.duration:.1f} events/sim-s)"
    )
    return 0


def cmd_ping(args: argparse.Namespace) -> int:
    """End-to-end reachability/RTT check across a line topology."""
    from repro.apps.ping import Pinger, deploy_responders

    config = _config(args)
    positions = _make_positions(args.topology, args.nodes, args.spacing)
    net = MeshNetwork.from_positions(positions, config=config, seed=args.seed, trace_enabled=False)
    convergence = net.run_until_converged(timeout_s=7200.0)
    if convergence is None:
        print("mesh did not converge", file=sys.stderr)
        return 1
    deploy_responders(net.nodes)
    source, target = net.nodes[0], net.nodes[-1]
    hops = source.table.metric(target.address)
    print(
        f"PING {target.name} from {source.name} "
        f"({hops} hops, converged at {convergence:.0f} s)"
    )
    pinger = Pinger(source)
    result = pinger.ping(target.address, count=args.count, interval_s=args.interval)
    net.run(for_s=args.count * args.interval + 120.0)
    print(result.format())
    return 0 if result.received == result.sent else 1


def cmd_airtime(args: argparse.Namespace) -> int:
    """Time-on-air table for a payload size across spreading factors."""
    rows = []
    for sf_value in args.sf:
        sf = SpreadingFactor(sf_value)
        params = LoRaParams(spreading_factor=sf)
        toa = time_on_air(args.payload, params)
        per_hour = 3600.0 * 0.01 / toa  # EU868 budget
        rows.append((sf.name, f"{toa * 1000:.1f}", f"{per_hour:.0f}"))
    print(
        format_table(
            ["SF", "ToA (ms)", "frames/hour within EU868 1%"],
            rows,
            title=f"{args.payload} B PHY payload, BW125, CR4/5",
        )
    )
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Run an invariant-audited scenario, optionally under churn."""
    import json

    from repro.verify import InvariantChecker, FaultInjector, random_churn_plan

    positions = _make_positions(args.topology, args.nodes, args.spacing)
    config = _config(args)
    net = MeshNetwork.from_positions(
        positions, config=config, seed=args.seed, trace_enabled=False
    )
    checker = InvariantChecker(
        net,
        audit_period_s=args.audit_period,
        strict=True if args.strict else None,
    ).attach()
    injector = None
    if args.churn > 0:
        plan = random_churn_plan(
            net.addresses,
            seed=args.seed,
            start=args.duration * 0.25,
            end=args.duration * 0.75,
            cycles=args.churn,
            down_s=max(config.route_timeout_s, args.duration * 0.1),
        )
        injector = FaultInjector(net, plan, seed=args.seed).arm()
    convergence = net.run_until_converged(timeout_s=args.duration)

    # Light probe traffic so delivery/conservation invariants see data
    # frames, not just the control plane: every node periodically sends
    # a datagram to the node "opposite" it in address order.
    addresses = net.addresses

    def probe_round() -> None:
        for i, addr in enumerate(addresses):
            node = net.node(addr)
            peer = addresses[(i + len(addresses) // 2) % len(addresses)]
            if peer != addr and node.started and node.radio.powered:
                if node.table.has_route(peer):
                    node.send_datagram(peer, b"verify-probe")

    net.sim.periodic(args.traffic_period, probe_round, label="verify probes")
    remaining = args.duration - net.sim.now
    if remaining > 0:
        net.run(for_s=remaining)
    checker.audit()

    summary = checker.summary()
    summary["convergence_s"] = convergence
    summary["nodes"] = args.nodes
    summary["seed"] = args.seed
    if injector is not None:
        summary["fault_events"] = len(injector.plan.events)
        summary["fault_dropped_frames"] = injector.dropped_frames
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 1 if checker.violations else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve the web dashboard over an event store (live or finished)."""
    from repro.obs.dashboard import DashboardServer

    try:
        server = DashboardServer(args.store, host=args.host, port=args.port)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"dashboard for {args.store} at {server.url} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Re-drive a stored time range on the console at adjustable speed."""
    import json
    import time as _time

    from repro.net.addresses import format_address
    from repro.obs.store import EventStore

    try:
        store = EventStore(args.store, mode="r")
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tmin, tmax = store.time_range()
    t0 = args.start if args.start is not None else tmin
    t1 = args.end if args.end is not None else tmax + 1.0
    kinds = set(args.kind) if args.kind else None
    print(
        f"replaying {args.store}: t in [{t0:.0f}, {t1:.0f}) s "
        f"at {args.speed:g}x" + (f", kinds {sorted(kinds)}" if kinds else "")
    )
    shown = 0
    cursor = 0
    prev_t = None
    try:
        while True:
            batch = store.events(after_id=cursor, t0=t0, t1=t1, limit=1000)
            if not batch:
                break
            for event in batch:
                cursor = event.id
                if kinds is not None and event.kind not in kinds:
                    continue
                if args.speed > 0 and prev_t is not None and event.t > prev_t:
                    _time.sleep(min((event.t - prev_t) / args.speed, 5.0))
                prev_t = event.t
                print(
                    f"{event.t:10.3f}s  {event.kind:<9} "
                    f"{_format_event(event, format_address)}"
                )
                shown += 1
                if args.limit is not None and shown >= args.limit:
                    break
            if args.limit is not None and shown >= args.limit:
                break
        print(f"\n{shown} events replayed")
        if args.summary:
            print(json.dumps(store.health_summary(t1), indent=2, sort_keys=True))
    except BrokenPipeError:
        # Reader (head, a pager) went away mid-stream: exit quietly.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    store.close()
    return 0


def _format_event(event, format_address) -> str:
    """One console line per stored event kind."""
    data = event.data
    node = format_address(event.node) if event.node is not None else "-"
    if event.kind == "route":
        return (
            f"{node} {data['event']:<8} dst={format_address(data['dst'])} "
            f"via={format_address(data['via'])} metric={data['metric']}"
        )
    if event.kind == "frame":
        from repro.obs.store import frame_view

        view = frame_view(data, t=event.t, node=event.node)
        return f"{node} {view['kind']:<14} {view['size']:3d}B  {view['summary']}"
    if event.kind == "forward":
        next_hop = data.get("next_hop")
        return (
            f"{node} {data['action']:<8} {format_address(data['src'])}->"
            f"{format_address(data['dst'])}"
            + (f" via {format_address(next_hop)}" if next_hop is not None else "")
        )
    if event.kind == "delivery":
        return f"{node} delivered {data['bytes']}B from {format_address(data['src'])}"
    if event.kind == "violation":
        return f"{node} VIOLATION {data['invariant']}: {data['detail']}"
    if event.kind == "sample":
        return f"registry sample ({len(data.get('values', {}))} series)"
    if event.kind == "marker":
        return f"-- {data.get('phase', '?')} --"
    if event.kind == "stream":
        side = "init" if data.get("initiator") else "resp"
        return (
            f"{node} stream {data['event']:<9} "
            f"peer={format_address(data['peer'])} id={data['stream']} "
            f"{side} seq={data['seq']}"
        )
    return str(data)


def cmd_plan(args: argparse.Namespace) -> int:
    """Connectivity check for a placement before deploying it."""
    positions = _make_positions(args.topology, args.nodes, args.spacing)
    budget = LinkBudget(LogDistancePathLoss())
    if args.auto_sf:
        from repro.topology.planning import minimum_connecting_sf

        chosen = minimum_connecting_sf(positions, budget)
        if chosen is None:
            print("no spreading factor connects this placement; add nodes")
            return 1
        print(f"cheapest connecting spreading factor: {chosen.name}")
        sf_value = int(chosen)
    else:
        sf_value = args.sf[0]
    params = LoRaParams(spreading_factor=SpreadingFactor(sf_value))
    graph = connectivity_graph(positions, budget, params)
    stats = graph_stats(graph)
    print(
        format_table(
            ["metric", "value"],
            [
                ("nodes", stats.nodes),
                ("links", stats.edges),
                ("connected", "yes" if stats.connected else "NO"),
                ("components", stats.components),
                ("diameter (hops)", stats.diameter if stats.connected else "-"),
                ("mean degree", f"{stats.mean_degree:.2f}"),
            ],
            title=f"{args.topology} x{args.nodes} at {args.spacing:.0f} m, SF{sf_value}",
        )
    )
    return 0 if stats.connected else 1


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LoRaMesher reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=0, help="master RNG seed")
        p.add_argument("--hello-period", type=float, default=60.0, help="hello period (s)")
        p.add_argument("--route-timeout", type=float, default=300.0, help="route timeout (s)")

    demo = sub.add_parser("demo", help="run the paper's 4-node demo")
    common(demo)
    demo.set_defaults(func=cmd_demo)

    simulate = sub.add_parser("simulate", help="run a mesh and report statistics")
    common(simulate)
    simulate.add_argument("--nodes", type=int, default=4)
    simulate.add_argument("--topology", choices=("line", "grid", "ring"), default="line")
    simulate.add_argument("--spacing", type=float, default=120.0, help="node spacing (m)")
    simulate.add_argument("--duration", type=float, default=1800.0, help="simulated seconds")
    simulate.add_argument(
        "--capture", metavar="PATH", default=None,
        help="write an air capture (JSON lines) of every frame to PATH",
    )
    simulate.add_argument(
        "--layout", metavar="PATH", default=None,
        help="run a JSON deployment layout instead of a generated topology",
    )
    simulate.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record protocol trace events and write them to PATH as JSON lines",
    )
    simulate.add_argument(
        "--store", metavar="PATH", default=None,
        help="stream every frame, route event, delivery and health sample "
        "into a SQLite event store at PATH (serve it with `repro serve`)",
    )
    simulate.add_argument(
        "--workload", choices=("bursty", "ota", "chat", "mixed"), default=None,
        help="drive a stream-flow workload over the converged mesh and "
        "report per-flow latency/goodput percentiles",
    )
    simulate.add_argument(
        "--flows", type=int, default=100,
        help="concurrent flows for --workload (default: 100)",
    )
    simulate.add_argument(
        "--flow-messages", type=int, default=3,
        help="messages per flow for --workload (default: 3)",
    )
    simulate.add_argument(
        "--flow-payload", type=int, default=32,
        help="payload bytes per message for --workload (default: 32)",
    )
    simulate.add_argument(
        "--shards", type=int, default=1,
        help="partition the mesh into N spatial strips and run them on "
        "the sharded multi-process runner (default: 1 = serial)",
    )
    simulate.add_argument(
        "--shard-workers", type=int, default=None,
        help="worker processes for --shards (default: one per shard; "
        "1 = run every shard in-process)",
    )
    simulate.add_argument(
        "--shard-window", type=float, default=1.0,
        help="conservative window (simulated s) between shard barriers",
    )
    simulate.set_defaults(func=cmd_simulate)

    serve = sub.add_parser(
        "serve", help="serve the web dashboard over an event store"
    )
    serve.add_argument(
        "--store", metavar="PATH", required=True,
        help="event store written by `repro simulate --store` (may still be "
        "growing: the dashboard tails it live)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8437, help="TCP port (0 = any free)")
    serve.set_defaults(func=cmd_serve)

    replay = sub.add_parser(
        "replay", help="re-drive a stored time range on the console"
    )
    replay.add_argument(
        "--store", metavar="PATH", required=True,
        help="event store written by `repro simulate --store`",
    )
    replay.add_argument(
        "--start", type=float, default=None, metavar="T",
        help="start of the replayed range (simulated s; default: store start)",
    )
    replay.add_argument(
        "--end", type=float, default=None, metavar="T",
        help="end of the replayed range (simulated s; default: store end)",
    )
    replay.add_argument(
        "--speed", type=float, default=0.0,
        help="pacing factor: 1 = real time, 10 = 10x, 0 = instant (default)",
    )
    replay.add_argument(
        "--kind", action="append", default=None,
        choices=("frame", "route", "forward", "delivery", "violation", "sample", "trace", "marker", "stream"),
        help="only replay these event kinds (repeatable; default: all)",
    )
    replay.add_argument(
        "--limit", type=int, default=None, help="stop after N printed events"
    )
    replay.add_argument(
        "--summary", action="store_true",
        help="print the end-of-range health summary as JSON",
    )
    replay.set_defaults(func=cmd_replay)

    sweep = sub.add_parser(
        "sweep", help="sweep network sizes over repeated seeds, optionally in parallel"
    )
    common(sweep)
    sweep.add_argument(
        "--nodes", type=int, nargs="+", default=[4, 8, 12], help="network sizes to sweep"
    )
    sweep.add_argument("--topology", choices=("line", "grid", "ring"), default="grid")
    sweep.add_argument("--spacing", type=float, default=120.0, help="node spacing (m)")
    sweep.add_argument("--repeats", type=int, default=3, help="seeds per sweep point")
    sweep.add_argument(
        "--timeout", type=float, default=3600.0, help="convergence timeout (simulated s)"
    )
    sweep.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the sweep (default: serial); results are "
        "identical to a serial run — every point's seed is derived from "
        "the master seed, not from process state",
    )
    sweep.set_defaults(func=cmd_sweep)

    monitor = sub.add_parser(
        "monitor", help="run a mesh and stream sampled time-series health"
    )
    common(monitor)
    monitor.add_argument("--nodes", type=int, default=4)
    monitor.add_argument("--topology", choices=("line", "grid", "ring"), default="line")
    monitor.add_argument("--spacing", type=float, default=120.0, help="node spacing (m)")
    monitor.add_argument("--duration", type=float, default=1800.0, help="simulated seconds")
    monitor.add_argument(
        "--interval", type=float, default=120.0, help="sampling period (simulated s)"
    )
    monitor.add_argument(
        "--csv", metavar="PATH", default=None, help="also export the time series as CSV"
    )
    monitor.add_argument(
        "--jsonl", metavar="PATH", default=None,
        help="also export the time series as JSON lines",
    )
    monitor.add_argument(
        "--layout", metavar="PATH", default=None,
        help="run a JSON deployment layout instead of a generated topology",
    )
    monitor.set_defaults(func=cmd_monitor)

    profile = sub.add_parser(
        "profile", help="profile the simulation kernel and print hot spots"
    )
    common(profile)
    profile.add_argument("--nodes", type=int, default=8)
    profile.add_argument("--topology", choices=("line", "grid", "ring"), default="grid")
    profile.add_argument("--spacing", type=float, default=120.0, help="node spacing (m)")
    profile.add_argument("--duration", type=float, default=1800.0, help="simulated seconds")
    profile.add_argument("--limit", type=int, default=20, help="hot-spot rows to print")
    profile.add_argument(
        "--layout", metavar="PATH", default=None,
        help="run a JSON deployment layout instead of a generated topology",
    )
    profile.set_defaults(func=cmd_profile)

    ping = sub.add_parser("ping", help="end-to-end reachability/RTT check")
    common(ping)
    ping.add_argument("--nodes", type=int, default=4)
    ping.add_argument("--topology", choices=("line", "grid", "ring"), default="line")
    ping.add_argument("--spacing", type=float, default=120.0)
    ping.add_argument("--count", type=int, default=5, help="echo requests to send")
    ping.add_argument("--interval", type=float, default=15.0, help="seconds between requests")
    ping.set_defaults(func=cmd_ping)

    airtime = sub.add_parser("airtime", help="time-on-air table")
    airtime.add_argument("--payload", type=int, default=24, help="PHY payload bytes")
    airtime.add_argument(
        "--sf", type=int, nargs="+", default=[7, 8, 9, 10, 11, 12], help="spreading factors"
    )
    airtime.set_defaults(func=cmd_airtime)

    verify = sub.add_parser(
        "verify", help="run an invariant-audited scenario and report violations"
    )
    common(verify)
    verify.add_argument("--nodes", type=int, default=9)
    verify.add_argument("--topology", choices=("line", "grid", "ring"), default="grid")
    verify.add_argument("--spacing", type=float, default=120.0, help="node spacing (m)")
    verify.add_argument("--duration", type=float, default=3600.0, help="simulated seconds")
    verify.add_argument(
        "--audit-period", type=float, default=30.0,
        help="seconds between full invariant audits",
    )
    verify.add_argument(
        "--traffic-period", type=float, default=120.0,
        help="seconds between probe datagram rounds",
    )
    verify.add_argument(
        "--churn", type=int, default=0, metavar="CYCLES",
        help="inject CYCLES deterministic crash/revive cycles mid-run",
    )
    verify.add_argument(
        "--strict", action="store_true",
        help="raise on the first violation (default: count and report)",
    )
    verify.set_defaults(func=cmd_verify)

    plan = sub.add_parser("plan", help="connectivity check for a placement")
    plan.add_argument("--nodes", type=int, default=4)
    plan.add_argument("--topology", choices=("line", "grid", "ring"), default="line")
    plan.add_argument("--spacing", type=float, default=120.0)
    plan.add_argument("--sf", type=int, nargs="+", default=[7])
    plan.add_argument(
        "--auto-sf", action="store_true",
        help="pick the cheapest spreading factor that connects the placement",
    )
    plan.set_defaults(func=cmd_plan)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
