"""Epidemic over-the-air update dissemination.

A Deluge-style distributed application built **only on the public mesh
API** — single-hop broadcasts, unicast datagrams, and reliable
transfers.  Each node runs the same three rules:

1. **Advertise.**  Periodically broadcast ``ADVERT(version, size)`` to
   radio neighbours (single-hop, cheap).
2. **Request.**  On hearing an advert for a newer version, send
   ``REQUEST(version)`` back to the advertiser — with a hold-off so a
   node doesn't beg multiple neighbours at once.
3. **Serve.**  On a request for the version we hold, push the blob to
   the requester with one reliable transfer.  Serve one requester at a
   time (tiny nodes, tiny queues); an advert goes out right after an
   install so the wave keeps moving.

The blob therefore hops outward neighbour-by-neighbour: total traffic is
one reliable transfer per *node*, each over exactly one hop — instead of
one multi-hop stream per node from the seed, which is what makes the
epidemic pattern cheaper than naive unicast (the E9 bench measures the
gap).

Wire framing (application payloads, invisible to the mesh):

``ADVERT``  = ``b"OTA1" 0x01 version:u32 size:u32``
``REQUEST`` = ``b"OTA1" 0x02 version:u32``
``BLOB``    = ``b"OTA1" 0x03 version:u32`` + firmware bytes (reliable)
"""

from __future__ import annotations

import logging
import random
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.net.mesher import AppMessage, MesherNode
from repro.sim.kernel import PeriodicTimer

logger = logging.getLogger(__name__)

MAGIC = b"OTA1"
_KIND_ADVERT = 0x01
_KIND_REQUEST = 0x02
_KIND_BLOB = 0x03

_ADVERT = struct.Struct("<II")  # version, size
_REQUEST = struct.Struct("<I")  # version
_BLOB_HEADER = struct.Struct("<I")  # version


def encode_advert(version: int, size: int) -> bytes:
    """ADVERT payload bytes."""
    return MAGIC + bytes([_KIND_ADVERT]) + _ADVERT.pack(version, size)


def encode_request(version: int) -> bytes:
    """REQUEST payload bytes."""
    return MAGIC + bytes([_KIND_REQUEST]) + _REQUEST.pack(version)


def encode_blob(version: int, blob: bytes) -> bytes:
    """BLOB payload bytes (sent via the reliable transport)."""
    return MAGIC + bytes([_KIND_BLOB]) + _BLOB_HEADER.pack(version) + blob


@dataclass(frozen=True)
class OtaMessage:
    """A decoded OTA application message."""

    kind: int
    version: int
    size: int = 0
    blob: bytes = b""


def decode_ota(payload: bytes) -> Optional[OtaMessage]:
    """Parse an application payload; None when it is not OTA traffic."""
    if len(payload) < len(MAGIC) + 1 or payload[: len(MAGIC)] != MAGIC:
        return None
    kind = payload[len(MAGIC)]
    body = payload[len(MAGIC) + 1 :]
    try:
        if kind == _KIND_ADVERT:
            version, size = _ADVERT.unpack(body)
            return OtaMessage(kind=kind, version=version, size=size)
        if kind == _KIND_REQUEST:
            (version,) = _REQUEST.unpack(body)
            return OtaMessage(kind=kind, version=version)
        if kind == _KIND_BLOB:
            (version,) = _BLOB_HEADER.unpack_from(body)
            return OtaMessage(
                kind=kind, version=version, size=len(body) - _BLOB_HEADER.size,
                blob=body[_BLOB_HEADER.size :],
            )
    except struct.error:
        return None
    return None


@dataclass
class OtaStats:
    """Per-node application counters."""

    adverts_sent: int = 0
    adverts_heard: int = 0
    requests_sent: int = 0
    requests_served: int = 0
    transfers_started: int = 0
    transfers_completed: int = 0
    transfers_failed: int = 0
    installs: int = 0
    stale_blobs_ignored: int = 0


class OtaNode:
    """The OTA application instance running on one mesh node."""

    #: After requesting, wait this long before begging another neighbour.
    REQUEST_HOLDOFF_S = 90.0

    def __init__(
        self,
        node: MesherNode,
        *,
        advert_period_s: float = 120.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.node = node
        self.version = 0
        self.blob: bytes = b""
        self.stats = OtaStats()
        self._rng = rng or random.Random(node.address)
        self._requested_at: Optional[float] = None
        self._serving = False
        self._serve_queue: list[tuple[int, int]] = []  # (requester, version)

        previous = node.on_message
        node.on_message = lambda message: (self._on_message(message), previous and previous(message))

        spread = 0.25 * advert_period_s
        self._advert_timer = PeriodicTimer(
            node.sim,
            advert_period_s,
            self._send_advert,
            jitter=lambda: self._rng.uniform(-spread, spread),
            label=f"ota advert {node.name}",
        )
        self._advert_timer.start(first_delay=self._rng.uniform(1.0, advert_period_s))

    # ------------------------------------------------------------------
    def install(self, version: int, blob: bytes) -> None:
        """Install a firmware image locally (the seed calls this)."""
        if version <= self.version:
            return
        self.version = version
        self.blob = blob
        self.stats.installs += 1
        self._requested_at = None
        # Spread the news immediately: the epidemic wavefront.
        self._send_advert()

    def stop(self) -> None:
        """Stop advertising (node shutdown)."""
        self._advert_timer.cancel()

    @property
    def up_to_date_with(self) -> int:
        """The version this node currently holds."""
        return self.version

    # ------------------------------------------------------------------
    def _send_advert(self) -> None:
        if self.version == 0 or not self.node.started:
            return
        self.node.broadcast(encode_advert(self.version, len(self.blob)))
        self.stats.adverts_sent += 1

    def _on_message(self, message: AppMessage) -> None:
        ota = decode_ota(message.payload)
        if ota is None:
            return
        if ota.kind == _KIND_ADVERT:
            self._handle_advert(message.src, ota)
        elif ota.kind == _KIND_REQUEST:
            self._handle_request(message.src, ota)
        elif ota.kind == _KIND_BLOB:
            self._handle_blob(ota)

    def _handle_advert(self, src: int, ota: OtaMessage) -> None:
        self.stats.adverts_heard += 1
        if ota.version <= self.version:
            return
        now = self.node.sim.now
        if self._requested_at is not None and now - self._requested_at < self.REQUEST_HOLDOFF_S:
            return  # a transfer should already be coming
        if self.node.send_datagram(src, encode_request(ota.version)):
            self._requested_at = now
            self.stats.requests_sent += 1

    def _handle_request(self, src: int, ota: OtaMessage) -> None:
        if ota.version > self.version or self.version == 0:
            return  # we don't hold what they want
        self._serve_queue.append((src, self.version))
        self._pump_serve()

    def _pump_serve(self) -> None:
        if self._serving or not self._serve_queue:
            return
        requester, version = self._serve_queue.pop(0)
        if version != self.version:
            # We upgraded meanwhile; serve the current image instead.
            version = self.version
        self._serving = True
        self.stats.requests_served += 1
        self.stats.transfers_started += 1
        self.node.send_reliable(
            requester,
            encode_blob(version, self.blob),
            on_complete=self._transfer_done,
        )

    def _transfer_done(self, ok: bool, detail: str) -> None:
        self._serving = False
        if ok:
            self.stats.transfers_completed += 1
        else:
            self.stats.transfers_failed += 1
        self._pump_serve()

    def _handle_blob(self, ota: OtaMessage) -> None:
        if ota.version <= self.version:
            self.stats.stale_blobs_ignored += 1
            return
        self.install(ota.version, ota.blob)


def deploy_ota(
    nodes: Sequence[MesherNode],
    *,
    advert_period_s: float = 120.0,
    seed: int = 0,
) -> Dict[int, OtaNode]:
    """Run the OTA app on every node; returns {address: OtaNode}."""
    rng = random.Random(seed)
    return {
        node.address: OtaNode(
            node,
            advert_period_s=advert_period_s,
            rng=random.Random(rng.getrandbits(32)),
        )
        for node in nodes
    }


def dissemination_complete(apps: Dict[int, OtaNode], version: int) -> bool:
    """Whether every live node holds ``version``."""
    return all(
        app.version >= version for app in apps.values() if app.node.radio.powered
    )
