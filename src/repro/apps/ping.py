"""Mesh ping: end-to-end reachability and RTT measurement.

The diagnostic every network library grows: an echo responder on every
node and a pinger that sends ``ECHO_REQ`` datagrams, matches ``ECHO_REP``
responses, and reports RTT statistics.  Runs purely on the public API;
the reply travels the reverse route, so a ping exercises both directions
of every link on the path.

Framing (application payloads):
``ECHO_REQ`` = ``b"PING" 0x01 ident:u16 seq:u16 sent_at:f64 [padding]``
``ECHO_REP`` = ``b"PING" 0x02 ident:u16 seq:u16 sent_at:f64`` (echoed)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.stats import SummaryStats, summary_stats
from repro.net.mesher import AppMessage, MesherNode
from repro.sim.kernel import EventHandle

MAGIC = b"PING"
_KIND_REQ = 0x01
_KIND_REP = 0x02
_BODY = struct.Struct("<HHd")  # ident, seq, sent_at
MIN_SIZE = len(MAGIC) + 1 + _BODY.size


def encode_echo(kind: int, ident: int, seq: int, sent_at: float, *, size: int = MIN_SIZE) -> bytes:
    """Build an echo request/reply payload, padded to ``size``."""
    if size < MIN_SIZE:
        raise ValueError(f"echo payload must be >= {MIN_SIZE} B")
    head = MAGIC + bytes([kind]) + _BODY.pack(ident, seq, sent_at)
    return head + bytes(size - len(head))


def decode_echo(payload: bytes):
    """Parse an echo payload -> (kind, ident, seq, sent_at) or None."""
    if len(payload) < MIN_SIZE or payload[: len(MAGIC)] != MAGIC:
        return None
    kind = payload[len(MAGIC)]
    if kind not in (_KIND_REQ, _KIND_REP):
        return None
    ident, seq, sent_at = _BODY.unpack_from(payload, len(MAGIC) + 1)
    return kind, ident, seq, sent_at


def install_responder(node: MesherNode) -> None:
    """Make ``node`` answer echo requests (chainable with other hooks)."""
    previous = node.on_message

    def hook(message: AppMessage) -> None:
        decoded = decode_echo(message.payload)
        if decoded is not None and decoded[0] == _KIND_REQ:
            _, ident, seq, sent_at = decoded
            node.send_datagram(
                message.src,
                encode_echo(_KIND_REP, ident, seq, sent_at, size=len(message.payload)),
            )
        if previous is not None:
            previous(message)

    node.on_message = hook


@dataclass
class PingResult:
    """Outcome of one ping run."""

    target: int
    sent: int
    received: int
    rtts_s: List[float] = field(default_factory=list)

    @property
    def loss(self) -> float:
        """Fraction of requests that got no reply."""
        return 1.0 - (self.received / self.sent) if self.sent else 0.0

    @property
    def rtt_stats(self) -> Optional[SummaryStats]:
        """RTT summary, or None when nothing came back."""
        return summary_stats(self.rtts_s) if self.rtts_s else None

    def format(self) -> str:
        """The classic ping summary line."""
        line = (
            f"--- {self.target:04X} ping statistics ---\n"
            f"{self.sent} packets transmitted, {self.received} received, "
            f"{self.loss * 100:.0f}% packet loss"
        )
        if self.rtt_stats:
            s = self.rtt_stats
            line += (
                f"\nrtt min/avg/max = "
                f"{s.minimum * 1000:.0f}/{s.mean * 1000:.0f}/{s.maximum * 1000:.0f} ms"
            )
        return line


class Pinger:
    """Sends echo requests from one node and collects replies.

    The pinger owns an ident so several pingers can share a node; the
    target must run :func:`install_responder` (deploy it on every node
    with :func:`deploy_responders`).
    """

    _next_ident = 0

    def __init__(self, node: MesherNode, *, payload_size: int = 24) -> None:
        self.node = node
        self.payload_size = max(payload_size, MIN_SIZE)
        self.ident = Pinger._next_ident
        Pinger._next_ident = (Pinger._next_ident + 1) % 0x10000
        self._seq = 0
        self._outstanding: Dict[int, float] = {}
        self._results: Dict[int, PingResult] = {}
        previous = node.on_message

        def hook(message: AppMessage) -> None:
            self._on_message(message)
            if previous is not None:
                previous(message)

        node.on_message = hook

    def ping(self, target: int, *, count: int = 1, interval_s: float = 10.0) -> PingResult:
        """Schedule ``count`` echo requests; returns the live result
        object (populate by running the simulation)."""
        result = self._results.setdefault(
            target, PingResult(target=target, sent=0, received=0)
        )
        for i in range(count):
            self.node.sim.schedule(
                i * interval_s, lambda t=target: self._send_one(t), label="ping"
            )
        return result

    def _send_one(self, target: int) -> None:
        result = self._results[target]
        seq = self._seq
        self._seq += 1
        now = self.node.sim.now
        self._outstanding[seq] = now
        result.sent += 1
        self.node.send_datagram(
            target, encode_echo(_KIND_REQ, self.ident, seq, now, size=self.payload_size)
        )

    def _on_message(self, message: AppMessage) -> None:
        decoded = decode_echo(message.payload)
        if decoded is None or decoded[0] != _KIND_REP:
            return
        _, ident, seq, sent_at = decoded
        if ident != self.ident or seq not in self._outstanding:
            return
        del self._outstanding[seq]
        result = self._results.get(message.src)
        if result is None:
            return
        result.received += 1
        result.rtts_s.append(message.received_at - sent_at)


def deploy_responders(nodes) -> None:
    """Install the echo responder on every node."""
    for node in nodes:
        install_responder(node)
