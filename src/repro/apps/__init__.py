"""Distributed applications on top of the mesh.

The paper closes with: *"LoRaMesher can open the possibility for new
distributed applications hosted only on such tiny IoT nodes."*  This
package makes that concrete: applications written purely against the
public node API (datagrams, broadcasts, reliable transfers, the inbox) —
no access to routing internals, exactly like firmware linked against the
library.

* :mod:`repro.apps.ota` — epidemic over-the-air update dissemination:
  one node is seeded with a new firmware blob and the whole mesh
  converges on it, neighbour to neighbour,
* :mod:`repro.apps.ping` — echo responder + pinger: end-to-end
  reachability and RTT measurement (the mesh's diagnostic tool).
"""

from repro.apps.ota import OtaNode, deploy_ota
from repro.apps.ping import Pinger, deploy_responders, install_responder

__all__ = [
    "OtaNode",
    "deploy_ota",
    "Pinger",
    "deploy_responders",
    "install_responder",
]
