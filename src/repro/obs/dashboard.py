"""Streaming web dashboard over an :class:`~repro.obs.store.EventStore`.

The paper's demo is watched on a serial console; this is the
reproduction's equivalent at service scale: a stdlib-only HTTP server
(``http.server`` + server-sent events, no third-party dependencies)
that renders a live topology map, per-node health cards, and the
route-event / invariant-violation feeds straight from a WAL-mode store
— while the simulation is still writing it, or afterwards.

Endpoints
---------

``GET /``                    the single-page dashboard (embedded HTML/JS)
``GET /api/meta``            run metadata + event counts + time range
``GET /api/nodes``           registered nodes with positions
``GET /api/topology?t=``     nodes plus direct links at simulated time t
``GET /api/health?t=``       per-node health cards from the last sample
``GET /api/events?...``      indexed event query (kind/node/t0/t1/after/limit)
``GET /api/summary``         the deterministic whole-run summary
``GET /stream?after=``       SSE live feed (polls the store's WAL tail)
``GET /stream?mode=replay&t0=&t1=&speed=``
                             SSE replay: re-drives a stored time range at
                             ``speed``× sim time (0 = as fast as possible)

Because readers open the store read-only, any number of dashboard
clients can attach to one live store — the load-test scenario the
roadmap asks for.  Every request handler opens its own connection, so
the threaded server needs no connection sharing.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Union
from urllib.parse import parse_qs, urlparse

from repro.obs.store import EventStore, StoredEvent, frame_view

__all__ = ["DashboardServer"]

#: Wall-clock seconds between WAL-tail polls on the live SSE feed.
DEFAULT_POLL_INTERVAL_S = 0.5

#: Events fetched per poll/replay chunk (bounds handler memory).
FEED_CHUNK = 1000

#: Longest wall-clock pause the replay pacer will take between events.
MAX_REPLAY_PAUSE_S = 5.0


def _event_json(event: StoredEvent) -> Dict[str, Any]:
    # Frames are stored raw (payload hex, no decode) for write-side
    # speed; the read side derives the kind/summary the UI shows.
    data = (
        frame_view(event.data, t=event.t, node=event.node)
        if event.kind == "frame"
        else event.data
    )
    return {
        "id": event.id,
        "t": event.t,
        "wall": event.wall,
        "kind": event.kind,
        "node": event.node,
        "data": data,
    }


class _Handler(BaseHTTPRequestHandler):
    """One request; opens its own read-only store connection."""

    server_version = "repro-dashboard/1.0"
    store_path: Path  # set by the concrete subclass DashboardServer builds
    poll_interval_s: float = DEFAULT_POLL_INTERVAL_S

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parsed = urlparse(self.path)
        query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
        try:
            if parsed.path in ("/", "/index.html"):
                self._send_html(_INDEX_HTML)
            elif parsed.path == "/stream":
                self._stream(query)
            elif parsed.path.startswith("/api/"):
                self._api(parsed.path, query)
            else:
                self.send_error(404, "unknown path")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to clean up

    def log_message(self, fmt: str, *args: Any) -> None:
        pass  # keep test/CLI output clean; errors still surface via send_error

    # ------------------------------------------------------------------
    def _open(self) -> EventStore:
        return EventStore(self.store_path, mode="r")

    def _api(self, path: str, query: Dict[str, str]) -> None:
        store = self._open()
        try:
            t = float(query["t"]) if "t" in query else None
            if path == "/api/meta":
                tmin, tmax = store.time_range()
                payload: Any = {
                    "meta": store.meta(),
                    "counts": store.counts_by_kind(),
                    "time_range": [tmin, tmax],
                    "last_id": store.last_id(),
                    "node_count": len(store.nodes()),
                }
            elif path == "/api/nodes":
                payload = store.nodes()
            elif path == "/api/topology":
                payload = store.topology_at(t)
            elif path == "/api/health":
                payload = store.health_summary(t)
            elif path == "/api/events":
                payload = [
                    _event_json(e)
                    for e in store.events(
                        kind=query.get("kind"),
                        node=int(query["node"]) if "node" in query else None,
                        t0=float(query["t0"]) if "t0" in query else None,
                        t1=float(query["t1"]) if "t1" in query else None,
                        after_id=int(query["after"]) if "after" in query else None,
                        limit=min(int(query.get("limit", FEED_CHUNK)), 10000),
                    )
                ]
            elif path == "/api/summary":
                tmin, tmax = store.time_range()
                payload = {
                    "meta": store.meta(),
                    "counts": store.counts_by_kind(),
                    "time_range": [tmin, tmax],
                    "health": store.health_summary(),
                }
            else:
                self.send_error(404, "unknown API path")
                return
            self._send_json(payload)
        finally:
            store.close()

    # ------------------------------------------------------------------
    # Server-sent events
    # ------------------------------------------------------------------
    def _stream(self, query: Dict[str, str]) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        store = self._open()
        try:
            if query.get("mode") == "replay":
                self._stream_replay(store, query)
            else:
                self._stream_live(store, query)
        except (BrokenPipeError, ConnectionResetError):
            pass
        finally:
            store.close()

    def _emit(self, event: StoredEvent) -> None:
        self.wfile.write(
            (
                f"event: {event.kind}\n"
                f"id: {event.id}\n"
                f"data: {json.dumps(_event_json(event), sort_keys=True)}\n\n"
            ).encode()
        )
        self.wfile.flush()

    def _emit_control(self, name: str, payload: Dict[str, Any]) -> None:
        self.wfile.write(
            f"event: {name}\ndata: {json.dumps(payload, sort_keys=True)}\n\n".encode()
        )
        self.wfile.flush()

    def _stream_live(self, store: EventStore, query: Dict[str, str]) -> None:
        """Tail the store: poll the WAL for rows past the cursor.

        Ends (with an ``end`` control event) once the writer has marked
        the run finished *and* the feed is fully drained; until then the
        poll loop idles on heartbeats so a dashboard can attach before
        the simulation even starts producing events.
        """
        cursor = int(query.get("after", 0))
        kind = query.get("kind")
        while True:
            batch = store.events(after_id=cursor, kind=kind, limit=FEED_CHUNK)
            for event in batch:
                self._emit(event)
                cursor = event.id
            if len(batch) < FEED_CHUNK:
                if store.meta().get("finished"):
                    self._emit_control("end", {"last_id": cursor})
                    return
                self.wfile.write(b": ping\n\n")
                self.wfile.flush()
                time.sleep(self.poll_interval_s)

    def _stream_replay(self, store: EventStore, query: Dict[str, str]) -> None:
        """Re-drive a stored time range at ``speed``× simulated time.

        ``speed=10`` plays 10 simulated seconds per wall second;
        ``speed=0`` streams the range with no pacing at all.  Pauses are
        capped so long idle gaps (hello periods at SF12) don't stall the
        feed for minutes.
        """
        tmin, tmax = store.time_range()
        t0 = float(query.get("t0", tmin))
        t1 = float(query.get("t1", tmax + 1.0))
        speed = float(query.get("speed", 0.0))
        kind = query.get("kind")
        self._emit_control("replay-start", {"t0": t0, "t1": t1, "speed": speed})
        cursor = 0
        prev_t: Optional[float] = None
        while True:
            batch = store.events(
                after_id=cursor, kind=kind, t0=t0, t1=t1, limit=FEED_CHUNK
            )
            if not batch:
                break
            for event in batch:
                if speed > 0 and prev_t is not None and event.t > prev_t:
                    time.sleep(min((event.t - prev_t) / speed, MAX_REPLAY_PAUSE_S))
                prev_t = event.t
                self._emit(event)
                cursor = event.id
        self._emit_control("end", {"t0": t0, "t1": t1})

    # ------------------------------------------------------------------
    def _send_json(self, payload: Any) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_html(self, html: str) -> None:
        body = html.encode()
        self.send_response(200)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class DashboardServer:
    """Serves one event store; safe to attach while a run is writing it.

    ``port=0`` picks a free port (what the tests and the CI smoke job
    use); :attr:`url` reports the bound address.  :meth:`start` runs the
    server on a daemon thread, :meth:`serve_forever` blocks (the CLI
    path), :meth:`stop` shuts either down.
    """

    def __init__(
        self,
        store_path: Union[str, Path],
        *,
        host: str = "127.0.0.1",
        port: int = 8437,
        poll_interval_s: float = DEFAULT_POLL_INTERVAL_S,
    ) -> None:
        path = Path(store_path)
        if not path.exists():
            raise FileNotFoundError(f"no event store at {path}")
        handler = type(
            "BoundDashboardHandler",
            (_Handler,),
            {"store_path": path, "poll_interval_s": poll_interval_s},
        )
        self.store_path = path
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/"

    def start(self) -> "DashboardServer":
        """Serve on a background daemon thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever, daemon=True
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (CLI path)."""
        self._server.serve_forever()

    def stop(self) -> None:
        """Shut the server down and release the socket."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


# ----------------------------------------------------------------------
# The single-page dashboard
# ----------------------------------------------------------------------
_INDEX_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro mesh dashboard</title>
<style>
  :root { --bg:#10141a; --panel:#1a212b; --ink:#d7dee8; --dim:#7b8794;
          --accent:#4fb3ff; --ok:#58c28b; --warn:#e0b24f; --bad:#e06c60; }
  * { box-sizing:border-box; }
  body { margin:0; font:14px/1.45 system-ui,sans-serif; background:var(--bg); color:var(--ink); }
  header { display:flex; align-items:baseline; gap:1em; padding:.7em 1em; background:var(--panel); }
  header h1 { font-size:1.05em; margin:0; }
  header .meta { color:var(--dim); font-size:.85em; }
  #controls { margin-left:auto; display:flex; gap:.5em; align-items:center; font-size:.85em; }
  #controls input { width:5.5em; background:var(--bg); color:var(--ink);
                    border:1px solid #2c3642; border-radius:4px; padding:.2em .4em; }
  button { background:var(--accent); color:#06121d; border:0; border-radius:4px;
           padding:.3em .8em; cursor:pointer; font-weight:600; }
  button.secondary { background:#2c3642; color:var(--ink); }
  main { display:grid; grid-template-columns:minmax(340px,1.1fr) 1.4fr;
         grid-template-rows:minmax(300px,auto) minmax(200px,auto); gap:.8em; padding:.8em; }
  section { background:var(--panel); border-radius:8px; padding:.7em .9em; overflow:auto; }
  section h2 { margin:.1em 0 .5em; font-size:.8em; text-transform:uppercase;
               letter-spacing:.08em; color:var(--dim); }
  #map svg { width:100%; height:calc(100% - 2em); min-height:260px; }
  .link { stroke:#31536b; stroke-width:1.5; }
  .node circle { fill:var(--accent); }
  .node text { fill:var(--ink); font-size:10px; text-anchor:middle; }
  #cards { display:grid; grid-template-columns:repeat(auto-fill,minmax(150px,1fr)); gap:.5em; }
  .card { background:var(--bg); border-radius:6px; padding:.5em .6em; font-size:.82em; }
  .card b { display:block; color:var(--accent); margin-bottom:.2em; }
  .card .row { display:flex; justify-content:space-between; color:var(--dim); }
  .card .row span:last-child { color:var(--ink); }
  .duty { height:4px; background:#2c3642; border-radius:2px; margin-top:.35em; }
  .duty i { display:block; height:100%; border-radius:2px; background:var(--ok); }
  .feed { font:12px/1.5 ui-monospace,monospace; white-space:pre-wrap; }
  .feed .v { color:var(--bad); }
  .feed .r { color:var(--ok); }
  .feed .f { color:var(--warn); }
  #status { font-size:.8em; color:var(--dim); }
  #status.live::before { content:"●"; color:var(--ok); margin-right:.35em; }
  #status.replay::before { content:"▶"; color:var(--warn); margin-right:.35em; }
  #status.done::before { content:"■"; color:var(--dim); margin-right:.35em; }
</style>
</head>
<body>
<header>
  <h1>repro mesh dashboard</h1>
  <span class="meta" id="runmeta">loading…</span>
  <span id="status" class="live">connecting</span>
  <div id="controls">
    <label>t0 <input id="rt0" placeholder="start"></label>
    <label>t1 <input id="rt1" placeholder="end"></label>
    <label>speed× <input id="rspeed" value="60"></label>
    <button id="replayBtn">Replay</button>
    <button id="liveBtn" class="secondary">Live</button>
  </div>
</header>
<main>
  <section id="map"><h2>Topology</h2><svg viewBox="0 0 100 100" preserveAspectRatio="xMidYMid meet"></svg></section>
  <section><h2>Per-node health <span id="healthT" class="meta"></span></h2><div id="cards"></div></section>
  <section><h2>Route events</h2><div id="routes" class="feed"></div></section>
  <section><h2>Violations &amp; forwarding</h2><div id="alerts" class="feed"></div></section>
</main>
<script>
"use strict";
const $ = (s) => document.querySelector(s);
const hex = (a) => a == null ? "?" : "0x" + a.toString(16).padStart(4, "0").toUpperCase();
let source = null, lastId = 0, topoDirty = false;

async function fetchJSON(url) { const r = await fetch(url); if (!r.ok) throw new Error(url); return r.json(); }

async function refreshMeta() {
  const m = await fetchJSON("/api/meta");
  const meta = m.meta || {};
  $("#runmeta").textContent =
    `${m.node_count} nodes · ${Object.values(m.counts).reduce((a,b)=>a+b,0)} events · ` +
    `t ∈ [${m.time_range[0].toFixed(0)}, ${m.time_range[1].toFixed(0)}] s` +
    (meta.protocol ? ` · ${meta.protocol}` : "");
  if (!$("#rt0").value) $("#rt0").value = m.time_range[0].toFixed(0);
  if (!$("#rt1").value) $("#rt1").value = m.time_range[1].toFixed(0);
  return m;
}

async function drawTopology(t) {
  const topo = await fetchJSON("/api/topology" + (t != null ? "?t=" + t : ""));
  const svg = $("#map svg");
  if (!topo.nodes.length) { svg.innerHTML = ""; return; }
  const xs = topo.nodes.map(n => n.x), ys = topo.nodes.map(n => n.y);
  const pad = 8, minx = Math.min(...xs), maxx = Math.max(...xs);
  const miny = Math.min(...ys), maxy = Math.max(...ys);
  const sx = (x) => pad + (maxx > minx ? (x - minx) / (maxx - minx) : .5) * (100 - 2 * pad);
  const sy = (y) => pad + (maxy > miny ? (y - miny) / (maxy - miny) : .5) * (100 - 2 * pad);
  const pos = {};
  topo.nodes.forEach(n => pos[n.address] = [sx(n.x), sy(n.y)]);
  let parts = [];
  for (const [a, b] of topo.links) {
    if (pos[a] && pos[b])
      parts.push(`<line class="link" x1="${pos[a][0]}" y1="${pos[a][1]}" x2="${pos[b][0]}" y2="${pos[b][1]}"/>`);
  }
  for (const n of topo.nodes) {
    const [x, y] = pos[n.address];
    parts.push(`<g class="node"><circle cx="${x}" cy="${y}" r="2.6"/>` +
               `<text x="${x}" y="${y - 4}">${n.name}</text></g>`);
  }
  svg.innerHTML = parts.join("");
}

async function drawHealth(t) {
  const h = await fetchJSON("/api/health" + (t != null ? "?t=" + t : ""));
  if (h.t == null) return;
  $("#healthT").textContent =
    ` @ t=${h.t.toFixed(0)} s · coverage ${(h.coverage * 100).toFixed(1)}% · ${h.total_frames} frames`;
  $("#cards").innerHTML = h.nodes.map(n => {
    const duty = Math.min(n.duty_utilisation * 100, 100);
    const col = duty > 80 ? "var(--bad)" : duty > 50 ? "var(--warn)" : "var(--ok)";
    return `<div class="card"><b>${n.name}</b>
      <div class="row"><span>routes</span><span>${n.routes}</span></div>
      <div class="row"><span>nbrs</span><span>${n.neighbours}</span></div>
      <div class="row"><span>sent</span><span>${n.frames_sent}</span></div>
      <div class="row"><span>fwd</span><span>${n.forwarded}</span></div>
      <div class="row"><span>dlvd</span><span>${n.delivered}</span></div>
      <div class="row"><span>queue</span><span>${n.queue_depth}</span></div>
      <div class="row"><span>duty</span><span>${(n.duty_utilisation * 100).toFixed(2)}%</span></div>
      <div class="duty"><i style="width:${duty}%;background:${col}"></i></div></div>`;
  }).join("");
}

function feedLine(el, cls, text) {
  const div = document.createElement("div");
  div.className = cls;
  div.textContent = text;
  el.prepend(div);
  while (el.childElementCount > 80) el.removeChild(el.lastChild);
}

function onEvent(e) {
  const ev = JSON.parse(e.data);
  lastId = Math.max(lastId, ev.id || 0);
  const t = ev.t.toFixed(1).padStart(8);
  if (ev.kind === "route") {
    feedLine($("#routes"), "r",
      `${t}s ${hex(ev.node)} ${ev.data.event} → ${hex(ev.data.dst)} via ${hex(ev.data.via)} metric=${ev.data.metric}`);
    topoDirty = true;
  } else if (ev.kind === "violation") {
    feedLine($("#alerts"), "v", `${t}s ${hex(ev.node)} VIOLATION ${ev.data.invariant}: ${ev.data.detail}`);
  } else if (ev.kind === "forward") {
    feedLine($("#alerts"), "f",
      `${t}s ${hex(ev.node)} ${ev.data.action} ${hex(ev.data.src)}→${hex(ev.data.dst)}` +
      (ev.data.next_hop != null ? ` via ${hex(ev.data.next_hop)}` : ""));
  } else if (ev.kind === "sample") {
    drawHealth(ev.t).catch(() => {});
  } else if (ev.kind === "marker") {
    feedLine($("#alerts"), "", `${t}s — ${ev.data.phase}`);
  }
}

function connect(url, label) {
  if (source) source.close();
  $("#status").className = label;
  $("#status").textContent = label;
  source = new EventSource(url);
  for (const kind of ["frame", "route", "forward", "delivery", "violation", "sample", "trace", "marker", "stream"])
    source.addEventListener(kind, onEvent);
  source.addEventListener("end", () => {
    $("#status").className = "done";
    $("#status").textContent = "feed complete";
    source.close();
    drawTopology().catch(() => {});
    drawHealth().catch(() => {});
  });
  source.onerror = () => { $("#status").textContent = label + " (reconnecting)"; };
}

$("#replayBtn").onclick = () => {
  const t0 = $("#rt0").value, t1 = $("#rt1").value, speed = $("#rspeed").value || "0";
  connect(`/stream?mode=replay&t0=${t0}&t1=${t1}&speed=${speed}`, "replay");
};
$("#liveBtn").onclick = () => connect(`/stream?after=${lastId}`, "live");

setInterval(() => { if (topoDirty) { topoDirty = false; drawTopology().catch(() => {}); } }, 1500);
setInterval(() => refreshMeta().catch(() => {}), 5000);

refreshMeta().then(() => { drawTopology(); drawHealth(); connect("/stream?after=0", "live"); })
  .catch(err => { $("#runmeta").textContent = "failed to load store: " + err; });
</script>
</body>
</html>
"""
