"""Binding live simulation objects into a metrics registry.

This is the bridge that replaces ad-hoc ``node.stats`` field-reads: the
protocol stack keeps its cheap attribute counters, and
:func:`instrument_network` registers callback-backed instruments that
read them on snapshot.  Health reports, the CLI, the sampler, and the
exporters all consume the registry instead of reaching into node
internals.

Works for :class:`~repro.net.api.MeshNetwork` and, degraded gracefully
via ``getattr``, for the baseline networks (flooding/star/AODV nodes
carry a radio but not every protocol counter).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.energy import EnergyModel

#: Metric names registered per node (label ``node=<name>``).
NODE_METRICS = (
    "repro_node_routes",
    "repro_node_neighbours",
    "repro_node_frames_sent_total",
    "repro_node_bytes_sent_total",
    "repro_node_data_delivered_total",
    "repro_node_data_forwarded_total",
    "repro_node_ping_pong_forwards_total",
    "repro_node_no_route_drops_total",
    "repro_node_crc_failures_total",
    "repro_node_queue_depth",
    "repro_node_queue_drops_total",
    "repro_node_duty_utilisation",
    "repro_node_tx_airtime_seconds_total",
    "repro_node_energy_joules_total",
)


def _stat(node, name: str) -> float:
    stats = getattr(node, "stats", None)
    return float(getattr(stats, name, 0)) if stats is not None else 0.0


def instrument_node(
    registry: MetricsRegistry,
    node,
    sim,
    *,
    energy_model: Optional["EnergyModel"] = None,
) -> None:
    """Register callback-backed per-node instruments.

    ``node`` needs a ``radio``; routing table, send queue, duty
    accountant, and protocol stats are read when present so baseline
    nodes instrument too.  Idempotent per (registry, node).
    """
    # Imported lazily: repro.metrics.health consumes this module, so a
    # top-level import of repro.metrics would be circular.
    from repro.metrics.energy import TTGO_LORA32

    model = energy_model or TTGO_LORA32
    labels = {"node": getattr(node, "name", None) or f"{node.address:04X}"}

    def gauge(name, fn, help=""):
        registry.gauge(name, labels=labels, fn=fn, help=help)

    def counter(name, fn, help=""):
        registry.counter(name, labels=labels, fn=fn, help=help)

    table = getattr(node, "table", None)
    if table is not None:
        gauge("repro_node_routes", lambda t=table: t.size,
              help="Routing-table entries")
        gauge("repro_node_neighbours", lambda t=table: len(t.neighbours()),
              help="One-hop neighbours in the routing table")
    counter("repro_node_frames_sent_total", lambda n=node: _stat(n, "frames_sent"),
            help="Frames put on the air")
    counter("repro_node_bytes_sent_total", lambda n=node: _stat(n, "bytes_sent"),
            help="Bytes put on the air")
    counter("repro_node_data_delivered_total", lambda n=node: _stat(n, "data_delivered"),
            help="Data packets delivered to the application")
    counter("repro_node_data_forwarded_total", lambda n=node: _stat(n, "data_forwarded"),
            help="Data packets forwarded for other nodes")
    counter("repro_node_ping_pong_forwards_total", lambda n=node: _stat(n, "ping_pong_forwards"),
            help="Forwards whose next hop was the frame's previous transmitter")
    counter("repro_node_no_route_drops_total", lambda n=node: _stat(n, "no_route_drops"),
            help="Data packets dropped for lack of a route")
    counter("repro_node_crc_failures_total", lambda n=node: _stat(n, "crc_failures"),
            help="Frames discarded by the CRC filter")
    queue = getattr(node, "send_queue", None)
    if queue is not None:
        gauge("repro_node_queue_depth", lambda q=queue: len(q),
              help="Packets waiting in the send queue")
        counter("repro_node_queue_drops_total", lambda q=queue: q.dropped,
                help="Packets dropped by the bounded send queue")
    duty = getattr(node, "duty", None)
    if duty is not None:
        gauge(
            "repro_node_duty_utilisation",
            lambda d=duty, s=sim: d.window_utilisation(s.now),
            help="Duty-cycle window utilisation (0..1)",
        )
    radio = getattr(node, "radio", None)
    if radio is not None:
        counter(
            "repro_node_tx_airtime_seconds_total",
            lambda r=radio: r.tx_airtime_s,
            help="Cumulative transmit airtime (s)",
        )
        counter(
            "repro_node_energy_joules_total",
            lambda r=radio, m=model: m.radio_energy_j(r),
            help="Modelled radio energy spent (J)",
        )


def instrument_network(
    registry: MetricsRegistry,
    net,
    *,
    energy_model: Optional["EnergyModel"] = None,
) -> MetricsRegistry:
    """Register per-node and network-level instruments for ``net``.

    Returns the registry so callers can chain into a sampler.
    """
    sim = net.sim
    for node in net.nodes:
        instrument_node(registry, node, sim, energy_model=energy_model)
    if hasattr(net, "coverage"):
        registry.gauge(
            "repro_network_coverage",
            fn=net.coverage,
            help="Fraction of live ordered node pairs with a route (0..1)",
        )
    if hasattr(net, "total_frames_sent"):
        registry.counter(
            "repro_network_frames_total",
            fn=net.total_frames_sent,
            help="Frames put on the air across the whole network",
        )
    if hasattr(net, "total_airtime_s"):
        registry.counter(
            "repro_network_airtime_seconds_total",
            fn=net.total_airtime_s,
            help="Cumulative transmit airtime across the network (s)",
        )
    registry.gauge(
        "repro_network_nodes",
        fn=lambda n=net: len(n.nodes),
        help="Nodes attached to the network",
    )
    registry.counter(
        "repro_sim_events_total",
        fn=lambda s=sim: s.events_fired,
        help="Kernel events executed",
    )
    registry.gauge(
        "repro_sim_pending_events",
        fn=lambda s=sim: s.pending,
        help="Events still queued in the kernel",
    )
    trace = getattr(net, "trace", None)
    if trace is not None and hasattr(trace, "events_dropped"):
        # Ring overflow in long traced runs used to be visible only in
        # the recorder's repr; exporting it makes silent event loss show
        # up in `repro monitor` and every Prometheus/JSONL export.
        registry.counter(
            "repro_trace_events_dropped_total",
            fn=lambda t=trace: t.events_dropped,
            help="Trace events delivered to listeners but evicted by the capacity-bounded recorder",
        )
    return registry


def instrument_shards(registry: MetricsRegistry, result) -> MetricsRegistry:
    """Bind a finished :class:`~repro.sim.shard.ShardedRunResult` into the
    registry: boundary traffic, per-shard load, and barrier stalls.

    Shard metrics are post-run by nature (the shards lived in worker
    processes), so the instruments read the merged result snapshot.
    """
    for stats in result.stats:
        labels = {"shard": str(stats.shard)}
        registry.gauge(
            "repro_shard_nodes", labels=labels,
            fn=lambda s=stats: s.nodes,
            help="Nodes owned by the shard",
        )
        registry.counter(
            "repro_shard_events_total", labels=labels,
            fn=lambda s=stats: s.events,
            help="Kernel events the shard executed",
        )
        registry.counter(
            "repro_shard_frames_sent_total", labels=labels,
            fn=lambda s=stats: s.frames_sent,
            help="Frames the shard's nodes put on the air",
        )
        registry.counter(
            "repro_shard_boundary_exports_total", labels=labels,
            fn=lambda s=stats: s.exports_sent,
            help="Boundary-crossing frames the shard exported",
        )
        registry.counter(
            "repro_shard_ghosts_injected_total", labels=labels,
            fn=lambda s=stats: s.ghosts_received,
            help="Ghost frames re-aired into the shard at window barriers",
        )
        registry.counter(
            "repro_shard_busy_seconds_total", labels=labels,
            fn=lambda s=stats: s.busy_s,
            help="Wall-clock seconds spent executing the shard's windows",
        )
        registry.counter(
            "repro_shard_barrier_wait_seconds_total", labels=labels,
            fn=lambda s=stats: s.barrier_wait_s,
            help="Wall-clock seconds the shard's worker stalled at window barriers",
        )
    registry.gauge(
        "repro_shard_load_imbalance",
        fn=result.load_imbalance,
        help="max/mean busy wall-clock across shards (1.0 = even)",
    )
    registry.gauge(
        "repro_shard_windows_total",
        fn=lambda r=result: max((s.windows for s in r.stats), default=0),
        help="Conservative windows the run stepped through",
    )
    return registry


def instrument_flows(registry: MetricsRegistry, recorder) -> MetricsRegistry:
    """Bind a :class:`~repro.metrics.collect.FlowRecorder` into the
    registry: aggregate PDR, sent/delivered/duplicate counts."""
    registry.counter(
        "repro_flows_sent_total",
        fn=recorder.total_sent,
        help="Probe packets sent across all flows",
    )
    registry.counter(
        "repro_flows_delivered_total",
        fn=recorder.total_delivered,
        help="Unique probe packets delivered across all flows",
    )
    registry.counter(
        "repro_flows_duplicates_total",
        fn=recorder.total_duplicates,
        help="Duplicate probe deliveries across all flows",
    )
    registry.gauge(
        "repro_flows_pdr",
        fn=recorder.aggregate_pdr,
        help="Aggregate packet-delivery ratio (0..1)",
    )
    return registry


#: Metric names registered by :func:`instrument_flow_engine`.
FLOW_ENGINE_METRICS = (
    "repro_workload_flows_total",
    "repro_workload_flows_active",
    "repro_workload_flows_completed_total",
    "repro_workload_flows_failed_total",
    "repro_workload_messages_sent_total",
    "repro_workload_messages_delivered_total",
    "repro_workload_bytes_delivered_total",
    "repro_workload_latency_seconds",
    "repro_workload_goodput_bps",
    "repro_workload_streams_opened_total",
    "repro_workload_streams_reset_total",
)


def instrument_flow_engine(registry: MetricsRegistry, engine) -> MetricsRegistry:
    """Bind a :class:`~repro.workload.flows.FlowEngine` into the registry.

    Lifecycle counters plus per-kind/per-quantile latency and goodput
    gauges — all callback-backed, so a snapshot taken mid-run reports
    the percentiles over deliveries seen *so far*.
    """
    from repro.workload.flows import WORKLOAD_KINDS

    registry.gauge(
        "repro_workload_flows_total",
        fn=lambda e=engine: len(e.flows),
        help="Flows registered with the engine",
    )
    registry.gauge(
        "repro_workload_flows_active",
        fn=lambda e=engine: e.flows_active,
        help="Flows started and not yet closed",
    )
    registry.counter(
        "repro_workload_flows_completed_total",
        fn=lambda e=engine: e.flows_completed,
        help="Flows that closed cleanly (FIN)",
    )
    registry.counter(
        "repro_workload_flows_failed_total",
        fn=lambda e=engine: e.flows_failed,
        help="Flows that died on SYN failure or mid-stream reset",
    )
    registry.counter(
        "repro_workload_messages_sent_total",
        fn=lambda e=engine: e.messages_sent,
        help="Application messages queued on streams",
    )
    registry.counter(
        "repro_workload_messages_delivered_total",
        fn=lambda e=engine: e.messages_delivered,
        help="Application messages delivered in order, exactly once",
    )
    registry.counter(
        "repro_workload_bytes_delivered_total",
        fn=lambda e=engine: e.bytes_delivered,
        help="Application payload bytes delivered",
    )
    registry.counter(
        "repro_workload_streams_opened_total",
        fn=lambda e=engine: e.stream_counter_total("streams_opened"),
        help="Streams opened across every instrumented node",
    )
    registry.counter(
        "repro_workload_streams_reset_total",
        fn=lambda e=engine: e.stream_counter_total("streams_reset"),
        help="Streams torn down by RESET across every instrumented node",
    )
    for kind in ("all",) + WORKLOAD_KINDS:
        kind_arg = None if kind == "all" else kind
        for q in (50, 95, 99):
            registry.gauge(
                "repro_workload_latency_seconds",
                labels={"kind": kind, "quantile": str(q)},
                fn=lambda e=engine, q=q, k=kind_arg: e.latency_percentile(q, k) or 0.0,
                help="Per-message delivery latency percentile (sim seconds)",
            )
        registry.gauge(
            "repro_workload_goodput_bps",
            labels={"kind": kind, "quantile": "50"},
            fn=lambda e=engine, k=kind_arg: e.goodput_percentile(50, k) or 0.0,
            help="Median per-flow goodput (payload bits per sim second)",
        )
    return registry
