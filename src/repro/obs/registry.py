"""The metrics registry: typed instruments with labelled samples.

Every layer of the stack — nodes, queues, radios, the medium, the kernel
itself — registers instruments here instead of exposing ad-hoc counter
attributes for callers to reach into.  Three instrument types cover the
reproduction's needs:

* :class:`Counter` — a monotonically increasing count (frames sent,
  drops).  Either incremented directly or *callback-backed*, reading a
  live object's counter so existing code keeps its cheap ``+= 1`` paths.
* :class:`Gauge` — a value that goes up and down (queue depth, duty-cycle
  utilisation, routing coverage).  Usually callback-backed.
* :class:`Histogram` — a fixed-bucket distribution (latency, airtime).
  Buckets are cumulative, Prometheus-style, with ``+Inf`` implied.

A :meth:`MetricsRegistry.snapshot` materialises every instrument into
immutable :class:`MetricSample` records; the exporters in
:mod:`repro.obs.export` turn snapshots into Prometheus text or JSONL and
the sampler in :mod:`repro.obs.sampler` turns periodic snapshots into
time series.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default buckets (seconds) for end-to-end delivery latency: LoRa
#: multi-hop latencies span ~100 ms (one SF7 frame) to minutes (duty
#: pacing and retransmissions).
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Default buckets (seconds) for per-frame time on air: SF7/BW125 small
#: frames are tens of ms, SF12 large frames are a few seconds.
AIRTIME_BUCKETS_S: Tuple[float, ...] = (
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

LabelSet = Tuple[Tuple[str, str], ...]


class MetricError(Exception):
    """Misuse of the registry (duplicate registration, bad name, ...)."""


def _freeze_labels(labels: Optional[Mapping[str, str]]) -> LabelSet:
    if not labels:
        return ()
    for key in labels:
        if not _LABEL_RE.match(key):
            raise MetricError(f"invalid label name {key!r}")
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class MetricSample:
    """One instrument's value at snapshot time.

    ``kind`` is ``"counter"``, ``"gauge"``, or ``"histogram"``.  For
    histograms ``value`` is the observation count, ``sum`` the sum of
    observations, and ``buckets`` the cumulative count per upper bound
    (the implicit ``+Inf`` bucket equals ``value``).
    """

    name: str
    kind: str
    labels: LabelSet = ()
    value: float = 0.0
    sum: float = 0.0
    buckets: Tuple[Tuple[float, int], ...] = ()
    help: str = ""

    @property
    def key(self) -> str:
        """Flat ``name{k="v",...}`` identity used by the sampler."""
        if not self.labels:
            return self.name
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return f"{self.name}{{{inner}}}"


class _Instrument:
    """Shared plumbing: identity plus an optional value callback."""

    kind = ""

    def __init__(
        self,
        name: str,
        labels: LabelSet,
        help: str,
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._fn = fn
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current value (invokes the callback for callback-backed ones)."""
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def sample(self) -> MetricSample:
        return MetricSample(
            name=self.name, kind=self.kind, labels=self.labels,
            value=self.value, help=self.help,
        )


class Counter(_Instrument):
    """A monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if self._fn is not None:
            raise MetricError(f"counter {self.name!r} is callback-backed")
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease")
        self._value += amount


class Gauge(_Instrument):
    """A value that can go up and down."""

    kind = "gauge"

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        if self._fn is not None:
            raise MetricError(f"gauge {self.name!r} is callback-backed")
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        if self._fn is not None:
            raise MetricError(f"gauge {self.name!r} is callback-backed")
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Shorthand for ``inc(-amount)``."""
        self.inc(-amount)


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelSet,
        help: str,
        buckets: Sequence[float],
    ) -> None:
        if not buckets:
            raise MetricError(f"histogram {name!r} needs at least one bucket")
        bounds = tuple(sorted(float(b) for b in buckets))
        if len(set(bounds)) != len(bounds):
            raise MetricError(f"histogram {name!r} has duplicate buckets")
        self.name = name
        self.labels = labels
        self.help = help
        self.bounds = bounds
        self._counts = [0] * len(bounds)
        self._count = 0
        self._sum = 0.0

    @property
    def count(self) -> int:
        """Total observations."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._count += 1
        self._sum += value
        index = bisect_left(self.bounds, value)
        if index < len(self._counts):
            self._counts[index] += 1
        # Values above the last bound land only in the implicit +Inf
        # bucket, whose cumulative count is ``self._count``.

    def quantile(self, q: float) -> float:
        """Estimate the ``q`` quantile from bucket boundaries (upper
        bound of the bucket containing the target rank; ``inf`` when the
        rank falls past the last bound)."""
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile {q!r} outside [0, 1]")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, self._counts):
            cumulative += bucket_count
            if cumulative >= rank:
                return bound
        return float("inf")

    def sample(self) -> MetricSample:
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.bounds, self._counts):
            running += bucket_count
            cumulative.append((bound, running))
        return MetricSample(
            name=self.name, kind=self.kind, labels=self.labels,
            value=float(self._count), sum=self._sum,
            buckets=tuple(cumulative), help=self.help,
        )


class MetricsRegistry:
    """Owns every instrument; the single place snapshots come from.

    Registration is keyed by ``(name, labels)`` — registering the same
    identity twice returns the existing instrument (so per-node helpers
    can be called idempotently), but re-registering a name with a
    different instrument type is an error.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelSet], object] = {}
        self._kinds: Dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._kinds

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def counter(
        self,
        name: str,
        *,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> Counter:
        """Register (or fetch) a counter."""
        return self._register(Counter, name, labels, help, fn=fn)

    def gauge(
        self,
        name: str,
        *,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        """Register (or fetch) a gauge."""
        return self._register(Gauge, name, labels, help, fn=fn)

    def histogram(
        self,
        name: str,
        *,
        buckets: Sequence[float],
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> Histogram:
        """Register (or fetch) a fixed-bucket histogram."""
        frozen = _freeze_labels(labels)
        self._check_name(name, "histogram")
        key = (name, frozen)
        existing = self._instruments.get(key)
        if existing is not None:
            return existing  # type: ignore[return-value]
        instrument = Histogram(name, frozen, help, buckets)
        self._instruments[key] = instrument
        return instrument

    def _register(self, cls, name, labels, help, *, fn=None):
        frozen = _freeze_labels(labels)
        self._check_name(name, cls.kind)
        key = (name, frozen)
        existing = self._instruments.get(key)
        if existing is not None:
            return existing
        instrument = cls(name, frozen, help, fn=fn)
        self._instruments[key] = instrument
        return instrument

    def _check_name(self, name: str, kind: str) -> None:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        known = self._kinds.get(name)
        if known is not None and known != kind:
            raise MetricError(f"metric {name!r} already registered as {known}")
        self._kinds[name] = kind

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def get(self, name: str, labels: Optional[Mapping[str, str]] = None):
        """The instrument with this identity, or None."""
        return self._instruments.get((name, _freeze_labels(labels)))

    def snapshot(self) -> List[MetricSample]:
        """Materialise every instrument, sorted by (name, labels)."""
        samples = [inst.sample() for inst in self._instruments.values()]  # type: ignore[attr-defined]
        samples.sort(key=lambda s: (s.name, s.labels))
        return samples

    def value(self, name: str, labels: Optional[Mapping[str, str]] = None) -> float:
        """Shorthand: the current value of one counter/gauge."""
        instrument = self.get(name, labels)
        if instrument is None:
            raise MetricError(f"unknown metric {name!r} with labels {labels!r}")
        return instrument.value  # type: ignore[union-attr]
