"""Unified observability: metrics, time series, profiling, export.

The paper's demo is observed through a serial console; this layer is the
reproduction's equivalent of a proper telemetry stack:

* :mod:`repro.obs.registry` — typed instruments (:class:`Counter`,
  :class:`Gauge`, :class:`Histogram`) in a :class:`MetricsRegistry`,
* :mod:`repro.obs.instrument` — binds live nodes/queues/radios/networks
  into a registry with callback-backed instruments,
* :mod:`repro.obs.sampler` — a kernel process that snapshots the
  registry every N simulated seconds into an exportable time series,
* :mod:`repro.obs.profiler` — wall-clock attribution per event handler
  (the baseline every performance PR cites),
* :mod:`repro.obs.export` — Prometheus text and JSONL exposition,
* :mod:`repro.obs.store` — WAL-mode SQLite event store every run can
  stream into (frames, route events, deliveries, violations, samples),
* :mod:`repro.obs.dashboard` — stdlib HTTP + SSE dashboard serving a
  live topology map, health cards, and replayable event feeds from a
  store, during or after the run.

Quickstart::

    from repro.obs import MetricsRegistry, TimeSeriesSampler, instrument_network

    registry = MetricsRegistry()
    instrument_network(registry, net)
    sampler = TimeSeriesSampler(net.sim, registry, period_s=120.0)
    net.run(for_s=3600)
    sampler.export_csv("health.csv")
"""

from repro.obs.dashboard import DashboardServer
from repro.obs.export import (
    export_jsonl,
    export_prometheus,
    from_jsonl,
    to_jsonl,
    to_prometheus,
)
from repro.obs.instrument import (
    instrument_flows,
    instrument_network,
    instrument_node,
    instrument_shards,
)
from repro.obs.profiler import HotSpot, KernelProfiler
from repro.obs.registry import (
    AIRTIME_BUCKETS_S,
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricSample,
    MetricsRegistry,
)
from repro.obs.sampler import (
    SamplePoint,
    TimeSeriesSampler,
    load_timeseries_csv,
    load_timeseries_jsonl,
)
from repro.obs.store import EventStore, StoredEvent, StoreRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricSample",
    "MetricsRegistry",
    "LATENCY_BUCKETS_S",
    "AIRTIME_BUCKETS_S",
    "SamplePoint",
    "TimeSeriesSampler",
    "load_timeseries_jsonl",
    "load_timeseries_csv",
    "EventStore",
    "StoredEvent",
    "StoreRecorder",
    "DashboardServer",
    "KernelProfiler",
    "HotSpot",
    "instrument_network",
    "instrument_node",
    "instrument_flows",
    "instrument_shards",
    "to_prometheus",
    "to_jsonl",
    "from_jsonl",
    "export_jsonl",
    "export_prometheus",
]
