"""Kernel profiler: wall-clock attribution per event handler.

Attach a :class:`KernelProfiler` to a :class:`~repro.sim.kernel.Simulator`
and every executed event is timed with ``time.perf_counter`` and binned
by its *handler group* — the event label with run-specific digits
normalised away (``"0001 pump"`` and ``"0007 pump"`` both become
``"N pump"``), falling back to the callback's qualified name for
unlabelled events.  The result is the hot-spot table every perf PR must
cite as its baseline: which handlers the simulator actually spends time
in, how often they fire, and their mean/worst cost.

The hook costs two ``perf_counter`` calls per event while attached and
nothing at all when no profiler is set.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.experiments.report import format_table
from repro.sim.kernel import Simulator

_DIGITS = re.compile(r"\d+")


def normalize_label(label: str) -> str:
    """Collapse run-specific digits so per-node labels share one bin."""
    return _DIGITS.sub("N", label)


def callback_name(callback: Callable[[], None]) -> str:
    """Best-effort handler name for an unlabelled event."""
    qualname = getattr(callback, "__qualname__", None)
    if qualname:
        return qualname
    bound = getattr(callback, "__func__", None)
    if bound is not None:
        return getattr(bound, "__qualname__", type(callback).__name__)
    return type(callback).__name__


@dataclass(frozen=True)
class HotSpot:
    """Aggregated cost of one handler group."""

    name: str
    events: int
    total_s: float
    max_s: float

    @property
    def mean_us(self) -> float:
        """Mean handler cost in microseconds."""
        return (self.total_s / self.events) * 1e6 if self.events else 0.0


class _Bin:
    __slots__ = ("events", "total_s", "max_s")

    def __init__(self) -> None:
        self.events = 0
        self.total_s = 0.0
        self.max_s = 0.0


class KernelProfiler:
    """Accumulates per-handler wall-clock cost from the kernel hook."""

    def __init__(self, *, groupby: Callable[[str], str] = normalize_label) -> None:
        self._groupby = groupby
        self._bins: Dict[str, _Bin] = {}
        self._group_cache: Dict[str, str] = {}
        self.total_events = 0
        self.total_s = 0.0
        self._sim: Optional[Simulator] = None

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, sim: Simulator) -> "KernelProfiler":
        """Install this profiler as the kernel's event hook."""
        if sim.profiler is not None and sim.profiler is not self:
            raise RuntimeError("simulator already has a profiler attached")
        sim.profiler = self
        self._sim = sim
        return self

    def detach(self) -> None:
        """Remove the hook (accumulated data remains)."""
        if self._sim is not None and self._sim.profiler is self:
            self._sim.profiler = None
        self._sim = None

    # ------------------------------------------------------------------
    # Recording (called by the kernel)
    # ------------------------------------------------------------------
    def record(self, label: str, callback: Callable[[], None], elapsed_s: float) -> None:
        """Account one executed event. The kernel calls this."""
        key = label or callback_name(callback)
        group = self._group_cache.get(key)
        if group is None:
            group = self._groupby(key)
            self._group_cache[key] = group
        bin_ = self._bins.get(group)
        if bin_ is None:
            bin_ = self._bins[group] = _Bin()
        bin_.events += 1
        bin_.total_s += elapsed_s
        if elapsed_s > bin_.max_s:
            bin_.max_s = elapsed_s
        self.total_events += 1
        self.total_s += elapsed_s

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def table(self) -> List[HotSpot]:
        """Hot spots sorted by total wall-clock cost, hottest first."""
        spots = [
            HotSpot(name=name, events=b.events, total_s=b.total_s, max_s=b.max_s)
            for name, b in self._bins.items()
        ]
        spots.sort(key=lambda s: (-s.total_s, s.name))
        return spots

    def format(self, *, limit: int = 20) -> str:
        """Render the hot-spot table for the CLI / bench output."""
        spots = self.table()
        rows = [
            (
                spot.name,
                spot.events,
                f"{spot.total_s * 1000:.2f}",
                f"{spot.mean_us:.1f}",
                f"{spot.max_s * 1e6:.1f}",
                f"{(spot.total_s / self.total_s * 100) if self.total_s else 0.0:.1f}%",
            )
            for spot in spots[:limit]
        ]
        title = (
            f"Kernel hot spots — {self.total_events} events, "
            f"{self.total_s * 1000:.1f} ms total handler time"
        )
        table = format_table(
            ["handler", "events", "total (ms)", "mean (us)", "max (us)", "share"],
            rows,
            title=title,
        )
        if len(spots) > limit:
            table += f"\n... {len(spots) - limit} more handler groups"
        return table

    def reset(self) -> None:
        """Drop all accumulated data (stays attached)."""
        self._bins.clear()
        self._group_cache.clear()
        self.total_events = 0
        self.total_s = 0.0

    def __repr__(self) -> str:
        return (
            f"KernelProfiler(groups={len(self._bins)}, events={self.total_events}, "
            f"total_s={self.total_s:.6f})"
        )
