"""Periodic time-series sampling of a metrics registry.

A :class:`TimeSeriesSampler` is a sim-kernel process: every ``period_s``
simulated seconds it snapshots the registry and appends one
:class:`SamplePoint` to an in-memory ring.  That turns end-of-run scalars
(coverage, queue depth, duty cycle, PDR) into plottable trajectories —
the substrate convergence studies and regression tracking need.

Histograms are flattened to ``<name>_count`` and ``<name>_sum`` per
point; counters and gauges keep their flat ``name{labels}`` key.  The
ring exports to CSV (one column per key) and JSONL (one point per line),
and :meth:`to_dict` embeds straight into benchmark JSON documents.
"""

from __future__ import annotations

import csv
import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

from repro.obs.registry import MetricsRegistry
from repro.sim.kernel import PeriodicTimer, Simulator


@dataclass(frozen=True)
class SamplePoint:
    """One sampling instant: simulated time plus every flattened value."""

    time_s: float
    values: Dict[str, float]


def _flatten(registry: MetricsRegistry) -> Dict[str, float]:
    values: Dict[str, float] = {}
    for sample in registry.snapshot():
        if sample.kind == "histogram":
            values[f"{sample.key}_count"] = sample.value
            values[f"{sample.key}_sum"] = sample.sum
        else:
            values[sample.key] = sample.value
    return values


class TimeSeriesSampler:
    """Snapshots a registry every ``period_s`` simulated seconds.

    ``capacity`` bounds the ring (oldest points are evicted; the
    ``points_dropped`` counter records how many).  The first sample is
    taken at ``t + period_s``; call :meth:`sample_now` to record an
    explicit point (e.g. at t=0 or at run end).
    """

    def __init__(
        self,
        sim: Simulator,
        registry: MetricsRegistry,
        *,
        period_s: float = 60.0,
        capacity: Optional[int] = None,
        autostart: bool = True,
    ) -> None:
        if period_s <= 0:
            raise ValueError(f"period_s must be positive, got {period_s!r}")
        self._sim = sim
        self.registry = registry
        self.period_s = period_s
        self.capacity = capacity
        self.points_dropped = 0
        self._ring: Deque[SamplePoint] = deque(maxlen=capacity)
        self._timer: Optional[PeriodicTimer] = None
        self._listeners: List[Callable[[SamplePoint], None]] = []
        if autostart:
            self.start()

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the periodic sampling timer (idempotent)."""
        if self._timer is None or not self._timer.active:
            self._timer = self._sim.periodic(
                self.period_s, self.sample_now, label="obs sampler"
            )

    def stop(self) -> None:
        """Stop sampling; recorded points remain."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def sample_now(self) -> SamplePoint:
        """Record one point at the current simulated instant."""
        point = SamplePoint(time_s=self._sim.now, values=_flatten(self.registry))
        if self.capacity is not None and len(self._ring) == self.capacity:
            self.points_dropped += 1
        self._ring.append(point)
        for listener in self._listeners:
            listener(point)
        return point

    def subscribe(self, listener: Callable[[SamplePoint], None]) -> None:
        """Call ``listener`` with every new :class:`SamplePoint`.

        This is how the event store streams samples out of the ring as
        they happen instead of re-reading it at run end; listeners see
        even points the capacity-bounded ring later evicts.
        """
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def points(self) -> List[SamplePoint]:
        """All retained points, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def keys(self) -> List[str]:
        """Every flattened metric key seen across retained points."""
        seen: Dict[str, None] = {}
        for point in self._ring:
            for key in point.values:
                seen.setdefault(key)
        return list(seen)

    def series(self, key: str) -> List[Tuple[float, float]]:
        """One metric's trajectory as ``[(t, value), ...]``."""
        return [
            (p.time_s, p.values[key]) for p in self._ring if key in p.values
        ]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (embedded in benchmark documents)."""
        return {
            "period_s": self.period_s,
            "points_dropped": self.points_dropped,
            "samples": [
                {"t": p.time_s, "values": dict(p.values)} for p in self._ring
            ],
        }

    def export_jsonl(self, path: Union[str, Path]) -> Path:
        """One JSON object per sample point; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            for point in self._ring:
                handle.write(
                    json.dumps({"t": point.time_s, "values": point.values}, sort_keys=True)
                    + "\n"
                )
        return path

    def export_csv(self, path: Union[str, Path]) -> Path:
        """Wide CSV: a ``time_s`` column plus one column per metric key."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        keys = self.keys()
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["time_s", *keys])
            for point in self._ring:
                writer.writerow(
                    [point.time_s, *[point.values.get(k, "") for k in keys]]
                )
        return path

    def __repr__(self) -> str:
        return (
            f"TimeSeriesSampler(period_s={self.period_s}, points={len(self._ring)}, "
            f"dropped={self.points_dropped})"
        )


# ----------------------------------------------------------------------
# Reload
# ----------------------------------------------------------------------
def load_timeseries_jsonl(path: Union[str, Path]) -> List[SamplePoint]:
    """Reload :meth:`TimeSeriesSampler.export_jsonl` output.

    The reconstructed points compare equal to the originals even when
    series keys appear mid-run (each line carries exactly the keys its
    point had) — the loss-free round trip the event store's import
    bridge relies on.
    """
    points: List[SamplePoint] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        points.append(
            SamplePoint(
                time_s=float(record["t"]),
                values={k: float(v) for k, v in record["values"].items()},
            )
        )
    return points


def load_timeseries_csv(path: Union[str, Path]) -> List[SamplePoint]:
    """Reload :meth:`TimeSeriesSampler.export_csv` output.

    The wide CSV pads ragged series (keys that appeared mid-run) with
    empty cells; those cells are dropped on reload, restoring each
    point's original key set.
    """
    points: List[SamplePoint] = []
    with Path(path).open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            return points
        keys = header[1:]
        for row in reader:
            values = {
                key: float(cell) for key, cell in zip(keys, row[1:]) if cell != ""
            }
            points.append(SamplePoint(time_s=float(row[0]), values=values))
    return points
