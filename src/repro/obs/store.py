"""Persistent event store: every packet, route change, and health sample.

The paper demonstrates its library through a *live monitoring demo* —
watching routes form and traffic flow is the artifact.  This module is
the production-scale version of that console: a WAL-mode SQLite store
that a simulation **writer** streams into while any number of dashboard
**readers** (``repro.obs.dashboard``, ``repro serve``, ad-hoc scripts)
query it concurrently, live or after the run.

Design
------

* **Single writer, buffered batch commits.**  :class:`EventStore` in
  write mode owns the only writing connection; appends accumulate in a
  Python list and are flushed with one ``executemany`` + commit every
  ``batch_size`` events (and on :meth:`flush`/:meth:`close`).  WAL mode
  means readers never block the writer and vice versa.
* **One events table, JSON payloads.**  Every record is
  ``(t, wall, kind, node, data)`` where ``t`` is the *simulated* clock,
  ``wall`` the wall-clock offset since the run started (diagnostic
  only — nothing derived from it feeds back into results), ``kind`` one
  of the ``KIND_*`` constants, and ``data`` a JSON object.  Indexes on
  time, kind and node back the dashboard's range/feed queries; they are
  built when the writer closes (per-insert index maintenance would cost
  more than the inserts), while live tailing rides the integer primary
  key.
* **Outcome-invisible recording.**  :class:`StoreRecorder` attaches to
  a network purely through observer taps (``on_route_event``,
  ``on_forward_decision``, ``on_app_delivery``, the medium sniffer
  hook, trace listeners, sampler subscribers, and the invariant
  checker's violation hook).  None of them mutate protocol state, so a
  stored run has the identical fingerprint of an unstored one — the
  determinism tests assert exactly that.
* **JSONL bridges.**  Frame events round-trip with the existing
  :func:`repro.trace.capture.load_capture_jsonl` format, and sample
  events with :meth:`repro.obs.sampler.TimeSeriesSampler.export_jsonl`
  / :func:`repro.obs.sampler.load_timeseries_jsonl`, so existing
  offline tooling keeps working against stored runs.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "EventStore",
    "StoredEvent",
    "StoreRecorder",
    "frame_view",
    "KIND_FRAME",
    "KIND_ROUTE",
    "KIND_FORWARD",
    "KIND_DELIVERY",
    "KIND_VIOLATION",
    "KIND_SAMPLE",
    "KIND_TRACE",
    "KIND_MARKER",
    "KIND_STREAM",
]

SCHEMA_VERSION = 1

#: Event kinds written by :class:`StoreRecorder` (free-form kinds are
#: allowed for external importers, but the dashboard knows these).
KIND_FRAME = "frame"  # one completed transmission (air-capture shape)
KIND_ROUTE = "route"  # routing-table add/update/remove at one node
KIND_FORWARD = "forward"  # forwarding decision (forwarded / no-route)
KIND_DELIVERY = "delivery"  # application-layer delivery at one node
KIND_VIOLATION = "violation"  # confirmed invariant violation
KIND_SAMPLE = "sample"  # one flattened registry snapshot
KIND_TRACE = "trace"  # raw protocol trace event (when tracing is on)
KIND_MARKER = "marker"  # run lifecycle (started / converged / finished)
KIND_STREAM = "stream"  # stream lifecycle/delivery event at one node

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS nodes (
    address INTEGER PRIMARY KEY,
    name    TEXT NOT NULL,
    x       REAL NOT NULL,
    y       REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS events (
    id   INTEGER PRIMARY KEY,
    t    REAL NOT NULL,
    wall REAL,
    kind TEXT NOT NULL,
    node INTEGER,
    data TEXT NOT NULL
);
"""

# Secondary indexes are built once at close() rather than maintained per
# insert — they cost more than the row insert itself on the write path.
# Live readers don't miss them: the tail-follow query (id > cursor) is
# served by the integer primary key.
_INDEXES = """
CREATE INDEX IF NOT EXISTS idx_events_t ON events (t);
CREATE INDEX IF NOT EXISTS idx_events_kind ON events (kind, t);
CREATE INDEX IF NOT EXISTS idx_events_node ON events (node, t);
"""


@dataclass(frozen=True)
class StoredEvent:
    """One row of the events table, payload decoded."""

    id: int
    t: float
    wall: Optional[float]
    kind: str
    node: Optional[int]
    data: Dict[str, Any]


class EventStore:
    """WAL-mode SQLite store of simulation events.

    ``mode`` is ``"w"`` (create/truncate; the single writer), ``"a"``
    (append to an existing store or create one), or ``"r"`` (read-only —
    what dashboard readers use; safe while a writer is live).
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        mode: str = "w",
        batch_size: int = 256,
    ) -> None:
        if mode not in ("w", "a", "r"):
            raise ValueError(f"mode must be 'w', 'a' or 'r', got {mode!r}")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.path = Path(path)
        self.mode = mode
        self.batch_size = batch_size
        self._committed = 0
        #: Write buffer of (t, wall, kind, node, data_json) rows.  The
        #: hot recording paths append to it directly (see StoreRecorder)
        #: — anything added here is picked up by the next flush.
        self._buffer: List[Tuple[float, Optional[float], str, Optional[int], str]] = []
        if mode == "r":
            if not self.path.exists():
                raise FileNotFoundError(f"no event store at {self.path}")
            self._conn = sqlite3.connect(
                f"file:{self.path}?mode=ro", uri=True, timeout=5.0
            )
        else:
            if mode == "w" and self.path.exists():
                self.path.unlink()
                for suffix in ("-wal", "-shm"):
                    side = Path(str(self.path) + suffix)
                    if side.exists():
                        side.unlink()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._conn = sqlite3.connect(self.path, timeout=5.0)
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )
            self._conn.commit()

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def append(
        self,
        t: float,
        kind: str,
        data: Dict[str, Any],
        *,
        node: Optional[int] = None,
        wall: Optional[float] = None,
    ) -> None:
        """Buffer one event; committed every ``batch_size`` appends."""
        self._check_writable()
        self._buffer.append((t, wall, kind, node, json.dumps(data, sort_keys=True)))
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def append_encoded(
        self,
        t: float,
        kind: str,
        data_json: str,
        *,
        node: Optional[int] = None,
        wall: Optional[float] = None,
    ) -> None:
        """:meth:`append` for callers that pre-encoded the JSON payload.

        The hot recording paths (one call per transmitted frame) build
        their payload with an f-string; skipping ``json.dumps`` here is
        most of what keeps store overhead in budget.
        """
        self._check_writable()
        self._buffer.append((t, wall, kind, node, data_json))
        if len(self._buffer) >= self.batch_size:
            self.flush()

    @property
    def appended(self) -> int:
        """Events appended through this store instance."""
        return self._committed + len(self._buffer)

    def flush(self) -> None:
        """Commit the buffer plus any pending un-committed writes."""
        self._check_writable()
        if self._buffer:
            self._conn.executemany(
                "INSERT INTO events (t, wall, kind, node, data) VALUES (?, ?, ?, ?, ?)",
                self._buffer,
            )
            self._committed += len(self._buffer)
            self._buffer.clear()
        # Always commit: add_node defers its commit to the next flush,
        # and sqlite3 would roll an open transaction back on close().
        self._conn.commit()

    def set_meta(self, key: str, value: Any) -> None:
        """Record one run-metadata entry (committed immediately)."""
        self._check_writable()
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            (key, json.dumps(value, sort_keys=True)),
        )
        self._conn.commit()

    def add_node(self, address: int, name: str, x: float, y: float) -> None:
        """Register one node (address, display name, planar position).

        Commits lazily on the next :meth:`flush` — registering an
        n=300 deployment is one transaction, not 300.
        """
        self._check_writable()
        self._conn.execute(
            "INSERT OR REPLACE INTO nodes (address, name, x, y) VALUES (?, ?, ?, ?)",
            (address, name, float(x), float(y)),
        )

    def ensure_indexes(self) -> None:
        """Build the time/kind/node query indexes (idempotent)."""
        self._check_writable()
        self._conn.executescript(_INDEXES)
        self._conn.commit()

    def close(self) -> None:
        """Flush and index (writers), then close the connection."""
        if self.mode != "r":
            self.flush()
            self.ensure_indexes()
        self._conn.close()

    def __enter__(self) -> "EventStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_writable(self) -> None:
        if self.mode == "r":
            raise sqlite3.OperationalError("store opened read-only")

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def meta(self) -> Dict[str, Any]:
        """Every metadata entry, JSON-decoded where possible."""
        self._autoflush()
        out: Dict[str, Any] = {}
        for key, value in self._conn.execute("SELECT key, value FROM meta"):
            try:
                out[key] = json.loads(value)
            except (json.JSONDecodeError, ValueError):
                out[key] = value
        return out

    def nodes(self) -> List[Dict[str, Any]]:
        """Registered nodes as ``{address, name, x, y}`` dicts."""
        self._autoflush()
        return [
            {"address": address, "name": name, "x": x, "y": y}
            for address, name, x, y in self._conn.execute(
                "SELECT address, name, x, y FROM nodes ORDER BY address"
            )
        ]

    def events(
        self,
        *,
        kind: Optional[str] = None,
        node: Optional[int] = None,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        after_id: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[StoredEvent]:
        """Indexed time-range / per-node / per-kind query.

        ``t0``/``t1`` bound the simulated time as ``t0 <= t < t1``;
        ``after_id`` selects strictly newer rows (the live-feed cursor).
        Rows come back in insertion order.
        """
        self._autoflush()
        clauses, params = [], []
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if node is not None:
            clauses.append("node = ?")
            params.append(node)
        if t0 is not None:
            clauses.append("t >= ?")
            params.append(t0)
        if t1 is not None:
            clauses.append("t < ?")
            params.append(t1)
        if after_id is not None:
            clauses.append("id > ?")
            params.append(after_id)
        sql = "SELECT id, t, wall, kind, node, data FROM events"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY id"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(limit)
        return [
            StoredEvent(id=i, t=t, wall=w, kind=k, node=n, data=json.loads(d))
            for i, t, w, k, n, d in self._conn.execute(sql, params)
        ]

    def count(self, *, kind: Optional[str] = None) -> int:
        """Total stored events (optionally of one kind)."""
        self._autoflush()
        if kind is None:
            row = self._conn.execute("SELECT COUNT(*) FROM events").fetchone()
        else:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM events WHERE kind = ?", (kind,)
            ).fetchone()
        return int(row[0])

    def counts_by_kind(self) -> Dict[str, int]:
        """Histogram of stored event kinds."""
        self._autoflush()
        return {
            kind: int(count)
            for kind, count in self._conn.execute(
                "SELECT kind, COUNT(*) FROM events GROUP BY kind ORDER BY kind"
            )
        }

    def last_id(self) -> int:
        """Highest event id (0 when empty) — the live-feed cursor seed."""
        self._autoflush()
        row = self._conn.execute("SELECT MAX(id) FROM events").fetchone()
        return int(row[0] or 0)

    def time_range(self) -> Tuple[float, float]:
        """(min, max) simulated time across stored events; (0, 0) if empty."""
        self._autoflush()
        row = self._conn.execute("SELECT MIN(t), MAX(t) FROM events").fetchone()
        if row[0] is None:
            return (0.0, 0.0)
        return (float(row[0]), float(row[1]))

    def _autoflush(self) -> None:
        # Writer-side reads must see their own buffered tail.
        if self.mode != "r" and self._buffer:
            self.flush()

    # ------------------------------------------------------------------
    # Derived views (what the dashboard serves)
    # ------------------------------------------------------------------
    def route_state_at(self, t: Optional[float] = None) -> Dict[int, Dict[int, Dict[str, int]]]:
        """Fold route events up to time ``t`` into per-node tables.

        Returns ``{node: {dst: {"via": .., "metric": ..}}}`` — the
        routing state the mesh had at simulated instant ``t`` (the whole
        run when ``t`` is None).  This is what replay scrubbing uses.
        """
        state: Dict[int, Dict[int, Dict[str, int]]] = {}
        for event in self.events(kind=KIND_ROUTE, t1=None if t is None else t + 1e-9):
            if event.node is None:
                continue
            table = state.setdefault(event.node, {})
            data = event.data
            if data.get("event") == "removed":
                table.pop(int(data["dst"]), None)
            else:
                table[int(data["dst"])] = {
                    "via": int(data["via"]),
                    "metric": int(data["metric"]),
                }
        return state

    def topology_at(self, t: Optional[float] = None) -> Dict[str, Any]:
        """Node positions plus direct (metric == 1) links at time ``t``."""
        nodes = self.nodes()
        state = self.route_state_at(t)
        links = set()
        for node, table in state.items():
            for dst, entry in table.items():
                if entry["metric"] == 1:
                    links.add((min(node, dst), max(node, dst)))
        return {
            "nodes": nodes,
            "links": sorted([a, b] for a, b in links),
            "t": t,
        }

    def last_sample(self, t: Optional[float] = None) -> Optional[StoredEvent]:
        """The newest registry sample (at or before ``t`` when given)."""
        events = self.events(kind=KIND_SAMPLE, t1=None if t is None else t + 1e-9)
        return events[-1] if events else None

    def health_summary(self, t: Optional[float] = None) -> Dict[str, Any]:
        """Deterministic health summary built from stored samples.

        Derived *only* from sim-clock data, so serving a finished run
        live and replaying it later produce byte-identical summaries
        (``json.dumps(..., sort_keys=True)`` both times).
        """
        from repro.metrics.health import health_from_flat_values

        sample = self.last_sample(t)
        if sample is None:
            return {"t": None, "nodes": [], "coverage": None}
        health = health_from_flat_values(sample.data["values"], time_s=sample.t)
        return {
            "t": sample.t,
            "coverage": health.coverage,
            "total_frames": health.total_frames,
            "total_airtime_s": health.total_airtime_s,
            "worst_duty": health.worst_duty,
            "nodes": [
                {
                    "name": n.name,
                    "routes": n.routes,
                    "neighbours": n.neighbours,
                    "frames_sent": n.frames_sent,
                    "forwarded": n.forwarded,
                    "delivered": n.delivered,
                    "no_route_drops": n.no_route_drops,
                    "queue_depth": n.queue_depth,
                    "queue_drops": n.queue_drops,
                    "duty_utilisation": n.duty_utilisation,
                    "tx_airtime_s": n.tx_airtime_s,
                    "energy_j": n.energy_j,
                }
                for n in health.nodes
            ],
        }

    # ------------------------------------------------------------------
    # JSONL bridges
    # ------------------------------------------------------------------
    def export_capture_jsonl(self, path: Union[str, Path]) -> Path:
        """Write frame events in the air-capture JSONL format.

        The output is loadable by
        :func:`repro.trace.capture.load_capture_jsonl` — stored runs
        plug straight into the existing offline capture tooling.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            for index, event in enumerate(self.events(kind=KIND_FRAME)):
                handle.write(
                    json.dumps(
                        frame_view(event.data, t=event.t, node=event.node, index=index)
                    )
                    + "\n"
                )
        return path

    def import_capture_jsonl(self, path: Union[str, Path]) -> int:
        """Ingest an :meth:`AirCapture.export_jsonl` file as frame events."""
        count = 0
        for line in Path(path).read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            self.append(
                float(record["time"]), KIND_FRAME, record, node=int(record["sender"])
            )
            count += 1
        return count

    def export_timeseries_jsonl(self, path: Union[str, Path]) -> Path:
        """Write sample events in the sampler's JSONL format (loadable by
        :func:`repro.obs.sampler.load_timeseries_jsonl`)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            for event in self.events(kind=KIND_SAMPLE):
                handle.write(
                    json.dumps(
                        {"t": event.t, "values": event.data["values"]}, sort_keys=True
                    )
                    + "\n"
                )
        return path

    def import_timeseries_jsonl(self, path: Union[str, Path]) -> int:
        """Ingest a sampler JSONL export as sample events."""
        from repro.obs.sampler import load_timeseries_jsonl

        points = load_timeseries_jsonl(path)
        for point in points:
            self.append(point.time_s, KIND_SAMPLE, {"values": dict(point.values)})
        return len(points)

    def __repr__(self) -> str:
        return f"EventStore({str(self.path)!r}, mode={self.mode!r}, appended={self.appended})"


def frame_view(
    data: Dict[str, Any],
    *,
    t: Optional[float] = None,
    node: Optional[int] = None,
    index: Optional[int] = None,
) -> Dict[str, Any]:
    """Air-capture-shaped view of a stored frame event's payload.

    The recorder stores only the irreducible per-frame fields — raw
    payload (hex) and airtime — because decoding the frame or repeating
    the row's time/sender in the JSON would blow the write-side overhead
    budget.  This derives the full capture shape on read: ``kind`` and
    ``summary`` from the payload, ``time``/``sender`` from the event row
    (pass ``t``/``node``), and ``index`` from the caller's enumeration
    (frame events in insertion order are in capture order).  Records
    that already carry ``kind`` — imported captures — pass through
    unchanged.
    """
    if "kind" in data:
        return data
    from repro.trace.capture import _describe

    payload = bytes.fromhex(data["payload"])
    kind, summary = _describe(payload)
    return {
        "index": data.get("index", index),
        "time": data.get("time", t),
        "sender": data.get("sender", node),
        "size": len(payload),
        "airtime_s": data["airtime_s"],
        "kind": kind,
        "summary": summary,
        "outcomes": data.get("outcomes", {}),
    }


# ----------------------------------------------------------------------
# Live recording
# ----------------------------------------------------------------------
class StoreRecorder:
    """Streams a running network into an :class:`EventStore`.

    Attaches purely through observer hooks, chaining any previously
    installed tap (the invariant checker does the same), so recording
    composes with verification and never perturbs protocol state::

        store = EventStore("run.db")
        recorder = StoreRecorder(store, net).attach()
        net.run(for_s=3600)
        recorder.detach(); store.close()

    ``frames`` selects the per-transmission stream (the highest-volume
    one): ``True`` (default) records every frame through the medium's
    lightweight ``on_frame`` hook — raw payload, no per-listener
    outcomes — which keeps the aggregate reception fast path;
    ``"full"`` uses the ``on_transmission`` sniffer to also record
    per-listener delivery outcomes (disables the fast path — outcome-
    equivalent but slower); ``False`` skips frames entirely for runs
    where only routes/health/violations matter.
    """

    def __init__(
        self,
        store: EventStore,
        net,
        *,
        sampler=None,
        checker=None,
        frames: bool = True,
        forwards: bool = True,
    ) -> None:
        self.store = store
        self.net = net
        self.sampler = sampler
        self.checker = checker
        if frames not in (True, False, "full"):
            raise ValueError(f"frames must be True, False or 'full', got {frames!r}")
        self.frames = frames
        self.forwards = forwards
        self._active = False
        # Hot-path caches: the frame hook bypasses append_encoded.
        self._buffer = store._buffer
        self._batch_size = store.batch_size
        self._saved_taps: Dict[int, tuple] = {}
        self._saved_sniffer: Optional[Callable] = None
        self._saved_frame_hook: Optional[Callable] = None
        self._saved_violation: Optional[Callable] = None

    # ------------------------------------------------------------------
    def attach(self) -> "StoreRecorder":
        """Register nodes, install taps, and start recording."""
        if self._active:
            return self
        self._active = True
        sim = self.net.sim
        self._wall_anchor = getattr(sim, "wall_elapsed", None)
        for node in self.net.nodes:
            radio = getattr(node, "radio", None)
            if radio is not None:
                x, y = radio.position
            else:  # pragma: no cover - every current node type has a radio
                x, y = 0.0, 0.0
            name = getattr(node, "name", None) or f"0x{node.address:04X}"
            self.store.add_node(node.address, name, x, y)
            self._tap_node(node)
        medium = getattr(self.net, "medium", None)
        if self.frames == "full" and medium is not None:
            self._saved_sniffer = medium.on_transmission
            prev = self._saved_sniffer

            def sniff(tx, outcomes, _prev=prev):
                self._on_transmission(tx, outcomes)
                if _prev is not None:
                    _prev(tx, outcomes)

            medium.on_transmission = sniff
        elif self.frames and medium is not None:
            self._saved_frame_hook = medium.on_frame
            prev_frame = self._saved_frame_hook
            if prev_frame is None:
                # Common case: no chaining closure on the per-frame path.
                medium.on_frame = self._on_frame
            else:

                def frame_hook(tx, _prev=prev_frame):
                    self._on_frame(tx)
                    _prev(tx)

                medium.on_frame = frame_hook
        trace = getattr(self.net, "trace", None)
        if trace is not None and hasattr(trace, "subscribe"):
            trace.subscribe(self._on_trace_event)
        if self.sampler is not None and hasattr(self.sampler, "subscribe"):
            self.sampler.subscribe(self._on_sample)
        if self.checker is not None:
            self._saved_violation = self.checker.on_violation
            prev_violation = self._saved_violation

            def violation(v, _prev=prev_violation):
                self._on_violation(v)
                if _prev is not None:
                    _prev(v)

            self.checker.on_violation = violation
        self._marker("started")
        return self

    def detach(self) -> None:
        """Restore the original taps; recorded events remain."""
        if not self._active:
            return
        self._marker("finished")
        self.store.set_meta("finished", True)  # live SSE feeds end on this
        self._active = False
        for node in self.net.nodes:
            saved = self._saved_taps.pop(node.address, None)
            if saved is not None:
                node.on_route_event, node.on_forward_decision, node.on_app_delivery = saved
        medium = getattr(self.net, "medium", None)
        if self.frames == "full" and medium is not None:
            medium.on_transmission = self._saved_sniffer
        elif self.frames and medium is not None:
            medium.on_frame = self._saved_frame_hook
        if self.checker is not None:
            self.checker.on_violation = self._saved_violation
        # Trace/sampler subscriptions cannot be removed from their lists;
        # the _active guard turns them into no-ops instead.

    def mark(self, phase: str, **detail: Any) -> None:
        """Record a lifecycle marker (e.g. ``converged``)."""
        self._marker(phase, **detail)

    # ------------------------------------------------------------------
    def _wall(self) -> Optional[float]:
        anchor = self._wall_anchor
        return anchor() if anchor is not None else None

    def _marker(self, phase: str, **detail: Any) -> None:
        data = {"phase": phase}
        data.update(detail)
        self.store.append(
            self.net.sim.now, KIND_MARKER, data, wall=self._wall()
        )
        self.store.flush()

    def _tap_node(self, node) -> None:
        if not hasattr(node, "on_route_event"):
            return  # baseline stacks without the observer taps
        self._saved_taps[node.address] = (
            node.on_route_event,
            node.on_forward_decision,
            node.on_app_delivery,
        )
        manager = getattr(node, "stream_manager", None)
        if manager is not None:
            self.watch_stream_manager(manager)
        prev_route = node.on_route_event
        prev_forward = node.on_forward_decision
        prev_delivery = node.on_app_delivery

        def route_event(kind, entry, _node=node, _prev=prev_route):
            if self._active:
                self._on_route_event(_node, kind, entry)
            if _prev is not None:
                _prev(kind, entry)

        def forward_decision(packet, decision, previous_hop, _node=node, _prev=prev_forward):
            if self._active and self.forwards:
                self._on_forward_decision(_node, packet, decision)
            if _prev is not None:
                _prev(packet, decision, previous_hop)

        def app_delivery(message, _node=node, _prev=prev_delivery):
            if self._active:
                self._on_app_delivery(_node, message)
            if _prev is not None:
                _prev(message)

        node.on_route_event = route_event
        node.on_forward_decision = forward_decision
        node.on_app_delivery = app_delivery

    def watch_stream_manager(self, manager) -> None:
        """Record a :class:`~repro.net.stream.StreamManager`'s lifecycle
        and delivery events as ``KIND_STREAM`` rows, chaining any
        previously installed tap (the invariant checker composes the
        same way).  Call for managers created *after* :meth:`attach`;
        managers already present at attach time are tapped automatically.
        """
        prev = manager.on_stream_event
        address = manager.node.address

        def stream_event(kind, peer, stream_id, initiator_side, msg_seq,
                         _prev=prev, _address=address):
            if self._active:
                self.store.append(
                    self.net.sim.now,
                    KIND_STREAM,
                    {
                        "event": kind,
                        "peer": peer,
                        "stream": stream_id,
                        "initiator": bool(initiator_side),
                        "seq": msg_seq,
                    },
                    node=_address,
                    wall=self._wall(),
                )
            if _prev is not None:
                _prev(kind, peer, stream_id, initiator_side, msg_seq)

        manager.on_stream_event = stream_event

    # ------------------------------------------------------------------
    # Event builders
    # ------------------------------------------------------------------
    def _on_route_event(self, node, kind: str, entry) -> None:
        # Hand-encoded like the frame path: route churn spikes (link
        # flaps, fault drills) hit this at high rate.
        self.store.append_encoded(
            self.net.sim.now,
            KIND_ROUTE,
            f'{{"dst": {entry.address}, "event": "{kind}", '
            f'"metric": {entry.metric}, "via": {entry.via}}}',
            node=node.address,
            wall=self._wall(),
        )

    def _on_forward_decision(self, node, packet, decision) -> None:
        action = decision.action.value if hasattr(decision.action, "value") else str(decision.action)
        if action not in ("forward", "no_route"):
            return  # deliveries land as KIND_DELIVERY; overhears are noise
        data = {
            "action": action,
            "packet": type(packet).__name__,
            "src": packet.src,
            "dst": packet.dst,
        }
        if decision.next_hop is not None:
            data["next_hop"] = decision.next_hop
        self.store.append(
            self.net.sim.now, KIND_FORWARD, data, node=node.address, wall=self._wall()
        )

    def _on_app_delivery(self, node, message) -> None:
        self.store.append(
            self.net.sim.now,
            KIND_DELIVERY,
            {
                "src": message.src,
                "bytes": len(message.payload),
                "reliable": bool(message.reliable),
            },
            node=node.address,
            wall=self._wall(),
        )

    def _on_frame(self, tx) -> None:
        # Hot path: one call per transmitted frame.  Only the
        # irreducible fields are stored — payload (hex) and airtime —
        # with the JSON built by hand and the row pushed straight into
        # the store's write buffer; anything more per frame (decoding,
        # json.dumps, duplicated time/sender fields, wall stamps) is
        # what would break the <10% store-overhead budget.  frame_view
        # reconstitutes the full air-capture shape on read.
        if not self._active:
            return
        buffer = self._buffer
        buffer.append(
            (
                tx.start,
                None,
                KIND_FRAME,
                tx.sender_id,
                f'{{"airtime_s": {tx.airtime!r}, "payload": "{tx.payload.hex()}"}}',
            )
        )
        if len(buffer) >= self._batch_size:
            self.store.flush()

    def _on_transmission(self, tx, outcomes) -> None:
        # frames="full" path: per-listener outcomes included.
        if not self._active:
            return
        outcomes_json = ", ".join(
            f'"{n}": "{r._value_}"' for n, r in outcomes.items()
        )
        data = (
            f'{{"airtime_s": {tx.airtime!r}, "outcomes": {{{outcomes_json}}}, '
            f'"payload": "{tx.payload.hex()}"}}'
        )
        self.store.append_encoded(
            tx.start, KIND_FRAME, data, node=tx.sender_id, wall=self._wall()
        )

    def _on_trace_event(self, event) -> None:
        if not self._active:
            return
        detail = {
            k: v if isinstance(v, (int, float, str, bool, type(None))) else repr(v)
            for k, v in event.detail.items()
        }
        self.store.append(
            event.time,
            KIND_TRACE,
            {"kind": event.kind.value, "detail": detail},
            node=event.node,
            wall=self._wall(),
        )

    def _on_sample(self, point) -> None:
        if not self._active:
            return
        self.store.append(
            point.time_s,
            KIND_SAMPLE,
            {"values": dict(point.values)},
            wall=self._wall(),
        )
        self.store.flush()  # samples pace the live dashboard; land them now

    def _on_violation(self, violation) -> None:
        if not self._active:
            return
        self.store.append(
            violation.time,
            KIND_VIOLATION,
            {"invariant": violation.invariant.value, "detail": violation.detail},
            node=violation.node,
            wall=self._wall(),
        )
        self.store.flush()  # violations must be visible immediately
