"""Exporters for registry snapshots: Prometheus text and JSON lines.

Two formats cover the two consumers we have:

* **Prometheus text exposition** (:func:`to_prometheus`) — what a
  scrape endpoint or a textfile collector ingests; one ``# HELP`` /
  ``# TYPE`` header per metric name, histogram expanded into
  ``_bucket``/``_sum``/``_count`` series with the standard ``le`` label.
* **JSON lines** (:func:`to_jsonl` / :func:`from_jsonl`) — one sample
  per line, loss-free for offline analysis.  ``from_jsonl`` reconstructs
  the exact :class:`~repro.obs.registry.MetricSample` records, which the
  tests assert as a round-trip.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Sequence, Union

from repro.obs.registry import MetricSample


def _format_value(value: float) -> str:
    """Prometheus text spelling of one sample value.

    Non-finite values use the exposition format's canonical spellings
    (``NaN``, ``+Inf``, ``-Inf``) — scrapers reject Python's ``nan`` /
    ``inf`` reprs.  The NaN check (``value != value``) must run first:
    every other comparison against NaN is False and would fall through
    to ``is_integer()``, which NaN does not support cleanly.
    """
    value = float(value)
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value.is_integer():
        return str(int(value))
    return repr(value)


def _json_value(value: float) -> object:
    """A strictly-JSON-safe rendering of one float.

    ``json.dumps`` spells non-finite floats as ``NaN``/``Infinity`` —
    tokens outside the JSON grammar that non-Python consumers reject.
    Non-finite values are emitted as the Prometheus string spellings
    instead; :func:`_parse_value` restores them losslessly.
    """
    value = float(value)
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return value


def _parse_value(raw: object) -> float:
    """Inverse of :func:`_json_value` (numbers pass straight through)."""
    if isinstance(raw, str):
        spelling = raw.strip()
        if spelling == "NaN":
            return float("nan")
        if spelling in ("+Inf", "Inf", "Infinity"):
            return float("inf")
        if spelling in ("-Inf", "-Infinity"):
            return float("-inf")
    return float(raw)  # type: ignore[arg-type]


def _series(name: str, labels: Iterable, value: float) -> str:
    pairs = ",".join(f'{k}="{v}"' for k, v in labels)
    label_part = f"{{{pairs}}}" if pairs else ""
    return f"{name}{label_part} {_format_value(value)}"


def to_prometheus(samples: Sequence[MetricSample]) -> str:
    """Render a snapshot as Prometheus text exposition format."""
    lines: List[str] = []
    seen_header = set()
    for sample in samples:
        if sample.name not in seen_header:
            seen_header.add(sample.name)
            if sample.help:
                lines.append(f"# HELP {sample.name} {sample.help}")
            lines.append(f"# TYPE {sample.name} {sample.kind}")
        if sample.kind == "histogram":
            for bound, count in sample.buckets:
                bucket_labels = list(sample.labels) + [("le", _format_value(bound))]
                lines.append(_series(f"{sample.name}_bucket", bucket_labels, count))
            inf_labels = list(sample.labels) + [("le", "+Inf")]
            lines.append(_series(f"{sample.name}_bucket", inf_labels, sample.value))
            lines.append(_series(f"{sample.name}_sum", sample.labels, sample.sum))
            lines.append(_series(f"{sample.name}_count", sample.labels, sample.value))
        else:
            lines.append(_series(sample.name, sample.labels, sample.value))
    return "\n".join(lines) + "\n"


def to_jsonl(samples: Sequence[MetricSample]) -> str:
    """Render a snapshot as JSON lines (one sample per line)."""
    lines = []
    for sample in samples:
        record = {
            "name": sample.name,
            "kind": sample.kind,
            "labels": {k: v for k, v in sample.labels},
            "value": _json_value(sample.value),
        }
        if sample.help:
            record["help"] = sample.help
        if sample.kind == "histogram":
            record["sum"] = _json_value(sample.sum)
            record["buckets"] = [
                [_json_value(bound), count] for bound, count in sample.buckets
            ]
        lines.append(json.dumps(record, sort_keys=True, allow_nan=False))
    return "\n".join(lines) + ("\n" if lines else "")


def from_jsonl(text: str) -> List[MetricSample]:
    """Reconstruct :class:`MetricSample` records from :func:`to_jsonl`."""
    samples = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        samples.append(
            MetricSample(
                name=record["name"],
                kind=record["kind"],
                labels=tuple(sorted((k, v) for k, v in record.get("labels", {}).items())),
                value=_parse_value(record["value"]),
                sum=_parse_value(record.get("sum", 0.0)),
                buckets=tuple(
                    (_parse_value(b), int(c)) for b, c in record.get("buckets", [])
                ),
                help=record.get("help", ""),
            )
        )
    return samples


def export_jsonl(samples: Sequence[MetricSample], path: Union[str, Path]) -> Path:
    """Write a snapshot to ``path`` as JSON lines; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_jsonl(samples))
    return path


def export_prometheus(samples: Sequence[MetricSample], path: Union[str, Path]) -> Path:
    """Write a snapshot to ``path`` in Prometheus text format."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_prometheus(samples))
    return path
