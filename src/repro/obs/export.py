"""Exporters for registry snapshots: Prometheus text and JSON lines.

Two formats cover the two consumers we have:

* **Prometheus text exposition** (:func:`to_prometheus`) — what a
  scrape endpoint or a textfile collector ingests; one ``# HELP`` /
  ``# TYPE`` header per metric name, histogram expanded into
  ``_bucket``/``_sum``/``_count`` series with the standard ``le`` label.
* **JSON lines** (:func:`to_jsonl` / :func:`from_jsonl`) — one sample
  per line, loss-free for offline analysis.  ``from_jsonl`` reconstructs
  the exact :class:`~repro.obs.registry.MetricSample` records, which the
  tests assert as a round-trip.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Sequence, Union

from repro.obs.registry import MetricSample


def _format_value(value: float) -> str:
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _series(name: str, labels: Iterable, value: float) -> str:
    pairs = ",".join(f'{k}="{v}"' for k, v in labels)
    label_part = f"{{{pairs}}}" if pairs else ""
    return f"{name}{label_part} {_format_value(value)}"


def to_prometheus(samples: Sequence[MetricSample]) -> str:
    """Render a snapshot as Prometheus text exposition format."""
    lines: List[str] = []
    seen_header = set()
    for sample in samples:
        if sample.name not in seen_header:
            seen_header.add(sample.name)
            if sample.help:
                lines.append(f"# HELP {sample.name} {sample.help}")
            lines.append(f"# TYPE {sample.name} {sample.kind}")
        if sample.kind == "histogram":
            for bound, count in sample.buckets:
                bucket_labels = list(sample.labels) + [("le", _format_value(bound))]
                lines.append(_series(f"{sample.name}_bucket", bucket_labels, count))
            inf_labels = list(sample.labels) + [("le", "+Inf")]
            lines.append(_series(f"{sample.name}_bucket", inf_labels, sample.value))
            lines.append(_series(f"{sample.name}_sum", sample.labels, sample.sum))
            lines.append(_series(f"{sample.name}_count", sample.labels, sample.value))
        else:
            lines.append(_series(sample.name, sample.labels, sample.value))
    return "\n".join(lines) + "\n"


def to_jsonl(samples: Sequence[MetricSample]) -> str:
    """Render a snapshot as JSON lines (one sample per line)."""
    lines = []
    for sample in samples:
        record = {
            "name": sample.name,
            "kind": sample.kind,
            "labels": {k: v for k, v in sample.labels},
            "value": sample.value,
        }
        if sample.help:
            record["help"] = sample.help
        if sample.kind == "histogram":
            record["sum"] = sample.sum
            record["buckets"] = [[bound, count] for bound, count in sample.buckets]
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def from_jsonl(text: str) -> List[MetricSample]:
    """Reconstruct :class:`MetricSample` records from :func:`to_jsonl`."""
    samples = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        samples.append(
            MetricSample(
                name=record["name"],
                kind=record["kind"],
                labels=tuple(sorted((k, v) for k, v in record.get("labels", {}).items())),
                value=float(record["value"]),
                sum=float(record.get("sum", 0.0)),
                buckets=tuple((float(b), int(c)) for b, c in record.get("buckets", [])),
                help=record.get("help", ""),
            )
        )
    return samples


def export_jsonl(samples: Sequence[MetricSample], path: Union[str, Path]) -> Path:
    """Write a snapshot to ``path`` as JSON lines; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_jsonl(samples))
    return path


def export_prometheus(samples: Sequence[MetricSample], path: Union[str, Path]) -> Path:
    """Write a snapshot to ``path`` in Prometheus text format."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_prometheus(samples))
    return path
