"""Protocol verification: global invariant checking + fault injection.

* :class:`~repro.verify.invariants.InvariantChecker` — audits routing
  loops, via-consistency, metric sanity, exactly-once delivery, queue
  conservation, and duty-cycle caps on a running network.
* :class:`~repro.verify.faults.FaultInjector` — deterministic node
  crash/revive, link blackout/asymmetry, and burst-loss scripts.

See ``docs/verification.md`` for the invariant catalogue and the
transient-tolerance (grace window) model.
"""

from repro.verify.faults import (
    BurstLoss,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    LinkBlackout,
    NodeCrash,
    NodeRevive,
    random_churn_plan,
)
from repro.verify.invariants import (
    STRICT_ENV,
    Invariant,
    InvariantChecker,
    InvariantViolation,
    Violation,
    strict_from_env,
)

__all__ = [
    "Invariant",
    "InvariantChecker",
    "InvariantViolation",
    "Violation",
    "STRICT_ENV",
    "strict_from_env",
    "NodeCrash",
    "NodeRevive",
    "LinkBlackout",
    "BurstLoss",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "random_churn_plan",
]
