"""Global-view protocol invariant checking.

The simulator can see what no real deployment can: every routing table,
queue counter, and duty-cycle ledger at once.  :class:`InvariantChecker`
exploits that omniscience to audit the protocol's global invariants
while a scenario runs — as an *observer* riding the node taps
(``on_route_event``, ``on_forward_decision``, ``reliable.on_deliver``)
plus a periodic full audit.  It never mutates protocol state, so an
audited run is bit-identical to an unaudited one.

Invariant classes
-----------------

``VIA_CONSISTENCY`` (hard)
    Every routing-table entry's next hop is a *current direct
    neighbour*.  Structural in this implementation: ``heard_from``
    precedes every merge, and expiry removes dependent routes with (or
    before) the neighbour entry, so the periodic audit — which runs
    between events, never mid-purge — must always find it true.

``METRIC_SANITY`` (hard bounds, graced monotonicity)
    Metrics sit in ``[1, max_metric]`` and ``metric == 1`` iff the
    entry is the direct route (``via == address``).  Monotonicity along
    the via chain (my metric should exceed my next hop's) is only
    *eventually* true in a distance-vector protocol — neighbours
    legitimately disagree between hellos — so non-monotone steps are
    counted as observations and violate only when one ``(node, dst)``
    pair stays non-monotone past the grace window.

``ROUTING_LOOP`` (graced)
    Following next hops from any node towards any destination must
    terminate.  Transient loops are *inherent* to RIP-style DV
    (count-to-infinity, bounded by ``max_metric`` and route expiry), so
    a cycle only violates when it persists past ``loop_grace_s`` —
    defaulted to the analytic settling bound
    ``max_metric * hello_period + route_timeout``.  Cycles towards
    destinations that are currently dead ("ghost" destinations) are
    pure convergence debris and are only ever counted.

``EXACTLY_ONCE`` (hard)
    The reliable transport never hands the application the same
    ``(src, seq_id)`` twice within its deduplication window.

``CONSERVATION`` (hard)
    Queue flow balance: ``enqueued_total == dequeued_total + len(q)``
    for every send queue and inbox, with all counters non-negative.
    A frame leaves a queue only by being popped (counted) or dropped at
    the door (counted) — nothing vanishes.

``DUTY_CYCLE`` (hard)
    No node's trailing-window airtime utilisation exceeds its regional
    cap.

``STREAM_ORDERING`` (hard)
    The connection-oriented stream layer delivers every stream's
    messages to the application strictly in order, exactly once, with no
    gaps: per ``(receiver, peer, stream id)`` the delivered message
    sequence is exactly 0, 1, 2, …  A stream-level duplicate drop is
    also a violation — it means the transport's exactly-once contract
    underneath broke.  Tap-driven via
    :attr:`~repro.net.stream.StreamManager.on_stream_event`; stream
    managers attached to nodes before :meth:`InvariantChecker.attach`
    are discovered automatically, later ones can be wired with
    :meth:`InvariantChecker.watch_stream_manager`.

Violations raise :class:`InvariantViolation` in strict mode (set
``REPRO_STRICT_INVARIANTS=1`` or pass ``strict=True``) and are always
collected on :attr:`InvariantChecker.violations` and exported through
the metrics registry as ``repro_verify_violations_total{invariant=…}``.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.mesher import MesherNode
from repro.net.reliable import ReliableTransport

__all__ = [
    "Invariant",
    "Violation",
    "InvariantViolation",
    "InvariantChecker",
    "STRICT_ENV",
    "strict_from_env",
]

#: Environment variable that switches violations from counted to fatal.
STRICT_ENV = "REPRO_STRICT_INVARIANTS"


class Invariant(enum.Enum):
    """The seven audited invariant classes."""

    ROUTING_LOOP = "routing_loop"
    VIA_CONSISTENCY = "via_consistency"
    METRIC_SANITY = "metric_sanity"
    EXACTLY_ONCE = "exactly_once"
    CONSERVATION = "conservation"
    DUTY_CYCLE = "duty_cycle"
    STREAM_ORDERING = "stream_ordering"


@dataclass(frozen=True)
class Violation:
    """One confirmed invariant breach."""

    invariant: Invariant
    time: float  # simulated seconds
    node: Optional[int]  # offending node address, when attributable
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f" node 0x{self.node:04X}" if self.node is not None else ""
        return f"[t={self.time:.1f}s{where}] {self.invariant.value}: {self.detail}"


class InvariantViolation(AssertionError):
    """Raised in strict mode; carries the :class:`Violation`."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(str(violation))
        self.violation = violation


def strict_from_env(default: bool = False) -> bool:
    """Whether ``REPRO_STRICT_INVARIANTS`` asks for fatal violations."""
    raw = os.environ.get(STRICT_ENV)
    if raw is None:
        return default
    return raw.strip().lower() not in ("", "0", "false", "no")


@dataclass
class _Persistence:
    """First-seen bookkeeping for graced (transient-tolerant) checks."""

    first_seen: float
    last_detail: str = ""


class InvariantChecker:
    """Audits a :class:`~repro.net.api.MeshNetwork` against the global
    protocol invariants.

    Usage::

        checker = InvariantChecker(net, registry=registry)
        checker.attach()          # taps + periodic audit
        net.run(for_s=3600)
        checker.audit()           # one final sweep
        checker.assert_clean()    # raise if anything broke

    ``strict`` defaults to the ``REPRO_STRICT_INVARIANTS`` environment
    variable; when true the first violation raises
    :class:`InvariantViolation` from inside the offending audit or tap.
    """

    def __init__(
        self,
        net,
        *,
        audit_period_s: float = 30.0,
        loop_grace_s: Optional[float] = None,
        strict: Optional[bool] = None,
        registry=None,
    ) -> None:
        if audit_period_s <= 0:
            raise ValueError("audit_period_s must be positive")
        self.net = net
        self.sim = net.sim
        self.audit_period_s = audit_period_s
        self.strict = strict_from_env() if strict is None else strict
        self.loop_grace_s = (
            loop_grace_s if loop_grace_s is not None else self._default_grace()
        )
        #: Any routing cycle necessarily contains a non-monotone metric
        #: step, so persistent non-monotonicity escalates on a longer
        #: fuse than the loop check — a real loop is reported as
        #: ROUTING_LOOP, and METRIC_SANITY only fires for non-monotone
        #: chains that never close into a cycle.
        self.monotone_grace_s = 2.0 * self.loop_grace_s
        self.violations: List[Violation] = []
        #: Optional observer called with every confirmed
        #: :class:`Violation` as it is recorded (before a strict-mode
        #: raise) — how the event store streams the violation feed.
        self.on_violation = None
        #: Transient/benign observation counts (convergence debris the
        #: checker tolerates but reports): keys include
        #: ``loop_transient``, ``loop_ghost``, ``non_monotone``,
        #: ``chain_break``, ``ping_pong``.
        self.observations: Dict[str, int] = {}
        self.audits_run = 0
        self._timer = None
        self._attached = False
        # Graced-state tracking across audits.
        self._loop_seen: Dict[Tuple[int, int], _Persistence] = {}
        self._monotone_seen: Dict[Tuple[int, int], _Persistence] = {}
        # Exactly-once ledger: (receiver, src, seq_id, kind) -> last time.
        self._deliveries: Dict[Tuple[int, int, int, str], float] = {}
        # Stream-ordering ledger: (receiver, peer, stream_id, side) ->
        # next expected message sequence.
        self._stream_next: Dict[Tuple[int, int, int, bool], int] = {}
        self._counters: Dict[Invariant, object] = {}
        self._saved_taps: Dict[int, tuple] = {}
        if registry is not None:
            self.bind_registry(registry)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _default_grace(self) -> float:
        """Analytic DV settling bound over the attached nodes' configs.

        A stale route survives at most ``route_timeout`` without
        refreshes, and count-to-infinity climbs one metric step per
        hello round, so ``max_metric * hello_period + route_timeout``
        upper-bounds how long any transient cycle can legitimately live.
        """
        bound = 0.0
        for node in self.net.nodes:
            cfg = node.config
            bound = max(bound, cfg.max_metric * cfg.hello_period_s + cfg.route_timeout_s)
        return bound or 3600.0

    def bind_registry(self, registry) -> None:
        """Register ``repro_verify_*`` instruments on ``registry``."""
        for inv in Invariant:
            self._counters[inv] = registry.counter(
                "repro_verify_violations_total",
                labels={"invariant": inv.value},
                help="Confirmed protocol invariant violations",
            )
        registry.counter(
            "repro_verify_audits_total",
            fn=lambda: self.audits_run,
            help="Full invariant audits executed",
        )
        registry.gauge(
            "repro_verify_transient_loops",
            fn=lambda: len(self._loop_seen),
            help="Routing cycles currently inside the grace window",
        )
        registry.counter(
            "repro_verify_observations_total",
            fn=lambda: float(sum(self.observations.values())),
            help="Benign/transient observations (ghost loops, ping-pongs, ...)",
        )

    def attach(self) -> "InvariantChecker":
        """Install node taps and start the periodic audit timer."""
        if self._attached:
            return self
        self._attached = True
        for node in self.net.nodes:
            self._tap_node(node)
        self._timer = self.sim.periodic(
            self.audit_period_s, self.audit, label="invariant audit"
        )
        return self

    def detach(self) -> None:
        """Stop auditing and restore the original taps."""
        if not self._attached:
            return
        self._attached = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        for node in self.net.nodes:
            saved = self._saved_taps.pop(node.address, None)
            if saved is not None:
                node.on_route_event, node.on_forward_decision, node.reliable.on_deliver = saved

    def _tap_node(self, node: MesherNode) -> None:
        self._saved_taps[node.address] = (
            node.on_route_event,
            node.on_forward_decision,
            node.reliable.on_deliver,
        )
        prev_route = node.on_route_event
        prev_forward = node.on_forward_decision
        prev_deliver = node.reliable.on_deliver

        def route_event(kind, entry, _node=node, _prev=prev_route):
            self._on_route_event(_node, kind, entry)
            if _prev is not None:
                _prev(kind, entry)

        def forward_decision(packet, decision, previous_hop, _node=node, _prev=prev_forward):
            self._on_forward_decision(_node, packet, decision, previous_hop)
            if _prev is not None:
                _prev(packet, decision, previous_hop)

        def deliver(src, seq_id, kind, _node=node, _prev=prev_deliver):
            self._on_reliable_delivery(_node, src, seq_id, kind)
            if _prev is not None:
                _prev(src, seq_id, kind)

        node.on_route_event = route_event
        node.on_forward_decision = forward_decision
        node.reliable.on_deliver = deliver

        manager = getattr(node, "stream_manager", None)
        if manager is not None:
            self.watch_stream_manager(manager)

    def watch_stream_manager(self, manager) -> None:
        """Chain onto a :class:`~repro.net.stream.StreamManager` tap and
        audit its deliveries against STREAM_ORDERING.

        Needed explicitly only for managers created after
        :meth:`attach`; pre-existing ones are discovered via the node's
        ``stream_manager`` attribute.
        """
        receiver = manager._node.address
        prev = manager.on_stream_event

        def stream_event(kind, peer, stream_id, side, msg_seq, _prev=prev):
            self._on_stream_event(receiver, kind, peer, stream_id, side, msg_seq)
            if _prev is not None:
                _prev(kind, peer, stream_id, side, msg_seq)

        manager.on_stream_event = stream_event

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _observe(self, kind: str, count: int = 1) -> None:
        self.observations[kind] = self.observations.get(kind, 0) + count

    def _violate(self, invariant: Invariant, node: Optional[int], detail: str) -> None:
        violation = Violation(invariant, self.sim.now, node, detail)
        self.violations.append(violation)
        counter = self._counters.get(invariant)
        if counter is not None:
            counter.inc()
        if self.on_violation is not None:
            self.on_violation(violation)
        if self.strict:
            raise InvariantViolation(violation)

    # ------------------------------------------------------------------
    # Tap-driven (per-event) checks
    # ------------------------------------------------------------------
    def _on_route_event(self, node: MesherNode, kind: str, entry) -> None:
        if kind == "removed":
            # A vanished (node, dst) pair cannot stay non-monotone.
            self._monotone_seen.pop((node.address, entry.address), None)
            return
        self._check_entry_sanity(node, entry)

    def _check_entry_sanity(self, node: MesherNode, entry) -> None:
        max_metric = node.table.max_metric
        if not 1 <= entry.metric <= max_metric:
            self._violate(
                Invariant.METRIC_SANITY,
                node.address,
                f"route to 0x{entry.address:04X} has metric {entry.metric} "
                f"outside [1, {max_metric}]",
            )
        if (entry.metric == 1) != (entry.via == entry.address):
            self._violate(
                Invariant.METRIC_SANITY,
                node.address,
                f"route to 0x{entry.address:04X}: metric {entry.metric} with "
                f"via 0x{entry.via:04X} breaks metric==1 <=> direct",
            )

    def _on_forward_decision(self, node: MesherNode, packet, decision, previous_hop: int) -> None:
        if getattr(decision, "ping_pong", False):
            self._observe("ping_pong")

    def _on_reliable_delivery(self, node: MesherNode, src: int, seq_id: int, kind: str) -> None:
        key = (node.address, src, seq_id, kind)
        now = self.sim.now
        last = self._deliveries.get(key)
        window = ReliableTransport.DEDUP_WINDOW_S
        if last is not None and now - last < window:
            self._violate(
                Invariant.EXACTLY_ONCE,
                node.address,
                f"duplicate {kind} delivery from 0x{src:04X} seq={seq_id} "
                f"({now - last:.1f}s after the first, window {window:.0f}s)",
            )
        self._deliveries[key] = now
        # Ledger hygiene: drop entries the transport itself has forgotten.
        if len(self._deliveries) > 4096:
            horizon = now - window
            self._deliveries = {
                k: t for k, t in self._deliveries.items() if t >= horizon
            }

    def _on_stream_event(
        self, receiver: int, kind: str, peer: int, stream_id: int, side: bool, msg_seq: int
    ) -> None:
        key = (receiver, peer, stream_id, side)
        if kind == "deliver":
            expected = self._stream_next.get(key, 0)
            if msg_seq != expected:
                what = "duplicate/regression" if msg_seq < expected else "gap"
                self._violate(
                    Invariant.STREAM_ORDERING,
                    receiver,
                    f"stream (peer=0x{peer:04X}, id={stream_id}) delivered "
                    f"seq {msg_seq}, expected {expected} ({what})",
                )
                # Resynchronise so counted mode reports each break once.
                self._stream_next[key] = max(expected, msg_seq + 1)
                return
            self._stream_next[key] = expected + 1
        elif kind == "duplicate":
            self._violate(
                Invariant.STREAM_ORDERING,
                receiver,
                f"stream (peer=0x{peer:04X}, id={stream_id}) dropped a "
                f"duplicate of seq {msg_seq} — the transport delivered it twice",
            )
        elif kind in ("open", "accept"):
            self._stream_next[key] = 0
        elif kind in ("close", "reset"):
            # Ids are reusable after teardown; a successor stream starts
            # its sequence space fresh.
            self._stream_next.pop(key, None)

    # ------------------------------------------------------------------
    # Periodic full audit
    # ------------------------------------------------------------------
    def audit(self) -> List[Violation]:
        """Run every global check once; returns violations found *by
        this call* (also appended to :attr:`violations`)."""
        before = len(self.violations)
        live = {
            n.address: n
            for n in self.net.nodes
            if n.started and n.radio.powered
        }
        for node in live.values():
            self._audit_tables(node, live)
            self._audit_conservation(node)
            self._audit_duty(node)
        self._audit_loops(live)
        self.audits_run += 1
        return self.violations[before:]

    def _audit_tables(self, node: MesherNode, live: Dict[int, MesherNode]) -> None:
        table = node.table
        for entry in table:
            self._check_entry_sanity(node, entry)
            # Via-consistency: next hop must be a live direct neighbour.
            via_entry = table.get(entry.via)
            if via_entry is None or not via_entry.is_neighbour:
                self._violate(
                    Invariant.VIA_CONSISTENCY,
                    node.address,
                    f"route to 0x{entry.address:04X} via 0x{entry.via:04X}, "
                    "but the via is not a current direct neighbour",
                )
                continue
            # Graced monotonicity along the via chain.
            if entry.metric > 1:
                self._check_monotone(node, entry, live)

    def _check_monotone(self, node: MesherNode, entry, live: Dict[int, MesherNode]) -> None:
        key = (node.address, entry.address)
        via_node = live.get(entry.via)
        if via_node is None:
            self._monotone_seen.pop(key, None)
            return
        downstream = via_node.table.get(entry.address)
        if downstream is None:
            # The next hop lost its route first — a chain break the next
            # hello round repairs (or expires); benign.
            self._observe("chain_break")
            self._monotone_seen.pop(key, None)
            return
        if downstream.metric < entry.metric:
            self._monotone_seen.pop(key, None)
            return
        self._observe("non_monotone")
        now = self.sim.now
        state = self._monotone_seen.get(key)
        detail = (
            f"route to 0x{entry.address:04X}: metric {entry.metric} via "
            f"0x{entry.via:04X} whose own metric is {downstream.metric}"
        )
        if state is None:
            self._monotone_seen[key] = _Persistence(now, detail)
        elif now - state.first_seen > self.monotone_grace_s:
            self._violate(
                Invariant.METRIC_SANITY,
                node.address,
                f"{detail} — non-monotone for {now - state.first_seen:.0f}s "
                f"(grace {self.monotone_grace_s:.0f}s)",
            )
            del self._monotone_seen[key]

    def _audit_loops(self, live: Dict[int, MesherNode]) -> None:
        now = self.sim.now
        seen_this_audit = set()
        for node in live.values():
            for dst in node.table.destinations():
                cycle = self._walk(node, dst, live)
                if cycle is None:
                    continue
                if dst not in live:
                    # Ghost destination: the mesh is counting a dead node
                    # to infinity — expected debris, never a violation.
                    self._observe("loop_ghost")
                    continue
                self._observe("loop_transient")
                key = (node.address, dst)
                seen_this_audit.add(key)
                state = self._loop_seen.get(key)
                detail = (
                    f"cycle towards 0x{dst:04X}: "
                    + " -> ".join(f"0x{a:04X}" for a in cycle)
                )
                if state is None:
                    self._loop_seen[key] = _Persistence(now, detail)
                elif now - state.first_seen > self.loop_grace_s:
                    self._violate(
                        Invariant.ROUTING_LOOP,
                        node.address,
                        f"{detail} — persisted {now - state.first_seen:.0f}s "
                        f"(grace {self.loop_grace_s:.0f}s)",
                    )
                    del self._loop_seen[key]
        # Cycles that healed since the last audit leave the ledger.
        for key in list(self._loop_seen):
            if key not in seen_this_audit:
                del self._loop_seen[key]

    def _walk(
        self, origin: MesherNode, dst: int, live: Dict[int, MesherNode]
    ) -> Optional[List[int]]:
        """Follow next hops from ``origin`` towards ``dst``.

        Returns the visited chain when it cycles, None when it
        terminates (delivery, a dead hop, or a missing route — the
        latter two are counted, not violations: frames on that chain
        drop, they do not loop).
        """
        visited = [origin.address]
        current = origin
        for _ in range(len(live) + 1):
            next_hop = current.table.next_hop(dst)
            if next_hop is None:
                if current is not origin:
                    self._observe("chain_break")
                return None
            if next_hop == dst:
                return None
            if next_hop in visited:
                visited.append(next_hop)
                return visited
            visited.append(next_hop)
            nxt = live.get(next_hop)
            if nxt is None:
                # Next hop is dead: via-consistency / expiry will clean
                # this up; the chain cannot loop through a dead radio.
                return None
            current = nxt
        # Chain longer than the node count without repeating — impossible
        # unless addresses leak; flag loudly as a loop.
        return visited

    def _audit_conservation(self, node: MesherNode) -> None:
        for label, queue in (("send_queue", node.send_queue), ("inbox", node.inbox)):
            enq = queue.enqueued_total
            deq = queue.dequeued_total
            depth = len(queue)
            if deq < 0 or enq < 0 or queue.dropped < 0 or deq > enq or enq != deq + depth:
                self._violate(
                    Invariant.CONSERVATION,
                    node.address,
                    f"{label} flow imbalance: enqueued={enq} != "
                    f"dequeued={deq} + depth={depth} (dropped={queue.dropped})",
                )

    def _audit_duty(self, node: MesherNode) -> None:
        cap = node.duty.region.duty_cycle
        utilisation = node.duty.window_utilisation(self.sim.now)
        if utilisation > cap + 1e-9:
            self._violate(
                Invariant.DUTY_CYCLE,
                node.address,
                f"duty-cycle utilisation {utilisation:.4f} exceeds the "
                f"{node.duty.region.name} cap {cap:.4f}",
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def violation_counts(self) -> Dict[str, int]:
        """Violations per invariant name (zero-filled)."""
        counts = {inv.value: 0 for inv in Invariant}
        for v in self.violations:
            counts[v.invariant.value] += 1
        return counts

    def summary(self) -> Dict[str, object]:
        """A JSON-friendly report of the run's verification state."""
        return {
            "audits": self.audits_run,
            "strict": self.strict,
            "loop_grace_s": self.loop_grace_s,
            "violations": self.violation_counts(),
            "violation_details": [str(v) for v in self.violations],
            "observations": dict(sorted(self.observations.items())),
        }

    def assert_clean(self) -> None:
        """Raise :class:`InvariantViolation` if any violation was seen."""
        if self.violations:
            raise InvariantViolation(self.violations[0])
