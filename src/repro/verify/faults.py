"""Deterministic fault injection for verification scenarios.

A :class:`FaultPlan` is a declarative script of timed faults — node
crashes and revivals, link blackouts (optionally one-directional, which
models antenna asymmetry), and windows of random burst frame loss.
:class:`FaultInjector` arms a plan against a live
:class:`~repro.net.api.MeshNetwork`: crash/revive become kernel events,
link faults become a :data:`~repro.medium.channel.LossInjector` chained
in front of whatever injector the medium already carries.

Everything is deterministic.  Burst-loss coin flips hash the
transmission id and listener through
:func:`~repro.experiments.sweep.derive_seed`, so a replay with the same
seed drops the identical frames regardless of audit timers or other
observers running alongside — the property the invariant checker needs
to turn "it looped once under churn" into a reproducible test case.

Example::

    plan = FaultPlan([
        NodeCrash(node=0x0003, at=900.0),
        NodeRevive(node=0x0003, at=1500.0),
        LinkBlackout(a=0x0001, b=0x0002, start=600.0, end=1200.0),
        BurstLoss(start=300.0, end=400.0, probability=0.5),
    ])
    FaultInjector(net, plan, seed=42).arm()
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.medium.channel import Transmission


def _derive_seed(master: int, index: int) -> int:
    # Imported lazily: repro.experiments.runner imports this module at
    # load time, so a top-level import of repro.experiments.sweep would
    # be circular through the experiments package __init__.
    from repro.experiments.sweep import derive_seed

    return derive_seed(master, index)

__all__ = [
    "NodeCrash",
    "NodeRevive",
    "LinkBlackout",
    "BurstLoss",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "random_churn_plan",
]


@dataclass(frozen=True)
class NodeCrash:
    """Abrupt node death at ``at`` (radio off, timers stopped)."""

    node: int
    at: float


@dataclass(frozen=True)
class NodeRevive:
    """Cold-start recovery at ``at`` (empty routing table)."""

    node: int
    at: float


@dataclass(frozen=True)
class LinkBlackout:
    """Every frame from ``a`` is lost at ``b`` during [start, end).

    ``symmetric`` (default) blacks out both directions; one-directional
    blackouts model asymmetric links — exactly the failure mode that
    stresses via-consistency, since ``b`` keeps refreshing ``a``'s
    neighbour entry while ``a`` goes deaf.
    """

    a: int
    b: int
    start: float
    end: float
    symmetric: bool = True

    def drops(self, sender: int, listener: int, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        if sender == self.a and listener == self.b:
            return True
        return self.symmetric and sender == self.b and listener == self.a


@dataclass(frozen=True)
class BurstLoss:
    """Independent frame loss with ``probability`` during [start, end).

    ``sender`` restricts the burst to one transmitter's frames;
    ``listener`` to one receiver.  None means everyone.
    """

    start: float
    end: float
    probability: float
    sender: Optional[int] = None
    listener: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def applies(self, sender: int, listener: int, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        if self.sender is not None and sender != self.sender:
            return False
        return self.listener is None or listener == self.listener


FaultEvent = Union[NodeCrash, NodeRevive, LinkBlackout, BurstLoss]


@dataclass
class FaultPlan:
    """An ordered script of faults (a verification scenario)."""

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        for event in self.events:
            if isinstance(event, (NodeCrash, NodeRevive)) and event.at < 0:
                raise ValueError(f"{event} scheduled before t=0")
            if isinstance(event, (LinkBlackout, BurstLoss)) and event.end <= event.start:
                raise ValueError(f"{event} has an empty window")

    @property
    def crashes(self) -> List[NodeCrash]:
        return [e for e in self.events if isinstance(e, NodeCrash)]

    @property
    def revives(self) -> List[NodeRevive]:
        return [e for e in self.events if isinstance(e, NodeRevive)]

    @property
    def link_faults(self) -> List[Union[LinkBlackout, BurstLoss]]:
        return [e for e in self.events if isinstance(e, (LinkBlackout, BurstLoss))]

    @property
    def horizon(self) -> float:
        """Time by which every scripted fault has played out."""
        ends = [0.0]
        for e in self.events:
            ends.append(e.at if isinstance(e, (NodeCrash, NodeRevive)) else e.end)
        return max(ends)


class FaultInjector:
    """Arms a :class:`FaultPlan` against a live network."""

    def __init__(self, net, plan: FaultPlan, *, seed: int = 0) -> None:
        self.net = net
        self.plan = plan
        self.seed = seed
        self.dropped_frames = 0
        self._armed = False
        self._handles: list = []
        self._chained = None

    def arm(self) -> "FaultInjector":
        """Schedule crash/revive events and install the loss injector.

        Idempotent; call before (or while) the simulation runs — events
        in the past are skipped by the kernel's scheduling rules, so arm
        at construction time of the scenario.
        """
        if self._armed:
            return self
        self._armed = True
        sim = self.net.sim
        for crash in self.plan.crashes:
            self._handles.append(
                sim.schedule_at(
                    crash.at,
                    lambda c=crash: self._crash(c.node),
                    label=f"fault: crash 0x{crash.node:04X}",
                )
            )
        for revive in self.plan.revives:
            self._handles.append(
                sim.schedule_at(
                    revive.at,
                    lambda r=revive: self._revive(r.node),
                    label=f"fault: revive 0x{revive.node:04X}",
                )
            )
        if self.plan.link_faults:
            self._chained = self.net.medium.loss_injector
            self.net.medium.loss_injector = self._inject
        return self

    def disarm(self) -> None:
        """Cancel pending events and restore the previous injector."""
        if not self._armed:
            return
        self._armed = False
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()
        if self.plan.link_faults:
            self.net.medium.loss_injector = self._chained
            self._chained = None

    # ------------------------------------------------------------------
    def _crash(self, address: int) -> None:
        node = self.net.node(address)
        if node.radio.powered:
            node.fail()

    def _revive(self, address: int) -> None:
        node = self.net.node(address)
        if not node.radio.powered:
            node.recover()

    def _inject(self, tx: Transmission, listener: int) -> bool:
        now = self.net.sim.now
        for fault in self.plan.link_faults:
            if isinstance(fault, LinkBlackout):
                if fault.drops(tx.sender_id, listener, now):
                    self.dropped_frames += 1
                    return True
            elif fault.applies(tx.sender_id, listener, now):
                if self._coin(tx.tx_id, listener) < fault.probability:
                    self.dropped_frames += 1
                    return True
        if self._chained is not None:
            return self._chained(tx, listener)
        return False

    def _coin(self, tx_id: int, listener: int) -> float:
        """A uniform [0, 1) draw keyed by (seed, transmission, listener).

        Hash-derived rather than drawn from a shared stream so the
        outcome for a given frame is independent of how many *other*
        frames any co-resident injector or observer has seen.
        """
        return _derive_seed(self.seed, tx_id * 0x1_0001 + listener) / 2**64


def random_churn_plan(
    addresses: Sequence[int],
    *,
    seed: int,
    start: float,
    end: float,
    cycles: int = 3,
    down_s: float = 300.0,
    spare: int = 1,
) -> FaultPlan:
    """A deterministic crash/revive churn script.

    Picks ``cycles`` victims (with replacement across cycles, never more
    than ``len(addresses) - spare`` distinct nodes down at once — the
    mesh keeps at least ``spare`` nodes alive) and schedules each a
    crash at a seed-derived time in ``[start, end - down_s)`` followed
    by a revival ``down_s`` later.  The same ``(addresses, seed, ...)``
    always yields the identical plan.
    """
    if end - down_s <= start:
        raise ValueError("churn window too small for the down time")
    if len(addresses) <= spare:
        raise ValueError("not enough nodes to churn")
    rng = random.Random(_derive_seed(seed, 0xC4))
    events: List[FaultEvent] = []
    down_windows: List[Tuple[int, float, float]] = []
    for cycle in range(cycles):
        at = start + rng.random() * (end - down_s - start)
        # Victims whose down-window would overlap too many others are
        # re-picked so the network never loses more than its spare.
        for _ in range(16):
            victim = addresses[rng.randrange(len(addresses))]
            overlapping = {
                v for v, s, e in down_windows if s < at + down_s and at < e
            }
            if victim not in overlapping and len(overlapping) < len(addresses) - spare:
                break
        else:  # pragma: no cover - pathological parameters
            continue
        down_windows.append((victim, at, at + down_s))
        events.append(NodeCrash(node=victim, at=at))
        events.append(NodeRevive(node=victim, at=at + down_s))
    events.sort(key=lambda e: e.at if isinstance(e, (NodeCrash, NodeRevive)) else e.start)
    return FaultPlan(events)
