"""Structured event tracing.

A :class:`~repro.trace.events.TraceRecorder` collects typed event records
(packet sent/received/forwarded/dropped, route changes, stream lifecycle)
from every node in a run.  The metrics layer and many tests consume the
trace instead of poking protocol internals, so assertions stay decoupled
from implementation details.
"""

from repro.trace.events import EventKind, TraceEvent, TraceRecorder
from repro.trace.capture import AirCapture, CapturedFrame

__all__ = ["EventKind", "TraceEvent", "TraceRecorder", "AirCapture", "CapturedFrame"]
