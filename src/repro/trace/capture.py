"""Air capture: a promiscuous sniffer for the simulated channel.

Attach an :class:`AirCapture` to a medium and every completed
transmission is recorded — sender, decoded packet (when it parses as a
mesh packet), airtime, and the per-listener outcome (delivered, below
sensitivity, collided, ...).  This is the simulation analogue of parking
an SDR next to the testbed, and it is how you debug "why didn't node X
hear that?" questions without instrumenting protocol code.

Captures export to JSON-lines for offline analysis.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.medium.channel import DropReason, Medium, Transmission
from repro.net import serialization
from repro.net.addresses import format_address


@dataclass(frozen=True)
class CapturedFrame:
    """One transmission as seen by the sniffer."""

    index: int
    time: float
    sender: int
    size: int
    airtime_s: float
    packet_kind: str  # decoded mesh packet class name, or "raw"
    summary: str  # short human-readable description
    outcomes: Dict[int, DropReason]

    @property
    def delivered_to(self) -> List[int]:
        """Listeners that demodulated the frame cleanly."""
        return [n for n, r in self.outcomes.items() if r is DropReason.DELIVERED]

    @property
    def collided_at(self) -> List[int]:
        """Listeners whose copy was corrupted by interference."""
        return [n for n, r in self.outcomes.items() if r is DropReason.COLLISION]


class AirCapture:
    """Records every frame on a medium until :meth:`stop`."""

    def __init__(self, medium: Medium, *, capacity: Optional[int] = None) -> None:
        if medium.on_transmission is not None:
            raise RuntimeError("medium already has a sniffer attached")
        self._medium = medium
        self.capacity = capacity
        self.frames: List[CapturedFrame] = []
        self.total_seen = 0
        medium.on_transmission = self._on_transmission

    def stop(self) -> None:
        """Detach from the medium (captured frames remain)."""
        if self._medium.on_transmission == self._on_transmission:
            self._medium.on_transmission = None

    # ------------------------------------------------------------------
    def _on_transmission(self, tx: Transmission, outcomes: Dict[int, DropReason]) -> None:
        self.total_seen += 1
        if self.capacity is not None and len(self.frames) >= self.capacity:
            return
        kind, summary = _describe(tx.payload)
        self.frames.append(
            CapturedFrame(
                index=self.total_seen - 1,
                time=tx.start,
                sender=tx.sender_id,
                size=len(tx.payload),
                airtime_s=tx.airtime,
                packet_kind=kind,
                summary=summary,
                outcomes=dict(outcomes),
            )
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def by_sender(self, sender: int) -> List[CapturedFrame]:
        """Frames transmitted by one node."""
        return [f for f in self.frames if f.sender == sender]

    def by_kind(self, kind: str) -> List[CapturedFrame]:
        """Frames of one decoded packet kind (e.g. 'RoutingPacket')."""
        return [f for f in self.frames if f.packet_kind == kind]

    def kind_counts(self) -> Dict[str, int]:
        """Histogram of packet kinds on the air."""
        counts: Dict[str, int] = {}
        for frame in self.frames:
            counts[frame.packet_kind] = counts.get(frame.packet_kind, 0) + 1
        return counts

    def airtime_by_kind(self) -> Dict[str, float]:
        """Total airtime per packet kind — the control/data split."""
        totals: Dict[str, float] = {}
        for frame in self.frames:
            totals[frame.packet_kind] = totals.get(frame.packet_kind, 0.0) + frame.airtime_s
        return totals

    def collision_count(self) -> int:
        """Frames corrupted for at least one listener."""
        return sum(1 for f in self.frames if f.collided_at)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_jsonl(self, path: Union[str, Path]) -> Path:
        """Write the capture as JSON-lines; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            for frame in self.frames:
                handle.write(json.dumps(_frame_to_json(frame)) + "\n")
        return path

    def format(self, *, limit: int = 50) -> str:
        """tcpdump-style text rendering of the first ``limit`` frames."""
        lines = []
        for frame in self.frames[:limit]:
            delivered = ",".join(format_address(n) for n in frame.delivered_to) or "-"
            lines.append(
                f"{frame.time:10.3f}s {format_address(frame.sender)} "
                f"{frame.packet_kind:<14} {frame.size:3d}B -> {delivered}  {frame.summary}"
            )
        if len(self.frames) > limit:
            lines.append(f"... {len(self.frames) - limit} more frames")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.frames)


def _describe(payload: bytes) -> tuple[str, str]:
    """Best-effort decode of a frame for the capture log."""
    try:
        packet = serialization.decode(payload)
    except serialization.DecodeError:
        return "raw", f"{len(payload)} undecodable bytes"
    kind = type(packet).__name__
    dst = format_address(packet.dst)
    src = format_address(packet.src)
    if kind == "RoutingPacket":
        return kind, f"{src} advertises {len(packet.entries)} entries"
    via = format_address(packet.via)
    detail = f"{src}->{dst} via {via}"
    seq = getattr(packet, "seq_id", None)
    if seq is not None:
        detail += f" seq={seq} n={packet.number}"
    return kind, detail


def load_capture_jsonl(path: Union[str, Path]) -> List[CapturedFrame]:
    """Reload a capture written by :meth:`AirCapture.export_jsonl`.

    The reconstructed :class:`CapturedFrame` records compare equal to the
    originals (a loss-free round trip), which lets offline tooling work
    on exported captures with the same query helpers.
    """
    frames: List[CapturedFrame] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        frames.append(
            CapturedFrame(
                index=record["index"],
                time=record["time"],
                sender=record["sender"],
                size=record["size"],
                airtime_s=record["airtime_s"],
                packet_kind=record["kind"],
                summary=record["summary"],
                outcomes={
                    int(node): DropReason(reason)
                    for node, reason in record["outcomes"].items()
                },
            )
        )
    return frames


def _frame_to_json(frame: CapturedFrame) -> Dict[str, Any]:
    return {
        "index": frame.index,
        "time": frame.time,
        "sender": frame.sender,
        "size": frame.size,
        "airtime_s": frame.airtime_s,
        "kind": frame.packet_kind,
        "summary": frame.summary,
        "outcomes": {str(n): r.value for n, r in frame.outcomes.items()},
    }
