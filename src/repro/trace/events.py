"""Trace event records and the recorder."""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional


class EventKind(enum.Enum):
    """Everything the protocol stack reports to the trace."""

    # Link layer
    FRAME_SENT = "frame_sent"
    FRAME_RECEIVED = "frame_received"
    FRAME_CRC_FAILED = "frame_crc_failed"
    FRAME_DECODE_FAILED = "frame_decode_failed"

    # Routing
    HELLO_SENT = "hello_sent"
    HELLO_RECEIVED = "hello_received"
    ROUTE_ADDED = "route_added"
    ROUTE_UPDATED = "route_updated"
    ROUTE_REMOVED = "route_removed"

    # Data plane
    DATA_ORIGINATED = "data_originated"
    DATA_FORWARDED = "data_forwarded"
    DATA_DELIVERED = "data_delivered"
    DATA_NO_ROUTE = "data_no_route"
    QUEUE_DROP = "queue_drop"

    # Reliable transport
    STREAM_STARTED = "stream_started"
    STREAM_COMPLETED = "stream_completed"
    STREAM_FAILED = "stream_failed"
    FRAGMENT_SENT = "fragment_sent"
    FRAGMENT_RETRANSMITTED = "fragment_retransmitted"
    LOST_SENT = "lost_sent"
    ACK_SENT = "ack_sent"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timestamped record."""

    time: float
    node: int
    kind: EventKind
    detail: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        extras = " ".join(f"{k}={v!r}" for k, v in self.detail.items())
        return f"<{self.time:10.3f}s node={self.node:#06x} {self.kind.value} {extras}>"


class TraceRecorder:
    """Collects events from every node; queryable by kind/node/window.

    Recording can be disabled (``enabled=False``) for long benchmark runs
    where only counters matter — ``record`` becomes a counter update only.

    Listener contract
    -----------------
    Subscribed listeners fire **only while ``enabled`` is true** — a
    disabled recorder neither materialises :class:`TraceEvent` objects
    nor notifies listeners; only the per-kind counters advance.  When
    ``capacity`` is set, events past the cap are still delivered to
    listeners but not stored; :attr:`events_dropped` counts them.
    """

    def __init__(self, *, enabled: bool = True, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        #: Events that listeners saw but the capacity-bounded store did not.
        self.events_dropped = 0
        self._events: List[TraceEvent] = []
        # Keyed by the kind's value string: record() runs for every
        # protocol event even when disabled, and member-keyed lookups
        # would pay a Python-level enum.__hash__ each time.
        self._counts: Dict[str, int] = {k._value_: 0 for k in EventKind}
        self._listeners: List[Callable[[TraceEvent], None]] = []

    def record(self, time: float, node: int, kind: EventKind, **detail: Any) -> None:
        """Append one event (or just count it when recording is disabled)."""
        self._counts[kind._value_] += 1
        if not self.enabled:
            return
        event = TraceEvent(time=time, node=node, kind=kind, detail=detail)
        if self.capacity is None or len(self._events) < self.capacity:
            self._events.append(event)
        else:
            self.events_dropped += 1
        for listener in self._listeners:
            listener(event)

    def subscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        """Call ``listener`` for every recorded event while the recorder
        is enabled (see the listener contract in the class docstring)."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def count(self, kind: EventKind) -> int:
        """Total occurrences of ``kind`` (counted even when disabled)."""
        return self._counts[kind._value_]

    def events(
        self,
        kind: Optional[EventKind] = None,
        *,
        node: Optional[int] = None,
        after: float = float("-inf"),
        before: float = float("inf"),
    ) -> List[TraceEvent]:
        """Filtered view of the recorded events."""
        return [
            e
            for e in self._events
            if (kind is None or e.kind is kind)
            and (node is None or e.node == node)
            and after <= e.time < before
        ]

    def first(self, kind: EventKind, **filters: Any) -> Optional[TraceEvent]:
        """Earliest event of ``kind`` whose detail matches ``filters``."""
        for event in self._events:
            if event.kind is kind and all(
                event.detail.get(k) == v for k, v in filters.items()
            ):
                return event
        return None

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def clear(self) -> None:
        """Drop recorded events (counters persist)."""
        self._events.clear()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        dropped = f", dropped={self.events_dropped}" if self.events_dropped else ""
        return f"<TraceRecorder {state}, {len(self._events)} events{dropped}>"

    def export_jsonl(self, path) -> "Path":
        """Write recorded events as JSON lines; returns the path.

        Symmetric with :meth:`repro.trace.capture.AirCapture.export_jsonl`:
        one object per line with ``time``/``node``/``kind``/``detail``
        (detail values are stringified when not JSON-serialisable).
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            for event in self._events:
                detail = {
                    k: v if isinstance(v, (int, float, str, bool, type(None))) else repr(v)
                    for k, v in event.detail.items()
                }
                handle.write(
                    json.dumps(
                        {
                            "time": event.time,
                            "node": event.node,
                            "kind": event.kind.value,
                            "detail": detail,
                        }
                    )
                    + "\n"
                )
        return path
