"""Canonical named scenarios.

The same handful of deployments appear across the examples, tests, and
benchmarks (the paper's 4-node demo line, the diamond with two disjoint
relay paths, the campus, the dense single cell...).  Defining them once
keeps geometry assumptions — "120 m spacing means neighbour-only chains
at SF7" — in a single audited place.

Every scenario returns a :class:`Scenario` with positions, a suggested
flow list, and provenance notes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.experiments.runner import TrafficSpec
from repro.topology.placement import (
    campus_positions,
    grid_positions,
    line_positions,
    ring_positions,
)

Position = Tuple[float, float]


@dataclass(frozen=True)
class Scenario:
    """A named deployment plus its canonical traffic."""

    name: str
    description: str
    positions: Tuple[Position, ...]
    flows: Tuple[TrafficSpec, ...]

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the deployment."""
        return len(self.positions)


def demo_line(n: int = 4, *, period_s: float = 60.0) -> Scenario:
    """The paper's demo: an n-node neighbour-only chain, ends talking."""
    return Scenario(
        name=f"demo_line_{n}",
        description=(
            f"{n} nodes at 120 m spacing (SF7 neighbour-only chain); the "
            "end nodes exchange data while the middle nodes route — the "
            "ICDCS'22 live demonstration."
        ),
        positions=tuple(line_positions(n)),
        flows=(
            TrafficSpec(src_index=0, dst_index=n - 1, period_s=period_s),
            TrafficSpec(src_index=n - 1, dst_index=0, period_s=period_s),
        ),
    )


def diamond(*, period_s: float = 30.0) -> Scenario:
    """Two disjoint 2-hop paths between the endpoints (repair studies)."""
    return Scenario(
        name="diamond",
        description=(
            "A-D connected only through relays B and C (disjoint 2-hop "
            "paths): the canonical self-healing topology of E8."
        ),
        positions=((0.0, 0.0), (120.0, 45.0), (120.0, -45.0), (240.0, 0.0)),
        flows=(TrafficSpec(src_index=0, dst_index=3, period_s=period_s),),
    )


def dense_cell(n: int = 8, *, period_s: float = 60.0) -> Scenario:
    """Every node hears every other (one radio cell): MAC stress."""
    positions = tuple(ring_positions(n, radius_m=60.0))
    flows = tuple(
        TrafficSpec(src_index=i, dst_index=(i + n // 2) % n, period_s=period_s)
        for i in range(n)
    )
    return Scenario(
        name=f"dense_cell_{n}",
        description=(
            f"{n} nodes on a 60 m ring — all within one radio cell, so "
            "collisions/backoff dominate (the A2 ablation's habitat)."
        ),
        positions=positions,
        flows=flows,
    )


def sensor_grid(rows: int = 3, cols: int = 3, *, period_s: float = 120.0) -> Scenario:
    """Outer nodes report to the centre across a 100 m grid."""
    positions = tuple(grid_positions(rows, cols, spacing_m=100.0))
    centre = (rows // 2) * cols + cols // 2
    flows = tuple(
        TrafficSpec(src_index=i, dst_index=centre, period_s=period_s)
        for i in range(len(positions))
        if i != centre
    )
    return Scenario(
        name=f"sensor_grid_{rows}x{cols}",
        description=(
            f"{rows}x{cols} grid at 100 m; every node reports to the "
            "centre (diagonals are out of SF7 range, so edge nodes route)."
        ),
        positions=positions,
        flows=flows,
    )


def campus(
    clusters: int = 4,
    nodes_per_cluster: int = 3,
    *,
    seed: int = 7,
    period_s: float = 300.0,
) -> Scenario:
    """The paper's motivation: clustered labs strung across a campus."""
    positions = tuple(
        campus_positions(
            clusters,
            nodes_per_cluster,
            cluster_distance_m=110.0,
            rng=random.Random(seed),
        )
    )
    # All sensors report to the first node (the sink).
    flows = tuple(
        TrafficSpec(src_index=i, dst_index=0, period_s=period_s)
        for i in range(1, len(positions))
    )
    return Scenario(
        name=f"campus_{clusters}x{nodes_per_cluster}",
        description=(
            f"{clusters} clusters of {nodes_per_cluster} nodes, adjacent "
            "clusters in range of each other, distant ones not — the "
            "paper's building-scale IoT deployment."
        ),
        positions=positions,
        flows=flows,
    )


def hidden_terminals() -> Scenario:
    """Two senders that cannot hear each other, one victim in between."""
    return Scenario(
        name="hidden_terminals",
        description=(
            "A (0 m) and B (260 m) both reach C (130 m) but not each "
            "other: CAD cannot prevent their frames colliding at C."
        ),
        positions=((0.0, 0.0), (260.0, 0.0), (130.0, 0.0)),
        flows=(
            TrafficSpec(src_index=0, dst_index=2, period_s=30.0),
            TrafficSpec(src_index=1, dst_index=2, period_s=30.0),
        ),
    )


#: Registry of every canonical scenario factory by name.
SCENARIOS = {
    "demo_line": demo_line,
    "diamond": diamond,
    "dense_cell": dense_cell,
    "sensor_grid": sensor_grid,
    "campus": campus,
    "hidden_terminals": hidden_terminals,
}


def get_scenario(name: str, **kwargs) -> Scenario:
    """Build a canonical scenario by registry name."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
    return factory(**kwargs)
