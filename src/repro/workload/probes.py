"""Probe payloads: self-describing measurement datagrams.

A probe encodes ``(src, seq, sent_at)`` in its first bytes and pads to the
requested payload size, so a receiver can compute per-packet latency and
the metrics layer can count losses by sequence gaps — the standard
methodology for PDR/latency measurement in mesh testbeds.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

_PROBE = struct.Struct("<HId")  # src, seq, sent_at (float seconds)
PROBE_MAGIC = b"PB"
#: Bytes a probe needs before padding.
PROBE_OVERHEAD = len(PROBE_MAGIC) + _PROBE.size


@dataclass(frozen=True)
class Probe:
    """Decoded probe header."""

    src: int
    seq: int
    sent_at: float
    size: int  # full payload size including padding


def make_probe(src: int, seq: int, sent_at: float, *, size: int = PROBE_OVERHEAD) -> bytes:
    """Build a probe payload of exactly ``size`` bytes."""
    if size < PROBE_OVERHEAD:
        raise ValueError(f"probe size must be >= {PROBE_OVERHEAD}, got {size}")
    header = PROBE_MAGIC + _PROBE.pack(src, seq, sent_at)
    return header + bytes(size - len(header))


def parse_probe(payload: bytes) -> Probe:
    """Decode a probe payload; raises ValueError for non-probe bytes."""
    if len(payload) < PROBE_OVERHEAD or payload[: len(PROBE_MAGIC)] != PROBE_MAGIC:
        raise ValueError("not a probe payload")
    src, seq, sent_at = _PROBE.unpack_from(payload, len(PROBE_MAGIC))
    return Probe(src=src, seq=seq, sent_at=sent_at, size=len(payload))


def is_probe(payload: bytes) -> bool:
    """Cheap check without raising."""
    return len(payload) >= PROBE_OVERHEAD and payload[: len(PROBE_MAGIC)] == PROBE_MAGIC
