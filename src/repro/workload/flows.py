"""The heavy-traffic workload engine: thousands of concurrent flows.

Every workload before this module was probe-shaped — one datagram at a
time, one flow per sender.  :class:`FlowEngine` drives *flows* instead:
connection-oriented streams (:mod:`repro.net.stream`) carrying many
messages each, thousands of them concurrently, in the three shapes real
LoRa mesh deployments produce:

``bursty``
    Sensor uplink: a device wakes, pushes a burst of readings to its
    collector, closes.
``ota``
    Firmware/config fan-out: one distributor opens a stream to each
    subscriber and pushes the same update — many flows sharing one
    sender.
``chat``
    Bidirectional messaging: both endpoints open a stream to the other
    and trade paced messages.

Each DATA message embeds ``(flow id, send sim-time)`` so the receiving
endpoint computes end-to-end latency without global state; per-flow
latency percentiles (p50/p95/p99) and goodput land in the metrics
registry via :func:`instrument_flow_engine
<repro.obs.instrument.instrument_flow_engine>`.  Flow placement and
start jitter come from named RNG streams
(:class:`~repro.sim.rng.RngRegistry`), so a workload is reproducible
from its seed alone.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.stats import percentile
from repro.net.stream import Stream, StreamManager
from repro.sim.rng import RngRegistry

__all__ = [
    "FlowSpec",
    "FlowState",
    "FlowEngine",
    "FlowKindSummary",
    "WorkloadSummary",
    "build_workload",
    "WORKLOAD_KINDS",
]

WORKLOAD_KINDS = ("bursty", "ota", "chat")

#: DATA body prefix: flow id (u32), send sim-time (f64).
_MSG_HEADER = struct.Struct(">Id")
MSG_OVERHEAD = _MSG_HEADER.size


@dataclass(frozen=True)
class FlowSpec:
    """One flow of the workload (one direction of a chat pair)."""

    flow_id: int
    kind: str  # "bursty" | "ota" | "chat"
    src: int  # sender address
    dst: int  # receiver address
    messages: int
    payload_bytes: int
    start_s: float
    #: Inter-message pacing; 0 hands the whole burst to the window.
    interval_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(f"unknown flow kind {self.kind!r}")
        if self.src == self.dst:
            raise ValueError("a flow needs distinct endpoints")
        if self.messages < 1:
            raise ValueError("a flow sends at least one message")
        if self.payload_bytes < MSG_OVERHEAD:
            raise ValueError(f"payload_bytes must be >= {MSG_OVERHEAD}")


@dataclass
class FlowState:
    """Live accounting for one flow."""

    spec: FlowSpec
    stream: Optional[Stream] = None
    sent: int = 0
    delivered: int = 0
    bytes_delivered: int = 0
    latencies_s: List[float] = field(default_factory=list)
    first_send_at: Optional[float] = None
    last_delivery_at: Optional[float] = None
    closed: bool = False
    failed: Optional[str] = None

    @property
    def complete(self) -> bool:
        return self.delivered >= self.spec.messages

    @property
    def goodput_bps(self) -> Optional[float]:
        """Delivered application bytes per second, send-to-last-delivery."""
        if self.first_send_at is None or self.last_delivery_at is None:
            return None
        elapsed = self.last_delivery_at - self.first_send_at
        if elapsed <= 0:
            return None
        return self.bytes_delivered / elapsed


@dataclass(frozen=True)
class FlowKindSummary:
    """Aggregated percentiles for one workload kind."""

    kind: str
    flows: int
    completed: int
    failed: int
    messages_sent: int
    messages_delivered: int
    latency_p50_s: Optional[float]
    latency_p95_s: Optional[float]
    latency_p99_s: Optional[float]
    goodput_p50_bps: Optional[float]


@dataclass(frozen=True)
class WorkloadSummary:
    """Whole-workload outcome, one row per kind plus totals."""

    flows: int
    completed: int
    failed: int
    messages_sent: int
    messages_delivered: int
    delivery_ratio: float
    latency_p50_s: Optional[float]
    latency_p95_s: Optional[float]
    latency_p99_s: Optional[float]
    kinds: Tuple[FlowKindSummary, ...]


def build_workload(
    kind: str,
    addresses: Sequence[int],
    flows: int,
    *,
    seed: int = 0,
    messages: int = 4,
    payload_bytes: int = 48,
    window_s: float = 600.0,
    interval_s: float = 30.0,
) -> List[FlowSpec]:
    """Deterministically place ``flows`` flow specs over ``addresses``.

    ``kind`` is one of ``bursty``/``ota``/``chat`` or ``mixed`` (equal
    thirds).  Starts are spread uniformly over ``window_s`` so thousands
    of flows ramp up instead of stampeding one instant.  ``chat``
    counts each *pair* as two flows (one per direction).
    """
    if len(addresses) < 2:
        raise ValueError("a workload needs at least two nodes")
    if flows < 1:
        raise ValueError("flows must be >= 1")
    if kind != "mixed" and kind not in WORKLOAD_KINDS:
        raise ValueError(f"unknown workload kind {kind!r}")
    rng = RngRegistry(seed).stream(f"workload.{kind}")
    specs: List[FlowSpec] = []

    def pick_pair() -> Tuple[int, int]:
        src = rng.choice(addresses)
        dst = rng.choice(addresses)
        while dst == src:
            dst = rng.choice(addresses)
        return src, dst

    def add(flow_kind: str, src: int, dst: int, interval: float) -> None:
        specs.append(
            FlowSpec(
                flow_id=len(specs),
                kind=flow_kind,
                src=src,
                dst=dst,
                messages=messages,
                payload_bytes=payload_bytes,
                start_s=rng.uniform(0.0, window_s),
                interval_s=interval,
            )
        )

    if kind == "mixed":
        third = flows // len(WORKLOAD_KINDS)
        targets = {
            "bursty": third,
            "ota": third,
            "chat": flows - 2 * third,
        }
    else:
        targets = {kind: flows}

    for flow_kind, target in targets.items():
        goal = len(specs) + target
        while len(specs) < goal:
            if flow_kind == "bursty":
                src, dst = pick_pair()
                add("bursty", src, dst, 0.0)
            elif flow_kind == "ota":
                # One distributor fans out to a handful of subscribers.
                src = rng.choice(addresses)
                fanout = min(max(2, len(addresses) // 4), goal - len(specs))
                receivers = [a for a in addresses if a != src]
                rng.shuffle(receivers)
                for dst in receivers[:fanout]:
                    add("ota", src, dst, 0.0)
            else:  # chat: one spec per direction
                src, dst = pick_pair()
                add("chat", src, dst, interval_s)
                if len(specs) < goal:
                    add("chat", dst, src, interval_s)
    return specs


class FlowEngine:
    """Drives a list of :class:`FlowSpec` over a live mesh network.

    One :class:`~repro.net.stream.StreamManager` is attached per
    participating node (reusing any manager already attached).  Call
    :meth:`start` before running the simulation; read :meth:`summary`
    (or the registry instruments) afterwards.
    """

    def __init__(self, net, *, window: Optional[int] = None, checker=None) -> None:
        self._net = net
        self._sim = net.sim
        self._window = window
        self._checker = checker
        self._managers: Dict[int, StreamManager] = {}
        self.flows: Dict[int, FlowState] = {}
        self._started = False

        # Engine-level counters (callback targets for the registry).
        self.flows_started = 0
        self.flows_completed = 0
        self.flows_failed = 0
        self.messages_sent = 0
        self.messages_delivered = 0
        self.bytes_delivered = 0

    # -- wiring --------------------------------------------------------
    def manager(self, address: int) -> StreamManager:
        mgr = self._managers.get(address)
        if mgr is None:
            node = self._net.node(address)
            mgr = getattr(node, "stream_manager", None)
            if mgr is None:
                mgr = StreamManager(node, window=self._window)
                if self._checker is not None:
                    self._checker.watch_stream_manager(mgr)
            mgr.on_accept = self._accept
            self._managers[address] = mgr
        return mgr

    def add_flows(self, specs: Sequence[FlowSpec]) -> None:
        for spec in specs:
            if spec.flow_id in self.flows:
                raise ValueError(f"duplicate flow id {spec.flow_id}")
            self.flows[spec.flow_id] = FlowState(spec=spec)

    def start(self) -> None:
        """Schedule every flow's launch at its start time."""
        if self._started:
            raise RuntimeError("engine already started")
        self._started = True
        # Receivers need their manager hook installed before the first
        # SYN arrives.
        for state in self.flows.values():
            self.manager(state.spec.dst)
        for state in self.flows.values():
            self._sim.schedule(
                state.spec.start_s,
                lambda s=state: self._launch(s),
                label=f"flow#{state.spec.flow_id} start",
            )

    # -- flow lifecycle ------------------------------------------------
    def _launch(self, state: FlowState) -> None:
        spec = state.spec
        self.flows_started += 1
        stream = self.manager(spec.src).open(
            spec.dst,
            on_open=lambda s, st=state: self._feed(st),
            on_close=lambda s, why, st=state: self._closed(st, why),
        )
        state.stream = stream

    def _feed(self, state: FlowState) -> None:
        """Queue messages on the (now open) stream."""
        spec = state.spec
        if spec.interval_s <= 0:
            for _ in range(spec.messages):
                self._send_one(state)
            state.stream.close()
        else:
            self._paced_send(state)

    def _paced_send(self, state: FlowState) -> None:
        if state.closed or state.stream is None or not state.stream.is_open:
            return
        self._send_one(state)
        if state.sent < state.spec.messages:
            self._sim.schedule(
                state.spec.interval_s,
                lambda: self._paced_send(state),
                label=f"flow#{state.spec.flow_id} pace",
            )
        else:
            state.stream.close()

    def _send_one(self, state: FlowState) -> None:
        spec = state.spec
        now = self._sim.now
        if state.first_send_at is None:
            state.first_send_at = now
        body = _MSG_HEADER.pack(spec.flow_id, now)
        body += b"\x00" * (spec.payload_bytes - len(body))
        state.stream.send(body)
        state.sent += 1
        self.messages_sent += 1

    def _accept(self, stream: Stream) -> None:
        stream.on_message = self._delivered

    def _delivered(self, stream: Stream, body: bytes) -> None:
        if len(body) < MSG_OVERHEAD:
            return
        flow_id, sent_at = _MSG_HEADER.unpack_from(body)
        state = self.flows.get(flow_id)
        if state is None:
            return
        now = self._sim.now
        state.delivered += 1
        state.bytes_delivered += len(body)
        state.latencies_s.append(now - sent_at)
        state.last_delivery_at = now
        self.messages_delivered += 1
        self.bytes_delivered += len(body)

    def _closed(self, state: FlowState, reason: str) -> None:
        if state.closed:
            return
        state.closed = True
        if reason == "fin":
            self.flows_completed += 1
        else:
            state.failed = reason
            self.flows_failed += 1

    # -- reporting -----------------------------------------------------
    @property
    def flows_active(self) -> int:
        return self.flows_started - self.flows_completed - self.flows_failed

    def managers(self) -> Tuple[StreamManager, ...]:
        """Every :class:`StreamManager` the engine has wired, for taps
        (store recorders, invariant checkers) attached after start."""
        return tuple(self._managers.values())

    def stream_counter_total(self, name: str) -> int:
        """Sum a :class:`StreamManager` counter across every node the
        engine has wired (``streams_opened``, ``messages_received``, …)."""
        return sum(getattr(mgr, name, 0) for mgr in self._managers.values())

    def max_concurrent_window(self) -> int:
        """Flows whose [start, close] interval is still open *now* is not
        knowable post-hoc; this returns flows that had been started and
        were not yet closed at any point — a lower bound used by tests."""
        return self.flows_active

    def _all_latencies(self, kind: Optional[str] = None) -> List[float]:
        out: List[float] = []
        for state in self.flows.values():
            if kind is None or state.spec.kind == kind:
                out.extend(state.latencies_s)
        return out

    def latency_percentile(self, q: float, kind: Optional[str] = None) -> Optional[float]:
        values = self._all_latencies(kind)
        return percentile(values, q) if values else None

    def goodput_percentile(self, q: float, kind: Optional[str] = None) -> Optional[float]:
        values = [
            g
            for state in self.flows.values()
            if (kind is None or state.spec.kind == kind)
            and (g := state.goodput_bps) is not None
        ]
        return percentile(values, q) if values else None

    def summary(self) -> WorkloadSummary:
        kinds: List[FlowKindSummary] = []
        for kind in WORKLOAD_KINDS:
            states = [s for s in self.flows.values() if s.spec.kind == kind]
            if not states:
                continue
            latencies = self._all_latencies(kind)
            kinds.append(
                FlowKindSummary(
                    kind=kind,
                    flows=len(states),
                    completed=sum(1 for s in states if s.closed and s.failed is None),
                    failed=sum(1 for s in states if s.failed is not None),
                    messages_sent=sum(s.sent for s in states),
                    messages_delivered=sum(s.delivered for s in states),
                    latency_p50_s=percentile(latencies, 50) if latencies else None,
                    latency_p95_s=percentile(latencies, 95) if latencies else None,
                    latency_p99_s=percentile(latencies, 99) if latencies else None,
                    goodput_p50_bps=self.goodput_percentile(50, kind),
                )
            )
        latencies = self._all_latencies()
        sent = sum(s.sent for s in self.flows.values())
        delivered = sum(s.delivered for s in self.flows.values())
        return WorkloadSummary(
            flows=len(self.flows),
            completed=self.flows_completed,
            failed=self.flows_failed,
            messages_sent=sent,
            messages_delivered=delivered,
            delivery_ratio=(delivered / sent) if sent else 0.0,
            latency_p50_s=percentile(latencies, 50) if latencies else None,
            latency_p95_s=percentile(latencies, 95) if latencies else None,
            latency_p99_s=percentile(latencies, 99) if latencies else None,
            kinds=tuple(kinds),
        )
