"""Traffic generation and canonical scenarios.

Traffic generators drive application sends on mesh (or baseline) nodes;
each datagram carries a :mod:`probe <repro.workload.probes>` header
(source, sequence, send-timestamp) so the metrics layer can match
deliveries to sends and compute PDR and latency without global state.
"""

from repro.workload.flows import (
    FlowEngine,
    FlowSpec,
    FlowState,
    WORKLOAD_KINDS,
    WorkloadSummary,
    build_workload,
)
from repro.workload.probes import PROBE_OVERHEAD, make_probe, parse_probe, Probe
from repro.workload.traffic import PeriodicSender, PoissonSender

__all__ = [
    "Probe",
    "make_probe",
    "parse_probe",
    "PROBE_OVERHEAD",
    "PeriodicSender",
    "PoissonSender",
    "FlowEngine",
    "FlowSpec",
    "FlowState",
    "WorkloadSummary",
    "build_workload",
    "WORKLOAD_KINDS",
]
