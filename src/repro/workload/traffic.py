"""Traffic generators.

Both generators call a generic ``send(dst, payload) -> bool`` callable,
so they drive mesh nodes and baseline nodes alike.  Every payload is a
probe (see :mod:`repro.workload.probes`); the generator reports each send
to an optional :class:`~repro.metrics.collect.FlowRecorder`.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Protocol

from repro.sim.kernel import PeriodicTimer, Simulator
from repro.workload.probes import PROBE_OVERHEAD, make_probe

SendFn = Callable[[int, bytes], bool]


class SendListener(Protocol):
    """Where generators report their sends (the FlowRecorder implements it)."""

    def sent(self, src: int, dst: int, seq: int, time: float, size: int) -> None: ...


class _SenderBase:
    """Common state of the concrete generators."""

    def __init__(
        self,
        sim: Simulator,
        src: int,
        dst: int,
        send: SendFn,
        *,
        payload_size: int = PROBE_OVERHEAD,
        listener: Optional[SendListener] = None,
        max_packets: Optional[int] = None,
    ) -> None:
        if payload_size < PROBE_OVERHEAD:
            raise ValueError(f"payload_size must be >= {PROBE_OVERHEAD}")
        self._sim = sim
        self.src = src
        self.dst = dst
        self._send = send
        self.payload_size = payload_size
        self._listener = listener
        self.max_packets = max_packets
        self.seq = 0
        self.sent_count = 0
        self.refused_count = 0  # send() returned False (no route / queue full)

    def _emit(self) -> None:
        if self.max_packets is not None and self.sent_count >= self.max_packets:
            self.stop()
            return
        payload = make_probe(self.src, self.seq, self._sim.now, size=self.payload_size)
        accepted = self._send(self.dst, payload)
        if self._listener is not None:
            self._listener.sent(self.src, self.dst, self.seq, self._sim.now, self.payload_size)
        self.seq += 1
        self.sent_count += 1
        if not accepted:
            self.refused_count += 1

    def stop(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class PeriodicSender(_SenderBase):
    """Fixed-period traffic (the classic IoT sensor-report pattern)."""

    def __init__(
        self,
        sim: Simulator,
        src: int,
        dst: int,
        send: SendFn,
        *,
        period_s: float,
        jitter_fraction: float = 0.1,
        rng: Optional[random.Random] = None,
        start_delay_s: Optional[float] = None,
        **kwargs,
    ) -> None:
        super().__init__(sim, src, dst, send, **kwargs)
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if not 0 <= jitter_fraction < 1:
            raise ValueError("jitter_fraction must be in [0, 1)")
        self.period_s = period_s
        self._rng = rng or random.Random(src)
        spread = jitter_fraction * period_s
        jitter = (lambda: self._rng.uniform(-spread, spread)) if spread else None
        first = start_delay_s if start_delay_s is not None else self._rng.uniform(0, period_s)
        self._timer = PeriodicTimer(sim, period_s, self._emit, jitter=jitter, label=f"traffic {src:#06x}")
        self._timer.start(first_delay=first)

    def stop(self) -> None:
        """Stop generating."""
        self._timer.cancel()


class PoissonSender(_SenderBase):
    """Poisson-process traffic with mean rate ``1/mean_interval_s``."""

    def __init__(
        self,
        sim: Simulator,
        src: int,
        dst: int,
        send: SendFn,
        *,
        mean_interval_s: float,
        rng: random.Random,
        **kwargs,
    ) -> None:
        super().__init__(sim, src, dst, send, **kwargs)
        if mean_interval_s <= 0:
            raise ValueError("mean_interval_s must be positive")
        self.mean_interval_s = mean_interval_s
        self._rng = rng
        self._stopped = False
        self._schedule_next()

    def _schedule_next(self) -> None:
        self._sim.schedule(
            self._rng.expovariate(1.0 / self.mean_interval_s),
            self._tick,
            label=f"poisson {self.src:#06x}",
        )

    def _tick(self) -> None:
        if self._stopped:
            return
        self._emit()
        if not self._stopped:
            self._schedule_next()

    def stop(self) -> None:
        """Stop generating."""
        self._stopped = True
