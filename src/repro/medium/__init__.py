"""The shared wireless medium.

One :class:`~repro.medium.channel.Medium` instance models the ether all
simulated radios share: it tracks in-flight transmissions, decides which
listeners demodulate which frames (sensitivity, half-duplex deafness,
co-channel collisions with capture effect, inter-SF quasi-orthogonality),
and delivers reception callbacks at frame end.
"""

from repro.medium.channel import Medium, Transmission, ReceptionOutcome, DropReason

__all__ = ["Medium", "Transmission", "ReceptionOutcome", "DropReason"]
