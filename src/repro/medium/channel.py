"""In-flight transmission tracking and reception resolution.

The model follows the validated LoRaSim / ns-3 LoRa methodology:

* A frame is *receivable* at a listener if the listener was in continuous
  receive mode for the frame's whole duration, tuned to the same
  frequency/SF/BW, and the received SNR clears the per-SF demodulation
  floor.
* A receivable frame then survives interference if, for **every**
  transmission that overlapped it in time on the same frequency, the
  pairwise capture rule of :func:`repro.phy.link.survives_interference`
  holds at that listener.
* Reception outcomes are resolved at frame end, with kernel priority
  ``PRIORITY_HIGH`` so that protocol timers scheduled for the same instant
  observe the delivered frame.

Simplifications relative to silicon (documented in DESIGN.md): no
preamble-lock modelling (the stronger frame always captures), and
interference is evaluated pairwise rather than as aggregate noise — both
standard in the literature and conservative for protocol evaluation.
"""

from __future__ import annotations

import enum
import itertools
import logging
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, FrozenSet, List, Optional, Protocol, Tuple

from repro.phy.link import LinkBudget, snr_floor_db, noise_floor_dbm, survives_interference
from repro.phy.modulation import LoRaParams
from repro.phy.pathloss import Position
from repro.sim.kernel import PRIORITY_HIGH, Simulator

logger = logging.getLogger(__name__)


class MediumListener(Protocol):
    """What the medium needs to know about an attached radio."""

    node_id: int

    @property
    def position(self) -> Position: ...

    @property
    def rx_params(self) -> Optional[LoRaParams]:
        """Modulation the radio is currently listening with, or None."""
        ...

    def listening_throughout(self, start: float, end: float) -> bool:
        """True if the radio was continuously in RX during [start, end]."""
        ...

    def rx_params_throughout(self, start: float, end: float) -> Optional[LoRaParams]:
        """Combined hot-path accessor: the modulation the radio listened
        with continuously during [start, end], or None.  Must equal
        ``rx_params if listening_throughout(start, end) else None``; the
        medium classifies every listener of every frame, so it asks with
        one call instead of two."""
        ...

    def deliver(self, outcome: "ReceptionOutcome") -> None:
        """Hand a resolved reception (good or corrupted) to the radio."""
        ...


class DropReason(enum.Enum):
    """Why a listener did not successfully receive a frame."""

    DELIVERED = "delivered"
    NOT_LISTENING = "not_listening"
    WRONG_PARAMS = "wrong_params"
    BELOW_SENSITIVITY = "below_sensitivity"
    COLLISION = "collision"
    INJECTED_LOSS = "injected_loss"


@dataclass(slots=True)
class Transmission:
    """One frame in flight."""

    tx_id: int  # unique per transmission
    sender_id: int
    position: Position
    params: LoRaParams
    payload: bytes
    start: float
    end: float

    @property
    def airtime(self) -> float:
        """Frame duration in seconds."""
        return self.end - self.start

    def overlaps(self, other: "Transmission") -> bool:
        """Temporal overlap with another transmission (open interval)."""
        return self.start < other.end and other.start < self.end

    def same_channel(self, other: "Transmission") -> bool:
        """Same RF channel (centre frequency and bandwidth)."""
        return (
            abs(self.params.frequency_mhz - other.params.frequency_mhz) < 1e-9
            and self.params.bandwidth == other.params.bandwidth
        )


@dataclass(frozen=True, slots=True)
class ReceptionOutcome:
    """The resolved result of one (transmission, listener) pair."""

    payload: bytes
    sender_id: int
    rssi_dbm: float
    snr_db: float
    crc_ok: bool
    start: float
    end: float
    params: LoRaParams
    reason: DropReason


#: Optional fault-injection hook: (transmission, listener_id) -> drop?
LossInjector = Callable[[Transmission, int], bool]


_NO_SIGNAL = float("-inf")


def _drop(
    tx: Transmission,
    reason: DropReason,
    rssi: float = _NO_SIGNAL,
    snr: float = _NO_SIGNAL,
) -> ReceptionOutcome:
    """A non-delivery outcome for ``tx`` (module-level so the resolver
    does not rebuild a closure per (frame, listener) pair)."""
    return ReceptionOutcome(
        payload=tx.payload,
        sender_id=tx.sender_id,
        rssi_dbm=rssi,
        snr_db=snr,
        crc_ok=False,
        start=tx.start,
        end=tx.end,
        params=tx.params,
        reason=reason,
    )


def _params_compatible(tx_params: LoRaParams, rx_params: LoRaParams) -> bool:
    """Whether a receiver tuned to ``rx_params`` demodulates ``tx_params``."""
    return (
        tx_params.spreading_factor == rx_params.spreading_factor
        and tx_params.bandwidth == rx_params.bandwidth
        and abs(tx_params.frequency_mhz - rx_params.frequency_mhz) < 1e-9
    )


class Medium:
    """The shared channel connecting every radio in a scenario.

    Radios attach once and then call :meth:`begin_transmission`; the medium
    resolves receptions at frame end and calls ``listener.deliver`` on each
    attached radio with the outcome (only successful demodulations and
    CRC-corrupted frames are delivered; frames below sensitivity are
    silent, as on real hardware).
    """

    def __init__(
        self,
        sim: Simulator,
        link_budget: LinkBudget,
        *,
        loss_injector: Optional[LossInjector] = None,
        reachability_cache: Optional[bool] = None,
    ) -> None:
        self._sim = sim
        self._link = link_budget
        self._loss_injector = loss_injector
        self._listeners: Dict[int, MediumListener] = {}
        self._active: Dict[int, Transmission] = {}
        #: Transmissions kept past their end for overlap checks against
        #: frames that started before they ended.  Frames complete in
        #: end-time order, so appending at completion keeps the deque
        #: sorted by end time and pruning pops from the left.
        self._recent: Deque[Transmission] = deque()
        self._tx_counter = itertools.count()
        # Keyed by the reason's value string rather than the member: the
        # per-listener `stats[reason] += 1` in _complete would otherwise
        # pay a Python-level enum.__hash__ on every lookup.
        self._stats: Dict[str, int] = {reason._value_: 0 for reason in DropReason}
        self._transmissions_total = 0
        #: Reception fast path: per (sender position, params) set of
        #: listener ids whose link clears the demodulation floor, so
        #: frame resolution runs full PHY math only on plausible
        #: receivers.  Invalidated wholesale on attach/detach/movement;
        #: ``None`` when the pathloss model rules the cache out
        #: (time-varying loss or order-sensitive shadowing draws).
        if reachability_cache is None:
            reachability_cache = link_budget.supports_reachability_cache
        self.use_reachability: bool = reachability_cache
        self._reachable_cache: Dict[tuple, FrozenSet[int]] = {}
        self._reachable_params: Dict[int, LoRaParams] = {}
        # Listener snapshot reused across completions; rebuilt only after
        # an attach/detach (deliver callbacks may mutate the listener map
        # mid-resolution, which must not disturb the in-progress loop).
        self._listener_snapshot: Optional[Tuple[MediumListener, ...]] = None
        #: Optional sniffer hook: called once per completed transmission
        #: with the per-listener outcomes (see repro.trace.capture).
        self.on_transmission: Optional[
            Callable[[Transmission, Dict[int, DropReason]], None]
        ] = None

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, listener: MediumListener) -> None:
        """Register a radio; its node_id must be unique on this medium."""
        if listener.node_id in self._listeners:
            raise ValueError(f"node id {listener.node_id} already attached")
        self._listeners[listener.node_id] = listener
        self._invalidate_topology()

    def detach(self, node_id: int) -> None:
        """Remove a radio (e.g. simulated node failure)."""
        self._listeners.pop(node_id, None)
        self._invalidate_topology()

    def notify_moved(self, node_id: int) -> None:
        """Mobility hook: a radio's position changed.

        Drops every cached reachable set (any sender's set may include or
        exclude the moved listener) and the link budget's memoized
        qualities, so the next resolution recomputes against the new
        geometry.
        """
        self._reachable_cache.clear()
        self._reachable_params.clear()
        self._link.invalidate()

    def _invalidate_topology(self) -> None:
        self._listener_snapshot = None
        self._reachable_cache.clear()
        self._reachable_params.clear()

    @property
    def listener_ids(self) -> Tuple[int, ...]:
        """Node ids of all attached radios, in attachment order."""
        return tuple(self._listeners)

    @property
    def link_budget(self) -> LinkBudget:
        """The link-budget model receptions are evaluated against."""
        return self._link

    # ------------------------------------------------------------------
    # Transmission lifecycle
    # ------------------------------------------------------------------
    def begin_transmission(
        self,
        sender_id: int,
        position: Position,
        params: LoRaParams,
        payload: bytes,
        airtime: float,
    ) -> Transmission:
        """Start a frame on the air; reception resolves at ``now+airtime``."""
        if airtime <= 0:
            raise ValueError(f"airtime must be positive, got {airtime}")
        now = self._sim.now
        tx = Transmission(
            tx_id=next(self._tx_counter),
            sender_id=sender_id,
            position=position,
            params=params,
            payload=payload,
            start=now,
            end=now + airtime,
        )
        self._active[tx.tx_id] = tx
        self._transmissions_total += 1
        self._sim.schedule(
            airtime,
            lambda: self._complete(tx),
            priority=PRIORITY_HIGH,
            # Lazy label: formatted only if a profiler/inspector reads it.
            label=lambda: f"tx#{tx.tx_id} end",
        )
        return tx

    def _complete(self, tx: Transmission) -> None:
        self._active.pop(tx.tx_id, None)
        self._recent.append(tx)
        self._prune_recent(tx.start)
        listeners = self._listener_snapshot
        if listeners is None:
            listeners = self._listener_snapshot = tuple(self._listeners.values())
        reachable = self._reachable(tx) if self.use_reachability else None
        # The same overlap set applies at every listener; compute it once
        # per frame instead of once per (frame, listener).
        overlapping = self._overlapping(tx)
        stats = self._stats
        outcomes: Dict[int, DropReason] = {}
        sender_id, tx_params, tx_start, tx_end = tx.sender_id, tx.params, tx.start, tx.end
        not_listening = DropReason.NOT_LISTENING
        wrong_params = DropReason.WRONG_PARAMS
        below_sensitivity = DropReason.BELOW_SENSITIVITY
        for listener in listeners:
            node_id = listener.node_id
            if node_id == sender_id:
                continue
            if reachable is not None and node_id not in reachable:
                # Culled listener: the link budget says the frame cannot
                # clear sensitivity here, so skip the PHY math entirely —
                # but keep the outcome histogram byte-identical to the
                # slow path by replaying its (cheap) early checks in the
                # same order.  (The identity test is a fast path for the
                # common whole-network-shares-one-params-object case.)
                rx_params = listener.rx_params_throughout(tx_start, tx_end)
                if rx_params is None:
                    reason = not_listening
                elif rx_params is not tx_params and not _params_compatible(tx_params, rx_params):
                    reason = wrong_params
                else:
                    reason = below_sensitivity
                stats[reason._value_] += 1
                outcomes[node_id] = reason
                continue
            outcome = self._resolve(tx, listener, overlapping)
            reason = outcome.reason
            stats[reason._value_] += 1
            outcomes[node_id] = reason
            if reason is DropReason.DELIVERED or reason is DropReason.COLLISION:
                listener.deliver(outcome)
        if self.on_transmission is not None:
            self.on_transmission(tx, outcomes)

    def _reachable(self, tx: Transmission) -> FrozenSet[int]:
        """Listener ids whose link from ``tx``'s origin clears sensitivity.

        Cached per (sender position, params); any attach/detach/move
        clears the cache.  Keying by ``id(params)`` is safe because the
        params object is pinned in ``_reachable_params`` for the cache
        entry's lifetime.
        """
        key = (tx.position, id(tx.params))
        cached = self._reachable_cache.get(key)
        if cached is None:
            self._reachable_params[id(tx.params)] = tx.params
            link = self._link
            position, params = tx.position, tx.params
            # The sender itself stays in the set: the key is positional,
            # so a co-located node's transmissions may legitimately reuse
            # this entry with a different sender id.
            cached = frozenset(
                node_id
                for node_id, listener in self._listeners.items()
                if link.in_range(position, listener.position, params)
            )
            self._reachable_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Reception resolution
    # ------------------------------------------------------------------
    def _resolve(
        self,
        tx: Transmission,
        listener: MediumListener,
        overlapping: List[Transmission],
    ) -> ReceptionOutcome:
        rx_params = listener.rx_params_throughout(tx.start, tx.end)
        if rx_params is None:
            return _drop(tx, DropReason.NOT_LISTENING)
        if rx_params is not tx.params and not _params_compatible(tx.params, rx_params):
            return _drop(tx, DropReason.WRONG_PARAMS)

        quality = self._link.evaluate(tx.position, listener.position, tx.params)
        if not quality.above_sensitivity:
            return _drop(tx, DropReason.BELOW_SENSITIVITY, quality.rssi_dbm, quality.snr_db)

        if self._loss_injector is not None and self._loss_injector(tx, listener.node_id):
            return _drop(tx, DropReason.INJECTED_LOSS, quality.rssi_dbm, quality.snr_db)

        if overlapping and not self._survives_all_interference(
            tx, listener, quality.rssi_dbm, overlapping
        ):
            # Delivered as a CRC-failed frame: real radios raise an RxDone
            # with PayloadCrcError in this case, which the driver surfaces.
            return ReceptionOutcome(
                payload=tx.payload,
                sender_id=tx.sender_id,
                rssi_dbm=quality.rssi_dbm,
                snr_db=quality.snr_db,
                crc_ok=False,
                start=tx.start,
                end=tx.end,
                params=tx.params,
                reason=DropReason.COLLISION,
            )

        return ReceptionOutcome(
            payload=tx.payload,
            sender_id=tx.sender_id,
            rssi_dbm=quality.rssi_dbm,
            snr_db=quality.snr_db,
            crc_ok=True,
            start=tx.start,
            end=tx.end,
            params=tx.params,
            reason=DropReason.DELIVERED,
        )

    def _survives_all_interference(
        self,
        tx: Transmission,
        listener: MediumListener,
        signal_dbm: float,
        overlapping: List[Transmission],
    ) -> bool:
        for other in overlapping:
            if other.sender_id == listener.node_id:
                # The listener's own transmission: handled by the
                # half-duplex listening_throughout check; skip here.
                continue
            interferer_dbm = self._link.received_power_dbm(
                other.position, listener.position, other.params
            )
            # LoRa demodulates below the thermal noise floor, so relevance
            # is relative to the *signal*: an interferer 30+ dB weaker can
            # never break the 6 dB same-SF capture or the 16 dB inter-SF
            # rejection margins.
            if interferer_dbm < signal_dbm - 30.0:
                continue
            if not survives_interference(
                signal_dbm,
                tx.params.spreading_factor,
                interferer_dbm,
                other.params.spreading_factor,
            ):
                return False
        return True

    def _overlapping(self, tx: Transmission) -> List[Transmission]:
        """All other transmissions overlapping ``tx`` on its channel."""
        out = []
        for other in itertools.chain(self._active.values(), self._recent):
            if other.tx_id == tx.tx_id:
                continue
            if other.overlaps(tx) and other.same_channel(tx):
                out.append(other)
        return out

    # Kept as a staticmethod alias for backwards compatibility; the hot
    # paths call the module-level function directly.
    _params_compatible = staticmethod(_params_compatible)

    def _prune_recent(self, horizon: float) -> None:
        """Drop completed transmissions that can no longer overlap anything
        still active or resolving (ended before ``horizon``).

        ``_recent`` is sorted by end time (frames complete in end order),
        so pruning pops from the left instead of rebuilding the list.
        """
        recent = self._recent
        while recent and recent[0].end <= horizon:
            recent.popleft()

    # ------------------------------------------------------------------
    # Channel sensing
    # ------------------------------------------------------------------
    def channel_busy(
        self,
        position: Position,
        params: LoRaParams,
        *,
        exclude_sender: Optional[int] = None,
    ) -> bool:
        """CAD-style carrier sense: is any in-flight same-channel
        transmission audible (above sensitivity) at ``position``?

        ``exclude_sender`` names the sensing node itself so its own
        in-flight frame does not read as a busy channel — a real radio
        cannot CAD-detect its own transmission (it is not receiving while
        it transmits).
        """
        for tx in self._active.values():
            if tx.sender_id == exclude_sender:
                continue
            if not _params_compatible(tx.params, params):
                continue
            if self._link.in_range(tx.position, position, tx.params):
                return True
        return False

    def active_count(self) -> int:
        """Number of transmissions currently in flight."""
        return len(self._active)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    @property
    def transmissions_total(self) -> int:
        """Total frames ever put on the air."""
        return self._transmissions_total

    def outcome_counts(self) -> Dict[DropReason, int]:
        """Per-(transmission, listener) outcome histogram."""
        return {DropReason(value): count for value, count in self._stats.items()}
