"""In-flight transmission tracking and reception resolution.

The model follows the validated LoRaSim / ns-3 LoRa methodology:

* A frame is *receivable* at a listener if the listener was in continuous
  receive mode for the frame's whole duration, tuned to the same
  frequency/SF/BW, and the received SNR clears the per-SF demodulation
  floor.
* A receivable frame then survives interference if, for **every**
  transmission that overlapped it in time on the same frequency, the
  pairwise capture rule of :func:`repro.phy.link.survives_interference`
  holds at that listener.
* Reception outcomes are resolved at frame end, with kernel priority
  ``PRIORITY_HIGH`` so that protocol timers scheduled for the same instant
  observe the delivered frame.

Simplifications relative to silicon (documented in DESIGN.md): no
preamble-lock modelling (the stronger frame always captures), and
interference is evaluated pairwise rather than as aggregate noise — both
standard in the literature and conservative for protocol evaluation.
"""

from __future__ import annotations

import enum
import itertools
import logging
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, FrozenSet, List, Optional, Protocol, Set, Tuple

from repro.phy import batch as _batch
from repro.phy.link import LinkBudget, snr_floor_db, noise_floor_dbm, survives_interference
from repro.phy.modulation import LoRaParams
from repro.phy.pathloss import Position
from repro.medium.spatial import SpatialGrid
from repro.sim.kernel import PRIORITY_HIGH, Simulator

logger = logging.getLogger(__name__)


class MediumListener(Protocol):
    """What the medium needs to know about an attached radio."""

    node_id: int

    @property
    def position(self) -> Position: ...

    @property
    def rx_params(self) -> Optional[LoRaParams]:
        """Modulation the radio is currently listening with, or None."""
        ...

    def listening_throughout(self, start: float, end: float) -> bool:
        """True if the radio was continuously in RX during [start, end]."""
        ...

    def rx_params_throughout(self, start: float, end: float) -> Optional[LoRaParams]:
        """Combined hot-path accessor: the modulation the radio listened
        with continuously during [start, end], or None.  Must equal
        ``rx_params if listening_throughout(start, end) else None``; the
        medium classifies every listener of every frame, so it asks with
        one call instead of two."""
        ...

    def deliver(self, outcome: "ReceptionOutcome") -> None:
        """Hand a resolved reception (good or corrupted) to the radio."""
        ...


class DropReason(enum.Enum):
    """Why a listener did not successfully receive a frame."""

    DELIVERED = "delivered"
    NOT_LISTENING = "not_listening"
    WRONG_PARAMS = "wrong_params"
    BELOW_SENSITIVITY = "below_sensitivity"
    COLLISION = "collision"
    INJECTED_LOSS = "injected_loss"


@dataclass(slots=True)
class Transmission:
    """One frame in flight."""

    tx_id: int  # unique per transmission
    sender_id: int
    position: Position
    params: LoRaParams
    payload: bytes
    start: float
    end: float

    @property
    def airtime(self) -> float:
        """Frame duration in seconds."""
        return self.end - self.start

    def overlaps(self, other: "Transmission") -> bool:
        """Temporal overlap with another transmission (open interval)."""
        return self.start < other.end and other.start < self.end

    def same_channel(self, other: "Transmission") -> bool:
        """Same RF channel (centre frequency and bandwidth)."""
        return (
            abs(self.params.frequency_mhz - other.params.frequency_mhz) < 1e-9
            and self.params.bandwidth == other.params.bandwidth
        )


@dataclass(frozen=True, slots=True)
class ReceptionOutcome:
    """The resolved result of one (transmission, listener) pair."""

    payload: bytes
    sender_id: int
    rssi_dbm: float
    snr_db: float
    crc_ok: bool
    start: float
    end: float
    params: LoRaParams
    reason: DropReason


#: Optional fault-injection hook: (transmission, listener_id) -> drop?
LossInjector = Callable[[Transmission, int], bool]


_NO_SIGNAL = float("-inf")

#: Reachable-set cache entries kept before a wholesale clear (bounds
#: memory growth under mobility, where selective invalidation retains
#: entries for positions a sender may never transmit from again).
_REACHABLE_CACHE_MAX = 8192

#: One cached reachable set: listener ids in attachment order (the
#: resolution loop must deliver in the same order as the full scan) plus
#: a frozenset for O(1) membership tests.
_ReachableEntry = Tuple[Tuple[int, ...], FrozenSet[int]]


def _drop(
    tx: Transmission,
    reason: DropReason,
    rssi: float = _NO_SIGNAL,
    snr: float = _NO_SIGNAL,
) -> ReceptionOutcome:
    """A non-delivery outcome for ``tx`` (module-level so the resolver
    does not rebuild a closure per (frame, listener) pair)."""
    return ReceptionOutcome(
        payload=tx.payload,
        sender_id=tx.sender_id,
        rssi_dbm=rssi,
        snr_db=snr,
        crc_ok=False,
        start=tx.start,
        end=tx.end,
        params=tx.params,
        reason=reason,
    )


def _params_compatible(tx_params: LoRaParams, rx_params: LoRaParams) -> bool:
    """Whether a receiver tuned to ``rx_params`` demodulates ``tx_params``."""
    return (
        tx_params.spreading_factor == rx_params.spreading_factor
        and tx_params.bandwidth == rx_params.bandwidth
        and abs(tx_params.frequency_mhz - rx_params.frequency_mhz) < 1e-9
    )


class Medium:
    """The shared channel connecting every radio in a scenario.

    Radios attach once and then call :meth:`begin_transmission`; the medium
    resolves receptions at frame end and calls ``listener.deliver`` on each
    attached radio with the outcome (only successful demodulations and
    CRC-corrupted frames are delivered; frames below sensitivity are
    silent, as on real hardware).
    """

    def __init__(
        self,
        sim: Simulator,
        link_budget: LinkBudget,
        *,
        loss_injector: Optional[LossInjector] = None,
        reachability_cache: Optional[bool] = None,
        use_batch_phy: Optional[bool] = None,
    ) -> None:
        self._sim = sim
        self._link = link_budget
        self._loss_injector = loss_injector
        self._listeners: Dict[int, MediumListener] = {}
        self._active: Dict[int, Transmission] = {}
        #: Transmissions kept past their end for overlap checks against
        #: frames that started before they ended.  Frames complete in
        #: end-time order, so appending at completion keeps the deque
        #: sorted by end time and pruning pops from the left.
        self._recent: Deque[Transmission] = deque()
        self._tx_counter = itertools.count()
        # Keyed by the reason's value string rather than the member: the
        # per-listener `stats[reason] += 1` in _complete would otherwise
        # pay a Python-level enum.__hash__ on every lookup.
        self._stats: Dict[str, int] = {reason._value_: 0 for reason in DropReason}
        self._transmissions_total = 0
        #: Reception fast path: per (sender position, params) set of
        #: listener ids whose link clears the demodulation floor, so
        #: frame resolution runs full PHY math only on plausible
        #: receivers.  Invalidated on attach/detach/movement;
        #: ``None`` when the pathloss model rules the cache out
        #: (time-varying loss or order-sensitive shadowing draws).
        if reachability_cache is None:
            reachability_cache = link_budget.supports_reachability_cache
        self.use_reachability: bool = reachability_cache
        #: Vectorized batch PHY + spatial-grid engine: reachable sets are
        #: built from an O(cell-neighborhood) candidate lookup plus one
        #: batched margin row instead of an O(N) scalar scan, and frame
        #: completion accounts for culled listeners in aggregate instead
        #: of replaying per-listener checks.  Outcome-invisible (the
        #: determinism suite asserts byte-identical traces either way);
        #: auto-disabled for time-varying / order-sensitive channels,
        #: exactly like the reachability flag.
        if use_batch_phy is None:
            use_batch_phy = reachability_cache and _batch.supports_batch(link_budget)
        self.use_batch_phy: bool = use_batch_phy
        self._reachable_cache: Dict[tuple, _ReachableEntry] = {}
        self._reachable_params: Dict[int, LoRaParams] = {}
        #: id(params) -> (params, conservative max communication range in
        #: metres, or None when the model cannot bound it).  The params
        #: object rides in the value so the id key stays valid for the
        #: entry's lifetime.
        self._max_range: Dict[int, Tuple[LoRaParams, Optional[float]]] = {}
        #: Spatial hash grid over listener positions; built lazily on the
        #: first batch reachable-set query, then maintained incrementally
        #: on attach/detach/move.
        self._grid: Optional[SpatialGrid] = None
        #: Attachment sequence numbers: batch candidate lists are sorted
        #: by these so delivery order matches the full-scan loop.
        self._attach_seq: Dict[int, int] = {}
        self._attach_counter = itertools.count()
        # --- aggregate RX-state mirror (fed by register_state_reporter /
        # notify_rx_state from state-reporting radios) -----------------
        self._reporting: Set[int] = set()
        self._rx_since: Dict[int, Optional[float]] = {}
        self._not_in_rx: Set[int] = set()
        self._rx_entries: Deque[Tuple[float, int]] = deque()
        self._compat_counts: Dict[tuple, int] = {}
        self._compat_reps: Dict[tuple, LoRaParams] = {}
        self._listener_key: Dict[int, tuple] = {}
        # Listener snapshot reused across completions; rebuilt only after
        # an attach/detach (deliver callbacks may mutate the listener map
        # mid-resolution, which must not disturb the in-progress loop).
        self._listener_snapshot: Optional[Tuple[MediumListener, ...]] = None
        #: Optional sniffer hook: called once per completed transmission
        #: with the per-listener outcomes (see repro.trace.capture).
        #: Attaching it disables the aggregate accounting fast path —
        #: per-listener outcomes require the full resolution loop.
        self.on_transmission: Optional[
            Callable[[Transmission, Dict[int, DropReason]], None]
        ] = None
        #: Optional *lightweight* sniffer: called once per completed
        #: transmission with the transmission only (no outcomes), from
        #: both the aggregate and the per-listener completion paths, so
        #: attaching it keeps the fast path.  The event store's default
        #: frame stream uses this.
        self.on_frame: Optional[Callable[[Transmission], None]] = None
        #: Optional hook fired the instant a *local* frame goes on the
        #: air (from :meth:`begin_transmission`, not from
        #: :meth:`inject_external`).  The sharded runner uses it to
        #: export boundary-crossing transmissions; a pure observer, so
        #: attaching it cannot change outcomes.
        self.on_transmit_start: Optional[Callable[[Transmission], None]] = None
        #: Interning table for externally injected params: ghost frames
        #: arrive from other processes with fresh (unpickled) LoRaParams
        #: objects, and the reachable/max-range caches key on
        #: ``id(params)`` — interning keeps repeated ghosts from one
        #: remote sender on a single params object.
        self._extern_params: Dict[LoRaParams, LoRaParams] = {}

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    @property
    def loss_injector(self) -> Optional[LossInjector]:
        """The installed loss injector, or None (see repro.verify.faults)."""
        return self._loss_injector

    @loss_injector.setter
    def loss_injector(self, injector: Optional[LossInjector]) -> None:
        self._loss_injector = injector

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, listener: MediumListener) -> None:
        """Register a radio; its node_id must be unique on this medium."""
        if listener.node_id in self._listeners:
            raise ValueError(f"node id {listener.node_id} already attached")
        self._listeners[listener.node_id] = listener
        self._attach_seq[listener.node_id] = next(self._attach_counter)
        if self._grid is not None:
            self._grid.insert(listener.node_id, listener.position)
        self._invalidate_topology()

    def detach(self, node_id: int) -> None:
        """Remove a radio (e.g. simulated node failure)."""
        self._listeners.pop(node_id, None)
        self._attach_seq.pop(node_id, None)
        if self._grid is not None:
            self._grid.remove(node_id)
        if node_id in self._reporting:
            self._set_rx_state(node_id, None, None)
            self._reporting.discard(node_id)
            self._rx_since.pop(node_id, None)
            self._not_in_rx.discard(node_id)
        self._invalidate_topology()

    def notify_moved(self, node_id: int) -> None:
        """Mobility hook: a radio's position changed.

        With the spatial index on, the grid bucket is updated in place and
        only reachable-cache entries the move can affect are dropped: those
        whose candidate set contains the moved node, or whose sender
        position is within max communication range of the node's *new*
        position (it may now hear senders it previously could not).  The
        link budget's memo is position-keyed and size-bounded, so stale
        old-position entries are harmless and it is left alone.

        Without the index (scalar path), falls back to the wholesale
        clear-everything behaviour.
        """
        listener = self._listeners.get(node_id)
        if self._grid is not None and listener is not None:
            self._grid.move(node_id, listener.position)
        if self.use_batch_phy and listener is not None:
            if self._reachable_cache:
                self._invalidate_moved(node_id, listener.position)
            return
        self._reachable_cache.clear()
        self._reachable_params.clear()
        self._max_range.clear()
        self._link.invalidate()

    def _invalidate_moved(self, node_id: int, new_position: Position) -> None:
        """Drop only the reachable-cache entries a single move can affect."""
        dead: List[tuple] = []
        hypot = math.hypot
        for key, (ordered, members) in self._reachable_cache.items():
            if node_id in members:
                dead.append(key)
                continue
            pos, params_id = key
            range_entry = self._max_range.get(params_id)
            rng = range_entry[1] if range_entry is not None else None
            if rng is None:
                # Unbounded (or unknown) range: conservatively drop.
                dead.append(key)
                continue
            if hypot(pos[0] - new_position[0], pos[1] - new_position[1]) <= rng:
                dead.append(key)
        for key in dead:
            del self._reachable_cache[key]

    def _invalidate_topology(self) -> None:
        self._listener_snapshot = None
        self._reachable_cache.clear()
        self._reachable_params.clear()

    # ------------------------------------------------------------------
    # RX-state mirror (aggregate accounting fast path)
    # ------------------------------------------------------------------
    def register_state_reporter(
        self,
        node_id: int,
        rx_since: Optional[float],
        params: Optional[LoRaParams],
    ) -> None:
        """Opt a listener into RX-state mirroring.

        A reporting radio calls :meth:`notify_rx_state` on every state or
        tuning change; once *every* attached listener reports (and the
        whole network shares one (SF, BW, freq)), frame completion can
        account for culled listeners in aggregate instead of replaying
        per-listener checks.  Radios that never report simply keep the
        replay path — the mirror is purely an optimisation.
        """
        self._reporting.add(node_id)
        self._rx_since[node_id] = None
        self._not_in_rx.add(node_id)
        self._set_rx_state(node_id, rx_since, params)

    def notify_rx_state(
        self,
        node_id: int,
        rx_since: Optional[float],
        params: Optional[LoRaParams],
    ) -> None:
        """Mirror a reporting radio's RX window and tuning.

        ``rx_since`` is the simulated time the radio's current continuous
        receive window began, or None when it is not receiving (TX, sleep,
        standby, or powered off) — exactly the state its
        ``rx_params_throughout`` answers from.  No-op for radios that
        never registered.
        """
        if node_id not in self._reporting:
            return
        self._set_rx_state(node_id, rx_since, params)

    def _set_rx_state(
        self,
        node_id: int,
        rx_since: Optional[float],
        params: Optional[LoRaParams],
    ) -> None:
        # Tuning key: exact match on the fields _params_compatible reads.
        key = (
            None
            if params is None
            else (int(params.spreading_factor), int(params.bandwidth), params.frequency_mhz)
        )
        old_key = self._listener_key.get(node_id)
        if key != old_key:
            if old_key is not None:
                count = self._compat_counts[old_key] - 1
                if count:
                    self._compat_counts[old_key] = count
                else:
                    del self._compat_counts[old_key]
                    del self._compat_reps[old_key]
            if key is not None:
                if key in self._compat_counts:
                    self._compat_counts[key] += 1
                else:
                    self._compat_counts[key] = 1
                    self._compat_reps[key] = params  # type: ignore[assignment]
                self._listener_key[node_id] = key
            else:
                self._listener_key.pop(node_id, None)
        if rx_since is None:
            self._rx_since[node_id] = None
            self._not_in_rx.add(node_id)
        else:
            self._rx_since[node_id] = rx_since
            self._not_in_rx.discard(node_id)
            self._rx_entries.append((rx_since, node_id))

    @property
    def listener_ids(self) -> Tuple[int, ...]:
        """Node ids of all attached radios, in attachment order."""
        return tuple(self._listeners)

    @property
    def link_budget(self) -> LinkBudget:
        """The link-budget model receptions are evaluated against."""
        return self._link

    # ------------------------------------------------------------------
    # Transmission lifecycle
    # ------------------------------------------------------------------
    def begin_transmission(
        self,
        sender_id: int,
        position: Position,
        params: LoRaParams,
        payload: bytes,
        airtime: float,
    ) -> Transmission:
        """Start a frame on the air; reception resolves at ``now+airtime``."""
        if airtime <= 0:
            raise ValueError(f"airtime must be positive, got {airtime}")
        tx = self._launch(sender_id, position, params, payload, airtime)
        if self.on_transmit_start is not None:
            self.on_transmit_start(tx)
        return tx

    def inject_external(
        self,
        sender_id: int,
        position: Position,
        params: LoRaParams,
        payload: bytes,
        airtime: float,
    ) -> Transmission:
        """Put a frame on the air from a sender that is *not attached*.

        The sharded runner re-airs boundary-crossing transmissions from
        remote shards through this entry point: the ghost frame occupies
        the channel (CAD sees it, it interferes, listeners in range can
        receive it) exactly like a local one, but no listener delivery
        ever targets the remote sender and :attr:`on_transmit_start`
        does not fire (the coordinator already routed the frame to every
        strip its audible disk touches, so re-export would duplicate).
        """
        if airtime <= 0:
            raise ValueError(f"airtime must be positive, got {airtime}")
        params = self._extern_params.setdefault(params, params)
        return self._launch(sender_id, position, params, payload, airtime)

    def _launch(
        self,
        sender_id: int,
        position: Position,
        params: LoRaParams,
        payload: bytes,
        airtime: float,
    ) -> Transmission:
        now = self._sim.now
        tx = Transmission(
            tx_id=next(self._tx_counter),
            sender_id=sender_id,
            position=position,
            params=params,
            payload=payload,
            start=now,
            end=now + airtime,
        )
        self._active[tx.tx_id] = tx
        self._transmissions_total += 1
        self._sim.schedule(
            airtime,
            lambda: self._complete(tx),
            priority=PRIORITY_HIGH,
            # Lazy label: formatted only if a profiler/inspector reads it.
            label=lambda: f"tx#{tx.tx_id} end",
        )
        return tx

    def max_range_m(self, params: LoRaParams) -> Optional[float]:
        """Conservative maximum communication range for ``params`` in
        metres, or None when the path-loss model cannot bound it.

        Public alias of the internal bound the batch engine uses for
        grid candidate queries; the sharded runner partitions space with
        the same radius so its strips align with what the medium can
        actually hear."""
        return self._max_range_for(params)

    def _complete(self, tx: Transmission) -> None:
        self._active.pop(tx.tx_id, None)
        self._recent.append(tx)
        self._prune_recent(tx.start)
        if self.on_frame is not None:
            self.on_frame(tx)
        if self._rx_entries:
            self._prune_rx_entries(tx.start)
        entry = self._reachable_entry(tx) if self.use_reachability else None
        if (
            entry is not None
            and self.use_batch_phy
            and self.on_transmission is None
            and len(self._reporting) == len(self._listeners)
            and len(self._compat_counts) == 1
        ):
            # Aggregate fast path: every listener mirrors its RX state into
            # the medium and the whole network is tuned to one (SF, BW,
            # freq), so culled listeners are accounted in O(candidates +
            # currently-not-receiving) instead of an O(N) replay loop.
            # Requires no sniffer (which needs per-listener outcomes).
            self._complete_aggregate(tx, entry)
            return
        listeners = self._listener_snapshot
        if listeners is None:
            listeners = self._listener_snapshot = tuple(self._listeners.values())
        reachable = entry[1] if entry is not None else None
        # The same overlap set applies at every listener; compute it once
        # per frame instead of once per (frame, listener).
        overlapping = self._overlapping(tx)
        stats = self._stats
        outcomes: Dict[int, DropReason] = {}
        sender_id, tx_params, tx_start, tx_end = tx.sender_id, tx.params, tx.start, tx.end
        not_listening = DropReason.NOT_LISTENING
        wrong_params = DropReason.WRONG_PARAMS
        below_sensitivity = DropReason.BELOW_SENSITIVITY
        for listener in listeners:
            node_id = listener.node_id
            if node_id == sender_id:
                continue
            if reachable is not None and node_id not in reachable:
                # Culled listener: the link budget says the frame cannot
                # clear sensitivity here, so skip the PHY math entirely —
                # but keep the outcome histogram byte-identical to the
                # slow path by replaying its (cheap) early checks in the
                # same order.  (The identity test is a fast path for the
                # common whole-network-shares-one-params-object case.)
                rx_params = listener.rx_params_throughout(tx_start, tx_end)
                if rx_params is None:
                    reason = not_listening
                elif rx_params is not tx_params and not _params_compatible(tx_params, rx_params):
                    reason = wrong_params
                else:
                    reason = below_sensitivity
                stats[reason._value_] += 1
                outcomes[node_id] = reason
                continue
            outcome = self._resolve(tx, listener, overlapping)
            reason = outcome.reason
            stats[reason._value_] += 1
            outcomes[node_id] = reason
            if reason is DropReason.DELIVERED or reason is DropReason.COLLISION:
                listener.deliver(outcome)
        if self.on_transmission is not None:
            self.on_transmission(tx, outcomes)

    def _complete_aggregate(self, tx: Transmission, entry: _ReachableEntry) -> None:
        """Frame completion with aggregate accounting for culled listeners.

        Only the reachable candidates run the full resolver; everyone else
        is classified by counting, using the RX-state mirror:

        * NOT_LISTENING — listeners currently not in RX, plus listeners
          whose RX window (re)started after the frame began (``rx_since >
          tx.start``; re-tunes and TX/RX turnarounds reset the window, so
          the driver's ``rx_params_throughout`` would return None).
        * With a single network-wide (SF, BW, freq) every remaining culled
          listener is tuned compatibly, so they are all BELOW_SENSITIVITY
          (or all WRONG_PARAMS when the frame itself uses an alien params,
          e.g. a sniffer injecting on another channel).

        The histogram produced is equal to the replay loop's by
        construction; the determinism suite asserts it.
        """
        ordered, members = entry
        listeners = self._listeners
        sender_id, tx_start = tx.sender_id, tx.start
        # Disrupted culled listeners: compute BEFORE resolving (deliver
        # callbacks may re-tune radios and perturb the RX mirror).
        disrupted = 0
        rx_since = self._rx_since
        for node_id in self._not_in_rx:
            if node_id != sender_id and node_id not in members:
                disrupted += 1
        if self._rx_entries:
            counted: Set[int] = set()
            for since, node_id in self._rx_entries:
                if (
                    node_id != sender_id
                    and node_id not in members
                    and node_id not in counted
                    and rx_since.get(node_id) is not None
                    and rx_since[node_id] > tx_start  # type: ignore[operator]
                ):
                    counted.add(node_id)
                    disrupted += 1
        total_others = len(listeners) - (1 if sender_id in listeners else 0)
        # Snapshot the candidate listeners before any deliver() runs.
        resolve = [
            (node_id, listeners[node_id])
            for node_id in ordered
            if node_id != sender_id and node_id in listeners
        ]
        overlapping = self._overlapping(tx)
        # One batch matrix replaces len(overlapping) x len(resolve)
        # scalar interferer-power evaluations.  In a small network the
        # link-budget memo holds every (tx, rx) pair, making the scalar
        # lookups cheaper than the numpy dispatch; in a large one the
        # interferer x listener pair space overflows the memo and the
        # matrix wins even at small widths.
        rows = (
            self._interference_rows(overlapping, resolve)
            if len(self._listeners) > 64 and len(overlapping) * len(resolve) >= 8
            else None
        )
        stats = self._stats
        handled = 0
        for node_id, listener in resolve:
            row = rows.get(node_id) if rows is not None else None
            outcome = self._resolve(tx, listener, overlapping, row)
            reason = outcome.reason
            stats[reason._value_] += 1
            handled += 1
            if reason is DropReason.DELIVERED or reason is DropReason.COLLISION:
                listener.deliver(outcome)
        culled = total_others - handled
        if culled <= 0:
            return
        below = culled - disrupted
        stats[DropReason.NOT_LISTENING._value_] += disrupted
        if below > 0:
            rep = next(iter(self._compat_reps.values()))
            if tx.params is rep or _params_compatible(tx.params, rep):
                stats[DropReason.BELOW_SENSITIVITY._value_] += below
            else:
                stats[DropReason.WRONG_PARAMS._value_] += below

    def _prune_rx_entries(self, tx_start: float) -> None:
        """Drop RX-window log entries no in-flight or resolving frame can
        observe: entries at or before every such frame's start answer
        ``rx_since > start`` with False for all of them."""
        horizon = tx_start
        for other in self._active.values():
            if other.start < horizon:
                horizon = other.start
        entries = self._rx_entries
        while entries and entries[0][0] <= horizon:
            entries.popleft()

    def _reachable(self, tx: Transmission) -> FrozenSet[int]:
        """Membership-only view of :meth:`_reachable_entry` (compat shim)."""
        return self._reachable_entry(tx)[1]

    def _reachable_entry(self, tx: Transmission) -> _ReachableEntry:
        """Listener ids whose link from ``tx``'s origin clears sensitivity,
        as (attachment-ordered tuple, frozenset).

        Cached per (sender position, params); attach/detach clears the
        cache and moves invalidate selectively (batch path) or wholesale
        (scalar path).  Keying by ``id(params)`` is safe because the
        params object is pinned in ``_reachable_params`` for the cache
        entry's lifetime.
        """
        key = (tx.position, id(tx.params))
        cached = self._reachable_cache.get(key)
        if cached is None:
            if len(self._reachable_cache) >= _REACHABLE_CACHE_MAX:
                self._reachable_cache.clear()
                self._reachable_params.clear()
            self._reachable_params[id(tx.params)] = tx.params
            position, params = tx.position, tx.params
            if self.use_batch_phy:
                cached = self._reachable_batch(position, params)
            if cached is None:
                link = self._link
                # The sender itself stays in the set: the key is
                # positional, so a co-located node's transmissions may
                # legitimately reuse this entry with a different sender id.
                ordered = tuple(
                    node_id
                    for node_id, listener in self._listeners.items()
                    if link.in_range(position, listener.position, params)
                )
                cached = (ordered, frozenset(ordered))
            self._reachable_cache[key] = cached
        return cached

    def _max_range_for(self, params: LoRaParams) -> Optional[float]:
        entry = self._max_range.get(id(params))
        if entry is None:
            rng = _batch.max_range_m(self._link, params)
            self._max_range[id(params)] = (params, rng)
            return rng
        return entry[1]

    def _ensure_grid(self, max_range_m: float) -> SpatialGrid:
        grid = self._grid
        if grid is None:
            grid = self._grid = SpatialGrid(max(max_range_m, 1.0))
            for node_id, listener in self._listeners.items():
                grid.insert(node_id, listener.position)
        return grid

    def _reachable_batch(
        self, position: Position, params: LoRaParams
    ) -> Optional[_ReachableEntry]:
        """Grid-candidate + batched-margin reachable set, or None when the
        model cannot bound its range (caller falls back to the full scan).

        The batch margin test is bit-identical to the scalar
        ``LinkBudget.in_range`` (same op order through numpy), so the
        resulting set — and therefore every downstream outcome — matches
        the scalar path exactly; the grid only narrows *candidates*.
        """
        rng_m = self._max_range_for(params)
        if rng_m is None:
            return None
        grid = self._ensure_grid(rng_m)
        candidates = grid.near(position, rng_m)
        if not candidates:
            return ((), frozenset())
        # Attachment order: the resolution loop iterates listeners in
        # attachment order, and delivery order is observable (trace ids,
        # queue order), so the cached tuple must match the full scan.
        candidates.sort(key=self._attach_seq.__getitem__)
        listeners = self._listeners
        rx_positions = [listeners[node_id].position for node_id in candidates]
        above = _batch.above_sensitivity_matrix(
            self._link, [position], rx_positions, params
        )[0]
        ordered = tuple(
            node_id for node_id, ok in zip(candidates, above.tolist()) if ok
        )
        return (ordered, frozenset(ordered))

    # ------------------------------------------------------------------
    # Reception resolution
    # ------------------------------------------------------------------
    def _interference_rows(
        self,
        overlapping: List[Transmission],
        resolve: List[Tuple[int, MediumListener]],
    ) -> Optional[Dict[int, List[float]]]:
        """Interferer RSSI per (candidate listener, overlapping frame).

        One vectorized call per completed transmission computes what the
        scalar path recomputes per (listener, interferer) pair.  The batch
        kernels share numpy ops and association order with the scalar
        ``received_power_dbm``, so every row value is bit-identical —
        :meth:`_survives_all_interference` can use them interchangeably.

        Returns ``{node_id: [rssi_dbm per overlapping index]}``, or None
        when numpy is unavailable (callers fall back to scalar lookups).
        """
        if not _batch.HAVE_NUMPY:
            return None
        rx_positions = [listener.position for _, listener in resolve]
        # Interferers usually share one LoRaParams object; group by
        # identity so heterogeneous networks still batch per group.
        groups: Dict[int, Tuple[LoRaParams, List[int]]] = {}
        for idx, other in enumerate(overlapping):
            group = groups.get(id(other.params))
            if group is None:
                groups[id(other.params)] = (other.params, [idx])
            else:
                group[1].append(idx)
        if len(groups) == 1:
            # Homogeneous interferers (the overwhelmingly common case):
            # one matrix, columns already in overlapping order.
            (params, _idxs), = groups.values()
            rssi = _batch.rssi_matrix(
                self._link,
                [other.position for other in overlapping],
                rx_positions,
                params,
            )
            return {
                node_id: col
                for (node_id, _), col in zip(resolve, rssi.T.tolist())
            }
        width = len(overlapping)
        rows: Dict[int, List[float]] = {
            node_id: [0.0] * width for node_id, _ in resolve
        }
        row_list = [rows[node_id] for node_id, _ in resolve]
        for params, idxs in groups.values():
            tx_positions = [overlapping[i].position for i in idxs]
            rssi = _batch.rssi_matrix(self._link, tx_positions, rx_positions, params)
            cols = rssi.T.tolist()  # one entry list per candidate
            for row, col in zip(row_list, cols):
                for k, i in enumerate(idxs):
                    row[i] = col[k]
        return rows

    def _resolve(
        self,
        tx: Transmission,
        listener: MediumListener,
        overlapping: List[Transmission],
        rssi_row: Optional[List[float]] = None,
    ) -> ReceptionOutcome:
        rx_params = listener.rx_params_throughout(tx.start, tx.end)
        if rx_params is None:
            return _drop(tx, DropReason.NOT_LISTENING)
        if rx_params is not tx.params and not _params_compatible(tx.params, rx_params):
            return _drop(tx, DropReason.WRONG_PARAMS)

        quality = self._link.evaluate(tx.position, listener.position, tx.params)
        if not quality.above_sensitivity:
            return _drop(tx, DropReason.BELOW_SENSITIVITY, quality.rssi_dbm, quality.snr_db)

        if self._loss_injector is not None and self._loss_injector(tx, listener.node_id):
            return _drop(tx, DropReason.INJECTED_LOSS, quality.rssi_dbm, quality.snr_db)

        if overlapping and not self._survives_all_interference(
            tx, listener, quality.rssi_dbm, overlapping, rssi_row
        ):
            # Delivered as a CRC-failed frame: real radios raise an RxDone
            # with PayloadCrcError in this case, which the driver surfaces.
            return ReceptionOutcome(
                payload=tx.payload,
                sender_id=tx.sender_id,
                rssi_dbm=quality.rssi_dbm,
                snr_db=quality.snr_db,
                crc_ok=False,
                start=tx.start,
                end=tx.end,
                params=tx.params,
                reason=DropReason.COLLISION,
            )

        return ReceptionOutcome(
            payload=tx.payload,
            sender_id=tx.sender_id,
            rssi_dbm=quality.rssi_dbm,
            snr_db=quality.snr_db,
            crc_ok=True,
            start=tx.start,
            end=tx.end,
            params=tx.params,
            reason=DropReason.DELIVERED,
        )

    def _survives_all_interference(
        self,
        tx: Transmission,
        listener: MediumListener,
        signal_dbm: float,
        overlapping: List[Transmission],
        rssi_row: Optional[List[float]] = None,
    ) -> bool:
        for idx, other in enumerate(overlapping):
            if other.sender_id == listener.node_id:
                # The listener's own transmission: handled by the
                # half-duplex listening_throughout check; skip here.
                continue
            if rssi_row is not None:
                # Prefetched batch row (see _interference_rows): the same
                # value the scalar call below would produce.
                interferer_dbm = rssi_row[idx]
            else:
                interferer_dbm = self._link.received_power_dbm(
                    other.position, listener.position, other.params
                )
            # LoRa demodulates below the thermal noise floor, so relevance
            # is relative to the *signal*: an interferer 30+ dB weaker can
            # never break the 6 dB same-SF capture or the 16 dB inter-SF
            # rejection margins.
            if interferer_dbm < signal_dbm - 30.0:
                continue
            if not survives_interference(
                signal_dbm,
                tx.params.spreading_factor,
                interferer_dbm,
                other.params.spreading_factor,
            ):
                return False
        return True

    def _overlapping(self, tx: Transmission) -> List[Transmission]:
        """All other transmissions overlapping ``tx`` on its channel."""
        out = []
        for other in itertools.chain(self._active.values(), self._recent):
            if other.tx_id == tx.tx_id:
                continue
            if other.overlaps(tx) and other.same_channel(tx):
                out.append(other)
        return out

    # Kept as a staticmethod alias for backwards compatibility; the hot
    # paths call the module-level function directly.
    _params_compatible = staticmethod(_params_compatible)

    def _prune_recent(self, horizon: float) -> None:
        """Drop completed transmissions that can no longer overlap anything
        still active or resolving (ended before ``horizon``).

        ``_recent`` is sorted by end time (frames complete in end order),
        so pruning pops from the left instead of rebuilding the list.
        """
        recent = self._recent
        while recent and recent[0].end <= horizon:
            recent.popleft()

    # ------------------------------------------------------------------
    # Channel sensing
    # ------------------------------------------------------------------
    def channel_busy(
        self,
        position: Position,
        params: LoRaParams,
        *,
        exclude_sender: Optional[int] = None,
    ) -> bool:
        """CAD-style carrier sense: is any in-flight same-channel
        transmission audible (above sensitivity) at ``position``?

        ``exclude_sender`` names the sensing node itself so its own
        in-flight frame does not read as a busy channel — a real radio
        cannot CAD-detect its own transmission (it is not receiving while
        it transmits).
        """
        for tx in self._active.values():
            if tx.sender_id == exclude_sender:
                continue
            if not _params_compatible(tx.params, params):
                continue
            if self._link.in_range(tx.position, position, tx.params):
                return True
        return False

    def active_count(self) -> int:
        """Number of transmissions currently in flight."""
        return len(self._active)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    @property
    def transmissions_total(self) -> int:
        """Total frames ever put on the air."""
        return self._transmissions_total

    def outcome_counts(self) -> Dict[DropReason, int]:
        """Per-(transmission, listener) outcome histogram."""
        return {DropReason(value): count for value, count in self._stats.items()}
