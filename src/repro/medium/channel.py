"""In-flight transmission tracking and reception resolution.

The model follows the validated LoRaSim / ns-3 LoRa methodology:

* A frame is *receivable* at a listener if the listener was in continuous
  receive mode for the frame's whole duration, tuned to the same
  frequency/SF/BW, and the received SNR clears the per-SF demodulation
  floor.
* A receivable frame then survives interference if, for **every**
  transmission that overlapped it in time on the same frequency, the
  pairwise capture rule of :func:`repro.phy.link.survives_interference`
  holds at that listener.
* Reception outcomes are resolved at frame end, with kernel priority
  ``PRIORITY_HIGH`` so that protocol timers scheduled for the same instant
  observe the delivered frame.

Simplifications relative to silicon (documented in DESIGN.md): no
preamble-lock modelling (the stronger frame always captures), and
interference is evaluated pairwise rather than as aggregate noise — both
standard in the literature and conservative for protocol evaluation.
"""

from __future__ import annotations

import enum
import itertools
import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Tuple

from repro.phy.link import LinkBudget, snr_floor_db, noise_floor_dbm, survives_interference
from repro.phy.modulation import LoRaParams
from repro.phy.pathloss import Position
from repro.sim.kernel import PRIORITY_HIGH, Simulator

logger = logging.getLogger(__name__)


class MediumListener(Protocol):
    """What the medium needs to know about an attached radio."""

    node_id: int

    @property
    def position(self) -> Position: ...

    @property
    def rx_params(self) -> Optional[LoRaParams]:
        """Modulation the radio is currently listening with, or None."""
        ...

    def listening_throughout(self, start: float, end: float) -> bool:
        """True if the radio was continuously in RX during [start, end]."""
        ...

    def deliver(self, outcome: "ReceptionOutcome") -> None:
        """Hand a resolved reception (good or corrupted) to the radio."""
        ...


class DropReason(enum.Enum):
    """Why a listener did not successfully receive a frame."""

    DELIVERED = "delivered"
    NOT_LISTENING = "not_listening"
    WRONG_PARAMS = "wrong_params"
    BELOW_SENSITIVITY = "below_sensitivity"
    COLLISION = "collision"
    INJECTED_LOSS = "injected_loss"


@dataclass
class Transmission:
    """One frame in flight."""

    tx_id: int  # unique per transmission
    sender_id: int
    position: Position
    params: LoRaParams
    payload: bytes
    start: float
    end: float

    @property
    def airtime(self) -> float:
        """Frame duration in seconds."""
        return self.end - self.start

    def overlaps(self, other: "Transmission") -> bool:
        """Temporal overlap with another transmission (open interval)."""
        return self.start < other.end and other.start < self.end

    def same_channel(self, other: "Transmission") -> bool:
        """Same RF channel (centre frequency and bandwidth)."""
        return (
            abs(self.params.frequency_mhz - other.params.frequency_mhz) < 1e-9
            and self.params.bandwidth == other.params.bandwidth
        )


@dataclass(frozen=True)
class ReceptionOutcome:
    """The resolved result of one (transmission, listener) pair."""

    payload: bytes
    sender_id: int
    rssi_dbm: float
    snr_db: float
    crc_ok: bool
    start: float
    end: float
    params: LoRaParams
    reason: DropReason


#: Optional fault-injection hook: (transmission, listener_id) -> drop?
LossInjector = Callable[[Transmission, int], bool]


class Medium:
    """The shared channel connecting every radio in a scenario.

    Radios attach once and then call :meth:`begin_transmission`; the medium
    resolves receptions at frame end and calls ``listener.deliver`` on each
    attached radio with the outcome (only successful demodulations and
    CRC-corrupted frames are delivered; frames below sensitivity are
    silent, as on real hardware).
    """

    def __init__(
        self,
        sim: Simulator,
        link_budget: LinkBudget,
        *,
        loss_injector: Optional[LossInjector] = None,
    ) -> None:
        self._sim = sim
        self._link = link_budget
        self._loss_injector = loss_injector
        self._listeners: Dict[int, MediumListener] = {}
        self._active: Dict[int, Transmission] = {}
        #: Transmissions kept past their end for overlap checks against
        #: frames that started before they ended.
        self._recent: List[Transmission] = []
        self._tx_counter = itertools.count()
        self._stats: Dict[DropReason, int] = {reason: 0 for reason in DropReason}
        self._transmissions_total = 0
        #: Optional sniffer hook: called once per completed transmission
        #: with the per-listener outcomes (see repro.trace.capture).
        self.on_transmission: Optional[
            Callable[[Transmission, Dict[int, DropReason]], None]
        ] = None

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, listener: MediumListener) -> None:
        """Register a radio; its node_id must be unique on this medium."""
        if listener.node_id in self._listeners:
            raise ValueError(f"node id {listener.node_id} already attached")
        self._listeners[listener.node_id] = listener

    def detach(self, node_id: int) -> None:
        """Remove a radio (e.g. simulated node failure)."""
        self._listeners.pop(node_id, None)

    @property
    def listener_ids(self) -> Tuple[int, ...]:
        """Node ids of all attached radios, in attachment order."""
        return tuple(self._listeners)

    @property
    def link_budget(self) -> LinkBudget:
        """The link-budget model receptions are evaluated against."""
        return self._link

    # ------------------------------------------------------------------
    # Transmission lifecycle
    # ------------------------------------------------------------------
    def begin_transmission(
        self,
        sender_id: int,
        position: Position,
        params: LoRaParams,
        payload: bytes,
        airtime: float,
    ) -> Transmission:
        """Start a frame on the air; reception resolves at ``now+airtime``."""
        if airtime <= 0:
            raise ValueError(f"airtime must be positive, got {airtime}")
        now = self._sim.now
        tx = Transmission(
            tx_id=next(self._tx_counter),
            sender_id=sender_id,
            position=position,
            params=params,
            payload=payload,
            start=now,
            end=now + airtime,
        )
        self._active[tx.tx_id] = tx
        self._transmissions_total += 1
        self._sim.schedule(
            airtime,
            lambda: self._complete(tx),
            priority=PRIORITY_HIGH,
            label=f"tx#{tx.tx_id} end",
        )
        return tx

    def _complete(self, tx: Transmission) -> None:
        self._active.pop(tx.tx_id, None)
        self._recent.append(tx)
        self._prune_recent(tx.start)
        outcomes: Dict[int, DropReason] = {}
        for listener in list(self._listeners.values()):
            if listener.node_id == tx.sender_id:
                continue
            outcome = self._resolve(tx, listener)
            self._stats[outcome.reason] += 1
            outcomes[listener.node_id] = outcome.reason
            if outcome.reason in (DropReason.DELIVERED, DropReason.COLLISION):
                listener.deliver(outcome)
        if self.on_transmission is not None:
            self.on_transmission(tx, outcomes)

    # ------------------------------------------------------------------
    # Reception resolution
    # ------------------------------------------------------------------
    def _resolve(self, tx: Transmission, listener: MediumListener) -> ReceptionOutcome:
        def drop(reason: DropReason, rssi: float = float("-inf"), snr: float = float("-inf")):
            return ReceptionOutcome(
                payload=tx.payload,
                sender_id=tx.sender_id,
                rssi_dbm=rssi,
                snr_db=snr,
                crc_ok=False,
                start=tx.start,
                end=tx.end,
                params=tx.params,
                reason=reason,
            )

        rx_params = listener.rx_params
        if rx_params is None or not listener.listening_throughout(tx.start, tx.end):
            return drop(DropReason.NOT_LISTENING)
        if not self._params_compatible(tx.params, rx_params):
            return drop(DropReason.WRONG_PARAMS)

        quality = self._link.evaluate(tx.position, listener.position, tx.params)
        if not quality.above_sensitivity:
            return drop(DropReason.BELOW_SENSITIVITY, quality.rssi_dbm, quality.snr_db)

        if self._loss_injector is not None and self._loss_injector(tx, listener.node_id):
            return drop(DropReason.INJECTED_LOSS, quality.rssi_dbm, quality.snr_db)

        if not self._survives_all_interference(tx, listener, quality.rssi_dbm):
            # Delivered as a CRC-failed frame: real radios raise an RxDone
            # with PayloadCrcError in this case, which the driver surfaces.
            return ReceptionOutcome(
                payload=tx.payload,
                sender_id=tx.sender_id,
                rssi_dbm=quality.rssi_dbm,
                snr_db=quality.snr_db,
                crc_ok=False,
                start=tx.start,
                end=tx.end,
                params=tx.params,
                reason=DropReason.COLLISION,
            )

        return ReceptionOutcome(
            payload=tx.payload,
            sender_id=tx.sender_id,
            rssi_dbm=quality.rssi_dbm,
            snr_db=quality.snr_db,
            crc_ok=True,
            start=tx.start,
            end=tx.end,
            params=tx.params,
            reason=DropReason.DELIVERED,
        )

    def _survives_all_interference(
        self, tx: Transmission, listener: MediumListener, signal_dbm: float
    ) -> bool:
        for other in self._overlapping(tx):
            if other.sender_id == listener.node_id:
                # The listener's own transmission: handled by the
                # half-duplex listening_throughout check; skip here.
                continue
            interferer_dbm = self._link.received_power_dbm(
                other.position, listener.position, other.params
            )
            # LoRa demodulates below the thermal noise floor, so relevance
            # is relative to the *signal*: an interferer 30+ dB weaker can
            # never break the 6 dB same-SF capture or the 16 dB inter-SF
            # rejection margins.
            if interferer_dbm < signal_dbm - 30.0:
                continue
            if not survives_interference(
                signal_dbm,
                tx.params.spreading_factor,
                interferer_dbm,
                other.params.spreading_factor,
            ):
                return False
        return True

    def _overlapping(self, tx: Transmission) -> List[Transmission]:
        """All other transmissions overlapping ``tx`` on its channel."""
        out = []
        for other in itertools.chain(self._active.values(), self._recent):
            if other.tx_id == tx.tx_id:
                continue
            if other.overlaps(tx) and other.same_channel(tx):
                out.append(other)
        return out

    @staticmethod
    def _params_compatible(tx_params: LoRaParams, rx_params: LoRaParams) -> bool:
        return (
            tx_params.spreading_factor == rx_params.spreading_factor
            and tx_params.bandwidth == rx_params.bandwidth
            and abs(tx_params.frequency_mhz - rx_params.frequency_mhz) < 1e-9
        )

    def _prune_recent(self, horizon: float) -> None:
        """Drop completed transmissions that can no longer overlap anything
        still active or resolving (ended before ``horizon``)."""
        self._recent = [t for t in self._recent if t.end > horizon]

    # ------------------------------------------------------------------
    # Channel sensing
    # ------------------------------------------------------------------
    def channel_busy(self, position: Position, params: LoRaParams) -> bool:
        """CAD-style carrier sense: is any in-flight same-channel
        transmission audible (above sensitivity) at ``position``?"""
        for tx in self._active.values():
            if not Medium._params_compatible(tx.params, params):
                continue
            if self._link.in_range(tx.position, position, tx.params):
                return True
        return False

    def active_count(self) -> int:
        """Number of transmissions currently in flight."""
        return len(self._active)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    @property
    def transmissions_total(self) -> int:
        """Total frames ever put on the air."""
        return self._transmissions_total

    def outcome_counts(self) -> Dict[DropReason, int]:
        """Per-(transmission, listener) outcome histogram."""
        return dict(self._stats)
