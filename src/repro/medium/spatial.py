"""Uniform spatial hash grid for O(cell-neighborhood) candidate lookup.

At N=1000 nodes, "who can possibly hear this sender" must not be an
O(N) scan per frame.  The grid buckets node positions into square cells
keyed on the maximum communication range, so a range query touches only
the cells intersecting the query disk — a 3×3 neighborhood when the cell
size equals the radius.

Maintenance is **incremental**: attach inserts, detach removes, and a
move re-buckets only when the node crosses a cell boundary.  The grid is
a *candidate* index, deliberately conservative: `near()` returns every
node in the touched cells (a superset of the disk), and callers filter
with the exact PHY margin test.  Correctness therefore never depends on
the cell size — only performance does.

Insertion order is preserved within each cell (dict-backed buckets), so
iteration is deterministic for a fixed attach/move history.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

Position = Tuple[float, float]

_CellKey = Tuple[int, int]


class SpatialGrid:
    """A uniform hash grid over planar positions.

    Parameters
    ----------
    cell_size_m:
        Edge length of one square cell.  Choose the maximum communication
        range so a ``near(pos, max_range)`` query touches a 3×3 block.
    """

    __slots__ = ("cell_size", "_cells", "_where")

    def __init__(self, cell_size_m: float) -> None:
        if not cell_size_m > 0.0:
            raise ValueError(f"cell size must be positive, got {cell_size_m}")
        self.cell_size = cell_size_m
        # cell -> {node_id: position}; dict-of-dicts keeps removal O(1)
        # and iteration order deterministic (insertion order).
        self._cells: Dict[_CellKey, Dict[int, Position]] = {}
        self._where: Dict[int, Tuple[_CellKey, Position]] = {}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _key(self, position: Position) -> _CellKey:
        size = self.cell_size
        return (int(position[0] // size), int(position[1] // size))

    def insert(self, node_id: int, position: Position) -> None:
        """Add a node (replaces any previous position for the id)."""
        if node_id in self._where:
            self.remove(node_id)
        key = self._key(position)
        self._cells.setdefault(key, {})[node_id] = position
        self._where[node_id] = (key, position)

    def remove(self, node_id: int) -> None:
        """Drop a node; unknown ids are a no-op."""
        entry = self._where.pop(node_id, None)
        if entry is None:
            return
        key, _ = entry
        cell = self._cells.get(key)
        if cell is not None:
            cell.pop(node_id, None)
            if not cell:
                del self._cells[key]

    def move(self, node_id: int, position: Position) -> None:
        """Update a node's position, re-bucketing only across cell
        boundaries (the common small step stays O(1) dict writes)."""
        entry = self._where.get(node_id)
        if entry is None:
            self.insert(node_id, position)
            return
        old_key, _ = entry
        new_key = self._key(position)
        if new_key == old_key:
            self._cells[old_key][node_id] = position
            self._where[node_id] = (old_key, position)
            return
        self.remove(node_id)
        self._cells.setdefault(new_key, {})[node_id] = position
        self._where[node_id] = (new_key, position)

    def clear(self) -> None:
        """Remove every node."""
        self._cells.clear()
        self._where.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def near(self, position: Position, radius_m: float) -> List[int]:
        """Node ids in every cell intersecting the disk around ``position``.

        A superset of the nodes within ``radius_m`` — callers apply the
        exact range test.  Order is cell-scan order (deterministic for a
        fixed history).
        """
        if radius_m < 0.0:
            return []
        size = self.cell_size
        x, y = position
        cx_lo = int((x - radius_m) // size)
        cx_hi = int((x + radius_m) // size)
        cy_lo = int((y - radius_m) // size)
        cy_hi = int((y + radius_m) // size)
        cells = self._cells
        out: List[int] = []
        for cx in range(cx_lo, cx_hi + 1):
            for cy in range(cy_lo, cy_hi + 1):
                bucket = cells.get((cx, cy))
                if bucket:
                    out.extend(bucket)
        return out

    def position_of(self, node_id: int) -> Optional[Position]:
        """The stored position for a node, or None."""
        entry = self._where.get(node_id)
        return entry[1] if entry is not None else None

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._where

    def __iter__(self) -> Iterator[int]:
        return iter(self._where)

    @property
    def cell_count(self) -> int:
        """Number of non-empty cells (diagnostics)."""
        return len(self._cells)
