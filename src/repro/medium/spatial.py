"""Uniform spatial hash grid for O(cell-neighborhood) candidate lookup.

At N=1000 nodes, "who can possibly hear this sender" must not be an
O(N) scan per frame.  The grid buckets node positions into square cells
keyed on the maximum communication range, so a range query touches only
the cells intersecting the query disk — a 3×3 neighborhood when the cell
size equals the radius.

Maintenance is **incremental**: attach inserts, detach removes, and a
move re-buckets only when the node crosses a cell boundary.  The grid is
a *candidate* index, deliberately conservative: `near()` returns every
node in the touched cells (a superset of the disk), and callers filter
with the exact PHY margin test.  Correctness therefore never depends on
the cell size — only performance does.

Insertion order is preserved within each cell (dict-backed buckets), so
iteration is deterministic for a fixed attach/move history.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

Position = Tuple[float, float]

_CellKey = Tuple[int, int]


class SpatialGrid:
    """A uniform hash grid over planar positions.

    Parameters
    ----------
    cell_size_m:
        Edge length of one square cell.  Choose the maximum communication
        range so a ``near(pos, max_range)`` query touches a 3×3 block.
    """

    __slots__ = ("cell_size", "_cells", "_where")

    def __init__(self, cell_size_m: float) -> None:
        if not cell_size_m > 0.0:
            raise ValueError(f"cell size must be positive, got {cell_size_m}")
        self.cell_size = cell_size_m
        # cell -> {node_id: position}; dict-of-dicts keeps removal O(1)
        # and iteration order deterministic (insertion order).
        self._cells: Dict[_CellKey, Dict[int, Position]] = {}
        self._where: Dict[int, Tuple[_CellKey, Position]] = {}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _key(self, position: Position) -> _CellKey:
        size = self.cell_size
        return (int(position[0] // size), int(position[1] // size))

    def insert(self, node_id: int, position: Position) -> None:
        """Add a node (replaces any previous position for the id)."""
        if node_id in self._where:
            self.remove(node_id)
        key = self._key(position)
        self._cells.setdefault(key, {})[node_id] = position
        self._where[node_id] = (key, position)

    def remove(self, node_id: int) -> None:
        """Drop a node; unknown ids are a no-op."""
        entry = self._where.pop(node_id, None)
        if entry is None:
            return
        key, _ = entry
        cell = self._cells.get(key)
        if cell is not None:
            cell.pop(node_id, None)
            if not cell:
                del self._cells[key]

    def move(self, node_id: int, position: Position) -> None:
        """Update a node's position, re-bucketing only across cell
        boundaries (the common small step stays O(1) dict writes)."""
        entry = self._where.get(node_id)
        if entry is None:
            self.insert(node_id, position)
            return
        old_key, _ = entry
        new_key = self._key(position)
        if new_key == old_key:
            self._cells[old_key][node_id] = position
            self._where[node_id] = (old_key, position)
            return
        self.remove(node_id)
        self._cells.setdefault(new_key, {})[node_id] = position
        self._where[node_id] = (new_key, position)

    def clear(self) -> None:
        """Remove every node."""
        self._cells.clear()
        self._where.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def near(self, position: Position, radius_m: float) -> List[int]:
        """Node ids in every cell intersecting the disk around ``position``.

        A superset of the nodes within ``radius_m`` — callers apply the
        exact range test.  Order is cell-scan order (deterministic for a
        fixed history).
        """
        if radius_m < 0.0:
            return []
        size = self.cell_size
        x, y = position
        cx_lo = int((x - radius_m) // size)
        cx_hi = int((x + radius_m) // size)
        cy_lo = int((y - radius_m) // size)
        cy_hi = int((y + radius_m) // size)
        cells = self._cells
        out: List[int] = []
        for cx in range(cx_lo, cx_hi + 1):
            for cy in range(cy_lo, cy_hi + 1):
                bucket = cells.get((cx, cy))
                if bucket:
                    out.extend(bucket)
        return out

    def position_of(self, node_id: int) -> Optional[Position]:
        """The stored position for a node, or None."""
        entry = self._where.get(node_id)
        return entry[1] if entry is not None else None

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._where

    def __iter__(self) -> Iterator[int]:
        return iter(self._where)

    @property
    def cell_count(self) -> int:
        """Number of non-empty cells (diagnostics)."""
        return len(self._cells)


# ----------------------------------------------------------------------
# Spatial partitioning for the sharded runner (repro.sim.shard)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlan:
    """A deterministic spatial partition of the plane into x-strips.

    Strip ``i`` owns positions with ``cuts[i-1] <= x < cuts[i]`` (the
    first and last strips extend to infinity).  Every cut is snapped to
    a :class:`SpatialGrid` cell edge (a multiple of ``cell_size``), so a
    strip is an exact union of grid-cell columns — the same geometry the
    medium's candidate index uses.

    The plan is a pure function of (positions, shards, cell size), so
    every worker process derives the identical partition independently —
    no partition table ever crosses the IPC boundary.
    """

    cuts: Tuple[float, ...]  # interior boundaries, strictly ascending
    cell_size: float

    @property
    def shards(self) -> int:
        """Number of strips."""
        return len(self.cuts) + 1

    def shard_of(self, position: Position) -> int:
        """The strip owning ``position``."""
        return bisect_right(self.cuts, position[0])

    def shards_overlapping(self, position: Position, radius_m: float) -> range:
        """Strips whose x-interval intersects the disk around ``position``.

        Used to route a boundary-crossing transmission: every strip in
        the returned range can contain a listener inside the audible
        disk (a conservative superset — the exact membership test stays
        with the destination shard's own PHY).
        """
        x = position[0]
        lo = bisect_left(self.cuts, x - radius_m)
        hi = bisect_right(self.cuts, x + radius_m)
        return range(lo, hi + 1)

    def is_interior(self, position: Position, radius_m: float) -> bool:
        """Whether the disk around ``position`` stays inside one strip
        (no boundary export needed for a transmission from there)."""
        r = self.shards_overlapping(position, radius_m)
        return len(r) == 1

    def partition(self, positions: Sequence[Position]) -> List[List[int]]:
        """Position indices per strip, preserving input order."""
        owned: List[List[int]] = [[] for _ in range(self.shards)]
        for index, position in enumerate(positions):
            owned[self.shard_of(position)].append(index)
        return owned


def plan_strips(
    positions: Sequence[Position], shards: int, cell_size_m: float
) -> ShardPlan:
    """Build a node-count-balanced :class:`ShardPlan` over ``positions``.

    Cuts are placed at the x-quantiles of the placement and snapped
    *down* to the nearest grid-cell edge; a cut that would collide with
    (or cross under) its predecessor is pushed one cell up instead, so
    cuts are always strictly ascending.  Degenerate placements can
    therefore produce empty strips — the caller decides whether that is
    acceptable (the sharded runner reports per-shard node counts).
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if cell_size_m <= 0.0:
        raise ValueError(f"cell size must be positive, got {cell_size_m}")
    if shards == 1:
        return ShardPlan(cuts=(), cell_size=cell_size_m)
    if not positions:
        raise ValueError("cannot partition an empty placement")
    xs = sorted(p[0] for p in positions)
    n = len(xs)
    cuts: List[float] = []
    prev = -math.inf
    for i in range(1, shards):
        target = xs[min(n - 1, (i * n) // shards)]
        cut = math.floor(target / cell_size_m) * cell_size_m
        if cut <= prev:
            cut = (prev if prev != -math.inf else cut) + cell_size_m
        cuts.append(cut)
        prev = cut
    return ShardPlan(cuts=tuple(cuts), cell_size=cell_size_m)
