"""repro — a Python reproduction of LoRaMesher (ICDCS 2022 demo).

LoRaMesher is a library that turns LoRa IoT nodes into a standalone mesh
network: a distance-vector routing protocol lets any two nodes exchange
data while the other nodes forward for them, with no gateway or LoRaWAN
infrastructure.  This package reproduces the library and, because the
original runs on ESP32+SX127x hardware, also provides the full simulation
substrate it needs: a discrete-event kernel, LoRa PHY models, a shared
radio medium, and an SX127x-style driver.

Most users want :class:`repro.MeshNetwork`::

    from repro import MeshNetwork
    from repro.topology import line_positions

    net = MeshNetwork.from_positions(line_positions(4), seed=7)
    net.run_until_converged(timeout_s=3600)
    a, d = net.addresses[0], net.addresses[-1]
    net.node(a).send_datagram(d, b"hello mesh")
    net.run(for_s=60)
    print(net.node(d).receive())

Subpackages
-----------
``repro.sim``       discrete-event kernel, processes, RNG streams
``repro.phy``       airtime, path loss, link budget, duty-cycle rules
``repro.medium``    the shared channel (collisions, capture)
``repro.radio``     SX127x-style half-duplex driver
``repro.net``       the LoRaMesher protocol (the paper's contribution)
``repro.baselines`` flooding / star / oracle comparison protocols
``repro.topology``  placements, connectivity graphs, failures, mobility
``repro.workload``  traffic generators and scenario scripts
``repro.metrics``   PDR/latency/overhead/energy collection
``repro.experiments`` the benchmark harness
"""

from repro.net.api import AppMessage, MeshNetwork, MeshNode
from repro.net.config import MesherConfig
from repro.net.addresses import BROADCAST_ADDRESS
from repro.phy.modulation import Bandwidth, CodingRate, LoRaParams, SpreadingFactor
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry

__version__ = "1.0.0"

__all__ = [
    "MeshNetwork",
    "MeshNode",
    "MesherConfig",
    "AppMessage",
    "BROADCAST_ADDRESS",
    "LoRaParams",
    "SpreadingFactor",
    "Bandwidth",
    "CodingRate",
    "Simulator",
    "RngRegistry",
    "__version__",
]
