"""Measurement: PDR, latency, overhead, convergence, and energy.

* :mod:`repro.metrics.collect` — the :class:`FlowRecorder` that matches
  probe deliveries to sends, plus network-level overhead summaries,
* :mod:`repro.metrics.stats` — small-sample statistics helpers,
* :mod:`repro.metrics.energy` — an SX1276+ESP32 energy model over the
  radio's per-state residency times.
"""

from repro.metrics.collect import FlowRecorder, FlowSummary, attach_recorder, overhead_summary
from repro.metrics.energy import EnergyModel, TTGO_LORA32
from repro.metrics.health import NetworkHealth, network_health
from repro.metrics.stats import mean, percentile, summary_stats

__all__ = [
    "FlowRecorder",
    "FlowSummary",
    "attach_recorder",
    "overhead_summary",
    "EnergyModel",
    "TTGO_LORA32",
    "NetworkHealth",
    "network_health",
    "mean",
    "percentile",
    "summary_stats",
]
