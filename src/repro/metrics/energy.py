"""Radio energy model.

Converts the driver's per-state residency times into charge and energy
figures using a current-draw profile.  The default profile approximates
the demo's TTGO LoRa32 hardware (SX1276 at +14 dBm plus the ESP32's
share attributable to the radio task); absolute joules depend on the
board, but the *ratios* between protocols on identical substrates are
what the benchmarks compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.radio.driver import Radio
from repro.radio.states import RadioState


@dataclass(frozen=True)
class EnergyModel:
    """Current draw (mA) per radio state at a fixed supply voltage."""

    name: str
    supply_v: float
    tx_ma: float
    rx_ma: float
    cad_ma: float
    standby_ma: float
    sleep_ma: float

    def current_ma(self, state: RadioState) -> float:
        """Current draw for one state."""
        return {
            RadioState.TX: self.tx_ma,
            RadioState.RX: self.rx_ma,
            RadioState.CAD: self.cad_ma,
            RadioState.STANDBY: self.standby_ma,
            RadioState.SLEEP: self.sleep_ma,
        }[state]

    def charge_mah(self, state_times: Dict[RadioState, float]) -> float:
        """Total charge in mAh for the given per-state seconds."""
        return sum(
            self.current_ma(state) * seconds / 3600.0
            for state, seconds in state_times.items()
        )

    def energy_j(self, state_times: Dict[RadioState, float]) -> float:
        """Total energy in joules."""
        return sum(
            self.supply_v * (self.current_ma(state) / 1000.0) * seconds
            for state, seconds in state_times.items()
        )

    def radio_energy_j(self, radio: Radio) -> float:
        """Energy a radio has consumed so far."""
        return self.energy_j(radio.state_times())

    def battery_life_days(
        self, state_times: Dict[RadioState, float], *, elapsed_s: float, battery_mah: float
    ) -> float:
        """Projected battery life from the observed duty pattern."""
        if elapsed_s <= 0:
            raise ValueError("elapsed_s must be positive")
        drawn_mah = self.charge_mah(state_times)
        if drawn_mah <= 0:
            return float("inf")
        mah_per_day = drawn_mah * 86_400.0 / elapsed_s
        return battery_mah / mah_per_day


#: SX1276 at +14 dBm (datasheet table 10) with continuous-RX defaults.
TTGO_LORA32 = EnergyModel(
    name="TTGO LoRa32 (SX1276 @ 14 dBm)",
    supply_v=3.3,
    tx_ma=44.0,  # PA_BOOST at +14 dBm
    rx_ma=11.5,  # RFI_HF continuous RX
    cad_ma=11.5,
    standby_ma=1.6,
    sleep_ma=0.0002,
)

#: Same radio at its +20 dBm maximum (used in range-extension sweeps).
TTGO_LORA32_20DBM = EnergyModel(
    name="TTGO LoRa32 (SX1276 @ 20 dBm)",
    supply_v=3.3,
    tx_ma=120.0,
    rx_ma=11.5,
    cad_ma=11.5,
    standby_ma=1.6,
    sleep_ma=0.0002,
)
