"""Small statistics helpers for experiment reporting.

Kept dependency-light (pure Python) so the benchmark harness does not pay
numpy import cost per trial; numpy users can of course convert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input (a silent 0 hides bugs)."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (0 for fewer than two values)."""
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (len(values) - 1))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


@dataclass(frozen=True)
class SummaryStats:
    """A standard block of summary statistics."""

    count: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p95: float
    maximum: float

    def format(self, unit: str = "") -> str:
        """One-line rendering for experiment logs."""
        suffix = f" {unit}" if unit else ""
        return (
            f"n={self.count} mean={self.mean:.3f}{suffix} sd={self.stdev:.3f} "
            f"min={self.minimum:.3f} p50={self.p50:.3f} p95={self.p95:.3f} "
            f"max={self.maximum:.3f}"
        )


def summary_stats(values: Sequence[float]) -> SummaryStats:
    """Summarise a sample; raises on empty input."""
    if not values:
        raise ValueError("summary of empty sequence")
    return SummaryStats(
        count=len(values),
        mean=mean(values),
        stdev=stdev(values),
        minimum=min(values),
        p50=percentile(values, 50),
        p95=percentile(values, 95),
        maximum=max(values),
    )


def confidence_interval_95(values: Sequence[float]) -> float:
    """Half-width of the normal-approximation 95% CI of the mean."""
    if len(values) < 2:
        return 0.0
    return 1.96 * stdev(values) / math.sqrt(len(values))
