"""Flow-level measurement: matching probe deliveries to sends.

A :class:`FlowRecorder` is wired between traffic generators (which report
every send) and node inboxes (whose ``on_message`` hooks report every
delivery).  It computes per-flow and aggregate PDR, latency
distributions, and duplicate counts — the rows every benchmark prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.metrics.stats import SummaryStats, summary_stats
from repro.net.mesher import AppMessage
from repro.workload.probes import is_probe, parse_probe

FlowKey = Tuple[int, int]  # (src, dst)


@dataclass
class _SentRecord:
    time: float
    size: int


@dataclass(frozen=True)
class FlowSummary:
    """Measured outcome of one (src, dst) flow."""

    src: int
    dst: int
    sent: int
    delivered: int
    duplicates: int
    pdr: float
    latency: Optional[SummaryStats]  # None when nothing was delivered


class FlowRecorder:
    """Collects send/delivery records for any number of flows."""

    def __init__(self) -> None:
        self._sent: Dict[FlowKey, Dict[int, _SentRecord]] = {}
        self._delivered: Dict[FlowKey, Set[int]] = {}
        self._latencies: Dict[FlowKey, List[float]] = {}
        self._duplicates: Dict[FlowKey, int] = {}
        self.non_probe_messages = 0

    # ------------------------------------------------------------------
    # Reporting interface
    # ------------------------------------------------------------------
    def sent(self, src: int, dst: int, seq: int, time: float, size: int) -> None:
        """Record one send (traffic generators call this)."""
        self._sent.setdefault((src, dst), {})[seq] = _SentRecord(time=time, size=size)

    def delivered(self, dst: int, message: AppMessage) -> None:
        """Record one delivery (wire this to the node's ``on_message``)."""
        if not is_probe(message.payload):
            self.non_probe_messages += 1
            return
        probe = parse_probe(message.payload)
        key = (probe.src, dst)
        seen = self._delivered.setdefault(key, set())
        if probe.seq in seen:
            self._duplicates[key] = self._duplicates.get(key, 0) + 1
            return
        seen.add(probe.seq)
        self._latencies.setdefault(key, []).append(message.received_at - probe.sent_at)

    def merge_from(self, other: "FlowRecorder") -> None:
        """Fold another recorder's records into this one.

        The sharded runner keeps one recorder per worker (sends recorded
        where the flow's source lives, deliveries where its destination
        lives) and merges them after the run.  Record sets from disjoint
        node populations never overlap, but the merge is written to be
        safe either way: sends unite per-flow seq maps, deliveries unite
        seq sets, and latencies/duplicate counts concatenate/add.
        """
        for key, sent in other._sent.items():
            self._sent.setdefault(key, {}).update(sent)
        for key, seen in other._delivered.items():
            self._delivered.setdefault(key, set()).update(seen)
        for key, latencies in other._latencies.items():
            self._latencies.setdefault(key, []).extend(latencies)
        for key, count in other._duplicates.items():
            self._duplicates[key] = self._duplicates.get(key, 0) + count
        self.non_probe_messages += other.non_probe_messages

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def flow(self, src: int, dst: int) -> FlowSummary:
        """Summary of one flow (zero-filled when nothing was sent)."""
        key = (src, dst)
        sent = len(self._sent.get(key, {}))
        delivered = len(self._delivered.get(key, set()))
        latencies = self._latencies.get(key, [])
        return FlowSummary(
            src=src,
            dst=dst,
            sent=sent,
            delivered=delivered,
            duplicates=self._duplicates.get(key, 0),
            pdr=(delivered / sent) if sent else 0.0,
            latency=summary_stats(latencies) if latencies else None,
        )

    def flows(self) -> List[FlowSummary]:
        """Summaries of every flow that sent at least one probe."""
        return [self.flow(src, dst) for (src, dst) in sorted(self._sent)]

    def total_sent(self) -> int:
        """Probes sent across all flows."""
        return sum(len(v) for v in self._sent.values())

    def total_delivered(self) -> int:
        """Unique probes delivered across all flows."""
        return sum(len(v) for v in self._delivered.values())

    def total_duplicates(self) -> int:
        """Duplicate deliveries across all flows."""
        return sum(self._duplicates.values())

    def aggregate_pdr(self) -> float:
        """Network-wide delivered/sent (0.0 when nothing was sent)."""
        sent = self.total_sent()
        return (self.total_delivered() / sent) if sent else 0.0

    def delivered_bytes(self) -> int:
        """Payload bytes of every uniquely delivered probe, across all
        flows (a send whose seq was never delivered contributes 0)."""
        total = 0
        for key, sent in self._sent.items():
            delivered = self._delivered.get(key)
            if not delivered:
                continue
            total += sum(rec.size for seq, rec in sent.items() if seq in delivered)
        return total

    def all_latencies(self) -> List[float]:
        """Every matched delivery latency, flattened."""
        return [lat for values in self._latencies.values() for lat in values]


def attach_recorder(recorder: FlowRecorder, node) -> None:
    """Wire a node's ``on_message`` hook to the recorder, preserving any
    callback the application already installed."""
    previous = node.on_message
    address = node.address

    def hook(message: AppMessage) -> None:
        recorder.delivered(address, message)
        if previous is not None:
            previous(message)

    node.on_message = hook


@dataclass(frozen=True)
class OverheadSummary:
    """Network-level airtime/overhead accounting."""

    frames_sent: int
    bytes_sent: int
    airtime_s: float
    airtime_per_delivered_byte_ms: float
    duty_cycle_peak: float


def overhead_summary(nodes, recorder: Optional[FlowRecorder] = None, now: float = 0.0) -> OverheadSummary:
    """Aggregate transmit-cost metrics over a collection of nodes.

    ``airtime_per_delivered_byte_ms`` needs a recorder (it divides total
    airtime by delivered probe bytes); it is ``inf`` when nothing was
    delivered — a meaningful benchmark outcome, not an error.
    """
    frames = sum(n.radio.frames_sent for n in nodes)
    tx_bytes = sum(n.radio.bytes_sent for n in nodes)
    airtime = sum(n.radio.tx_airtime_s for n in nodes)
    delivered_bytes = recorder.delivered_bytes() if recorder is not None else 0
    per_byte = (airtime * 1000 / delivered_bytes) if delivered_bytes else float("inf")
    peak_duty = 0.0
    for node in nodes:
        duty = getattr(node, "duty", None)
        if duty is not None:
            peak_duty = max(peak_duty, duty.window_utilisation(now))
    return OverheadSummary(
        frames_sent=frames,
        bytes_sent=tx_bytes,
        airtime_s=airtime,
        airtime_per_delivered_byte_ms=per_byte,
        duty_cycle_peak=peak_duty,
    )
