"""Network health reports.

One call summarises a running :class:`~repro.net.api.MeshNetwork` the way
an operator dashboard would: routing coverage, per-node protocol and
radio counters, queue pressure, duty-cycle headroom, and energy.  Used by
the CLI, handy at the end of any experiment.

Since the observability layer landed, the snapshot is assembled from a
:class:`~repro.obs.registry.MetricsRegistry` populated by
:func:`~repro.obs.instrument.instrument_network` — the same instruments
the time-series sampler and the Prometheus/JSONL exporters read — rather
than by reaching into node attributes directly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.report import format_table
from repro.metrics.energy import EnergyModel
from repro.net.api import MeshNetwork
from repro.obs.instrument import instrument_network
from repro.obs.registry import MetricsRegistry


@dataclass(frozen=True)
class NodeHealth:
    """One node's health snapshot."""

    name: str
    routes: int
    neighbours: int
    frames_sent: int
    forwarded: int
    delivered: int
    no_route_drops: int
    crc_failures: int
    queue_depth: int
    queue_drops: int
    duty_utilisation: float
    tx_airtime_s: float
    energy_j: float


@dataclass(frozen=True)
class NetworkHealth:
    """Whole-network snapshot."""

    time_s: float
    nodes: List[NodeHealth]
    coverage: float
    total_frames: int
    total_airtime_s: float
    worst_duty: float

    def format(self) -> str:
        """Render the operator-dashboard view."""
        rows = [
            (
                n.name,
                n.routes,
                n.neighbours,
                n.frames_sent,
                n.forwarded,
                n.delivered,
                n.no_route_drops,
                n.queue_depth,
                f"{n.duty_utilisation * 100:.3f}%",
                f"{n.energy_j:.1f}",
            )
            for n in self.nodes
        ]
        table = format_table(
            ["node", "routes", "nbrs", "sent", "fwd", "dlvd", "noroute", "queue", "duty", "J"],
            rows,
            title=(
                f"Network health at t={self.time_s:.0f} s — coverage "
                f"{self.coverage * 100:.1f}%, {self.total_frames} frames, "
                f"{self.total_airtime_s:.1f} s airtime, worst duty "
                f"{self.worst_duty * 100:.3f}%"
            ),
        )
        return table


def _node_values(registry: MetricsRegistry) -> Dict[str, Dict[str, float]]:
    """Snapshot the registry into ``{node_name: {metric: value}}``."""
    by_node: Dict[str, Dict[str, float]] = {}
    for sample in registry.snapshot():
        labels = dict(sample.labels)
        node = labels.get("node")
        if node is not None:
            by_node.setdefault(node, {})[sample.name] = sample.value
    return by_node


def health_from_registry(
    registry: MetricsRegistry, *, time_s: float, node_order: Optional[List[str]] = None
) -> NetworkHealth:
    """Build a :class:`NetworkHealth` from an instrumented registry.

    ``node_order`` fixes the row order (defaults to sorted node labels).
    """
    by_node = _node_values(registry)
    names = node_order if node_order is not None else sorted(by_node)
    nodes = []
    for name in names:
        values = by_node.get(name, {})
        nodes.append(
            NodeHealth(
                name=name,
                routes=int(values.get("repro_node_routes", 0)),
                neighbours=int(values.get("repro_node_neighbours", 0)),
                frames_sent=int(values.get("repro_node_frames_sent_total", 0)),
                forwarded=int(values.get("repro_node_data_forwarded_total", 0)),
                delivered=int(values.get("repro_node_data_delivered_total", 0)),
                no_route_drops=int(values.get("repro_node_no_route_drops_total", 0)),
                crc_failures=int(values.get("repro_node_crc_failures_total", 0)),
                queue_depth=int(values.get("repro_node_queue_depth", 0)),
                queue_drops=int(values.get("repro_node_queue_drops_total", 0)),
                duty_utilisation=values.get("repro_node_duty_utilisation", 0.0),
                tx_airtime_s=values.get("repro_node_tx_airtime_seconds_total", 0.0),
                energy_j=values.get("repro_node_energy_joules_total", 0.0),
            )
        )
    return NetworkHealth(
        time_s=time_s,
        nodes=nodes,
        coverage=registry.value("repro_network_coverage"),
        total_frames=int(registry.value("repro_network_frames_total")),
        total_airtime_s=registry.value("repro_network_airtime_seconds_total"),
        worst_duty=max((n.duty_utilisation for n in nodes), default=0.0),
    )


#: Parses the sampler's flat ``name{k="v",...}`` keys back into a name
#: plus labels — the inverse of :attr:`MetricSample.key`.
_FLAT_KEY_RE = re.compile(r'^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$')
_LABEL_PAIR_RE = re.compile(r'(\w+)="([^"]*)"')


def health_from_flat_values(
    values: Dict[str, float], *, time_s: float
) -> NetworkHealth:
    """Build a :class:`NetworkHealth` from one flattened sample point.

    ``values`` is a :class:`~repro.obs.sampler.SamplePoint` ``values``
    dict (flat ``name{node="..."}`` keys) — what the time-series sampler
    and the event store persist.  This is how dashboards reconstruct
    per-node health cards from stored samples without a live network.
    """
    by_node: Dict[str, Dict[str, float]] = {}
    flat: Dict[str, float] = {}
    for key, value in values.items():
        match = _FLAT_KEY_RE.match(key)
        if match is None:
            continue
        name = match.group("name")
        labels = dict(_LABEL_PAIR_RE.findall(match.group("labels") or ""))
        node = labels.get("node")
        if node is not None:
            by_node.setdefault(node, {})[name] = value
        elif not labels:
            flat[name] = value
    nodes = []
    for name in sorted(by_node):
        v = by_node[name]
        nodes.append(
            NodeHealth(
                name=name,
                routes=int(v.get("repro_node_routes", 0)),
                neighbours=int(v.get("repro_node_neighbours", 0)),
                frames_sent=int(v.get("repro_node_frames_sent_total", 0)),
                forwarded=int(v.get("repro_node_data_forwarded_total", 0)),
                delivered=int(v.get("repro_node_data_delivered_total", 0)),
                no_route_drops=int(v.get("repro_node_no_route_drops_total", 0)),
                crc_failures=int(v.get("repro_node_crc_failures_total", 0)),
                queue_depth=int(v.get("repro_node_queue_depth", 0)),
                queue_drops=int(v.get("repro_node_queue_drops_total", 0)),
                duty_utilisation=v.get("repro_node_duty_utilisation", 0.0),
                tx_airtime_s=v.get("repro_node_tx_airtime_seconds_total", 0.0),
                energy_j=v.get("repro_node_energy_joules_total", 0.0),
            )
        )
    return NetworkHealth(
        time_s=time_s,
        nodes=nodes,
        coverage=flat.get("repro_network_coverage", 0.0),
        total_frames=int(flat.get("repro_network_frames_total", 0)),
        total_airtime_s=flat.get("repro_network_airtime_seconds_total", 0.0),
        worst_duty=max((n.duty_utilisation for n in nodes), default=0.0),
    )


def network_health(
    net: MeshNetwork, *, energy_model: Optional[EnergyModel] = None
) -> NetworkHealth:
    """Snapshot the health of every node in the network."""
    registry = MetricsRegistry()
    instrument_network(registry, net, energy_model=energy_model)
    return health_from_registry(
        registry, time_s=net.sim.now, node_order=[n.name for n in net.nodes]
    )
