"""Network health reports.

One call summarises a running :class:`~repro.net.api.MeshNetwork` the way
an operator dashboard would: routing coverage, per-node protocol and
radio counters, queue pressure, duty-cycle headroom, and energy.  Used by
the CLI, handy at the end of any experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.report import format_table
from repro.metrics.energy import EnergyModel, TTGO_LORA32
from repro.net.api import MeshNetwork


@dataclass(frozen=True)
class NodeHealth:
    """One node's health snapshot."""

    name: str
    routes: int
    neighbours: int
    frames_sent: int
    forwarded: int
    delivered: int
    no_route_drops: int
    crc_failures: int
    queue_depth: int
    queue_drops: int
    duty_utilisation: float
    tx_airtime_s: float
    energy_j: float


@dataclass(frozen=True)
class NetworkHealth:
    """Whole-network snapshot."""

    time_s: float
    nodes: List[NodeHealth]
    coverage: float
    total_frames: int
    total_airtime_s: float
    worst_duty: float

    def format(self) -> str:
        """Render the operator-dashboard view."""
        rows = [
            (
                n.name,
                n.routes,
                n.neighbours,
                n.frames_sent,
                n.forwarded,
                n.delivered,
                n.no_route_drops,
                n.queue_depth,
                f"{n.duty_utilisation * 100:.3f}%",
                f"{n.energy_j:.1f}",
            )
            for n in self.nodes
        ]
        table = format_table(
            ["node", "routes", "nbrs", "sent", "fwd", "dlvd", "noroute", "queue", "duty", "J"],
            rows,
            title=(
                f"Network health at t={self.time_s:.0f} s — coverage "
                f"{self.coverage * 100:.1f}%, {self.total_frames} frames, "
                f"{self.total_airtime_s:.1f} s airtime, worst duty "
                f"{self.worst_duty * 100:.3f}%"
            ),
        )
        return table


def network_health(
    net: MeshNetwork, *, energy_model: Optional[EnergyModel] = None
) -> NetworkHealth:
    """Snapshot the health of every node in the network."""
    model = energy_model or TTGO_LORA32
    now = net.sim.now
    nodes = []
    for node in net.nodes:
        nodes.append(
            NodeHealth(
                name=node.name,
                routes=node.table.size,
                neighbours=len(node.table.neighbours()),
                frames_sent=node.stats.frames_sent,
                forwarded=node.stats.data_forwarded,
                delivered=node.stats.data_delivered,
                no_route_drops=node.stats.no_route_drops,
                crc_failures=node.stats.crc_failures,
                queue_depth=len(node.send_queue),
                queue_drops=node.send_queue.dropped,
                duty_utilisation=node.duty.window_utilisation(now),
                tx_airtime_s=node.radio.tx_airtime_s,
                energy_j=model.radio_energy_j(node.radio),
            )
        )
    return NetworkHealth(
        time_s=now,
        nodes=nodes,
        coverage=net.coverage(),
        total_frames=net.total_frames_sent(),
        total_airtime_s=net.total_airtime_s(),
        worst_duty=max((n.duty_utilisation for n in nodes), default=0.0),
    )
