"""Deterministic node-placement generators.

All generators return a list of ``(x, y)`` positions in metres.  The
default log-distance channel gives an SF7 radio range of roughly 135 m,
so the conventional spacings below produce the structures each experiment
needs (e.g. 120 m line spacing → strict neighbour-only chains).
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from repro.medium.spatial import SpatialGrid

Position = Tuple[float, float]

#: Line spacing that makes consecutive nodes neighbours but skips no hop
#: under the default channel at SF7.
DEFAULT_LINE_SPACING_M = 120.0


def line_positions(n: int, *, spacing_m: float = DEFAULT_LINE_SPACING_M) -> List[Position]:
    """``n`` nodes on a straight line, ``spacing_m`` apart."""
    _require_count(n)
    return [(i * spacing_m, 0.0) for i in range(n)]


def grid_positions(
    rows: int, cols: int, *, spacing_m: float = DEFAULT_LINE_SPACING_M
) -> List[Position]:
    """A ``rows x cols`` lattice with uniform spacing."""
    _require_count(rows)
    _require_count(cols)
    return [(c * spacing_m, r * spacing_m) for r in range(rows) for c in range(cols)]


def ring_positions(n: int, *, radius_m: float = 200.0) -> List[Position]:
    """``n`` nodes evenly spaced on a circle."""
    _require_count(n)
    return [
        (
            radius_m * math.cos(2 * math.pi * i / n),
            radius_m * math.sin(2 * math.pi * i / n),
        )
        for i in range(n)
    ]


def random_positions(
    n: int,
    *,
    width_m: float,
    height_m: float,
    rng: random.Random,
    min_separation_m: float = 10.0,
    max_attempts: int = 10_000,
) -> List[Position]:
    """``n`` uniform random positions with a minimum pairwise separation.

    Raises ``RuntimeError`` when the area cannot fit the requested
    density within ``max_attempts`` draws.

    The separation check runs against a spatial hash grid (cell size =
    ``min_separation_m``), so each attempt tests only the 3×3 cell
    neighbourhood instead of every placed node — any node outside that
    neighbourhood is at least one cell away and passes automatically.
    The accept/reject decision (and therefore the RNG draw sequence and
    resulting placement) is identical to the all-pairs check.
    """
    _require_count(n)
    positions: List[Position] = []
    grid = SpatialGrid(min_separation_m) if min_separation_m > 0 else None
    attempts = 0
    while len(positions) < n:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"could not place {n} nodes with {min_separation_m} m separation "
                f"in {width_m}x{height_m} m after {max_attempts} attempts"
            )
        candidate = (rng.uniform(0, width_m), rng.uniform(0, height_m))
        if grid is None:
            positions.append(candidate)
            continue
        if all(
            math.hypot(candidate[0] - positions[i][0], candidate[1] - positions[i][1])
            >= min_separation_m
            for i in grid.near(candidate, min_separation_m)
        ):
            grid.insert(len(positions), candidate)
            positions.append(candidate)
    return positions


def campus_positions(
    clusters: int,
    nodes_per_cluster: int,
    *,
    cluster_spread_m: float = 60.0,
    cluster_distance_m: float = 110.0,
    rng: Optional[random.Random] = None,
) -> List[Position]:
    """The demo-style deployment: tight clusters of nodes (rooms/labs)
    strung across a campus, adjacent clusters within radio range of each
    other but distant clusters not.

    Cluster centres sit on a line ``cluster_distance_m`` apart; members
    scatter within ``cluster_spread_m`` of their centre.
    """
    _require_count(clusters)
    _require_count(nodes_per_cluster)
    rng = rng or random.Random(0)
    positions: List[Position] = []
    for c in range(clusters):
        centre = (c * cluster_distance_m, 0.0)
        for _ in range(nodes_per_cluster):
            angle = rng.uniform(0, 2 * math.pi)
            radius = rng.uniform(0, cluster_spread_m / 2)
            positions.append(
                (centre[0] + radius * math.cos(angle), centre[1] + radius * math.sin(angle))
            )
    return positions


def bounding_box(positions: Sequence[Position]) -> Tuple[float, float, float, float]:
    """``(min_x, min_y, max_x, max_y)`` of a placement."""
    if not positions:
        raise ValueError("empty placement")
    xs = [p[0] for p in positions]
    ys = [p[1] for p in positions]
    return min(xs), min(ys), max(xs), max(ys)


def _require_count(n: int) -> None:
    if n < 1:
        raise ValueError(f"need at least one node, got {n}")
