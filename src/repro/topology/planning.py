"""Deployment planning: choosing modulation for a placement.

LoRaMesher runs the whole mesh on one shared parameter set, so before
deploying you must answer "which SF makes this placement a connected
mesh, and what does that cost?".  These helpers automate the choice the
demo's authors made by hand when spreading boards through their building.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import networkx as nx

from repro.phy import batch as _batch
from repro.phy.airtime import time_on_air
from repro.phy.link import LinkBudget, snr_floor_db
from repro.phy.modulation import LoRaParams, SpreadingFactor
from repro.phy.pathloss import Position
from repro.topology.graphs import connectivity_graph, graph_stats


@dataclass(frozen=True)
class SfPlan:
    """Outcome of evaluating one SF against a placement."""

    spreading_factor: SpreadingFactor
    connected: bool
    diameter: int
    mean_degree: float
    frame_toa_s: float  # ToA of a 24 B reference frame


def evaluate_sf(
    positions: Sequence[Position],
    link_budget: LinkBudget,
    sf: SpreadingFactor,
    *,
    base_params: Optional[LoRaParams] = None,
    reference_payload: int = 24,
) -> SfPlan:
    """Connectivity and cost of running the placement at ``sf``."""
    params = (base_params or LoRaParams()).replace(spreading_factor=sf)
    stats = graph_stats(connectivity_graph(positions, link_budget, params))
    return SfPlan(
        spreading_factor=sf,
        connected=stats.connected,
        diameter=stats.diameter,
        mean_degree=stats.mean_degree,
        frame_toa_s=time_on_air(reference_payload, params),
    )


def plan_all_sfs(
    positions: Sequence[Position],
    link_budget: LinkBudget,
    *,
    base_params: Optional[LoRaParams] = None,
) -> List[SfPlan]:
    """Evaluate every SF against the placement, SF7 first.

    With a batch-capable channel model the (N×N) SNR matrix is computed
    *once* and re-thresholded per SF — SF only moves the demodulation
    floor, not the link budget — instead of rebuilding it per SF.  The
    plans are identical to per-SF :func:`evaluate_sf` calls either way.
    """
    base = base_params or LoRaParams()
    if len(positions) > 1 and _batch.supports_batch(link_budget):
        np = _batch.np
        n = len(positions)
        m = _batch.link_matrices(link_budget, positions, positions, base)
        snr_worse = np.minimum(m.snr_db, m.snr_db.T)
        plans: List[SfPlan] = []
        for sf in SpreadingFactor:
            params = base.replace(spreading_factor=sf)
            above = m.snr_db >= snr_floor_db(sf)
            both = above & above.T
            graph = nx.Graph()
            graph.add_nodes_from(range(n))
            ii, jj = np.nonzero(np.triu(both, k=1))
            for i, j in zip(ii.tolist(), jj.tolist()):
                graph.add_edge(i, j, snr_db=float(snr_worse[i, j]))
            stats = graph_stats(graph)
            plans.append(
                SfPlan(
                    spreading_factor=sf,
                    connected=stats.connected,
                    diameter=stats.diameter,
                    mean_degree=stats.mean_degree,
                    frame_toa_s=time_on_air(24, params),
                )
            )
        return plans
    return [
        evaluate_sf(positions, link_budget, sf, base_params=base_params)
        for sf in SpreadingFactor
    ]


def minimum_connecting_sf(
    positions: Sequence[Position],
    link_budget: LinkBudget,
    *,
    base_params: Optional[LoRaParams] = None,
) -> Optional[SpreadingFactor]:
    """The cheapest (lowest) SF at which the placement is one mesh.

    Returns None when even SF12 leaves it partitioned — the deployment
    needs more nodes, not more spreading factor.  Airtime is monotone in
    SF, so the lowest connecting SF is also the cheapest.
    """
    for plan in plan_all_sfs(positions, link_budget, base_params=base_params):
        if plan.connected:
            return plan.spreading_factor
    return None
