"""Node placement, connectivity analysis, and dynamics.

The demo's observable behaviour (multi-hop routes emerge) is a property of
the deployment geometry.  This package generates the geometries the
benchmarks sweep (lines, grids, random fields, campus clusters), analyses
their radio connectivity with networkx, and scripts runtime dynamics
(node failures, mobility).
"""

from repro.topology.placement import (
    campus_positions,
    grid_positions,
    line_positions,
    random_positions,
    ring_positions,
)
from repro.topology.graphs import connectivity_graph, graph_stats, is_connected
from repro.topology.mobility import FailureSchedule, RandomWaypoint
from repro.topology.planning import minimum_connecting_sf, plan_all_sfs
from repro.topology.layout import Layout, LayoutNode, load_layout, save_layout

__all__ = [
    "minimum_connecting_sf",
    "plan_all_sfs",
    "Layout",
    "LayoutNode",
    "load_layout",
    "save_layout",
    "line_positions",
    "grid_positions",
    "ring_positions",
    "random_positions",
    "campus_positions",
    "connectivity_graph",
    "graph_stats",
    "is_connected",
    "FailureSchedule",
    "RandomWaypoint",
]
