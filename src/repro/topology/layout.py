"""Deployment layout files.

A deployment — node positions, optional names/roles, channel choice — is
something users iterate on and share.  This module defines a small JSON
format and loads/saves it, so the CLI and experiments can run real site
plans instead of generated placements::

    {
      "name": "office-floor-2",
      "spreading_factor": 7,
      "nodes": [
        {"x": 0,   "y": 0,  "name": "sink",   "gateway": true},
        {"x": 110, "y": 5,  "name": "lab-a"},
        {"x": 220, "y": -3}
      ]
    }

Addresses are assigned in file order (0x0001...), matching the
positional convention everywhere else.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.phy.modulation import LoRaParams, SpreadingFactor

Position = Tuple[float, float]

FORMAT_VERSION = 1


@dataclass(frozen=True)
class LayoutNode:
    """One planned node."""

    x: float
    y: float
    name: str = ""
    gateway: bool = False

    @property
    def position(self) -> Position:
        return (self.x, self.y)


@dataclass(frozen=True)
class Layout:
    """A deployment plan."""

    name: str
    nodes: Tuple[LayoutNode, ...]
    spreading_factor: SpreadingFactor = SpreadingFactor.SF7

    def positions(self) -> List[Position]:
        """Node positions in file order."""
        return [node.position for node in self.nodes]

    def gateway_indices(self) -> List[int]:
        """Indices of nodes flagged as gateways."""
        return [i for i, node in enumerate(self.nodes) if node.gateway]

    def params(self) -> LoRaParams:
        """LoRa parameters implied by the layout."""
        return LoRaParams(spreading_factor=self.spreading_factor)

    def __len__(self) -> int:
        return len(self.nodes)


class LayoutError(Exception):
    """Raised for malformed layout documents."""


def load_layout(path: Union[str, Path]) -> Layout:
    """Read and validate a layout file."""
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise LayoutError(f"cannot read layout {path}: {exc}") from exc
    return layout_from_dict(document, default_name=Path(path).stem)


def layout_from_dict(document: dict, *, default_name: str = "layout") -> Layout:
    """Build a layout from an already-parsed document."""
    if not isinstance(document, dict):
        raise LayoutError("layout document must be a JSON object")
    version = document.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise LayoutError(f"unsupported layout version {version!r}")
    raw_nodes = document.get("nodes")
    if not isinstance(raw_nodes, list) or not raw_nodes:
        raise LayoutError("layout needs a non-empty 'nodes' list")
    nodes = []
    for i, raw in enumerate(raw_nodes):
        if not isinstance(raw, dict) or "x" not in raw or "y" not in raw:
            raise LayoutError(f"node {i} must be an object with 'x' and 'y'")
        try:
            nodes.append(
                LayoutNode(
                    x=float(raw["x"]),
                    y=float(raw["y"]),
                    name=str(raw.get("name", "")),
                    gateway=bool(raw.get("gateway", False)),
                )
            )
        except (TypeError, ValueError) as exc:
            raise LayoutError(f"node {i}: {exc}") from exc
    sf_value = document.get("spreading_factor", 7)
    try:
        sf = SpreadingFactor(int(sf_value))
    except ValueError as exc:
        raise LayoutError(f"invalid spreading_factor {sf_value!r}") from exc
    return Layout(
        name=str(document.get("name", default_name)),
        nodes=tuple(nodes),
        spreading_factor=sf,
    )


def save_layout(layout: Layout, path: Union[str, Path]) -> Path:
    """Write a layout file; returns the path."""
    path = Path(path)
    document = {
        "version": FORMAT_VERSION,
        "name": layout.name,
        "spreading_factor": int(layout.spreading_factor),
        "nodes": [
            {
                "x": node.x,
                "y": node.y,
                **({"name": node.name} if node.name else {}),
                **({"gateway": True} if node.gateway else {}),
            }
            for node in layout.nodes
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2))
    return path
