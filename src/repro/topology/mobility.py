"""Runtime topology dynamics: scripted failures and simple mobility.

The robustness experiments (E8) kill and revive nodes mid-run; the
mobility model exercises route repair under continuous change.  Both are
driven by the shared kernel so runs stay deterministic.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from repro.net.mesher import MesherNode
from repro.sim.kernel import Simulator

Position = Tuple[float, float]


class FailureSchedule:
    """Scripted node deaths and recoveries.

    >>> schedule = FailureSchedule(sim)
    >>> schedule.fail_at(600.0, relay_node)
    >>> schedule.recover_at(1200.0, relay_node)

    Events already in the past raise — a schedule is written before the
    run starts.
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self.events: List[Tuple[float, str, int]] = []  # (time, kind, address)

    def fail_at(self, time_s: float, node: MesherNode) -> None:
        """Kill ``node`` abruptly at the given absolute simulated time."""
        self._at(time_s, "fail", node, node.fail)

    def recover_at(self, time_s: float, node: MesherNode) -> None:
        """Revive ``node`` (cold start) at the given time."""
        self._at(time_s, "recover", node, node.recover)

    def _at(self, time_s: float, kind: str, node: MesherNode, action) -> None:
        if time_s < self._sim.now:
            raise ValueError(f"cannot schedule {kind} in the past ({time_s} < {self._sim.now})")
        self.events.append((time_s, kind, node.address))
        self._sim.schedule_at(time_s, action, label=f"{kind} {node.name}")


class RandomWaypoint:
    """Random-waypoint mobility for one node.

    The node picks a uniform destination in the area, moves towards it at
    ``speed_mps`` (position updated every ``step_s``), pauses, and
    repeats.  Movement updates the radio's position directly; link
    qualities follow on the next transmission.
    """

    def __init__(
        self,
        sim: Simulator,
        node: MesherNode,
        *,
        area: Tuple[float, float, float, float],  # min_x, min_y, max_x, max_y
        speed_mps: float = 1.4,
        pause_s: float = 30.0,
        step_s: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if speed_mps <= 0 or step_s <= 0:
            raise ValueError("speed and step must be positive")
        min_x, min_y, max_x, max_y = area
        if max_x <= min_x or max_y <= min_y:
            raise ValueError(f"degenerate area {area}")
        self._sim = sim
        self._node = node
        self._area = area
        self._speed = speed_mps
        self._pause = pause_s
        self._step = step_s
        self._rng = rng or random.Random(node.address)
        self._target: Optional[Position] = None
        self._running = False
        self.legs_completed = 0

    def start(self) -> None:
        """Begin moving."""
        if self._running:
            return
        self._running = True
        self._pick_target()
        self._sim.schedule(self._step, self._tick, label=f"move {self._node.name}")

    def stop(self) -> None:
        """Freeze the node where it stands."""
        self._running = False

    def _pick_target(self) -> None:
        min_x, min_y, max_x, max_y = self._area
        self._target = (self._rng.uniform(min_x, max_x), self._rng.uniform(min_y, max_y))

    def _tick(self) -> None:
        if not self._running or not self._node.radio.powered:
            return
        assert self._target is not None
        x, y = self._node.radio.position
        tx, ty = self._target
        dist = math.hypot(tx - x, ty - y)
        hop = self._speed * self._step
        if dist <= hop:
            self._node.radio.move_to(self._target)
            self.legs_completed += 1
            self._pick_target()
            self._sim.schedule(self._pause + self._step, self._tick, label=f"move {self._node.name}")
            return
        self._node.radio.move_to((x + hop * (tx - x) / dist, y + hop * (ty - y) / dist))
        self._sim.schedule(self._step, self._tick, label=f"move {self._node.name}")
