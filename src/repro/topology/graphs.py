"""Radio-connectivity analysis over placements.

Builds the "who can hear whom" graph a placement induces under a given
link budget, so experiments can assert properties (connected, diameter k)
of their topology before running the protocol on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.phy import batch as _batch
from repro.phy.link import LinkBudget
from repro.phy.modulation import LoRaParams
from repro.phy.pathloss import Position


def connectivity_graph(
    positions: Sequence[Position],
    link_budget: LinkBudget,
    params: LoRaParams,
) -> nx.Graph:
    """Undirected graph with an edge wherever both directions demodulate.

    Nodes are position indices; edges carry the ``snr_db`` of the link
    (the worse of the two directions, though the default models are
    reciprocal).

    Uses the vectorized batch engine when the channel model supports it
    (one (N×N) matrix instead of N² scalar evaluations); the result is
    bit-identical to the scalar loop either way.
    """
    graph = nx.Graph()
    n = len(positions)
    graph.add_nodes_from(range(n))
    if n > 1 and _batch.supports_batch(link_budget):
        np = _batch.np
        m = _batch.link_matrices(link_budget, positions, positions, params)
        both = m.above_sensitivity & m.above_sensitivity.T
        snr_worse = np.minimum(m.snr_db, m.snr_db.T)
        # Upper triangle in row-major order: the same (i, j), i < j
        # enumeration (and therefore edge insertion order) as the loop.
        ii, jj = np.nonzero(np.triu(both, k=1))
        for i, j in zip(ii.tolist(), jj.tolist()):
            graph.add_edge(i, j, snr_db=float(snr_worse[i, j]))
        return graph
    for i in range(n):
        for j in range(i + 1, n):
            forward = link_budget.evaluate(positions[i], positions[j], params)
            backward = link_budget.evaluate(positions[j], positions[i], params)
            if forward.above_sensitivity and backward.above_sensitivity:
                graph.add_edge(i, j, snr_db=min(forward.snr_db, backward.snr_db))
    return graph


def is_connected(
    positions: Sequence[Position], link_budget: LinkBudget, params: LoRaParams
) -> bool:
    """Whether the placement forms one connected radio component."""
    graph = connectivity_graph(positions, link_budget, params)
    return nx.is_connected(graph) if len(graph) > 0 else True


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a connectivity graph."""

    nodes: int
    edges: int
    connected: bool
    components: int
    diameter: int  # -1 when disconnected
    mean_degree: float


def graph_stats(graph: nx.Graph) -> GraphStats:
    """Summarise a connectivity graph for experiment logs."""
    n = graph.number_of_nodes()
    connected = nx.is_connected(graph) if n > 0 else True
    return GraphStats(
        nodes=n,
        edges=graph.number_of_edges(),
        connected=connected,
        components=nx.number_connected_components(graph) if n > 0 else 0,
        diameter=nx.diameter(graph) if connected and n > 1 else (-1 if not connected else 0),
        mean_degree=(2 * graph.number_of_edges() / n) if n else 0.0,
    )


def hop_distance(
    positions: Sequence[Position],
    link_budget: LinkBudget,
    params: LoRaParams,
    src_index: int,
    dst_index: int,
) -> int:
    """Shortest-path hop count between two placement indices (-1 if
    unreachable) — the oracle the baselines and assertions compare to."""
    graph = connectivity_graph(positions, link_budget, params)
    try:
        return nx.shortest_path_length(graph, src_index, dst_index)
    except nx.NetworkXNoPath:
        return -1
