"""The data plane: deciding what to do with each received via-packet.

Every non-ROUTING packet carries a ``via`` field naming the next hop.
When a node receives one it classifies the frame:

* ``DELIVER``  — the node is the final destination (or it's a broadcast),
* ``FORWARD``  — the node is the named via but not the destination: look
  up the next hop towards ``dst``, rewrite ``via``, and re-enqueue,
* ``OVERHEAR`` — the frame is for someone else; the only action is the
  implicit neighbour refresh (hearing proves the link),
* ``NO_ROUTE`` — the node should forward but has no route; the frame is
  dropped (and counted — the paper's DV protocol has no route discovery
  on demand, routes exist only via hellos).

The classification is pure (no side effects), so it is directly
property-testable; the mesher applies the resulting action.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.net.addresses import BROADCAST_ADDRESS
from repro.net.packets import (
    AckPacket,
    DataPacket,
    LostPacket,
    NeedAckPacket,
    SyncPacket,
    ViaPacket,
    XLDataPacket,
)
from repro.net.routing_table import RoutingTable


class ForwardAction(enum.Enum):
    """What the data plane decided for a received packet."""

    DELIVER = "deliver"
    FORWARD = "forward"
    OVERHEAR = "overhear"
    NO_ROUTE = "no_route"


@dataclass(frozen=True)
class ForwardDecision:
    """The action plus, for FORWARD, the rewritten packet to enqueue."""

    action: ForwardAction
    outgoing: Optional[ViaPacket] = None
    next_hop: Optional[int] = None
    #: Diagnostic: the chosen next hop is the node the frame just came
    #: from — a transient two-node ping-pong that only occurs while
    #: neighbouring tables disagree during convergence.  The frame is
    #: still forwarded (matching the firmware, which has no previous-hop
    #: knowledge); the flag feeds a dedicated metric and the invariant
    #: checker so persistent ping-pong is caught as a routing loop.
    ping_pong: bool = False


def classify(
    packet: ViaPacket,
    self_address: int,
    table: RoutingTable,
    *,
    previous_hop: Optional[int] = None,
) -> ForwardDecision:
    """Classify a received via-packet for ``self_address``.

    Broadcast data is always delivered locally and never re-forwarded
    (LoRaMesher broadcasts are single-hop by design — mesh-wide floods
    are an application concern, cf. the flooding baseline).

    ``previous_hop`` is the simulator-side identity of the transmitter
    that handed us the frame (unknown to real hardware).  It never
    changes the decision; it only marks the transient ping-pong case on
    the returned decision for observability.
    """
    if packet.dst == BROADCAST_ADDRESS:
        return ForwardDecision(action=ForwardAction.DELIVER)
    if packet.dst == self_address:
        return ForwardDecision(action=ForwardAction.DELIVER)
    if packet.via != self_address:
        return ForwardDecision(action=ForwardAction.OVERHEAR)

    next_hop = table.next_hop(packet.dst)
    if next_hop is None:
        return ForwardDecision(action=ForwardAction.NO_ROUTE)
    outgoing = rewrite_via(packet, next_hop)
    return ForwardDecision(
        action=ForwardAction.FORWARD,
        outgoing=outgoing,
        next_hop=next_hop,
        ping_pong=previous_hop is not None and next_hop == previous_hop,
    )


def rewrite_via(packet: ViaPacket, next_hop: int) -> ViaPacket:
    """A copy of ``packet`` with the via field set to ``next_hop``.

    Source and destination are untouched — the mesh forwards end-to-end
    packets, it does not re-originate them.
    """
    if isinstance(
        packet, (DataPacket, NeedAckPacket, AckPacket, LostPacket, SyncPacket, XLDataPacket)
    ):
        return replace(packet, via=next_hop)
    raise TypeError(f"cannot rewrite via on {type(packet).__name__}")


def initial_via(dst: int, self_address: int, table: RoutingTable) -> Optional[int]:
    """The via for a locally originated packet towards ``dst``.

    Broadcast maps to the broadcast via.  Returns None when the
    destination is not in the routing table.
    """
    if dst == BROADCAST_ADDRESS:
        return BROADCAST_ADDRESS
    if dst == self_address:
        raise ValueError("refusing to route a packet to self")
    return table.next_hop(dst)
