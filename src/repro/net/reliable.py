"""Reliable transport: single ACKed packets and large-payload streams.

LoRaMesher offers two reliable primitives on top of the routed mesh:

* **NEED_ACK** — a single packet the receiver must acknowledge; the
  sender retransmits on timeout up to ``max_retries``.
* **Large-payload streams** — payloads bigger than one frame are split
  into ``fragment_size`` pieces.  The sender opens the stream with a
  SYNC (fragment count + total bytes), then emits XL_DATA fragments
  paced ``fragment_spacing_s`` apart.  The receiver reassembles; when its
  gap timer fires with fragments missing it sends a LOST naming the first
  missing index, and the sender retransmits exactly that fragment.  A
  final ACK closes the stream.

Everything here is a state machine over the shared kernel: no threads,
no blocking — the mesher feeds received control packets in and pulls
outgoing packets through the ``enqueue`` callable.
"""

from __future__ import annotations

import hashlib
import logging
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.config import MesherConfig
from repro.net.packets import (
    AckPacket,
    LostPacket,
    NeedAckPacket,
    SyncPacket,
    ViaPacket,
    XLDataPacket,
)
from repro.sim.kernel import EventHandle, Simulator
from repro.trace.events import EventKind, TraceRecorder

logger = logging.getLogger(__name__)

#: Completion callback: (success, detail-string).
CompletionFn = Callable[[bool, str], None]
#: Hands a packet to the mesher's send queue; returns False on overflow.
EnqueueFn = Callable[[ViaPacket], bool]
#: Resolves the current next hop towards an address (None = no route).
RouteFn = Callable[[int], Optional[int]]
#: Delivers an assembled payload to the application layer.
DeliverFn = Callable[[int, bytes], None]


def split_payload(payload: bytes, fragment_size: int) -> List[bytes]:
    """Split ``payload`` into fragments of at most ``fragment_size``."""
    if fragment_size <= 0:
        raise ValueError("fragment_size must be positive")
    if not payload:
        return [b""]
    return [payload[i : i + fragment_size] for i in range(0, len(payload), fragment_size)]


class RttEstimator:
    """Per-destination round-trip estimator (RFC 6298 style).

    ``observe`` feeds one clean ACK round-trip (Karn's rule: retransmitted
    attempts are never sampled — the ACK could match either copy); ``rto``
    is the classic ``SRTT + 4·RTTVAR``.  Clamping to the configured
    cold-start timeout happens at the call site so the estimator itself
    stays policy-free.
    """

    __slots__ = ("srtt", "rttvar", "samples")

    ALPHA = 0.125
    BETA = 0.25

    def __init__(self) -> None:
        self.srtt = 0.0
        self.rttvar = 0.0
        self.samples = 0

    def observe(self, sample_s: float) -> None:
        if sample_s < 0:
            return
        if self.samples == 0:
            self.srtt = sample_s
            self.rttvar = sample_s / 2.0
        else:
            self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * abs(self.srtt - sample_s)
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * sample_s
        self.samples += 1

    def rto(self) -> float:
        return self.srtt + 4.0 * self.rttvar


@dataclass
class _OutboundSingle:
    """State of one in-flight NEED_ACK packet."""

    dst: int
    seq_id: int
    payload: bytes
    on_complete: Optional[CompletionFn]
    retries: int = 0
    #: Local failures (no route / TX queue full) since the send started;
    #: charged against ``max_local_defers``, never ``max_retries``.
    local_defers: int = 0
    #: Whether the most recent attempt actually reached the send queue.
    airborne: bool = False
    first_tx_at: Optional[float] = None
    retransmitted: bool = False
    timer: Optional[EventHandle] = None


@dataclass
class _OutboundStream:
    """Sender-side state of one large-payload stream."""

    dst: int
    seq_id: int
    fragments: List[bytes]
    total_bytes: int
    on_complete: Optional[CompletionFn]
    next_index: int = 0  # next fresh fragment to send
    retries: int = 0
    local_defers: int = 0
    pace_timer: Optional[EventHandle] = None
    ack_timer: Optional[EventHandle] = None
    retransmit_queue: List[int] = field(default_factory=list)

    @property
    def all_sent(self) -> bool:
        return self.next_index >= len(self.fragments) and not self.retransmit_queue


@dataclass
class _InboundStream:
    """Receiver-side state of one large-payload stream."""

    src: int
    seq_id: int
    total_fragments: int
    total_bytes: int
    fragments: Dict[int, bytes] = field(default_factory=dict)
    gap_timer: Optional[EventHandle] = None
    losts_sent: int = 0
    losts_since_progress: int = 0

    @property
    def complete(self) -> bool:
        return len(self.fragments) >= self.total_fragments

    def first_missing(self) -> Optional[int]:
        for index in range(self.total_fragments):
            if index not in self.fragments:
                return index
        return None

    def assemble(self) -> bytes:
        return b"".join(self.fragments[i] for i in range(self.total_fragments))


class ReliableTransport:
    """The per-node reliable-delivery engine."""

    #: How long a (src, seq_id) stays in the duplicate-suppression cache.
    DEDUP_WINDOW_S = 600.0
    #: Missing fragments reported per receiver gap timeout.
    MAX_LOSTS_PER_GAP = 4
    #: Floor for the adaptive RTO: even a one-hop SF7 exchange with a
    #: tiny measured RTT must leave room for CSMA backoff and forwarding.
    MIN_RTO_S = 1.0
    #: Ceiling on the backoff exponent (2**32 of any base already dwarfs
    #: every cap; this just keeps the float arithmetic sane).
    MAX_BACKOFF_EXP = 32

    def __init__(
        self,
        sim: Simulator,
        address: int,
        config: MesherConfig,
        enqueue: EnqueueFn,
        route_via: RouteFn,
        deliver: DeliverFn,
        *,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self._sim = sim
        self._address = address
        self._config = config
        self._enqueue = enqueue
        self._route_via = route_via
        self._deliver = deliver
        self._trace = trace
        self._seq_counter = 0
        self._singles: Dict[int, _OutboundSingle] = {}  # seq_id -> state
        self._streams: Dict[int, _OutboundStream] = {}  # seq_id -> state
        self._inbound: Dict[Tuple[int, int], _InboundStream] = {}
        self._seen_singles: Dict[Tuple[int, int], float] = {}  # (src, seq) -> time
        #: Recently completed inbound streams: (src, seq) -> (time, total
        #: fragments).  Lets the receiver re-ACK duplicates after its ACK
        #: was lost instead of treating retransmissions as a new stream.
        self._completed_inbound: Dict[Tuple[int, int], Tuple[float, int]] = {}

        #: Observer tap (see repro.verify): ``(src, seq_id, kind)`` on
        #: every reliable delivery to the application, with kind in
        #: {"single", "stream"}.  The invariant checker uses it to assert
        #: exactly-once delivery per (receiver, src, seq).
        self.on_deliver: Optional[Callable[[int, int, str], None]] = None

        #: Per-destination SRTT/RTTVAR estimators feeding the adaptive
        #: retransmit timer (config.adaptive_rto).
        self._rtt: Dict[int, RttEstimator] = {}

        # Counters
        self.streams_started = 0
        self.streams_completed = 0
        self.streams_failed = 0
        self.singles_sent = 0
        self.singles_completed = 0
        self.singles_failed = 0
        self.fragments_sent = 0
        self.retransmissions = 0
        self.local_defers = 0
        self.rtt_samples = 0
        self.losts_sent = 0
        self.acks_sent = 0
        self.duplicates_suppressed = 0

    # ==================================================================
    # Retransmit timer policy
    # ==================================================================
    def rto_s(self, dst: int) -> float:
        """Current base retransmit timeout towards ``dst`` (seconds)."""
        cfg = self._config
        if cfg.adaptive_rto:
            est = self._rtt.get(dst)
            if est is not None and est.samples:
                # Adaptive between the floor and the configured cold-start
                # timeout: measured paths retransmit sooner, never later.
                return min(max(est.rto(), self.MIN_RTO_S), cfg.ack_timeout_s)
        return cfg.ack_timeout_s

    def srtt_s(self, dst: int) -> Optional[float]:
        """Smoothed RTT towards ``dst``, or None before the first sample."""
        est = self._rtt.get(dst)
        return est.srtt if est is not None and est.samples else None

    def observe_rtt(self, dst: int, sample_s: float) -> None:
        """Feed one clean ACK round-trip into the per-destination estimator."""
        est = self._rtt.get(dst)
        if est is None:
            est = self._rtt[dst] = RttEstimator()
        est.observe(sample_s)
        self.rtt_samples += 1

    def _retry_timeout_s(self, dst: int, attempt: int, token: str) -> float:
        """Wait before the next retransmission check.

        ``attempt`` is the number of on-air retries already consumed:
        exponential in ``retry_backoff_base`` (capped), with deterministic
        hash-derived jitter.  With backoff base 1.0, zero jitter, and
        ``adaptive_rto=False`` this returns exactly ``ack_timeout_s`` —
        the historical fixed-interval schedule, bit for bit.
        """
        cfg = self._config
        timeout = self.rto_s(dst)
        if cfg.retry_backoff_base > 1.0 and attempt > 0:
            grown = timeout * cfg.retry_backoff_base ** min(attempt, self.MAX_BACKOFF_EXP)
            timeout = min(grown, max(cfg.retry_backoff_cap_s, timeout))
        if cfg.retry_jitter_fraction > 0.0:
            timeout *= 1.0 + cfg.retry_jitter_fraction * (2.0 * self._jitter_unit(token) - 1.0)
        return timeout

    def _defer_timeout_s(self, token: str) -> float:
        """Wait before re-checking a locally failed attempt.

        Local failures (no route, TX queue full) are not congestion
        signals, so they never back off — but recovery takes a hello
        cycle, so re-checks run on the configured (not adaptive) timeout,
        jittered to desynchronise route-recovery stampedes.
        """
        cfg = self._config
        timeout = cfg.ack_timeout_s
        if cfg.retry_jitter_fraction > 0.0:
            timeout *= 1.0 + cfg.retry_jitter_fraction * (2.0 * self._jitter_unit(token) - 1.0)
        return timeout

    def _jitter_unit(self, token: str) -> float:
        """Deterministic uniform [0, 1) from (node address, token).

        A hash draw rather than a shared RNG stream: the jitter of one
        retry can never shift any other subsystem's random sequence, so
        runs stay replayable and the disabled path stays untouched.
        """
        digest = hashlib.sha256(f"{self._address:#06x}|{token}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    # ==================================================================
    # Sending
    # ==================================================================
    def send(self, dst: int, payload: bytes, on_complete: Optional[CompletionFn] = None) -> int:
        """Reliably deliver ``payload`` to ``dst``; returns the seq_id.

        Payloads that fit one frame use the NEED_ACK path; larger ones
        open a fragment stream.  ``on_complete(success, detail)`` fires
        exactly once.
        """
        seq_id = self._next_seq()
        if len(payload) <= self._config.fragment_size:
            self._start_single(dst, seq_id, payload, on_complete)
        else:
            self._start_stream(dst, seq_id, payload, on_complete)
        return seq_id

    def _next_seq(self) -> int:
        # Skip ids still in flight so a slow stream is never aliased.
        for _ in range(256):
            seq = self._seq_counter
            self._seq_counter = (self._seq_counter + 1) % 256
            if seq not in self._singles and seq not in self._streams:
                return seq
        raise RuntimeError("all 256 reliable sequence ids are in flight")

    # ------------------------------------------------------------------
    # NEED_ACK path
    # ------------------------------------------------------------------
    def _start_single(
        self, dst: int, seq_id: int, payload: bytes, on_complete: Optional[CompletionFn]
    ) -> None:
        state = _OutboundSingle(dst=dst, seq_id=seq_id, payload=payload, on_complete=on_complete)
        self._singles[seq_id] = state
        self.singles_sent += 1
        self._transmit_single(state)

    def _transmit_single(self, state: _OutboundSingle) -> None:
        via = self._route_via(state.dst)
        if via is None or not self._enqueue(
            NeedAckPacket(
                dst=state.dst,
                src=self._address,
                via=via if via is not None else 0xFFFF,
                seq_id=state.seq_id,
                number=0,
                payload=state.payload,
            )
        ):
            # No route or queue full: the frame never aired.  Re-check on
            # the timer, but charge the local-defer budget, not the on-air
            # retry budget (see _single_timeout).
            state.airborne = False
            self._arm_single_timer(state)
            return
        state.airborne = True
        if state.first_tx_at is None:
            state.first_tx_at = self._sim.now
        self._arm_single_timer(state)

    def _arm_single_timer(self, state: _OutboundSingle) -> None:
        if state.timer is not None:
            state.timer.cancel()
        token = f"single|{state.seq_id}|{state.retries}|{state.local_defers}"
        if state.airborne:
            timeout = self._retry_timeout_s(state.dst, state.retries, token)
        else:
            timeout = self._defer_timeout_s(token)
        state.timer = self._sim.schedule(
            timeout,
            lambda: self._single_timeout(state),
            label=f"needack#{state.seq_id} timeout",
        )

    def _single_timeout(self, state: _OutboundSingle) -> None:
        if state.seq_id not in self._singles:
            return
        if state.airborne:
            state.retries += 1
            state.retransmitted = True
            if state.retries > self._config.max_retries:
                del self._singles[state.seq_id]
                self.singles_failed += 1
                self._record(EventKind.STREAM_FAILED, seq_id=state.seq_id, dst=state.dst, variant="single")
                self._complete(state.on_complete, False, "ack timeout")
                return
            self.retransmissions += 1
            self._record(
                EventKind.FRAGMENT_RETRANSMITTED, seq_id=state.seq_id, dst=state.dst, variant="single"
            )
        else:
            # The last attempt failed locally — nothing aired, so nothing
            # was lost on air.  Separate budget: a transient queue spike
            # must not burn max_retries without a single transmission.
            state.local_defers += 1
            self.local_defers += 1
            if state.local_defers > self._config.max_local_defers:
                del self._singles[state.seq_id]
                self.singles_failed += 1
                self._record(EventKind.STREAM_FAILED, seq_id=state.seq_id, dst=state.dst, variant="single")
                self._complete(state.on_complete, False, "no route")
                return
        self._transmit_single(state)

    # ------------------------------------------------------------------
    # Stream path
    # ------------------------------------------------------------------
    def _start_stream(
        self, dst: int, seq_id: int, payload: bytes, on_complete: Optional[CompletionFn]
    ) -> None:
        fragments = split_payload(payload, self._config.fragment_size)
        if len(fragments) > 0xFFFF:
            raise ValueError(
                f"payload needs {len(fragments)} fragments; the wire format caps at 65535"
            )
        state = _OutboundStream(
            dst=dst,
            seq_id=seq_id,
            fragments=fragments,
            total_bytes=len(payload),
            on_complete=on_complete,
        )
        self._streams[seq_id] = state
        self.streams_started += 1
        self._record(
            EventKind.STREAM_STARTED,
            seq_id=seq_id,
            dst=dst,
            fragments=len(fragments),
            bytes=len(payload),
        )
        self._send_sync(state)
        self._arm_pace_timer(state)

    def _send_sync(self, state: _OutboundStream) -> None:
        via = self._route_via(state.dst)
        if via is None:
            return  # the ack timer / pacing path will retry
        self._enqueue(
            SyncPacket(
                dst=state.dst,
                src=self._address,
                via=via,
                seq_id=state.seq_id,
                number=len(state.fragments),
                total_bytes=state.total_bytes,
            )
        )

    def _arm_pace_timer(self, state: _OutboundStream, delay_s: Optional[float] = None) -> None:
        if state.pace_timer is not None:
            state.pace_timer.cancel()
        state.pace_timer = self._sim.schedule(
            self._config.fragment_spacing_s if delay_s is None else delay_s,
            lambda: self._pace_tick(state),
            label=f"stream#{state.seq_id} pace",
        )

    def _pace_tick(self, state: _OutboundStream) -> None:
        if state.seq_id not in self._streams:
            return
        state.pace_timer = None
        index: Optional[int] = None
        if state.retransmit_queue:
            index = state.retransmit_queue.pop(0)
        elif state.next_index < len(state.fragments):
            index = state.next_index
            state.next_index += 1
        if index is not None:
            aired = self._send_fragment(state, index)
            if state.seq_id not in self._streams:
                return  # the local-defer budget ran out; stream failed
            if not aired:
                # Locally deferred: re-check on the defer cadence, not the
                # fragment pacing cadence — burning one defer per pace
                # tick would exhaust the budget in seconds.
                self._arm_pace_timer(
                    state,
                    delay_s=max(
                        self._config.fragment_spacing_s,
                        self._defer_timeout_s(
                            f"streamdefer|{state.seq_id}|{state.retries}|{state.local_defers}"
                        ),
                    ),
                )
                return
        if state.all_sent:
            self._arm_ack_timer(state)
        else:
            self._arm_pace_timer(state)

    def _send_fragment(self, state: _OutboundStream, index: int) -> bool:
        """Try to queue fragment ``index``; returns True if it aired."""
        via = self._route_via(state.dst)
        if via is None:
            # Route vanished mid-stream: re-queue and defer locally —
            # nothing aired, so the on-air retry budget is untouched.
            state.retransmit_queue.insert(0, index)
            self._register_stream_retry(state, "no route", local=True)
            return False
        if not self._enqueue(
            XLDataPacket(
                dst=state.dst,
                src=self._address,
                via=via,
                seq_id=state.seq_id,
                number=index,
                payload=state.fragments[index],
            )
        ):
            # TX queue full: the fragment was silently dropped before the
            # air.  Re-queue it instead of relying on the receiver's gap
            # chase to notice, and charge the local-defer budget.
            state.retransmit_queue.insert(0, index)
            self._register_stream_retry(state, "tx queue full", local=True)
            return False
        self.fragments_sent += 1
        self._record(EventKind.FRAGMENT_SENT, seq_id=state.seq_id, index=index, dst=state.dst)
        return True

    def _arm_ack_timer(self, state: _OutboundStream) -> None:
        if state.ack_timer is not None:
            state.ack_timer.cancel()
        state.ack_timer = self._sim.schedule(
            self._retry_timeout_s(
                state.dst,
                state.retries,
                f"stream|{state.seq_id}|{state.retries}|{state.local_defers}",
            ),
            lambda: self._stream_ack_timeout(state),
            label=f"stream#{state.seq_id} acktimer",
        )

    def _stream_ack_timeout(self, state: _OutboundStream) -> None:
        if state.seq_id not in self._streams:
            return
        state.ack_timer = None
        # Re-send the SYNC (it may never have arrived — without it the
        # receiver has no reassembly state at all) and nudge with the last
        # fragment; the receiver answers with LOST or ACK.
        self._send_sync(state)
        last = len(state.fragments) - 1
        if last not in state.retransmit_queue:
            state.retransmit_queue.append(last)
        self._register_stream_retry(state, "ack timeout")

    def _register_stream_retry(
        self, state: _OutboundStream, reason: str, *, local: bool = False
    ) -> None:
        if local:
            # The frame never aired (no route / TX queue full): charge the
            # local-defer budget — the on-air retry budget is reserved for
            # losses the receiver could have seen.  The caller (_pace_tick)
            # owns the re-check cadence.
            state.local_defers += 1
            self.local_defers += 1
            if state.local_defers > self._config.max_local_defers:
                self._fail_stream(state, reason)
            return
        else:
            state.retries += 1
            if state.retries > self._config.max_retries:
                self._fail_stream(state, reason)
                return
            self.retransmissions += 1
            self._record(
                EventKind.FRAGMENT_RETRANSMITTED, seq_id=state.seq_id, dst=state.dst, reason=reason
            )
        if state.pace_timer is None:
            self._arm_pace_timer(state)

    def _fail_stream(self, state: _OutboundStream, reason: str) -> None:
        self._cancel_stream_timers(state)
        del self._streams[state.seq_id]
        self.streams_failed += 1
        self._record(EventKind.STREAM_FAILED, seq_id=state.seq_id, dst=state.dst, reason=reason)
        self._complete(state.on_complete, False, reason)

    def _cancel_stream_timers(self, state: _OutboundStream) -> None:
        if state.pace_timer is not None:
            state.pace_timer.cancel()
            state.pace_timer = None
        if state.ack_timer is not None:
            state.ack_timer.cancel()
            state.ack_timer = None

    # ==================================================================
    # Receiving (called by the mesher for packets addressed to this node)
    # ==================================================================
    def handle_need_ack(self, packet: NeedAckPacket) -> None:
        """Deliver a reliable single packet and acknowledge it."""
        key = (packet.src, packet.seq_id)
        now = self._sim.now
        self._prune_dedup(now)
        duplicate = key in self._seen_singles
        self._seen_singles[key] = now
        self._send_ack(packet.src, packet.seq_id, number=0)
        if duplicate:
            self.duplicates_suppressed += 1
            return
        if self.on_deliver is not None:
            self.on_deliver(packet.src, packet.seq_id, "single")
        self._deliver(packet.src, packet.payload)

    def handle_sync(self, packet: SyncPacket) -> None:
        """Open (or refresh) an inbound stream."""
        key = (packet.src, packet.seq_id)
        self._prune_dedup(self._sim.now)
        completed = self._completed_inbound.get(key)
        if completed is not None:
            # The stream already finished but our ACK was lost: re-ACK.
            self._send_ack(packet.src, packet.seq_id, number=completed[1])
            return
        if key in self._inbound:
            return  # duplicate SYNC (retransmission); state already exists
        if packet.number == 0:
            # Zero-fragment stream: degenerate but well-formed; ACK at
            # once.  Record it as completed so a retransmitted SYNC (our
            # ACK was lost) is re-ACKed instead of delivered again —
            # without this the empty payload arrives once per SYNC retry.
            self._completed_inbound[key] = (self._sim.now, 0)
            self._send_ack(packet.src, packet.seq_id, number=0)
            if self.on_deliver is not None:
                self.on_deliver(packet.src, packet.seq_id, "stream")
            self._deliver(packet.src, b"")
            return
        if len(self._inbound) >= self._config.max_inbound_streams:
            logger.warning(
                "node %#06x: inbound stream table full, ignoring SYNC from %#06x",
                self._address,
                packet.src,
            )
            return
        stream = _InboundStream(
            src=packet.src,
            seq_id=packet.seq_id,
            total_fragments=packet.number,
            total_bytes=packet.total_bytes,
        )
        self._inbound[key] = stream
        self._arm_gap_timer(stream)

    def handle_xl_data(self, packet: XLDataPacket) -> None:
        """Store one fragment; complete or chase gaps as appropriate."""
        key = (packet.src, packet.seq_id)
        completed = self._completed_inbound.get(key)
        if completed is not None:
            # Late duplicate of a finished stream (our ACK was lost): the
            # right answer is another ACK, never a LOST — reporting a loss
            # here would livelock the sender into retransmitting forever.
            self._send_ack(packet.src, packet.seq_id, number=completed[1])
            return
        stream = self._inbound.get(key)
        if stream is None:
            # Fragment without SYNC (the SYNC frame was lost): store
            # nothing (the total is unknown), but wake the sender's repair
            # path — it re-sends the SYNC on its ack timeout.
            return
        if packet.number >= stream.total_fragments:
            logger.warning(
                "node %#06x: fragment index %d out of range for stream %s",
                self._address,
                packet.number,
                key,
            )
            return
        if packet.number not in stream.fragments:
            stream.fragments[packet.number] = packet.payload
            stream.losts_since_progress = 0
        if stream.complete:
            self._finish_inbound(stream)
        else:
            self._arm_gap_timer(stream)

    def handle_ack(self, packet: AckPacket) -> None:
        """Sender side: a single or stream was fully received."""
        single = self._singles.pop(packet.seq_id, None)
        if single is not None:
            if single.timer is not None:
                single.timer.cancel()
            if not single.retransmitted and single.first_tx_at is not None:
                # Karn's rule: only un-retransmitted exchanges yield an
                # unambiguous round-trip sample.
                self.observe_rtt(single.dst, self._sim.now - single.first_tx_at)
            self.singles_completed += 1
            self._complete(single.on_complete, True, "acked")
            return
        stream = self._streams.pop(packet.seq_id, None)
        if stream is not None:
            self._cancel_stream_timers(stream)
            self.streams_completed += 1
            self._record(
                EventKind.STREAM_COMPLETED,
                seq_id=stream.seq_id,
                dst=stream.dst,
                retries=stream.retries,
            )
            self._complete(stream.on_complete, True, "acked")

    def handle_lost(self, packet: LostPacket) -> None:
        """Sender side: the receiver is missing fragment ``number``."""
        stream = self._streams.get(packet.seq_id)
        if stream is None:
            return  # stale LOST for a finished/failed stream
        if packet.number >= len(stream.fragments):
            return
        # A LOST proves the receiver is alive and reassembling: the repair
        # conversation is making progress, so the give-up budget resets.
        stream.retries = 0
        if packet.number not in stream.retransmit_queue:
            stream.retransmit_queue.insert(0, packet.number)
        self.retransmissions += 1
        self._record(
            EventKind.FRAGMENT_RETRANSMITTED,
            seq_id=stream.seq_id,
            index=packet.number,
            reason="lost report",
        )
        if stream.ack_timer is not None:
            stream.ack_timer.cancel()
            stream.ack_timer = None
        if stream.pace_timer is None:
            self._arm_pace_timer(stream)

    # ------------------------------------------------------------------
    # Inbound helpers
    # ------------------------------------------------------------------
    def _finish_inbound(self, stream: _InboundStream) -> None:
        if stream.gap_timer is not None:
            stream.gap_timer.cancel()
            stream.gap_timer = None
        del self._inbound[(stream.src, stream.seq_id)]
        self._completed_inbound[(stream.src, stream.seq_id)] = (
            self._sim.now,
            stream.total_fragments,
        )
        payload = stream.assemble()
        if stream.total_bytes and len(payload) != stream.total_bytes:
            logger.warning(
                "node %#06x: stream %d from %#06x reassembled to %d B, SYNC said %d B",
                self._address,
                stream.seq_id,
                stream.src,
                len(payload),
                stream.total_bytes,
            )
        self._send_ack(stream.src, stream.seq_id, number=stream.total_fragments)
        if self.on_deliver is not None:
            self.on_deliver(stream.src, stream.seq_id, "stream")
        self._deliver(stream.src, payload)

    def _arm_gap_timer(self, stream: _InboundStream) -> None:
        if stream.gap_timer is not None:
            stream.gap_timer.cancel()
        stream.gap_timer = self._sim.schedule(
            self._config.gap_timeout_s,
            lambda: self._gap_timeout(stream),
            label=f"stream({stream.src:#06x},{stream.seq_id}) gap",
        )

    def _gap_timeout(self, stream: _InboundStream) -> None:
        key = (stream.src, stream.seq_id)
        if key not in self._inbound:
            return
        stream.gap_timer = None
        stream.losts_since_progress += 1
        if stream.losts_since_progress > self._config.max_retries:
            # Sender is gone; abandon reassembly.
            del self._inbound[key]
            self._record(
                EventKind.STREAM_FAILED, seq_id=stream.seq_id, src=stream.src, reason="receiver gave up"
            )
            return
        # Chase up to a handful of gaps per timeout: one LOST per missing
        # fragment is cheap (11 B frames) and repairing serially at one
        # fragment per gap period would make lossy multi-hop streams crawl.
        reported = 0
        for index in range(stream.total_fragments):
            if index not in stream.fragments:
                self._send_lost(stream.src, stream.seq_id, number=index)
                reported += 1
                if reported >= self.MAX_LOSTS_PER_GAP:
                    break
        self._arm_gap_timer(stream)

    def _send_ack(self, dst: int, seq_id: int, *, number: int) -> None:
        via = self._route_via(dst)
        if via is None:
            return
        self._enqueue(
            AckPacket(dst=dst, src=self._address, via=via, seq_id=seq_id, number=number)
        )
        self.acks_sent += 1
        self._record(EventKind.ACK_SENT, seq_id=seq_id, dst=dst)

    def _send_lost(self, dst: int, seq_id: int, *, number: int) -> None:
        via = self._route_via(dst)
        if via is None:
            return
        self._enqueue(
            LostPacket(dst=dst, src=self._address, via=via, seq_id=seq_id, number=number)
        )
        self.losts_sent += 1
        self._record(EventKind.LOST_SENT, seq_id=seq_id, dst=dst, index=number)

    def _prune_dedup(self, now: float) -> None:
        horizon = now - self.DEDUP_WINDOW_S
        stale = [k for k, t in self._seen_singles.items() if t < horizon]
        for key in stale:
            del self._seen_singles[key]
        stale_streams = [
            k for k, (t, _n) in self._completed_inbound.items() if t < horizon
        ]
        for key in stale_streams:
            del self._completed_inbound[key]

    # ------------------------------------------------------------------
    @property
    def active_outbound(self) -> int:
        """In-flight outbound singles + streams (diagnostic)."""
        return len(self._singles) + len(self._streams)

    @property
    def active_inbound(self) -> int:
        """In-flight inbound reassemblies (diagnostic)."""
        return len(self._inbound)

    def _complete(self, callback: Optional[CompletionFn], ok: bool, detail: str) -> None:
        if callback is not None:
            callback(ok, detail)

    def _record(self, kind: EventKind, **detail) -> None:
        if self._trace is not None:
            self._trace.record(self._sim.now, self._address, kind, **detail)
