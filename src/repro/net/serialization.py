"""Byte-exact packet encode/decode.

Every packet travels the simulated air as the same bytes the firmware
would emit, so airtime computations and fragmentation limits are faithful.
Decoding is strict: a malformed buffer raises :class:`DecodeError`, which
the packet service treats like a CRC failure (drop and count).
"""

from __future__ import annotations

import itertools
import struct
from typing import Tuple

from repro.net import packets as pk
from repro.net.packets import (
    AckPacket,
    DataPacket,
    LostPacket,
    NeedAckPacket,
    Packet,
    PacketType,
    RoutingEntry,
    RoutingPacket,
    SyncPacket,
    XLDataPacket,
)

_HEADER = struct.Struct("<HHBB")  # dst, src, type, payload_len
_ROUTE_ENTRY = struct.Struct("<HBB")  # address, metric, role
_VIA = struct.Struct("<H")
_CONTROL = struct.Struct("<HBH")  # via, seq_id, number
_SYNC_TAIL = struct.Struct("<I")  # total_bytes

assert _HEADER.size == pk.HEADER_SIZE
assert _ROUTE_ENTRY.size == pk.ROUTING_ENTRY_SIZE
assert _CONTROL.size == pk.CONTROL_SIZE

if pk.HAVE_NUMPY:
    import numpy as _np

    #: Structured view of the ROUTING payload: itemsize 4, matching
    #: ``_ROUTE_ENTRY`` byte for byte (asserted by the codec tests).
    _ROUTE_WIRE_DTYPE = _np.dtype([("address", "<u2"), ("metric", "u1"), ("role", "u1")])
    assert _ROUTE_WIRE_DTYPE.itemsize == pk.ROUTING_ENTRY_SIZE

#: Row count from which the vectorized ROUTING decode beats the struct
#: iter_unpack loop (numpy fixed costs dominate below it).
_VECTOR_DECODE_MIN_ROWS = 16


class DecodeError(Exception):
    """Raised for any buffer that is not a well-formed packet."""


#: Identity-keyed encode memo.  Packet dataclasses are all frozen, so a
#: given object always serializes to the same bytes; the hello service
#: re-enqueues the *same* RoutingPacket objects while the table is
#: unchanged, making repeated encodes free.  Each value pins the packet
#: so its id() cannot be recycled while the entry lives.
_ENCODE_CACHE: dict = {}
_ENCODE_CACHE_MAX = 65_536


def _evict_oldest_half(cache: dict) -> None:
    """Drop the least recently inserted half of a codec cache.

    A wholesale clear made a large network (every node beaconing a
    multi-frame table) rebuild the whole working set right after each
    overflow; keeping the newer half keeps the hot entries resident.
    """
    for key in list(itertools.islice(iter(cache), len(cache) // 2)):
        del cache[key]


def encode(packet: Packet) -> bytes:
    """Serialize a packet to its over-the-air bytes."""
    hit = _ENCODE_CACHE.get(id(packet))
    if hit is not None and hit[0] is packet:
        return hit[1]
    buffer = _encode(packet)
    if len(_ENCODE_CACHE) >= _ENCODE_CACHE_MAX:
        _evict_oldest_half(_ENCODE_CACHE)
    _ENCODE_CACHE[id(packet)] = (packet, buffer)
    return buffer


def _encode(packet: Packet) -> bytes:
    if isinstance(packet, RoutingPacket):
        body = b"".join(
            _ROUTE_ENTRY.pack(e.address, e.metric, e.role) for e in packet.entries
        )
    elif isinstance(packet, DataPacket):
        body = _VIA.pack(packet.via) + packet.payload
    elif isinstance(packet, NeedAckPacket):
        body = _CONTROL.pack(packet.via, packet.seq_id, packet.number) + packet.payload
    elif isinstance(packet, (AckPacket, LostPacket)):
        body = _CONTROL.pack(packet.via, packet.seq_id, packet.number)
    elif isinstance(packet, SyncPacket):
        body = _CONTROL.pack(packet.via, packet.seq_id, packet.number) + _SYNC_TAIL.pack(
            packet.total_bytes
        )
    elif isinstance(packet, XLDataPacket):
        body = _CONTROL.pack(packet.via, packet.seq_id, packet.number) + packet.payload
    else:
        raise TypeError(f"cannot encode {type(packet).__name__}")

    if len(body) > 0xFF:
        raise ValueError(f"packet body {len(body)} B exceeds the u8 length field")
    frame = _HEADER.pack(packet.dst, packet.src, int(packet.type), len(body)) + body
    if len(frame) > pk.MAX_PHY_PAYLOAD:
        raise ValueError(f"encoded frame {len(frame)} B exceeds the 255 B PHY limit")
    return frame


def prime_encode(packet: Packet, body: bytes) -> None:
    """Seed the encode memo for a packet whose body bytes the caller
    already holds.

    The columnar routing store exports its advertised rows as one wire
    blob (:meth:`ColumnarRoutingTable.advertised_wire_rows`); the hello
    service slices that blob per chunk and primes the encoder here, so
    beacon frames of large tables are never struct-packed row by row.
    The caller guarantees byte-exactness of ``body`` (asserted against
    :func:`_encode` by the codec tests).
    """
    if len(body) > 0xFF:
        raise ValueError(f"packet body {len(body)} B exceeds the u8 length field")
    frame = _HEADER.pack(packet.dst, packet.src, int(packet.type), len(body)) + body
    if len(frame) > pk.MAX_PHY_PAYLOAD:
        raise ValueError(f"encoded frame {len(frame)} B exceeds the 255 B PHY limit")
    if len(_ENCODE_CACHE) >= _ENCODE_CACHE_MAX:
        _evict_oldest_half(_ENCODE_CACHE)
    _ENCODE_CACHE[id(packet)] = (packet, frame)


#: Memo for :func:`decode`, keyed by the frame bytes.  Packets are frozen
#: dataclasses and decoding is pure, so a broadcast frame delivered to k
#: listeners decodes once instead of k times.  Only successful decodes are
#: cached; malformed buffers re-raise on every call (they are rare).
_DECODE_CACHE: dict = {}
_DECODE_CACHE_MAX = 65_536


def decode(buffer: bytes) -> Packet:
    """Parse over-the-air bytes back into a packet object.

    Memoized on the buffer bytes: the returned packet objects are frozen,
    so callers receiving the same frame share one instance.  The cap
    covers a 1000-node network's full beacon working set (every node's
    chunked table) so broadcast receivers decode each frame once, not
    once per receiver.
    """
    packet = _DECODE_CACHE.get(buffer)
    if packet is None:
        packet = _decode(buffer)
        if len(_DECODE_CACHE) >= _DECODE_CACHE_MAX:
            _evict_oldest_half(_DECODE_CACHE)
        _DECODE_CACHE[buffer] = packet
    return packet


def _decode(buffer: bytes) -> Packet:
    if len(buffer) < pk.HEADER_SIZE:
        raise DecodeError(f"buffer of {len(buffer)} B shorter than the header")
    dst, src, type_code, payload_len = _HEADER.unpack_from(buffer)
    body = buffer[pk.HEADER_SIZE :]
    if len(body) != payload_len:
        raise DecodeError(
            f"length field says {payload_len} B but {len(body)} B follow the header"
        )
    try:
        ptype = PacketType(type_code)
    except ValueError as exc:
        raise DecodeError(f"unknown packet type {type_code}") from exc

    try:
        if ptype is PacketType.ROUTING:
            return _decode_routing(dst, src, body)
        if ptype is PacketType.DATA:
            return _decode_data(dst, src, body)
        via, seq_id, number, rest = _decode_control_prefix(body)
        if ptype is PacketType.NEED_ACK:
            return NeedAckPacket(dst=dst, src=src, via=via, seq_id=seq_id, number=number, payload=rest)
        if ptype is PacketType.ACK:
            _expect_empty(rest, "ACK")
            return AckPacket(dst=dst, src=src, via=via, seq_id=seq_id, number=number)
        if ptype is PacketType.LOST:
            _expect_empty(rest, "LOST")
            return LostPacket(dst=dst, src=src, via=via, seq_id=seq_id, number=number)
        if ptype is PacketType.SYNC:
            if len(rest) != _SYNC_TAIL.size:
                raise DecodeError(f"SYNC tail is {len(rest)} B, expected {_SYNC_TAIL.size}")
            (total_bytes,) = _SYNC_TAIL.unpack(rest)
            return SyncPacket(
                dst=dst, src=src, via=via, seq_id=seq_id, number=number, total_bytes=total_bytes
            )
        if ptype is PacketType.XL_DATA:
            return XLDataPacket(dst=dst, src=src, via=via, seq_id=seq_id, number=number, payload=rest)
    except ValueError as exc:  # dataclass validation on hostile input
        raise DecodeError(str(exc)) from exc
    raise DecodeError(f"unhandled packet type {ptype}")  # pragma: no cover


def _decode_routing(dst: int, src: int, body: bytes) -> RoutingPacket:
    if len(body) % pk.ROUTING_ENTRY_SIZE != 0:
        raise DecodeError(
            f"ROUTING body of {len(body)} B is not a multiple of {pk.ROUTING_ENTRY_SIZE}"
        )
    n_rows = len(body) // pk.ROUTING_ENTRY_SIZE
    if pk.HAVE_NUMPY and n_rows >= _VECTOR_DECODE_MIN_ROWS:
        return _decode_routing_vector(dst, src, body, n_rows)
    # The struct layout guarantees metric/role fit u8 and address fits
    # u16, so only the non-zero address rule needs an explicit check —
    # entries skip dataclass re-validation via the trusted constructor.
    rows = tuple(_ROUTE_ENTRY.iter_unpack(body))
    for address, _metric, _role in rows:
        if address == 0:
            raise DecodeError(f"bad routing-entry address {address:#x}")
    from_wire = RoutingEntry.trusted
    entries = tuple(from_wire(addr, metric, role) for addr, metric, role in rows)
    # The int rows are in hand before the entry objects exist; seed the
    # rows memo so the routing table's merge loop never re-extracts them.
    pk.prime_rows(entries, rows)
    return RoutingPacket(dst=dst, src=src, entries=entries)


def _decode_routing_vector(dst: int, src: int, body: bytes, n_rows: int) -> RoutingPacket:
    """Column decode of a large ROUTING payload: one ``frombuffer`` per
    packet instead of a struct unpack per row, and the columnar merge's
    :class:`~repro.net.packets.PacketColumns` view seeded for free."""
    wire = _np.frombuffer(body, dtype=_ROUTE_WIRE_DTYPE)
    addresses = wire["address"]
    if not addresses.all():
        raise DecodeError("bad routing-entry address 0x0")
    addr_list = addresses.tolist()
    metric_list = wire["metric"].tolist()
    role_list = wire["role"].tolist()
    rows = tuple(zip(addr_list, metric_list, role_list))
    entries = tuple(map(RoutingEntry.trusted, addr_list, metric_list, role_list))
    pk.prime_rows(entries, rows)
    role_of = pk.rows_of(entries)[1]  # primed above: no rescan
    columns = pk.PacketColumns(
        addresses.astype(_np.int64),
        wire["metric"].astype(_np.int64) + 1,
        wire["role"].astype(_np.int64),
        role_of,
        len(set(addr_list)) != n_rows,
    )
    pk.prime_columns(entries, columns)
    return RoutingPacket(dst=dst, src=src, entries=entries)


def _decode_data(dst: int, src: int, body: bytes) -> DataPacket:
    if len(body) < _VIA.size:
        raise DecodeError("DATA body shorter than the via field")
    (via,) = _VIA.unpack_from(body)
    return DataPacket(dst=dst, src=src, via=via, payload=body[_VIA.size :])


def _decode_control_prefix(body: bytes) -> Tuple[int, int, int, bytes]:
    if len(body) < _CONTROL.size:
        raise DecodeError("control body shorter than via+seq_id+number")
    via, seq_id, number = _CONTROL.unpack_from(body)
    return via, seq_id, number, body[_CONTROL.size :]


def _expect_empty(rest: bytes, kind: str) -> None:
    if rest:
        raise DecodeError(f"{kind} packet carries {len(rest)} unexpected payload bytes")


def encoded_size(packet: Packet) -> int:
    """Size of the packet on the wire without building the bytes."""
    if isinstance(packet, RoutingPacket):
        return pk.HEADER_SIZE + len(packet.entries) * pk.ROUTING_ENTRY_SIZE
    if isinstance(packet, DataPacket):
        return pk.HEADER_SIZE + pk.VIA_SIZE + len(packet.payload)
    if isinstance(packet, (NeedAckPacket, XLDataPacket)):
        return pk.HEADER_SIZE + pk.CONTROL_SIZE + len(packet.payload)
    if isinstance(packet, (AckPacket, LostPacket)):
        return pk.HEADER_SIZE + pk.CONTROL_SIZE
    if isinstance(packet, SyncPacket):
        return pk.HEADER_SIZE + pk.CONTROL_SIZE + _SYNC_TAIL.size
    raise TypeError(f"cannot size {type(packet).__name__}")
