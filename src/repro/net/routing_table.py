"""The distance-vector routing table.

This is the heart of LoRaMesher: each node maintains, for every known
destination, the best next hop (``via``) and a hop-count metric, learned
entirely from neighbours' periodic ROUTING broadcasts.

Update rules (RIP-style, as the firmware implements them):

* hearing *any* packet from a neighbour refreshes/creates the direct
  route ``(neighbour, via=neighbour, metric=1)``,
* for each entry ``(addr, m)`` in a neighbour N's ROUTING packet, the
  candidate route is ``(addr, via=N, metric=m+1)``; it is adopted when it
  is new, strictly better, or when the current route already goes via N
  (follow the next hop's view, even if it got worse),
* entries not refreshed within ``route_timeout`` expire,
* metrics are capped at ``max_metric`` — candidates beyond it are ignored,
  which (together with timeouts) bounds count-to-infinity.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.net.addresses import BROADCAST_ADDRESS, format_address
from repro.net.packets import NodeRole, RoutingEntry, rows_of

#: Plain-int default role, hoisted out of the per-hello hot path.
_DEFAULT_ROLE = int(NodeRole.DEFAULT)

#: Merge-memo entries kept before half of the (insertion-oldest) keys
#: are evicted.  Keys are neighbour addresses, so a static deployment
#: never reaches the cap; mobile scenarios meet a stream of transient
#: neighbours whose memos (each pinning an entries tuple) would
#: otherwise accumulate forever.
_MERGE_MEMO_MAX = 64

logger = logging.getLogger(__name__)


@dataclass(slots=True)
class RouteEntry:
    """One routing-table row."""

    address: int  # destination
    via: int  # next hop (== address for direct neighbours)
    metric: int  # hop count
    role: int  # advertised role bits of the destination
    updated_at: float  # last refresh time
    received_snr_db: Optional[float] = None  # link SNR of the teaching hello
    # Memoized wire row (address, metric, role) for snapshot(); rebuilt
    # lazily whenever metric/role drift from the cached copy.
    advertised: Optional[RoutingEntry] = field(default=None, compare=False, repr=False)

    @property
    def is_neighbour(self) -> bool:
        """Direct (one-hop) route."""
        return self.metric == 1 and self.via == self.address


#: Signature of the change hook: (kind, entry) with kind in
#: {"added", "updated", "removed"}.
ChangeHook = Callable[[str, RouteEntry], None]


class RoutingTable:
    """The per-node distance-vector table.

    ``self_address`` is never stored (a node does not route to itself);
    entries advertising it are skipped during merges.
    """

    def __init__(
        self,
        self_address: int,
        *,
        route_timeout: float = 600.0,
        max_metric: int = 16,
        snr_tiebreak_db: Optional[float] = None,
        on_change: Optional[ChangeHook] = None,
    ) -> None:
        if route_timeout <= 0:
            raise ValueError("route_timeout must be positive")
        if not 1 <= max_metric <= 255:
            raise ValueError("max_metric must be in [1, 255]")
        if snr_tiebreak_db is not None and snr_tiebreak_db < 0:
            raise ValueError("snr_tiebreak_db must be >= 0")
        self.self_address = self_address
        self.route_timeout = route_timeout
        self.max_metric = max_metric
        #: When set, an equal-metric candidate whose first hop is at least
        #: this many dB stronger (hello SNR) replaces the current route —
        #: the link-quality-aware extension of the plain hop-count DV.
        self.snr_tiebreak_db = snr_tiebreak_db
        self._on_change = on_change
        self._routes: Dict[int, RouteEntry] = {}
        #: Monotonic counter bumped whenever the advertised view of the
        #: table — the (address, metric, role) rows — may have changed.
        #: Consumers (the hello service) use it to reuse built ROUTING
        #: packets across beacons while the table is stable.
        self._version: int = 0
        #: Companion counter for the merge memo: bumped whenever any
        #: entry's ``received_snr_db`` changes *value* (timestamp-only
        #: refreshes keep it stable).  Together with ``_version`` it
        #: covers every input the merge rules read.
        self._snr_version: int = 0
        #: Per-neighbour memo of a no-op hello merge: (entries object,
        #: table version, snr version, entries refreshed in place).  A
        #: stable network re-broadcasts the *same* ROUTING packet objects
        #: (hello/build cache + decode memo), so once a merge produced no
        #: route change, replaying it against an unchanged table reduces
        #: to the timestamp refreshes the original merge performed.
        self._merge_memo: Dict[int, tuple] = {}
        #: Memoized snapshot() rows, keyed on (version, self_role):
        #: stable-network beacons re-advertise an unchanged table every
        #: hello period, and rebuilding + re-sorting the row list each
        #: time was pure waste.  Timestamp-only refreshes keep the
        #: version (and therefore the memo) valid.
        self._snapshot_cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def heard_from(
        self, neighbour: int, now: float, *, role: int = int(NodeRole.DEFAULT), snr_db: Optional[float] = None
    ) -> None:
        """Refresh the direct route to a neighbour we just heard.

        Called for *every* correctly received packet, not only hellos —
        overhearing a data frame proves the link just as well.
        """
        if neighbour == self.self_address or neighbour == BROADCAST_ADDRESS:
            return
        current = self._routes.get(neighbour)
        if current is not None and current.via == neighbour and current.metric == 1:
            # Already the direct route: refresh in place (every received
            # packet lands here, so avoid allocating a fresh entry).
            if role and role != current.role:
                current.role = role
                self._version += 1
            current.updated_at = now
            if current.received_snr_db != snr_db:
                # SNR feeds the equal-metric tie-break, so a value change
                # invalidates memoized merge decisions.
                self._snr_version += 1
                current.received_snr_db = snr_db
            return
        entry = RouteEntry(
            address=neighbour,
            via=neighbour,
            metric=1,
            role=role if current is None else (role or current.role),
            updated_at=now,
            received_snr_db=snr_db,
        )
        self._routes[neighbour] = entry
        self._notify("added" if current is None else "updated", entry)

    def process_hello(
        self,
        src: int,
        entries: Iterable[RoutingEntry],
        now: float,
        *,
        snr_db: Optional[float] = None,
    ) -> int:
        """Merge a neighbour's ROUTING packet. Returns routes changed."""
        if src in (self.self_address, BROADCAST_ADDRESS):
            # A radio never demodulates its own frames, but a spoofed or
            # looped hello must not install routes via ourselves.
            return 0
        if not isinstance(entries, (tuple, list)):
            entries = list(entries)
        # Plain-int rows: the merge loop below visits every entry of
        # every received beacon, and tuple unpacking beats per-field
        # dataclass attribute loads ~3x.  Packets are shared objects
        # (decode memo), so the rows tuple is computed once per packet,
        # not once per receiving node.
        rows, role_of = rows_of(entries)
        # The sender's self-advertisement carries its role bits (and
        # nothing else of value — reception is the direct route).
        self.heard_from(src, now, role=role_of.get(src, _DEFAULT_ROLE), snr_db=snr_db)
        memo = self._merge_memo.get(src)
        if (
            memo is not None
            and memo[0] is entries
            and memo[1] == self._version
            and memo[2] == self._snr_version
        ):
            # The *same* packet object merged against an unchanged table:
            # the merge rules are a pure function of (entries, rows,
            # SNR state), so this replay decides exactly what the
            # recorded pass decided — no route changes, just timestamp
            # refreshes on the entries it refreshed then.  A converged
            # network spends almost all merge work here: every beacon
            # re-advertises a stable table to neighbours whose tables are
            # equally stable.
            for current in memo[3]:
                current.updated_at = now
            return 0
        changed = 0
        refreshed: List[RouteEntry] = []
        self_addr = self.self_address
        max_metric = self.max_metric
        routes = self._routes
        tiebreak = self.snr_tiebreak_db is not None
        # The merge below inlines _merge_candidate (kept as a method for
        # other callers): a converging mesh merges tens of candidates per
        # received hello, and the call overhead dominates the arithmetic.
        for address, adv_metric, role in rows:
            if address == self_addr or address == BROADCAST_ADDRESS:
                continue
            if address == src:
                # The neighbour's advertisement of itself carries no new
                # information — hearing the hello *is* the direct route,
                # already installed at metric 1 above.  Merging it would
                # let a malformed self-advertisement (metric > 0) degrade
                # that direct route via the follow-your-via rule.
                continue
            metric = adv_metric + 1
            if metric > max_metric:
                continue
            current = routes.get(address)
            if current is None:
                entry = RouteEntry(address=address, via=src, metric=metric, role=role, updated_at=now)
                routes[address] = entry
                self._notify("added", entry)
                changed += 1
            elif metric < current.metric:
                entry = RouteEntry(address=address, via=src, metric=metric, role=role, updated_at=now)
                routes[address] = entry
                self._notify("updated", entry)
                changed += 1
            elif current.via == src:
                # Follow the next hop's current view (metric may have
                # worsened), and refresh the timestamp either way.
                meaningful = current.metric != metric or current.role != role
                current.metric = metric
                current.role = role
                current.updated_at = now
                refreshed.append(current)
                if meaningful:
                    self._notify("updated", current)
                    changed += 1
            elif tiebreak and metric == current.metric and self._stronger_first_hop(src, current.via):
                entry = RouteEntry(address=address, via=src, metric=metric, role=role, updated_at=now)
                routes[address] = entry
                self._notify("updated", entry)
                changed += 1
        if changed == 0:
            # Pin the entries tuple so its id cannot be recycled while
            # the memo lives; any later table/SNR change ages it out via
            # the version checks.
            memo_table = self._merge_memo
            if src not in memo_table and len(memo_table) >= _MERGE_MEMO_MAX:
                # Bound the memo under neighbour churn: drop the oldest
                # half (insertion order) rather than one-at-a-time, the
                # same amortised idiom as the codec caches.
                for key in list(memo_table)[: _MERGE_MEMO_MAX // 2]:
                    del memo_table[key]
            memo_table[src] = (
                entries,
                self._version,
                self._snr_version,
                tuple(refreshed),
            )
        return changed

    def _merge_candidate(self, address: int, via: int, metric: int, role: int, now: float) -> bool:
        current = self._routes.get(address)
        if current is None:
            entry = RouteEntry(address=address, via=via, metric=metric, role=role, updated_at=now)
            self._routes[address] = entry
            self._notify("added", entry)
            return True
        if metric < current.metric:
            entry = RouteEntry(address=address, via=via, metric=metric, role=role, updated_at=now)
            self._routes[address] = entry
            self._notify("updated", entry)
            return True
        if current.via == via:
            # Follow the next hop's current view (metric may have worsened),
            # and refresh the timestamp either way.
            meaningful = current.metric != metric or current.role != role
            current.metric = metric
            current.role = role
            current.updated_at = now
            if meaningful:
                self._notify("updated", current)
            return meaningful
        if metric == current.metric and self._stronger_first_hop(via, current.via):
            entry = RouteEntry(address=address, via=via, metric=metric, role=role, updated_at=now)
            self._routes[address] = entry
            self._notify("updated", entry)
            return True
        return False

    def set_route(
        self,
        address: int,
        via: int,
        metric: int,
        role: int = _DEFAULT_ROLE,
        now: float = 0.0,
    ) -> None:
        """Install or overwrite a route unconditionally.

        The oracle baselines use this to force their precomputed
        shortest paths into the table; notifies only on actual change.
        """
        current = self._routes.get(address)
        if current is None:
            entry = RouteEntry(address=address, via=via, metric=metric, role=role, updated_at=now)
            self._routes[address] = entry
            self._notify("added", entry)
            return
        changed = current.via != via or current.metric != metric or current.role != role
        current.via = via
        current.metric = metric
        current.role = role
        current.updated_at = now
        if changed:
            self._notify("updated", current)

    def _stronger_first_hop(self, candidate_via: int, current_via: int) -> bool:
        """Link-quality tie-break: is the candidate's first hop at least
        ``snr_tiebreak_db`` stronger than the current one's?

        Uses the hello SNR recorded on the neighbour entries; missing SNR
        (route never refreshed by a hello, or the feature disabled) means
        no switch — hysteresis prevents flapping between similar links.
        """
        if self.snr_tiebreak_db is None:
            return False
        candidate = self._routes.get(candidate_via)
        current = self._routes.get(current_via)
        if candidate is None or candidate.received_snr_db is None:
            return False
        if current is None or current.received_snr_db is None:
            return True  # any measured link beats a vanished/unmeasured one
        return candidate.received_snr_db - current.received_snr_db >= self.snr_tiebreak_db

    # ------------------------------------------------------------------
    # Ageing
    # ------------------------------------------------------------------
    def purge(self, now: float) -> List[RouteEntry]:
        """Drop entries not refreshed within ``route_timeout``.

        Returns the removed entries (useful for trace and tests).
        """
        expired = [
            entry
            for entry in self._routes.values()
            if now - entry.updated_at > self.route_timeout
        ]
        for entry in expired:
            del self._routes[entry.address]
            # The memo is keyed by teaching neighbour: once the direct
            # route to a neighbour expires, its recorded no-op merge can
            # never validate again (the expiry bumped the version), so
            # keeping it would only pin the dead packet's entries tuple.
            self._merge_memo.pop(entry.address, None)
            self._notify("removed", entry)
        return expired

    def remove_via(self, neighbour: int) -> List[RouteEntry]:
        """Immediately drop every route through ``neighbour`` (used when a
        transmission to it repeatedly fails)."""
        dropped = [e for e in self._routes.values() if e.via == neighbour]
        for entry in dropped:
            del self._routes[entry.address]
            self._notify("removed", entry)
        # The departed neighbour will not replay its last hello; evict its
        # memo so the table does not pin it indefinitely.
        self._merge_memo.pop(neighbour, None)
        return dropped

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def next_hop(self, destination: int) -> Optional[int]:
        """Next hop towards ``destination``, or None when unreachable."""
        entry = self._routes.get(destination)
        return entry.via if entry is not None else None

    def get(self, destination: int) -> Optional[RouteEntry]:
        """The full entry for ``destination``, or None."""
        return self._routes.get(destination)

    def has_route(self, destination: int) -> bool:
        """Whether ``destination`` is currently reachable."""
        return destination in self._routes

    def metric(self, destination: int) -> Optional[int]:
        """Hop count towards ``destination``, or None."""
        entry = self._routes.get(destination)
        return entry.metric if entry is not None else None

    @property
    def size(self) -> int:
        """Number of known destinations."""
        return len(self._routes)

    @property
    def version(self) -> int:
        """Counter that advances whenever the advertised rows (address,
        metric, role) may have changed.  Timestamp-only refreshes do not
        bump it, so a stable table keeps a stable version."""
        return self._version

    def destinations(self) -> List[int]:
        """Known destination addresses, sorted."""
        return sorted(self._routes)

    def neighbours(self) -> List[int]:
        """Directly reachable (metric-1) destinations, sorted."""
        return sorted(e.address for e in self._routes.values() if e.is_neighbour)

    def __iter__(self) -> Iterator[RouteEntry]:
        for address in sorted(self._routes):
            yield self._routes[address]

    def __contains__(self, destination: int) -> bool:
        return destination in self._routes

    # ------------------------------------------------------------------
    # Advertising
    # ------------------------------------------------------------------
    def snapshot(self, *, self_role: int = int(NodeRole.DEFAULT)) -> List[RoutingEntry]:
        """The entries this node advertises in its ROUTING packets.

        The node's own address is advertised at metric 0 so receivers
        compute metric 1 for the direct route — matching the firmware,
        where the hello's source is itself the metric-0 row.
        """
        cache = self._snapshot_cache
        if cache is not None and cache[0] == self._version and cache[1] == self_role:
            return list(cache[2])
        rows = [RoutingEntry(address=self.self_address, metric=0, role=self_role)]
        # Table rows were validated on the way in; skip re-validation.
        # Each row's wire entry is memoized on the RouteEntry and reused
        # until its metric/role drift — across beacons, most rows are
        # stable while the table as a whole still churns somewhere.
        routes = self._routes
        trusted = RoutingEntry.trusted
        append = rows.append
        for address in sorted(routes):
            e = routes[address]
            adv = e.advertised
            if adv is None or adv.metric != e.metric or adv.role != e.role:
                adv = trusted(e.address, e.metric, e.role)
                e.advertised = adv
            append(adv)
        self._snapshot_cache = (self._version, self_role, tuple(rows))
        return rows

    def format(self) -> str:
        """Multi-line rendering like the demo's serial-console dump."""
        lines = [f"Routing table of {format_address(self.self_address)} ({self.size} routes)"]
        for entry in self:
            lines.append(
                f"  dst={format_address(entry.address)} via={format_address(entry.via)} "
                f"metric={entry.metric} role={entry.role}"
            )
        return "\n".join(lines)

    def _notify(self, kind: str, entry: RouteEntry) -> None:
        self._version += 1
        if self._on_change is not None:
            self._on_change(kind, entry)


# ----------------------------------------------------------------------
# Implementation selection
# ----------------------------------------------------------------------
#: Valid values of MesherConfig.routing_impl / REPRO_ROUTING_IMPL.
ROUTING_IMPLS = ("auto", "scalar", "columnar")


def make_routing_table(
    self_address: int,
    *,
    route_timeout: float = 600.0,
    max_metric: int = 16,
    snr_tiebreak_db: Optional[float] = None,
    on_change: Optional[ChangeHook] = None,
    impl: str = "auto",
):
    """Build the configured routing-table implementation.

    ``impl`` (usually ``MesherConfig.routing_impl``) picks between the
    scalar dict-of-entries reference and the columnar numpy store; the
    ``REPRO_ROUTING_IMPL`` environment variable overrides it globally,
    which is how the A/B equivalence and benchmark runs flip a whole
    mesh between implementations without touching configs.

    ``auto`` resolves to columnar when numpy is available, else scalar.
    Forcing ``columnar`` without numpy raises.
    """
    choice = os.environ.get("REPRO_ROUTING_IMPL") or impl
    if choice not in ROUTING_IMPLS:
        raise ValueError(f"routing impl must be one of {ROUTING_IMPLS}, got {choice!r}")
    if choice != "scalar":
        from repro.net import routing_store

        if routing_store.HAVE_NUMPY:
            return routing_store.ColumnarRoutingTable(
                self_address,
                route_timeout=route_timeout,
                max_metric=max_metric,
                snr_tiebreak_db=snr_tiebreak_db,
                on_change=on_change,
            )
        if choice == "columnar":
            raise RuntimeError("routing_impl='columnar' requires numpy")
    return RoutingTable(
        self_address,
        route_timeout=route_timeout,
        max_metric=max_metric,
        snr_tiebreak_db=snr_tiebreak_db,
        on_change=on_change,
    )
