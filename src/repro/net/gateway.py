"""Gateway-role support.

LoRaMesher lets nodes advertise *roles* in their routing entries; the one
the library ships is the **gateway** role, so that sensor-class nodes can
say "send this to whatever internet-connected node is nearest" without
configuring an address.  The role bit rides the normal routing
dissemination: a gateway advertises itself with the GATEWAY flag, every
hello propagates the flag along with the metric, and any node can resolve
the closest gateway from its own table.

Usage::

    gw_config = MesherConfig(role=int(NodeRole.GATEWAY))
    gateway   = net.add_node(0x00G1, position, config=gw_config)

    # on any sensor node, once routing has converged:
    uplink = GatewayClient(sensor)
    uplink.send(b"reading")           # routed to the nearest gateway
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.net.mesher import MesherNode
from repro.net.packets import NodeRole
from repro.net.reliable import CompletionFn
from repro.net.routing_table import RouteEntry


class NoGatewayError(Exception):
    """Raised when the routing table knows no gateway-role node."""


@dataclass(frozen=True)
class GatewayInfo:
    """A reachable gateway as seen from one node's routing table."""

    address: int
    metric: int
    via: int


def known_gateways(node: MesherNode) -> List[GatewayInfo]:
    """Every gateway the node can currently route to, nearest first.

    Ties on metric break towards the lower address so that all nodes with
    identical views pick the same gateway (stable aggregation points).
    """
    gateways = [
        GatewayInfo(address=e.address, metric=e.metric, via=e.via)
        for e in node.table
        if e.role & int(NodeRole.GATEWAY)
    ]
    gateways.sort(key=lambda g: (g.metric, g.address))
    return gateways


def nearest_gateway(node: MesherNode) -> Optional[GatewayInfo]:
    """The closest known gateway, or None."""
    gateways = known_gateways(node)
    return gateways[0] if gateways else None


def is_gateway(node: MesherNode) -> bool:
    """Whether the node itself advertises the gateway role."""
    return bool(node.config.role & int(NodeRole.GATEWAY))


class GatewayClient:
    """Address-free uplink: route application payloads to the nearest
    gateway, re-resolving the target on every send so the choice follows
    topology changes (a closer gateway joining, the current one dying)."""

    def __init__(self, node: MesherNode) -> None:
        self._node = node
        self.sends = 0
        self.no_gateway_drops = 0

    @property
    def node(self) -> MesherNode:
        """The node this client sends from."""
        return self._node

    def current_target(self) -> Optional[GatewayInfo]:
        """The gateway the next send would go to."""
        return nearest_gateway(self._node)

    def send(self, payload: bytes) -> bool:
        """Unreliable datagram to the nearest gateway.

        Returns False (and counts a drop) when no gateway is known —
        same semantics as a routeless ``send_datagram``.
        """
        target = nearest_gateway(self._node)
        if target is None:
            self.no_gateway_drops += 1
            return False
        self.sends += 1
        return self._node.send_datagram(target.address, payload)

    def send_reliable(
        self, payload: bytes, on_complete: Optional[CompletionFn] = None
    ) -> Optional[int]:
        """Reliable delivery to the nearest gateway; returns the stream's
        seq_id, or None when no gateway is known (``on_complete`` is then
        called immediately with failure)."""
        target = nearest_gateway(self._node)
        if target is None:
            self.no_gateway_drops += 1
            if on_complete is not None:
                on_complete(False, "no gateway known")
            return None
        self.sends += 1
        return self._node.send_reliable(target.address, payload, on_complete)
