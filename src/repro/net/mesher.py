"""The LoRaMesher node service.

:class:`MesherNode` is the reproduction of the library's main class: one
instance per node, owning the radio, the routing table, the send queue,
the hello service, and the reliable transport, and wiring them together:

* **RX path** — radio ``on_receive`` → CRC filter → decode → dispatch
  (ROUTING packets feed the table; via-packets are classified by the data
  plane into deliver / forward / overhear / no-route),
* **TX path** — a single pump drains the send queue: random backoff
  (listen-before-talk with CAD deferral), duty-cycle pacing against the
  regional budget, then one frame on the air; the radio's tx-done re-arms
  the pump,
* **Application API** — :meth:`send_datagram`, :meth:`broadcast`,
  :meth:`send_reliable`, and an inbox of :class:`AppMessage` records with
  an optional ``on_message`` callback.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.medium.channel import Medium
from repro.net import serialization
from repro.net.addresses import BROADCAST_ADDRESS, format_address, validate_address
from repro.net.config import MesherConfig
from repro.net.forwarding import ForwardAction, classify, initial_via
from repro.net.hello import HelloService
from repro.net.packets import (
    AckPacket,
    DataPacket,
    LostPacket,
    NeedAckPacket,
    Packet,
    RoutingPacket,
    SyncPacket,
    XLDataPacket,
)
from repro.net.queues import PacketQueue, SendQueue
from repro.net.reliable import CompletionFn, ReliableTransport
from repro.net.routing_table import RouteEntry, RoutingTable, make_routing_table
from repro.phy.airtime import time_on_air
from repro.phy.pathloss import Position
from repro.phy.regions import DutyCycleAccountant
from repro.radio.driver import Radio
from repro.radio.frames import ReceivedFrame
from repro.sim.kernel import EventHandle, Simulator
from repro.sim.rng import RngRegistry
from repro.trace.events import EventKind, TraceRecorder

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class AppMessage:
    """A message delivered to the application layer."""

    src: int
    payload: bytes
    received_at: float
    reliable: bool

    @property
    def text(self) -> str:
        """Payload decoded as UTF-8 (convenience for the examples)."""
        return self.payload.decode("utf-8", errors="replace")


@dataclass
class NodeStats:
    """Per-node protocol counters (the trace holds the event detail)."""

    frames_sent: int = 0
    bytes_sent: int = 0
    data_originated: int = 0
    data_delivered: int = 0
    data_forwarded: int = 0
    no_route_drops: int = 0
    overheard: int = 0
    crc_failures: int = 0
    decode_failures: int = 0
    duty_deferrals: int = 0
    cad_deferrals: int = 0
    strict_duty_drops: int = 0
    #: FORWARD decisions whose next hop was the frame's previous
    #: transmitter — transient two-node ping-pong during convergence.
    ping_pong_forwards: int = 0


class MesherNode:
    """One LoRa mesh node: radio + routing + transport + app API."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        address: int,
        position: Position,
        config: Optional[MesherConfig] = None,
        *,
        rngs: Optional[RngRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        name: str = "",
    ) -> None:
        validate_address(address)
        self.sim = sim
        self.address = address
        self.name = name or format_address(address)
        self.config = config or MesherConfig()
        self.trace = trace
        rngs = rngs or RngRegistry(0)
        self._rng = rngs.stream(f"mesher.{address:#06x}")
        # Scheduler labels built once: the pump re-arms on every frame.
        self._pump_label = f"{self.name} pump"
        self._duty_label = f"{self.name} duty wait"
        self._cad_label = f"{self.name} cad wait"

        self.radio = Radio(sim, medium, address, position, self.config.lora)
        self.radio.on_receive = self._on_frame
        self.radio.on_tx_done = self._on_tx_done

        self.table = make_routing_table(
            address,
            route_timeout=self.config.route_timeout_s,
            max_metric=self.config.max_metric,
            snr_tiebreak_db=self.config.link_quality_tiebreak_db,
            on_change=self._route_changed,
            impl=self.config.routing_impl,
        )
        self.send_queue = SendQueue(self.config.send_queue_capacity)
        self.duty = DutyCycleAccountant(self.config.region)
        self.hello = HelloService(
            sim,
            address,
            self.table,
            self.config,
            enqueue=self.enqueue,
            rng=self._rng,
            trace=trace,
        )
        self.reliable = ReliableTransport(
            sim,
            address,
            self.config,
            enqueue=self.enqueue,
            route_via=self.table.next_hop,
            deliver=self._deliver_reliable,
            trace=trace,
        )
        self.inbox: PacketQueue[AppMessage] = PacketQueue(
            self.config.app_inbox_capacity, name=f"inbox {self.name}"
        )
        #: Optional push-style delivery; fires in addition to the inbox.
        self.on_message: Optional[Callable[[AppMessage], None]] = None

        # Observer taps (see repro.verify): read-only hooks the invariant
        # checker and other observers attach to.  All default to None and
        # cost one attribute load when unused.  They survive recover()
        # because the recreated table's on_change still points at
        # _route_changed, which fans out to on_route_event.
        #: ``(packet, decision, previous_hop)`` after every via-packet
        #: classification (previous_hop is the simulator-side transmitter
        #: id, -1 when unknown).
        self.on_forward_decision: Optional[Callable[[Packet, object, int], None]] = None
        #: ``(kind, entry)`` mirrored from the routing table's change
        #: hook (kind in {"added", "updated", "removed"}).
        self.on_route_event: Optional[Callable[[str, RouteEntry], None]] = None
        #: ``(message)`` on every application-layer delivery, before the
        #: inbox push (fires even when the inbox would overflow).
        self.on_app_delivery: Optional[Callable[[AppMessage], None]] = None
        #: ``(src, payload) -> bool`` consume hook ahead of the reliable
        #: inbox path: a protocol layered on the reliable transport (the
        #: stream layer) returns True to claim the payload, and the
        #: message never reaches the application inbox.
        self.on_reliable_consume: Optional[Callable[[int, bytes], bool]] = None

        self.stats = NodeStats()
        self._pump_handle: Optional[EventHandle] = None
        self._cad_attempts = 0
        self._started = False

    # ==================================================================
    # Lifecycle
    # ==================================================================
    def start(self) -> None:
        """Power up: enter continuous RX and start the hello service."""
        if self._started:
            return
        self._started = True
        if not self.radio.powered:
            self.radio.power_on()
        self.radio.start_receive()
        self.hello.start()

    def stop(self) -> None:
        """Graceful shutdown: stop timers, radio to sleep."""
        if not self._started:
            return
        self._started = False
        self.hello.stop()
        if self._pump_handle is not None:
            self._pump_handle.cancel()
            self._pump_handle = None
        if not self.radio.transmitting:
            self.radio.sleep()

    def fail(self) -> None:
        """Abrupt node death (for the robustness experiments): the radio
        disappears from the medium mid-run, timers stop."""
        self.hello.stop()
        if self._pump_handle is not None:
            self._pump_handle.cancel()
            self._pump_handle = None
        self._started = False
        if not self.radio.transmitting:
            self.radio.power_off()
        else:
            # Die right after the in-flight frame ends, like a power cut
            # would still emit the tail of the current symbol stream.
            self.sim.call_soon(self.radio.power_off, label=f"{self.name} power off")

    def recover(self) -> None:
        """Bring a failed node back (cold start: empty routing table)."""
        self.radio.power_on()
        self.table = make_routing_table(
            self.address,
            route_timeout=self.config.route_timeout_s,
            max_metric=self.config.max_metric,
            snr_tiebreak_db=self.config.link_quality_tiebreak_db,
            on_change=self._route_changed,
            impl=self.config.routing_impl,
        )
        self.hello._table = self.table  # the service follows the new table
        self.reliable._route_via = self.table.next_hop
        self._started = False
        self.start()

    @property
    def started(self) -> bool:
        """Whether the node service is running."""
        return self._started

    # ==================================================================
    # Application API
    # ==================================================================
    def send_datagram(self, dst: int, payload: bytes) -> bool:
        """Send an unreliable datagram towards ``dst``.

        Returns False when there is no route or the send queue is full —
        the datagram is then dropped, exactly like the firmware.
        """
        validate_address(dst, allow_broadcast=True)
        if isinstance(payload, str):
            raise TypeError("payload must be bytes; encode() your string")
        via = initial_via(dst, self.address, self.table)
        if via is None:
            self.stats.no_route_drops += 1
            self._record(EventKind.DATA_NO_ROUTE, dst=dst, origin=True)
            return False
        packet = DataPacket(dst=dst, src=self.address, via=via, payload=payload)
        if not self.enqueue(packet):
            return False
        self.stats.data_originated += 1
        self._record(EventKind.DATA_ORIGINATED, dst=dst, bytes=len(payload))
        return True

    def broadcast(self, payload: bytes) -> bool:
        """Single-hop broadcast to every node in radio range."""
        return self.send_datagram(BROADCAST_ADDRESS, payload)

    def send_reliable(
        self, dst: int, payload: bytes, on_complete: Optional[CompletionFn] = None
    ) -> int:
        """Reliably deliver ``payload`` (any size) to ``dst``.

        Large payloads are fragmented and repaired transparently; the
        optional ``on_complete(success, detail)`` callback reports the
        outcome.  Returns the stream's sequence id.
        """
        validate_address(dst)
        if isinstance(payload, str):
            raise TypeError("payload must be bytes; encode() your string")
        self.stats.data_originated += 1
        self._record(EventKind.DATA_ORIGINATED, dst=dst, bytes=len(payload), reliable=True)
        return self.reliable.send(dst, payload, on_complete)

    def receive(self) -> Optional[AppMessage]:
        """Pop the next delivered application message, or None."""
        return self.inbox.pop()

    # ==================================================================
    # TX path
    # ==================================================================
    def enqueue(self, packet: Packet) -> bool:
        """Queue a packet for transmission and kick the pump."""
        ok = self.send_queue.push(packet)
        if not ok:
            self._record(EventKind.QUEUE_DROP, packet=type(packet).__name__)
        self._kick_pump()
        return ok

    def _kick_pump(self) -> None:
        if (
            not self.send_queue
            or self.radio.transmitting
            or not self.radio.powered
            or (self._pump_handle is not None and self._pump_handle.active)
        ):
            return
        delay = self._backoff_delay()
        self._pump_handle = self.sim.schedule(
            delay, self._try_send, label=self._pump_label
        )

    def _backoff_delay(self) -> float:
        slots = self.config.backoff_slots
        if slots <= 0:
            return 0.0
        return self._rng.randint(0, slots) * self.config.backoff_slot_s

    def _try_send(self) -> None:
        self._pump_handle = None
        if self.radio.transmitting or not self.radio.powered:
            return
        packet = self.send_queue.peek()
        if packet is None:
            return
        frame = serialization.encode(packet)
        airtime = time_on_air(len(frame), self.config.lora)
        now = self.sim.now

        # Duty-cycle pacing.
        if not self.duty.can_transmit(now, airtime):
            if self.config.strict_duty_cycle:
                self.send_queue.pop()
                self.stats.strict_duty_drops += 1
                self._record(EventKind.QUEUE_DROP, packet=type(packet).__name__, reason="duty")
                self._kick_pump()
                return
            self.stats.duty_deferrals += 1
            resume_at = self.duty.next_allowed_time(now, airtime)
            self._pump_handle = self.sim.schedule(
                max(resume_at - now, 0.0) + self._backoff_delay(),
                self._try_send,
                label=self._duty_label,
            )
            return

        # Listen before talk.
        if self.radio.channel_activity() and self._cad_attempts < self.config.max_cad_retries:
            self._cad_attempts += 1
            self.stats.cad_deferrals += 1
            self._pump_handle = self.sim.schedule(
                self._backoff_delay() + self.config.backoff_slot_s,
                self._try_send,
                label=self._cad_label,
            )
            return
        self._cad_attempts = 0

        self.send_queue.pop()
        self.duty.record(now, airtime)
        self.radio.transmit(frame)
        self.stats.frames_sent += 1
        self.stats.bytes_sent += len(frame)
        self._record(
            EventKind.FRAME_SENT,
            packet=type(packet).__name__,
            bytes=len(frame),
            airtime_ms=round(airtime * 1000, 3),
        )

    def _on_tx_done(self) -> None:
        self._kick_pump()

    # ==================================================================
    # RX path
    # ==================================================================
    def _on_frame(self, frame: ReceivedFrame) -> None:
        if not self._started:
            return
        if not frame.crc_ok:
            self.stats.crc_failures += 1
            self._record(EventKind.FRAME_CRC_FAILED)
            return
        try:
            packet = serialization.decode(frame.payload)
        except serialization.DecodeError as exc:
            self.stats.decode_failures += 1
            self._record(EventKind.FRAME_DECODE_FAILED, error=str(exc))
            return
        trace = self.trace
        if trace is not None:
            if trace.enabled:
                trace.record(
                    self.sim.now,
                    self.address,
                    EventKind.FRAME_RECEIVED,
                    packet=type(packet).__name__,
                    src=packet.src,
                    rssi=round(frame.rssi_dbm, 1),
                )
            else:
                # Counter-only fast path: skip building the detail dict
                # the disabled recorder would throw away (this runs for
                # every received frame in trace-less benchmark runs).
                trace.record(self.sim.now, self.address, EventKind.FRAME_RECEIVED)
        if isinstance(packet, RoutingPacket):
            self._handle_routing(packet, frame)
            return
        self._handle_via_packet(packet, previous_hop=frame.sender_id)

    def _handle_routing(self, packet: RoutingPacket, frame: ReceivedFrame) -> None:
        trace = self.trace
        if trace is not None:
            if trace.enabled:
                trace.record(
                    self.sim.now,
                    self.address,
                    EventKind.HELLO_RECEIVED,
                    src=packet.src,
                    entries=len(packet.entries),
                )
            else:
                trace.record(self.sim.now, self.address, EventKind.HELLO_RECEIVED)
        self.table.process_hello(
            packet.src, packet.entries, self.sim.now, snr_db=frame.snr_db
        )

    def _handle_via_packet(self, packet, *, previous_hop: int = -1) -> None:
        decision = classify(packet, self.address, self.table, previous_hop=previous_hop)
        if self.on_forward_decision is not None:
            self.on_forward_decision(packet, decision, previous_hop)
        if decision.action is ForwardAction.DELIVER:
            self._deliver(packet)
        elif decision.action is ForwardAction.FORWARD:
            assert decision.outgoing is not None
            self.stats.data_forwarded += 1
            if decision.ping_pong:
                self.stats.ping_pong_forwards += 1
            self._record(
                EventKind.DATA_FORWARDED,
                packet=type(packet).__name__,
                src=packet.src,
                dst=packet.dst,
                next_hop=decision.next_hop,
            )
            self.enqueue(decision.outgoing)
        elif decision.action is ForwardAction.NO_ROUTE:
            self.stats.no_route_drops += 1
            self._record(EventKind.DATA_NO_ROUTE, src=packet.src, dst=packet.dst)
        else:  # OVERHEAR
            self.stats.overheard += 1

    def _deliver(self, packet) -> None:
        if isinstance(packet, DataPacket):
            self._deliver_app(
                AppMessage(
                    src=packet.src,
                    payload=packet.payload,
                    received_at=self.sim.now,
                    reliable=False,
                )
            )
        elif isinstance(packet, NeedAckPacket):
            self.reliable.handle_need_ack(packet)
        elif isinstance(packet, AckPacket):
            self.reliable.handle_ack(packet)
        elif isinstance(packet, LostPacket):
            self.reliable.handle_lost(packet)
        elif isinstance(packet, SyncPacket):
            self.reliable.handle_sync(packet)
        elif isinstance(packet, XLDataPacket):
            self.reliable.handle_xl_data(packet)
        else:  # pragma: no cover - the decoder produces no other types
            logger.warning("%s: unhandled packet %r", self.name, packet)

    def _deliver_reliable(self, src: int, payload: bytes) -> None:
        if self.on_reliable_consume is not None and self.on_reliable_consume(src, payload):
            return
        self._deliver_app(
            AppMessage(src=src, payload=payload, received_at=self.sim.now, reliable=True)
        )

    def _deliver_app(self, message: AppMessage) -> None:
        self.stats.data_delivered += 1
        self._record(
            EventKind.DATA_DELIVERED,
            src=message.src,
            bytes=len(message.payload),
            reliable=message.reliable,
        )
        if self.on_app_delivery is not None:
            self.on_app_delivery(message)
        self.inbox.push(message)
        if self.on_message is not None:
            self.on_message(message)

    # ==================================================================
    _ROUTE_EVENTS = {
        "added": EventKind.ROUTE_ADDED,
        "updated": EventKind.ROUTE_UPDATED,
        "removed": EventKind.ROUTE_REMOVED,
    }

    def _route_changed(self, kind: str, entry: RouteEntry) -> None:
        if self.on_route_event is not None:
            self.on_route_event(kind, entry)
        trace = self.trace
        if trace is None:
            return
        event = self._ROUTE_EVENTS[kind]
        if trace.enabled:
            trace.record(
                self.sim.now,
                self.address,
                event,
                dst=entry.address,
                via=entry.via,
                metric=entry.metric,
            )
        else:
            trace.record(self.sim.now, self.address, event)

    def _record(self, kind: EventKind, **detail) -> None:
        if self.trace is not None:
            self.trace.record(self.sim.now, self.address, kind, **detail)

    def __repr__(self) -> str:
        return f"MesherNode({self.name}, routes={self.table.size})"
