"""Fixed-capacity packet queues.

The firmware runs on a microcontroller with hard memory limits: its
received-packets and to-send queues are fixed-size FreeRTOS queues that
*drop* when full.  Reproducing the bounded queues (rather than letting
Python lists grow) matters because queue overflow is a real loss mode in
dense meshes, and two of the benchmarks measure it.

Control traffic (ACK / LOST / SYNC) jumps ahead of data in the send queue,
matching the firmware's priority handling — a starved ACK would stall a
whole reliable stream.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Generic, Iterator, List, Optional, TypeVar

from repro.net.packets import AckPacket, LostPacket, Packet, SyncPacket

T = TypeVar("T")


class PacketQueue(Generic[T]):
    """A bounded FIFO with drop-on-overflow semantics and drop counting."""

    def __init__(self, capacity: int, name: str = "queue") -> None:
        if capacity <= 0:
            raise ValueError(f"queue capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._items: Deque[T] = deque()
        self.dropped = 0
        self.enqueued_total = 0
        self.dequeued_total = 0

    def push(self, item: T) -> bool:
        """Append; returns False (and counts a drop) when full."""
        if len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._items.append(item)
        self.enqueued_total += 1
        return True

    def pop(self) -> Optional[T]:
        """Remove and return the head, or None when empty."""
        if not self._items:
            return None
        self.dequeued_total += 1
        return self._items.popleft()

    def peek(self) -> Optional[T]:
        """The head without removing it, or None."""
        return self._items[0] if self._items else None

    def requeue_front(self, item: T) -> bool:
        """Put a previously popped item back at the head (send deferred by
        duty cycle or CAD).

        Always succeeds: the popped slot is logically still owned by the
        item, so deferral must be loss-free even when other producers
        refilled the queue in between — the queue may transiently hold
        ``capacity + 1`` items, and ``push`` keeps dropping until it
        drains back under the cap.
        """
        self._items.appendleft(item)
        self.dequeued_total -= 1
        return True

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    @property
    def full(self) -> bool:
        """Whether the next push would drop."""
        return len(self._items) >= self.capacity


#: Packet types that skip ahead of queued data frames.
_PRIORITY_TYPES = (AckPacket, LostPacket, SyncPacket)


class SendQueue:
    """The to-send queue: bounded, with a priority lane for control packets."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"queue capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._control: Deque[Packet] = deque()
        self._data: Deque[Packet] = deque()
        self.dropped = 0
        self.enqueued_total = 0
        self.dequeued_total = 0

    def push(self, packet: Packet) -> bool:
        """Enqueue for transmission; control packets take the fast lane."""
        if len(self) >= self.capacity:
            self.dropped += 1
            return False
        if isinstance(packet, _PRIORITY_TYPES):
            self._control.append(packet)
        else:
            self._data.append(packet)
        self.enqueued_total += 1
        return True

    def pop(self) -> Optional[Packet]:
        """Next packet to transmit (control before data), or None."""
        if self._control:
            self.dequeued_total += 1
            return self._control.popleft()
        if self._data:
            self.dequeued_total += 1
            return self._data.popleft()
        return None

    def peek(self) -> Optional[Packet]:
        """What :meth:`pop` would return, without removing it."""
        if self._control:
            return self._control[0]
        if self._data:
            return self._data[0]
        return None

    def requeue_front(self, packet: Packet) -> bool:
        """Return a deferred packet to the head of its lane.

        Always succeeds — the popped slot is logically still owned by the
        in-flight packet, so a duty-cycle or CAD deferral is loss-free
        even when the queue refilled to capacity in between.  The queue
        may transiently hold ``capacity + 1`` packets; ``push`` keeps
        dropping new arrivals until it drains back under the cap.
        """
        if isinstance(packet, _PRIORITY_TYPES):
            self._control.appendleft(packet)
        else:
            self._data.appendleft(packet)
        self.dequeued_total -= 1
        return True

    def __len__(self) -> int:
        return len(self._control) + len(self._data)

    def __bool__(self) -> bool:
        return bool(self._control) or bool(self._data)

    @property
    def full(self) -> bool:
        """Whether the next push would drop."""
        return len(self) >= self.capacity

    def drain(self) -> List[Packet]:
        """Remove and return everything (used at shutdown in tests)."""
        out: List[Packet] = list(self._control) + list(self._data)
        self._control.clear()
        self._data.clear()
        self.dequeued_total += len(out)
        return out
